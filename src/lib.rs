//! Umbrella crate for the Cruz distributed checkpoint-restart reproduction.
//!
//! This crate re-exports the workspace's layers so that examples and
//! integration tests can depend on a single package:
//!
//! * [`des`] — deterministic discrete-event simulation kernel;
//! * [`simcpu`] — the guest virtual machine applications run on;
//! * [`simnet`] — Ethernet/ARP/DHCP/IP/UDP/TCP network substrate;
//! * [`simos`] — the simulated per-node operating system;
//! * [`zap`] — pod virtualization and single-node checkpoint/restart;
//! * [`cruz`] — the distributed coordinated checkpoint-restart protocols;
//! * [`cluster`] — world assembly: nodes, switch, control plane, job manager;
//! * [`baseline`] — the flush-based coordinated CR comparator;
//! * [`workloads`] — guest benchmark programs (slm, TCP streaming, …).
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

pub use baseline;
pub use cluster;
pub use cruz;
pub use des;
pub use simcpu;
pub use simnet;
pub use simos;
pub use workloads;
pub use zap;
