#!/bin/sh
# The full gate, in fail-fast order: cheap checks first.
#
#   1. rustfmt          — formatting drift
#   2. cruz-lint        — the determinism/architecture auditor: token
#                         rules, layer graph, wire registry (DESIGN.md
#                         §14); also emits lint-report.json for tooling
#   3. release build    — the whole workspace compiles
#   4. cluster docs     — `cargo doc -p cluster` stays warning-free
#                         (the layered-engine seams are documented API)
#   5. tests            — every suite, including the same-seed
#                         byte-identical-images regression test
#   6. bench smoke      — `--quick` runs of the store-ablation,
#                         Fig 5(a), COW-downtime and recovery binaries
#                         (their asserts are the check)
#   7. hotpath smoke    — ref/opt micro-bench pairs must agree
#                         byte-for-byte, hit the speedup floors, and the
#                         image digests pinned in the cow/recovery JSON
#                         must be untouched by the optimization pass
#   8. parallel smoke   — pooled capture/restore at threads 1/2/4/8 must
#                         produce byte-identical manifests, store files
#                         and restored images (the serial path is the
#                         oracle), and the pinned image digests must
#                         survive the pool too
#   9. replication smoke— kill k-1 of k replica stores mid-checkpoint;
#                         the job must heal with byte-identical rollback
#                         images and write amplification tracking k
#  10. chaos smoke      — replays three pinned fault-plan seeds and
#                         demands byte-identical event traces, then the
#                         same for three pinned replica-kill plans at k=3
#  11. loopback smoke   — the twin-runtime demo: the full checkpoint →
#                         kill-node → recover → restore cycle over real
#                         loopback UDP sockets must restore the exact
#                         bytes the simulated run pins (the bin prints
#                         SKIPPED and exits 0 where the sandbox forbids
#                         even 127.0.0.1 sockets)
#
# Everything runs offline: the only dependencies are the vendored stubs
# under vendor/ (see DESIGN.md, "Offline builds").
set -eu

cd "$(dirname "$0")"

echo "== no build artifacts tracked"
if git ls-files -- 'target/' '*/target/' | grep -q .; then
    echo "error: target/ build artifacts are tracked by git:" >&2
    git ls-files -- 'target/' '*/target/' | head >&2
    exit 1
fi

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cruz-lint --workspace"
# Machine report first (written even when findings exist), then the
# human-readable run, which is the actual gate.
cargo run --offline -q -p cruz-lint -- --workspace --json > lint-report.json || true
cargo run --offline -q -p cruz-lint -- --workspace

echo "== cargo build --release"
cargo build --offline --release --workspace

echo "== cargo doc -p cluster"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps -q -p cluster

echo "== cargo test"
cargo test --offline --workspace -q

echo "== bench smoke (--quick)"
cargo run --offline -q --release -p bench --bin store_dedup -- --quick
cargo run --offline -q --release -p bench --bin fig5a -- --quick
cargo run --offline -q --release -p bench --bin cow_downtime -- --quick
cargo run --offline -q --release -p bench --bin recovery -- --quick

echo "== hotpath smoke (--quick)"
# Runs after cow_downtime/recovery so their JSON (with the pinned image
# digests) is fresh; bench_hotpath re-checks those digests and writes
# BENCH_hotpath.json.
cargo run --offline -q --release -p bench --bin bench_hotpath -- --quick

echo "== parallel smoke (--quick)"
# Byte-identity across pool widths is asserted unconditionally; the
# throughput floor only gates on hosts with >=4 CPUs (recorded in
# BENCH_parallel.json as host_cpus either way).
cargo run --offline -q --release -p bench --bin bench_parallel -- --quick

echo "== replication smoke (--quick)"
cargo run --offline -q --release -p bench --bin bench_replication -- --quick

echo "== chaos smoke (pinned fault-plan replay)"
cargo run --offline -q --release -p bench --bin chaos
cargo run --offline -q --release -p bench --bin bench_replication -- --chaos

echo "== loopback smoke (real-socket twin-runtime demo)"
# The NetRuntime caps each cycle with a 30 s wall budget of its own, so
# a wedged socket path fails the stage instead of hanging it. The bin
# skips cleanly (exit 0) when loopback sockets are unavailable.
cargo run --offline -q --release -p bench --bin loopback_demo

echo "ci: all green"
