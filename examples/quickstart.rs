//! Quickstart: checkpoint a live distributed application and restart it on
//! different machines — with no cooperation from the application.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use cruz_repro::cluster::{ClusterParams, JobSpec, PodSpec, World};
use cruz_repro::cruz::proto::ProtocolMode;
use cruz_repro::des::SimDuration;
use cruz_repro::simnet::addr::{IpAddr, MacAddr};
use cruz_repro::workloads::pingpong::PingPongConfig;
use cruz_repro::zap::image::MacMode;

fn main() {
    // A five-node cluster: the job starts on nodes 0-1, node 4 hosts the
    // checkpoint coordinator, nodes 2-3 stand by as spares.
    let mut world = World::new(5, ClusterParams::default());

    // The application: two processes exchanging a strictly-checked token
    // over a live TCP connection. Neither program knows checkpoints exist.
    let app = PingPongConfig {
        server_ip: IpAddr::from_octets([10, 0, 1, 1]),
        port: 7300,
        rounds: 500,
    };
    let job = JobSpec {
        name: "demo".into(),
        coordinator_node: 4,
        pods: vec![
            PodSpec {
                name: "server".into(),
                ip: app.server_ip,
                mac_mode: MacMode::Dedicated(MacAddr::from_index(2001)),
                node: 0,
                programs: vec![app.server_program()],
            },
            PodSpec {
                name: "client".into(),
                ip: IpAddr::from_octets([10, 0, 1, 2]),
                mac_mode: MacMode::Dedicated(MacAddr::from_index(2002)),
                node: 1,
                programs: vec![app.client_program()],
            },
        ],
    };
    world.launch_job(&job).expect("launch");
    world.run_for(SimDuration::from_millis(10));
    println!("t={} job running, mid-exchange", world.now);

    // Coordinated checkpoint: filters drop in-flight packets, each
    // node saves its pods (live TCP state included), two-phase commit seals the epoch.
    let epoch = world
        .start_checkpoint("demo", ProtocolMode::Blocking, None)
        .expect("checkpoint");
    assert!(world.run_until_op(epoch, 10_000_000));
    let report = world.op_report(epoch).unwrap();
    println!(
        "t={} checkpoint committed: latency {:.2} ms, coordination {:.0} us, {} messages",
        world.now,
        report.stats.checkpoint_latency().unwrap().as_millis_f64(),
        report.coordination_overhead().unwrap().as_micros_f64(),
        report.stats.msgs_sent + report.stats.msgs_received,
    );

    // Disaster: both application nodes fail.
    world.run_for(SimDuration::from_millis(5));
    world.crash_node(0);
    world.crash_node(1);
    println!("t={} nodes 0 and 1 crashed", world.now);

    // Restart the whole job from the committed epoch on the spare nodes.
    let restart = world
        .start_restart(
            "demo",
            epoch,
            &[("server".into(), 2), ("client".into(), 3)],
            ProtocolMode::Blocking,
        )
        .expect("restart");
    assert!(world.run_until_op(restart, 10_000_000));
    println!("t={} job restored on nodes 2 and 3", world.now);

    // The token exchange finishes with every check intact: nothing was
    // lost, duplicated or reordered across the failure.
    assert!(world.run_until_pred(50_000_000, |w| w.job_finished("demo")));
    assert_eq!(world.pod_exit_code("demo", "server", 1), Some(0));
    assert_eq!(world.pod_exit_code("demo", "client", 1), Some(0));
    println!(
        "t={} application completed correctly after crash + restart",
        world.now
    );
}
