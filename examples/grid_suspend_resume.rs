//! Utility-computing resource management: suspend a whole job to shared
//! storage, hand its nodes to someone else, and resume it later — the
//! paper's grid scenario (§1).
//!
//! ```sh
//! cargo run --example grid_suspend_resume
//! ```

use cruz_repro::cluster::{ClusterParams, World};
use cruz_repro::cruz::proto::ProtocolMode;
use cruz_repro::des::SimDuration;
use cruz_repro::workloads::slm::{SlmConfig, ITER_COUNTER_ADDR};

fn iteration(world: &World) -> u64 {
    world
        .peek_guest("batch", "rank0", 1, ITER_COUNTER_ADDR, 8)
        .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
        .unwrap_or(0)
}

fn main() {
    let slm = SlmConfig {
        ranks: 2,
        state_bytes: 4 * 1024 * 1024,
        iters: 200,
        compute_ns: 2_000_000,
        halo_bytes: 4096,
        port: 7100,
        state_step_bytes: 0,
    };
    let mut world = World::new(3, ClusterParams::default());
    world.launch_job(&slm.job_spec("batch", 2)).expect("launch");
    world.run_for(SimDuration::from_millis(120));
    println!(
        "t={} batch job at iteration {}",
        world.now,
        iteration(&world)
    );

    // Suspend: checkpoint to the shared filesystem, then evict the pods.
    let epoch = world
        .start_checkpoint("batch", ProtocolMode::Blocking, None)
        .expect("suspend");
    assert!(world.run_until_op(epoch, 50_000_000));
    for node in [0usize, 1] {
        let zap = world.zap(node);
        let pods = zap.pod_ids();
        for pod in pods {
            let kernel = world.kernel_mut(node);
            zap.destroy_pod(kernel, pod).expect("evict");
        }
        world.kick_node(node);
    }
    let stored: u64 = {
        let store = world.store("batch");
        (0..2)
            .filter_map(|r| store.image_len(&format!("rank{r}"), epoch))
            .sum()
    };
    println!(
        "t={} suspended: {} MB parked on shared storage, nodes are free",
        world.now,
        stored / 1_000_000
    );

    // ... the freed nodes run other tenants for a while ...
    world.run_for(SimDuration::from_secs(5));

    // Resume exactly where it left off, on the same nodes.
    let rs = world
        .start_restart("batch", epoch, &[], ProtocolMode::Blocking)
        .expect("resume");
    assert!(world.run_until_op(rs, 50_000_000));
    println!("t={} resumed at iteration {}", world.now, iteration(&world));

    assert!(world.run_until_pred(200_000_000, |w| w.job_finished("batch")));
    assert_eq!(world.pod_exit_code("batch", "rank0", 1), Some(0));
    assert_eq!(world.pod_exit_code("batch", "rank1", 1), Some(0));
    println!("t={} job finished all 200 iterations", world.now);
}
