//! Fault tolerance: periodic coordinated checkpoints bound how much work a
//! node failure can destroy.
//!
//! ```sh
//! cargo run --example fault_tolerance
//! ```

use cruz_repro::cluster::{ClusterParams, World};
use cruz_repro::cruz::proto::ProtocolMode;
use cruz_repro::des::SimDuration;
use cruz_repro::workloads::slm::{SlmConfig, ITER_COUNTER_ADDR};

fn iteration(world: &World, rank: usize) -> u64 {
    world
        .peek_guest("slm", &format!("rank{rank}"), 1, ITER_COUNTER_ADDR, 8)
        .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
        .unwrap_or(0)
}

fn main() {
    // A four-rank parallel computation with continuous TCP halo exchange.
    let slm = SlmConfig {
        ranks: 4,
        state_bytes: 2 * 1024 * 1024,
        iters: 400,
        compute_ns: 2_000_000,
        halo_bytes: 4096,
        port: 7100,
        state_step_bytes: 0,
    };
    let params = ClusterParams {
        prune_old_epochs: true,
        ..ClusterParams::default()
    };
    // Ranks on nodes 0-3, spares on 4-7, coordinator on node 8.
    let mut world = World::new(9, params);
    world.launch_job(&slm.job_spec("slm", 8)).expect("launch");

    // Checkpoint every 150 ms of execution.
    let mut last_epoch = None;
    for i in 0..3 {
        world.run_for(SimDuration::from_millis(150));
        let op = world
            .start_checkpoint("slm", ProtocolMode::Optimized, None)
            .expect("checkpoint");
        assert!(world.run_until_op(op, 50_000_000));
        println!(
            "t={} checkpoint {} committed at iteration {}",
            world.now,
            i,
            iteration(&world, 0)
        );
        last_epoch = Some(op);
    }

    // All four application nodes fail at once.
    world.run_for(SimDuration::from_millis(60));
    let lost_at = iteration(&world, 0);
    for n in 0..4 {
        world.crash_node(n);
    }
    println!("t={} nodes 0-3 failed at iteration {}", world.now, lost_at);

    // Recover on the spare nodes from the newest committed epoch.
    let epoch = last_epoch.unwrap();
    assert_eq!(world.store("slm").latest_committed_epoch(), Some(epoch));
    let placement: Vec<(String, usize)> = (0..4).map(|r| (format!("rank{r}"), 4 + r)).collect();
    let rs = world
        .start_restart("slm", epoch, &placement, ProtocolMode::Blocking)
        .expect("restart");
    assert!(world.run_until_op(rs, 50_000_000));
    println!(
        "t={} restarted on nodes 4-7 from iteration {}",
        world.now,
        iteration(&world, 0)
    );

    // The computation completes; every rank exits cleanly (the halo
    // exchange would wedge or fail loudly had any byte been lost).
    assert!(world.run_until_pred(200_000_000, |w| w.job_finished("slm")));
    for r in 0..4 {
        assert_eq!(world.pod_exit_code("slm", &format!("rank{r}"), 1), Some(0));
    }
    println!(
        "t={} all 400 iterations done; every rank exited 0",
        world.now
    );
}
