//! Planned maintenance: live-migrate a busy TCP server off a host that
//! needs to go down, without the remote client noticing.
//!
//! ```sh
//! cargo run --example maintenance_migration
//! ```

use cruz_repro::cluster::{ClusterParams, World};
use cruz_repro::des::SimDuration;
use cruz_repro::workloads::streaming::RECV_COUNTER_ADDR;

fn received(world: &World) -> u64 {
    world
        .peek_guest("stream", "receiver", 1, RECV_COUNTER_ADDR, 8)
        .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
        .unwrap_or(0)
}

fn main() {
    let (job, _) = bench::fig6::streaming_job(8 * 1024 * 1024);
    let mut world = World::new(4, ClusterParams::default());
    world.launch_job(&job).expect("launch");

    // The stream runs at gigabit rate between nodes 0 (sender) and 1
    // (receiver).
    world.run_for(SimDuration::from_millis(300));
    let before = received(&world);
    println!(
        "t={} streaming at full rate, {} MB delivered",
        world.now,
        before / 1_000_000
    );

    // Node 1 needs maintenance: migrate the receiver pod to node 2. Its IP
    // and MAC move with it; the sender keeps its connection and simply
    // retransmits what was in flight.
    println!(
        "t={} migrating receiver pod from node 1 to node 2",
        world.now
    );
    let t0 = world.now;
    world.migrate_pod("stream", "receiver", 2).expect("migrate");

    let mut resumed = None;
    let mut last = before;
    for _ in 0..500 {
        world.run_for(SimDuration::from_millis(2));
        let c = received(&world);
        if resumed.is_none() && c > last {
            resumed = Some(world.now.duration_since(t0));
        }
        last = c;
    }
    let pause = resumed.expect("stream must survive the migration");
    println!(
        "t={} stream resumed after a {:.0} ms pause; receiver now on node {}",
        world.now,
        pause.as_millis_f64(),
        world
            .job("stream")
            .unwrap()
            .placement("receiver")
            .unwrap()
            .node
    );
    println!(
        "delivered {} MB more after migration — connection survived intact",
        (last - before) / 1_000_000
    );
    assert!(last > before);
}
