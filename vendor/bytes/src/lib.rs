//! Vendored stand-in for the `bytes` crate.
//!
//! The workspace builds in environments with no crates.io access, so the
//! subset of `bytes` it actually uses is reimplemented here on top of
//! `Arc<[u8]>`: an immutable, cheaply clonable byte buffer. Semantics match
//! the real crate for every operation the workspace performs (construction,
//! cloning, deref to `[u8]`, equality, hashing, ordering, display).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted contiguous byte buffer.
///
/// Cloning is O(1): clones share the underlying allocation.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer (no allocation).
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Wraps a static byte slice.
    pub fn from_static(slice: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(slice),
        }
    }

    /// Copies `slice` into a new buffer.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Bytes {
            data: Arc::from(slice),
        }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// Returns a new `Bytes` holding a copy of the given subrange.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.data.len(),
        };
        Bytes::copy_from_slice(&self.data[start..end])
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.data[..] == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other.data[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (b' '..=b'~').contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
        assert_eq!(&a[..], &[1, 2, 3]);
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![9; 1024]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_ref(), b.as_ref()));
    }

    #[test]
    fn slice_and_to_vec() {
        let a = Bytes::from_static(b"hello world");
        assert_eq!(a.slice(0..5), Bytes::from_static(b"hello"));
        assert_eq!(a.to_vec(), b"hello world".to_vec());
    }

    #[test]
    fn debug_is_printable() {
        let a = Bytes::from_static(b"ok\x01");
        assert_eq!(format!("{a:?}"), "b\"ok\\x01\"");
    }
}
