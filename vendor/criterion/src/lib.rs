//! Vendored stand-in for the `criterion` crate.
//!
//! The workspace builds in environments with no crates.io access, so the
//! benchmark-harness subset it uses is reimplemented here: benchmarks run a
//! short warm-up, then `sample_size` timed samples, and print the median
//! per-iteration time. There is no statistical analysis or HTML report —
//! this exists so `cargo bench` compiles and produces comparable numbers
//! offline. Wall-clock use is confined to this crate and `crates/bench` by
//! design (see the `wall-clock` lint rule).

use std::time::{Duration, Instant};

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, self.measurement_time, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            prefix: name.to_string(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }
}

/// A named group sharing sample-count and time-budget settings.
pub struct BenchmarkGroup<'a> {
    prefix: String,
    sample_size: usize,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark in the group takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total time spent per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.prefix, name);
        run_bench(&full, self.sample_size, self.measurement_time, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Per-benchmark iteration driver.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    budget: Duration,
}

impl Bencher {
    /// Times `f`, once per sample, until the sample count or time budget is
    /// reached.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up run (untimed), then timed samples.
        std::hint::black_box(f());
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t0.elapsed());
            if started.elapsed() > self.budget {
                break;
            }
        }
    }
}

fn run_bench<F>(name: &str, sample_size: usize, budget: Duration, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
        budget,
    };
    f(&mut b);
    b.samples.sort();
    let median = b
        .samples
        .get(b.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    println!(
        "bench {name}: median {median:?} over {} samples",
        b.samples.len()
    );
}

/// Re-export for benchmarks that want an optimization barrier through the
/// criterion path instead of `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u32;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn groups_apply_their_own_settings() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.measurement_time(Duration::from_secs(1));
        let mut runs = 0u32;
        g.bench_function("noop", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 3);
    }
}
