//! `proptest::option::of`.

use std::fmt::Debug;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S>
where
    S::Value: Debug,
{
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Bias toward Some (4:1), matching real proptest's spirit of mostly
        // exercising the populated case.
        if rng.below(5) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// Generates `None` sometimes and `Some(inner)` most of the time.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_variants() {
        let s = of(0u8..10);
        let mut rng = TestRng::for_case(2, 2);
        let draws: Vec<_> = (0..100).map(|_| s.generate(&mut rng)).collect();
        assert!(draws.iter().any(|d| d.is_none()));
        assert!(draws.iter().any(|d| d.is_some()));
    }
}
