//! String strategies from character-class patterns.
//!
//! A `&'static str` used as a strategy is parsed as a tiny regex subset:
//! a sequence of items, where each item is a character class `[...]`
//! (supporting literal characters and `a-z` style ranges) or a literal
//! character, optionally followed by a `{n}` or `{m,n}` repetition. This
//! covers the patterns the workspace's tests use, e.g. `"[a-z0-9:]{1,16}"`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
struct Item {
    choices: Vec<char>,
    min: usize,
    max_inclusive: usize,
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut out = Vec::new();
    let mut prev: Option<char> = None;
    loop {
        let c = chars.next().expect("unterminated character class");
        match c {
            ']' => break,
            '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                let start = prev.take().expect("range start");
                let end = chars.next().expect("range end");
                assert!(start <= end, "descending character range");
                // `start` is already in `out`; append the rest of the range.
                for code in (start as u32 + 1)..=(end as u32) {
                    out.push(char::from_u32(code).expect("valid range char"));
                }
            }
            '\\' => {
                let esc = chars.next().expect("dangling escape");
                out.push(esc);
                prev = Some(esc);
            }
            _ => {
                out.push(c);
                prev = Some(c);
            }
        }
    }
    assert!(!out.is_empty(), "empty character class");
    out
}

fn parse_repeat(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
    if chars.peek() != Some(&'{') {
        return (1, 1);
    }
    chars.next();
    let mut spec = String::new();
    loop {
        let c = chars.next().expect("unterminated repetition");
        if c == '}' {
            break;
        }
        spec.push(c);
    }
    match spec.split_once(',') {
        Some((lo, hi)) => (
            lo.trim().parse().expect("repetition lower bound"),
            hi.trim().parse().expect("repetition upper bound"),
        ),
        None => {
            let n = spec.trim().parse().expect("repetition count");
            (n, n)
        }
    }
}

fn parse_pattern(pattern: &str) -> Vec<Item> {
    let mut chars = pattern.chars().peekable();
    let mut items = Vec::new();
    while let Some(&c) = chars.peek() {
        let choices = if c == '[' {
            chars.next();
            parse_class(&mut chars)
        } else {
            chars.next();
            if c == '\\' {
                vec![chars.next().expect("dangling escape")]
            } else {
                vec![c]
            }
        };
        let (min, max_inclusive) = parse_repeat(&mut chars);
        assert!(min <= max_inclusive, "descending repetition bounds");
        items.push(Item {
            choices,
            min,
            max_inclusive,
        });
    }
    items
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for item in parse_pattern(self) {
            let span = (item.max_inclusive - item.min + 1) as u64;
            let count = item.min + rng.below(span) as usize;
            for _ in 0..count {
                out.push(item.choices[rng.below(item.choices.len() as u64) as usize]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case(3, 3)
    }

    #[test]
    fn class_with_ranges_and_literals() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z0-9:]{1,16}".generate(&mut r);
            assert!((1..=16).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == ':'));
        }
    }

    #[test]
    fn printable_ascii_range() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[ -~]{0,20}".generate(&mut r);
            assert!(s.len() <= 20);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn literal_runs_and_fixed_counts() {
        let mut r = rng();
        let s = "ab[01]{3}".generate(&mut r);
        assert_eq!(s.len(), 5);
        assert!(s.starts_with("ab"));
        assert!(s[2..].chars().all(|c| c == '0' || c == '1'));
    }

    #[test]
    fn slash_in_class_is_literal() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "[a-z/]{1,12}".generate(&mut r);
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == '/'));
        }
    }
}
