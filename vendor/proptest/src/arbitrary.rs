//! `any::<T>()` for the primitive types the workspace generates.

use std::fmt::Debug;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain generation strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.unit_f64() as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        (b' ' + rng.below(95) as u8) as char
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<A> {
    _marker: std::marker::PhantomData<A>,
}

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// Generates unconstrained values of `A`.
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_is_deterministic_per_rng_state() {
        let mut a = TestRng::for_case(9, 3);
        let mut b = TestRng::for_case(9, 3);
        assert_eq!(any::<u64>().generate(&mut a), any::<u64>().generate(&mut b));
        assert_eq!(
            any::<bool>().generate(&mut a),
            any::<bool>().generate(&mut b)
        );
    }
}
