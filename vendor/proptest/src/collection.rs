//! `proptest::collection::vec`.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive-exclusive element-count range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_exclusive: r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_exclusive - self.size.min) as u64;
        let len = self.size.min + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates a `Vec` whose length lies in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_stay_in_range() {
        let s = vec(0u8..10, 2..5);
        let mut rng = TestRng::for_case(1, 1);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
