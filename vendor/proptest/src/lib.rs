//! Vendored stand-in for the `proptest` crate.
//!
//! The workspace builds in environments with no crates.io access, so the
//! strategy/runner subset its property tests use is reimplemented here as a
//! small, fully deterministic generate-and-check engine:
//!
//! * every test's case stream is a pure function of the test's module path
//!   and name, so runs are reproducible across machines and never inject
//!   ambient entropy into the suite;
//! * there is no shrinking — a failing case reports its generated inputs
//!   (all strategies produce `Debug` values) so it can be turned into a
//!   hand-written regression test;
//! * supported surface: `proptest!`, `prop_assert!`, `prop_assert_eq!`,
//!   `prop_oneof!` (weighted and unweighted), `any::<T>()`, integer and
//!   float range strategies, `&str` character-class patterns like
//!   `"[a-z0-9]{1,8}"`, `Just`, `.prop_map`, tuple strategies,
//!   `collection::vec`, `array::uniformN`, and `option::of`.

pub mod arbitrary;
pub mod array;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The glob import every property test starts with.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Declares property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` item becomes a `#[test]`
/// that draws `config.cases` input tuples from the strategies and runs the
/// body on each. The body may use `prop_assert!`/`prop_assert_eq!` (early
/// `Err` returns) or ordinary asserts (panics are caught, inputs printed,
/// and the panic re-raised).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let seed = $crate::test_runner::seed_from_name(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(seed, case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);
                    )+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                                $body;
                                ::core::result::Result::Ok(())
                            },
                        ),
                    );
                    match outcome {
                        ::core::result::Result::Ok(::core::result::Result::Ok(())) => {}
                        ::core::result::Result::Ok(::core::result::Result::Err(e)) => {
                            panic!(
                                "property `{}` failed at case {}: {}\n  inputs: {}",
                                stringify!($name),
                                case,
                                e,
                                inputs
                            );
                        }
                        ::core::result::Result::Err(cause) => {
                            eprintln!(
                                "property `{}` panicked at case {}\n  inputs: {}",
                                stringify!($name),
                                case,
                                inputs
                            );
                            ::std::panic::resume_unwind(cause);
                        }
                    }
                }
            }
        )*
    };
}

/// Fallible assertion: fails the current case without unwinding.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fallible equality assertion: fails the current case without unwinding.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{} (`{:?}` != `{:?}`)",
            format!($($fmt)+),
            __l,
            __r
        );
    }};
}

/// Chooses among several strategies producing the same value type, with
/// optional `weight => strategy` arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
