//! `proptest::array::uniformN` fixed-size array strategies.

use std::fmt::Debug;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy producing `[S::Value; N]` from one element strategy.
pub struct UniformArray<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N>
where
    S::Value: Debug,
{
    type Value = [S::Value; N];

    fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|_| self.element.generate(rng))
    }
}

macro_rules! uniform_fn {
    ($($name:ident => $n:literal),* $(,)?) => {$(
        /// Generates a fixed-size array, each element drawn independently.
        pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
            UniformArray { element }
        }
    )*};
}

uniform_fn! {
    uniform4 => 4,
    uniform5 => 5,
    uniform6 => 6,
    uniform8 => 8,
    uniform16 => 16,
    uniform32 => 32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn arrays_have_fixed_size_and_vary() {
        let mut rng = TestRng::for_case(5, 5);
        let a: [u64; 16] = uniform16(any::<u64>()).generate(&mut rng);
        let b: [u64; 16] = uniform16(any::<u64>()).generate(&mut rng);
        assert_ne!(a, b, "independent draws should differ");
    }
}
