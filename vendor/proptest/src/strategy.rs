//! The `Strategy` trait and the combinators the workspace uses.

use std::fmt::Debug;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree or shrinking: a strategy is
/// just a deterministic function of the per-case RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        T: Debug,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    T: Debug,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice among strategies of one value type (`prop_oneof!`).
pub struct Union<T: Debug> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T: Debug> Union<T> {
    /// Builds a union; panics if no arm has positive weight.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights summed in constructor")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as u64)
                    .wrapping_sub(*self.start() as u64)
                    .wrapping_add(1);
                if span == 0 {
                    // Full-domain range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                self.start().wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::for_case(42, 0)
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3u32..9).generate(&mut r);
            assert!((3..9).contains(&v));
            let w = (1u8..=255).generate(&mut r);
            assert!(w >= 1);
            let f = (0.25f64..0.75).generate(&mut r);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn map_and_just_compose() {
        let mut r = rng();
        let s = Just(21u64).prop_map(|x| x * 2);
        assert_eq!(s.generate(&mut r), 42);
    }

    #[test]
    fn union_honors_weights() {
        let mut r = rng();
        let s = Union::new(vec![(1, Just(false).boxed()), (9, Just(true).boxed())]);
        let trues = (0..1000).filter(|_| s.generate(&mut r)).count();
        assert!(trues > 700, "9:1 weighting, got {trues}/1000 true");
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut r = rng();
        let (a, b) = (0u8..10, Just(7i64)).generate(&mut r);
        assert!(a < 10);
        assert_eq!(b, 7);
    }
}
