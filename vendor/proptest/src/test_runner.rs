//! Deterministic case generation and failure reporting.

use std::fmt;

/// Per-test configuration. Only the case count is meaningful here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of input tuples generated and checked per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed `prop_assert!`-style check.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Derives a per-test base seed from the fully qualified test name
/// (FNV-1a), so each property gets its own stable case stream.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The generator handed to strategies: SplitMix64, seeded from the test
/// name and case index only. No ambient entropy, ever.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for one (test, case) pair.
    pub fn for_case(base_seed: u64, case: u32) -> Self {
        TestRng {
            state: base_seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Debiased multiply-shift.
        let mut m = (self.next_u64() as u128).wrapping_mul(n as u128);
        if (m as u64) < n {
            let threshold = n.wrapping_neg() % n;
            while (m as u64) < threshold {
                m = (self.next_u64() as u128).wrapping_mul(n as u128);
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(seed_from_name("a::b"), seed_from_name("a::b"));
        assert_ne!(seed_from_name("a::b"), seed_from_name("a::c"));
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = TestRng::for_case(1, 0);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
