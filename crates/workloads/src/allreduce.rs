//! A ring all-reduce over TCP — the MPI-collective-style communication
//! pattern the paper's "works for MPI applications without modifying the
//! library" claim is about. Every rank contributes a value; after a reduce
//! pass and a broadcast pass around the ring, every rank holds the global
//! sum and exits with it, so any byte lost or duplicated across a
//! checkpoint breaks the exit code.

use simcpu::asm::Asm;
use simcpu::isa::{R1, R11, R12, R6, R7, R8, R9};
use simnet::addr::{IpAddr, MacAddr};
use simos::guest::AsmOs;
use simos::program::{Program, CODE_BASE, DATA_BASE};
use simos::syscall::nr;
use zap::image::MacMode;

use crate::common::{emit_accept, emit_connect_retry, emit_listen, emit_recv_exact, emit_send_all};

/// Guest address of the 8-byte message buffer.
const MSG: i64 = DATA_BASE as i64 + 0x100;
/// Guest address of the completed-rounds counter.
pub const ROUND_COUNTER_ADDR: u64 = DATA_BASE;

/// Configuration of a ring all-reduce job.
#[derive(Debug, Clone)]
pub struct AllReduceConfig {
    /// Ranks in the ring.
    pub ranks: usize,
    /// Collective rounds to run.
    pub rounds: u64,
    /// TCP port of the ring links.
    pub port: u16,
}

impl AllReduceConfig {
    /// The contribution of a rank.
    pub fn value_of(rank: usize) -> u64 {
        (rank as u64 + 1) * 10
    }

    /// The expected global sum (every rank's exit code).
    pub fn expected_total(&self) -> u64 {
        (1..=self.ranks as u64).map(|r| r * 10).sum()
    }

    /// The pod IP of a rank.
    pub fn rank_ip(&self, rank: usize) -> IpAddr {
        IpAddr::from_octets([10, 0, 2, (rank + 1) as u8])
    }

    /// The guest program of one rank.
    ///
    /// # Panics
    ///
    /// Panics on a ring of fewer than two ranks.
    pub fn rank_program(&self, rank: usize) -> Program {
        assert!(self.ranks >= 2, "a ring needs at least two ranks");
        let right = self.rank_ip((rank + 1) % self.ranks);
        let own = Self::value_of(rank) as i64;
        let mut a = Asm::new(CODE_BASE);
        let fail = a.label();
        let mismatch = a.label();
        // r6 = listen fd, r7 = right fd, r8 = left fd, r9 = round,
        // r11 = scratch value, r12 = pointer scratch.
        emit_listen(&mut a, self.port, R6);
        a.sys1(nr::SLEEP, 2_000_000);
        emit_connect_retry(&mut a, right, self.port, R7);
        emit_accept(&mut a, R6, R8);
        a.movi(R9, 0);
        let round_top = a.label();
        a.bind(round_top);
        if rank == 0 {
            // Reduce: seed the ring with our value...
            a.movi(R12, MSG);
            a.movi(R11, own);
            a.st(R12, R11, 0);
            emit_send_all(&mut a, R7, MSG, 8, fail);
            // ...and collect the global sum from the left.
            emit_recv_exact(&mut a, R8, MSG, 8, fail);
            // Broadcast it, then absorb the echo.
            emit_send_all(&mut a, R7, MSG, 8, fail);
            a.movi(R12, MSG);
            a.ld(R11, R12, 0); // the total
            emit_recv_exact(&mut a, R8, MSG, 8, fail);
            a.movi(R12, MSG);
            a.ld(R12, R12, 0);
            a.cmp_ne_jump(R11, R12, mismatch);
        } else {
            // Reduce: add our value to the partial sum passing through.
            emit_recv_exact(&mut a, R8, MSG, 8, fail);
            a.movi(R12, MSG);
            a.ld(R11, R12, 0);
            a.addi(R11, R11, own);
            a.st(R12, R11, 0);
            emit_send_all(&mut a, R7, MSG, 8, fail);
            // Broadcast: receive the total and forward it.
            emit_recv_exact(&mut a, R8, MSG, 8, fail);
            a.movi(R12, MSG);
            a.ld(R11, R12, 0); // the total
            emit_send_all(&mut a, R7, MSG, 8, fail);
        }
        // Round bookkeeping (r11 holds this round's total).
        a.addi(R9, R9, 1);
        a.movi(R12, ROUND_COUNTER_ADDR as i64);
        a.st(R12, R9, 0);
        a.movi(simcpu::isa::R5, self.rounds as i64);
        a.cltu(simcpu::isa::R14, R9, simcpu::isa::R5);
        a.jnz(simcpu::isa::R14, round_top);
        a.mov(R1, R11);
        a.sys(nr::EXIT); // exit(total)
        a.bind(mismatch);
        a.sys1(nr::EXIT, 7);
        a.bind(fail);
        a.sys1(nr::EXIT, 9);
        Program::from_asm(&a)
            .expect("allreduce rank assembles")
            .with_data(DATA_BASE, vec![0u8; 0x1000])
    }

    /// The job spec: rank `i` on node `i`, coordinator on
    /// `coordinator_node`.
    pub fn job_spec(&self, name: &str, coordinator_node: usize) -> cluster::JobSpec {
        let pods = (0..self.ranks)
            .map(|r| cluster::PodSpec {
                name: format!("rank{r}"),
                ip: self.rank_ip(r),
                mac_mode: MacMode::Dedicated(MacAddr::from_index(2200 + r as u32)),
                node: r,
                programs: vec![self.rank_program(r)],
            })
            .collect();
        cluster::JobSpec {
            name: name.to_owned(),
            pods,
            coordinator_node,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_programs() {
        let cfg = AllReduceConfig {
            ranks: 4,
            rounds: 3,
            port: 7400,
        };
        assert_eq!(cfg.expected_total(), 100);
        for r in 0..4 {
            assert!(!cfg.rank_program(r).code.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "at least two ranks")]
    fn tiny_ring_rejected() {
        let cfg = AllReduceConfig {
            ranks: 1,
            rounds: 1,
            port: 7400,
        };
        let _ = cfg.rank_program(0);
    }
}
