//! A CPU-bound microbenchmark for the runtime-overhead experiment (§6: the
//! virtualization layer costs < 0.5 %).

use simcpu::asm::Asm;
use simcpu::isa::{R1, R6, R7, R8};
use simos::guest::AsmOs;
use simos::program::{Program, CODE_BASE};
use simos::syscall::nr;

/// Configuration of the compute microbenchmark.
#[derive(Debug, Clone, Copy)]
pub struct ComputeConfig {
    /// Outer iterations; each issues one `getpid` syscall (the interposed
    /// path) and runs the inner arithmetic loop.
    pub outer: u64,
    /// Inner arithmetic iterations per outer step.
    pub inner: u64,
}

impl Default for ComputeConfig {
    fn default() -> Self {
        ComputeConfig {
            outer: 1_000,
            inner: 1_000,
        }
    }
}

impl ComputeConfig {
    /// The program: `outer` rounds of (`inner` adds + one `getpid`), then
    /// exit with an accumulator-derived code so the work cannot be elided.
    pub fn program(&self) -> Program {
        let mut a = Asm::new(CODE_BASE);
        a.movi(R6, 0); // acc
        a.movi(R7, 0); // outer counter
        let outer_top = a.label();
        a.bind(outer_top);
        a.movi(R8, 0);
        let inner_top = a.label();
        a.bind(inner_top);
        a.add(R6, R6, R8);
        a.addi(R8, R8, 1);
        a.movi(simcpu::isa::R5, self.inner as i64);
        a.cltu(simcpu::isa::R14, R8, simcpu::isa::R5);
        a.jnz(simcpu::isa::R14, inner_top);
        a.sys(nr::GETPID); // the syscall path the hook intercepts
        a.addi(R7, R7, 1);
        a.movi(simcpu::isa::R5, self.outer as i64);
        a.cltu(simcpu::isa::R14, R7, simcpu::isa::R5);
        a.jnz(simcpu::isa::R14, outer_top);
        a.remi(R1, R6, 251);
        a.sys(nr::EXIT);
        Program::from_asm(&a).expect("compute benchmark assembles")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles() {
        assert!(!ComputeConfig::default().program().code.is_empty());
    }
}
