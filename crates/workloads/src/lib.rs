//! Guest benchmark programs for the Cruz reproduction.
//!
//! Everything here is an ordinary application for the simulated OS — built
//! with the `simcpu` assembler, speaking the `simos` syscall ABI, with *no*
//! checkpoint awareness whatsoever (that is the point of the paper):
//!
//! * [`slm`] — the parallel atmospheric-model stand-in used for Figs. 5(a)
//!   and 5(b): a ring of ranks with a large resident state and a
//!   nearest-neighbour TCP halo exchange per timestep;
//! * [`streaming`] — the maximum-rate TCP stream of Fig. 6;
//! * [`pingpong`] — a token round-trip pair whose lock-step token values
//!   make any lost/duplicated/reordered byte after a checkpoint or restart
//!   immediately visible;
//! * [`allreduce`] — a ring all-reduce collective, the MPI-style pattern
//!   behind the paper's "general TCP-based applications (including MPI and
//!   PVM applications)" claim;
//! * [`compute`] — the CPU-bound microbenchmark behind the < 0.5 %
//!   virtualization-overhead claim;
//! * [`common`] — shared assembly idioms (listen/accept/connect-with-retry,
//!   exact-count send/receive loops).

#![warn(missing_docs)]

pub mod allreduce;
pub mod common;
pub mod compute;
pub mod pingpong;
pub mod slm;
pub mod streaming;

pub use allreduce::AllReduceConfig;
pub use compute::ComputeConfig;
pub use pingpong::PingPongConfig;
pub use slm::SlmConfig;
pub use streaming::StreamingConfig;
