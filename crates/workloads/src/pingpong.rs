//! A two-pod token exchange: the strictest correctness check for
//! checkpoint/restart under live traffic — every round trip must survive,
//! exactly once, in order.

use simcpu::asm::Asm;
use simcpu::isa::{R11, R6, R7, R8, R9};
use simnet::addr::IpAddr;
use simos::guest::AsmOs;
use simos::program::{Program, CODE_BASE, DATA_BASE};
use simos::syscall::nr;

use crate::common::{emit_accept, emit_connect_retry, emit_listen, emit_recv_exact, emit_send_all};

/// Guest address of the 8-byte token buffer.
const TOKEN: i64 = DATA_BASE as i64 + 0x100;
/// Guest address of the round-trip progress counter.
pub const ROUND_COUNTER_ADDR: u64 = DATA_BASE;

/// Configuration of a ping-pong pair.
#[derive(Debug, Clone)]
pub struct PingPongConfig {
    /// The server pod's IP.
    pub server_ip: IpAddr,
    /// TCP port.
    pub port: u16,
    /// Number of round trips.
    pub rounds: u64,
}

impl PingPongConfig {
    /// The server: accepts, then for each round receives the 8-byte token,
    /// verifies it equals the round number, increments it and sends it
    /// back. Exits 0 on success, 7 on a token mismatch.
    pub fn server_program(&self) -> Program {
        let mut a = Asm::new(CODE_BASE);
        let fail = a.label();
        let mismatch = a.label();
        emit_listen(&mut a, self.port, R6);
        emit_accept(&mut a, R6, R7);
        a.movi(R9, 0); // round
        let top = a.label();
        a.bind(top);
        emit_recv_exact(&mut a, R7, TOKEN, 8, fail);
        // token must equal 2*round (client sends even values).
        a.movi(R8, TOKEN);
        a.ld(R11, R8, 0);
        a.mov(R8, R9);
        a.muli(R8, R8, 2);
        a.cmp_ne_jump(R11, R8, mismatch);
        // reply with token+1
        a.addi(R11, R11, 1);
        a.movi(R8, TOKEN);
        a.st(R8, R11, 0);
        emit_send_all(&mut a, R7, TOKEN, 8, fail);
        a.addi(R9, R9, 1);
        a.movi(R8, ROUND_COUNTER_ADDR as i64);
        a.st(R8, R9, 0);
        a.movi(simcpu::isa::R5, self.rounds as i64);
        a.cltu(simcpu::isa::R14, R9, simcpu::isa::R5);
        a.jnz(simcpu::isa::R14, top);
        a.sys1(nr::EXIT, 0);
        a.bind(mismatch);
        a.sys1(nr::EXIT, 7);
        a.bind(fail);
        a.sys1(nr::EXIT, 9);
        Program::from_asm(&a)
            .expect("pingpong server assembles")
            .with_data(DATA_BASE, vec![0u8; 0x1000])
    }

    /// The client: connects, then for each round sends `2*round` and
    /// expects `2*round + 1` back. Exits 0 on success, 7 on mismatch.
    pub fn client_program(&self) -> Program {
        let mut a = Asm::new(CODE_BASE);
        let fail = a.label();
        let mismatch = a.label();
        emit_connect_retry(&mut a, self.server_ip, self.port, R7);
        a.movi(R9, 0);
        let top = a.label();
        a.bind(top);
        // send 2*round
        a.mov(R11, R9);
        a.muli(R11, R11, 2);
        a.movi(R8, TOKEN);
        a.st(R8, R11, 0);
        emit_send_all(&mut a, R7, TOKEN, 8, fail);
        emit_recv_exact(&mut a, R7, TOKEN, 8, fail);
        // expect 2*round + 1
        a.movi(R8, TOKEN);
        a.ld(R11, R8, 0);
        a.mov(R8, R9);
        a.muli(R8, R8, 2);
        a.addi(R8, R8, 1);
        a.cmp_ne_jump(R11, R8, mismatch);
        a.addi(R9, R9, 1);
        a.movi(R8, ROUND_COUNTER_ADDR as i64);
        a.st(R8, R9, 0);
        a.movi(simcpu::isa::R5, self.rounds as i64);
        a.cltu(simcpu::isa::R14, R9, simcpu::isa::R5);
        a.jnz(simcpu::isa::R14, top);
        a.sys1(nr::EXIT, 0);
        a.bind(mismatch);
        a.sys1(nr::EXIT, 7);
        a.bind(fail);
        a.sys1(nr::EXIT, 9);
        Program::from_asm(&a)
            .expect("pingpong client assembles")
            .with_data(DATA_BASE, vec![0u8; 0x1000])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programs_assemble() {
        let cfg = PingPongConfig {
            server_ip: IpAddr::from_octets([10, 0, 1, 1]),
            port: 7300,
            rounds: 100,
        };
        assert!(!cfg.server_program().code.is_empty());
        assert!(!cfg.client_program().code.is_empty());
    }
}
