//! The TCP streaming benchmark (paper §6, Fig. 6): one node sends data to
//! another at maximum rate.

use simcpu::asm::Asm;
use simcpu::isa::{R0, R1, R2, R3, R6, R7, R8, R9};
use simnet::addr::IpAddr;
use simos::guest::AsmOs;
use simos::program::{Program, CODE_BASE, DATA_BASE};
use simos::syscall::nr;

use crate::common::{emit_accept, emit_connect_retry, emit_listen};

/// Guest address of the receiver's cumulative byte counter; benchmarks
/// sample it from the host to compute the received-rate timeline.
pub const RECV_COUNTER_ADDR: u64 = DATA_BASE;

/// Guest address of the transfer buffer both sides use.
const BUF_ADDR: i64 = DATA_BASE as i64 + 0x1_0000;

/// Size of each send/recv call.
const CHUNK: i64 = 64 * 1024;

/// Guest address of the resident filler state.
const STATE_ADDR: u64 = 0x0300_0000;

fn filler(state_bytes: u64) -> Vec<u8> {
    (0..state_bytes).map(|i| (i % 249) as u8 | 1).collect()
}

/// Configuration of a streaming pair.
#[derive(Debug, Clone)]
pub struct StreamingConfig {
    /// Receiver pod IP (the sender connects to it).
    pub receiver_ip: IpAddr,
    /// TCP port.
    pub port: u16,
    /// Total bytes the sender transmits before closing; `None` streams
    /// forever.
    pub total_bytes: Option<u64>,
    /// Extra resident (non-zero) state each side carries, so checkpoints
    /// have realistic application payloads (sets the Fig. 6 checkpoint
    /// window).
    pub state_bytes: u64,
}

impl StreamingConfig {
    /// The sender program: connect, then send as fast as the socket accepts.
    pub fn sender_program(&self) -> Program {
        let mut a = Asm::new(CODE_BASE);
        emit_connect_retry(&mut a, self.receiver_ip, self.port, R6);
        // r7 = bytes remaining (or effectively infinite).
        a.movi(R7, self.total_bytes.map(|b| b as i64).unwrap_or(i64::MAX));
        let top = a.label();
        let done = a.label();
        a.bind(top);
        a.mov(R1, R6);
        a.movi(R2, BUF_ADDR);
        // chunk = min(CHUNK, remaining)
        a.movi(R3, CHUNK);
        a.cltu(simcpu::isa::R14, R7, R3);
        let use_chunk = a.label();
        a.jz(simcpu::isa::R14, use_chunk);
        a.mov(R3, R7);
        a.bind(use_chunk);
        a.sys(nr::SEND);
        // error → exit(9)
        a.movi(R8, 1);
        a.clts(simcpu::isa::R14, R0, R8);
        let fail = a.label();
        a.jnz(simcpu::isa::R14, fail);
        a.sub(R7, R7, R0);
        a.jnz(R7, top);
        a.jmp(done);
        a.bind(fail);
        a.sys1(nr::EXIT, 9);
        a.bind(done);
        a.mov(R1, R6);
        a.sys(nr::CLOSE);
        a.sys1(nr::EXIT, 0);
        Program::from_asm(&a)
            .expect("streaming sender assembles")
            .with_data(DATA_BASE, vec![0u8; 0x1_0000])
            .with_data(BUF_ADDR as u64, vec![0x5a; CHUNK as usize])
            .with_data(STATE_ADDR, filler(self.state_bytes))
    }

    /// The receiver program: accept, then drain the stream, maintaining the
    /// cumulative byte counter at [`RECV_COUNTER_ADDR`]. Exits 0 on orderly
    /// EOF.
    pub fn receiver_program(&self) -> Program {
        let mut a = Asm::new(CODE_BASE);
        emit_listen(&mut a, self.port, R6);
        emit_accept(&mut a, R6, R7);
        a.movi(R8, 0); // cumulative bytes
        a.movi(R9, RECV_COUNTER_ADDR as i64);
        let top = a.label();
        let eof = a.label();
        a.bind(top);
        a.mov(R1, R7);
        a.movi(R2, BUF_ADDR);
        a.movi(R3, CHUNK);
        a.sys(nr::RECV);
        a.jz(R0, eof);
        // error → exit(9)
        a.movi(R2, 1);
        a.clts(simcpu::isa::R14, R0, R2);
        let fail = a.label();
        a.jnz(simcpu::isa::R14, fail);
        a.add(R8, R8, R0);
        a.st(R9, R8, 0);
        a.jmp(top);
        a.bind(fail);
        a.sys1(nr::EXIT, 9);
        a.bind(eof);
        a.sys1(nr::EXIT, 0);
        Program::from_asm(&a)
            .expect("streaming receiver assembles")
            .with_data(DATA_BASE, vec![0u8; 0x1_0000])
            .with_data(BUF_ADDR as u64, vec![0u8; CHUNK as usize])
            .with_data(STATE_ADDR, filler(self.state_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programs_assemble() {
        let cfg = StreamingConfig {
            receiver_ip: IpAddr::from_octets([10, 0, 1, 2]),
            port: 7200,
            total_bytes: Some(1_000_000),
            state_bytes: 4096,
        };
        let s = cfg.sender_program();
        let r = cfg.receiver_program();
        assert!(!s.code.is_empty());
        assert!(!r.code.is_empty());
        assert!(s.initialized_bytes() > CHUNK as usize);
    }
}
