//! The `slm` benchmark stand-in: a bulk-synchronous parallel computation
//! with nearest-neighbour exchange over TCP, modelled on the paper's
//! semi-Lagrangian atmospheric model (§6).
//!
//! Each rank holds a large resident state array (which dominates the
//! checkpoint image, as in the paper), and per timestep: dirties a rotating
//! window of that state, "computes" for a configurable interval, then
//! exchanges a halo with its ring neighbours. Compute is modelled as a
//! sleep so that simulated runs of hundreds of timesteps stay tractable;
//! see `EXPERIMENTS.md` for the calibration argument.

use simcpu::asm::Asm;
use simcpu::isa::{R11, R12, R13, R5, R6, R7, R8, R9};
use simnet::addr::{IpAddr, MacAddr};
use simos::guest::AsmOs;
use simos::mem::PAGE_SIZE;
use simos::program::{Program, CODE_BASE, DATA_BASE};
use simos::syscall::nr;
use zap::image::MacMode;

use crate::common::{emit_accept, emit_connect_retry, emit_listen, emit_recv_exact, emit_send_all};

/// Guest address of the resident state array.
pub const STATE_BASE: u64 = 0x0200_0000;
/// Guest address of the outgoing halo buffer.
const SEND_BUF: i64 = DATA_BASE as i64 + 0x2_0000;
/// Guest address of the incoming halo buffer.
const RECV_BUF: i64 = DATA_BASE as i64 + 0x4_0000;
/// Guest address of the iteration-progress counter (sampled by benches).
pub const ITER_COUNTER_ADDR: u64 = DATA_BASE;

/// Configuration of one slm run.
#[derive(Debug, Clone)]
pub struct SlmConfig {
    /// Number of ranks (pods) in the ring.
    pub ranks: usize,
    /// Resident state bytes per rank (the checkpoint payload).
    pub state_bytes: u64,
    /// Number of timesteps.
    pub iters: u64,
    /// Modelled compute time per timestep, in nanoseconds.
    pub compute_ns: u64,
    /// Halo bytes exchanged with each neighbour per timestep.
    pub halo_bytes: u64,
    /// Base TCP port for ring links.
    pub port: u16,
    /// Extra state bytes per rank index (rank r holds `state_bytes +
    /// r * state_step_bytes`); non-zero values make local save times
    /// heterogeneous, which is what the Fig. 4 optimization exploits.
    pub state_step_bytes: u64,
}

impl Default for SlmConfig {
    fn default() -> Self {
        SlmConfig {
            ranks: 2,
            state_bytes: 4 * 1024 * 1024,
            iters: 50,
            compute_ns: 5_000_000, // 5 ms per timestep
            halo_bytes: 8 * 1024,
            port: 7100,
            state_step_bytes: 0,
        }
    }
}

impl SlmConfig {
    /// The pod IP of a rank.
    pub fn rank_ip(&self, rank: usize) -> IpAddr {
        IpAddr::from_octets([10, 0, 1, (rank + 1) as u8])
    }

    /// The program of one rank.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero ranks, halo larger
    /// than the scratch buffers).
    pub fn rank_program(&self, rank: usize) -> Program {
        assert!(self.ranks >= 2, "the ring needs at least two ranks");
        assert!(rank < self.ranks, "rank out of range");
        assert!(self.halo_bytes <= 0x2_0000, "halo exceeds scratch buffers");
        let right = self.rank_ip((rank + 1) % self.ranks);
        let halo = self.halo_bytes as i64;
        let rank_state = self.state_bytes + rank as u64 * self.state_step_bytes;
        let pages = (rank_state / PAGE_SIZE).max(1);
        // Dirty 16 pages per timestep, rotating through the state.
        let pages_per_step: i64 = 16.min(pages as i64);
        let windows = (pages / pages_per_step as u64).max(1) as i64;

        let mut a = Asm::new(CODE_BASE);
        let fail = a.label();
        // r6 = listen fd, r7 = right fd, r8 = left fd, r9 = iter.
        emit_listen(&mut a, self.port, R6);
        a.sys1(nr::SLEEP, 2_000_000); // let every rank reach listen
        emit_connect_retry(&mut a, right, self.port, R7);
        emit_accept(&mut a, R6, R8);
        a.movi(R9, 0);
        let iter_top = a.label();
        a.bind(iter_top);
        {
            // Window base: STATE_BASE + (iter % windows) * pages_per_step * 4096.
            a.mov(R11, R9);
            a.remi(R11, R11, windows);
            a.muli(R11, R11, pages_per_step * PAGE_SIZE as i64);
            a.addi(R11, R11, STATE_BASE as i64);
            // Dirty the window: one store per page plus a little FP work.
            a.movi(R12, 0);
            let touch = a.label();
            a.bind(touch);
            a.mov(R13, R12);
            a.shli(R13, R13, 12);
            a.add(R13, R13, R11);
            a.st(R13, R9, 0);
            a.addi(R12, R12, 1);
            a.movi(R5, pages_per_step);
            a.cltu(simcpu::isa::R14, R12, R5);
            a.jnz(simcpu::isa::R14, touch);
            // FP: state[0] = sqrt(state[0] * 1.5 + iter)
            a.ld(R13, R11, 0);
            a.i2f(R12, R9);
            a.fadd(R13, R13, R12);
            a.fsqrt(R13, R13);
            a.st(R11, R13, 0);
        }
        // Modelled compute interval.
        a.sys1(nr::SLEEP, self.compute_ns as i64);
        // Halo exchange: send right, receive from left.
        emit_send_all(&mut a, R7, SEND_BUF, halo, fail);
        emit_recv_exact(&mut a, R8, RECV_BUF, halo, fail);
        // Progress counter for external observation.
        a.addi(R9, R9, 1);
        a.movi(R12, ITER_COUNTER_ADDR as i64);
        a.st(R12, R9, 0);
        a.movi(R5, self.iters as i64);
        a.cltu(simcpu::isa::R14, R9, R5);
        a.jnz(simcpu::isa::R14, iter_top);
        a.sys1(nr::EXIT, 0);
        a.bind(fail);
        a.sys1(nr::EXIT, 9);

        // Non-zero resident state so the checkpoint really carries it.
        let state: Vec<u8> = (0..rank_state).map(|i| (i % 251) as u8 | 1).collect();
        Program::from_asm(&a)
            .expect("slm rank assembles")
            .with_data(DATA_BASE, vec![0u8; 0x1000])
            .with_data(SEND_BUF as u64, vec![0x33; self.halo_bytes as usize])
            .with_data(RECV_BUF as u64, vec![0u8; self.halo_bytes as usize])
            .with_data(STATE_BASE, state)
    }

    /// Builds the job spec placing rank `i` on node `i`, coordinator on
    /// `coordinator_node`.
    pub fn job_spec(&self, name: &str, coordinator_node: usize) -> cluster::JobSpec {
        let pods = (0..self.ranks)
            .map(|r| cluster::PodSpec {
                name: format!("rank{r}"),
                ip: self.rank_ip(r),
                mac_mode: MacMode::Dedicated(MacAddr::from_index(2000 + r as u32)),
                node: r,
                programs: vec![self.rank_program(r)],
            })
            .collect();
        cluster::JobSpec {
            name: name.to_owned(),
            pods,
            coordinator_node,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_programs_assemble_for_various_ring_sizes() {
        for ranks in [2, 4, 8] {
            let cfg = SlmConfig {
                ranks,
                state_bytes: 64 * 1024,
                ..SlmConfig::default()
            };
            for r in 0..ranks {
                let p = cfg.rank_program(r);
                assert!(p.initialized_bytes() as u64 >= cfg.state_bytes);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least two ranks")]
    fn single_rank_rejected() {
        let cfg = SlmConfig {
            ranks: 1,
            ..SlmConfig::default()
        };
        let _ = cfg.rank_program(0);
    }

    #[test]
    fn job_spec_places_one_rank_per_node() {
        let cfg = SlmConfig {
            ranks: 4,
            state_bytes: 4096,
            ..SlmConfig::default()
        };
        let spec = cfg.job_spec("slm", 4);
        assert_eq!(spec.pods.len(), 4);
        assert_eq!(spec.coordinator_node, 4);
        for (i, p) in spec.pods.iter().enumerate() {
            assert_eq!(p.node, i);
            assert_eq!(p.ip, cfg.rank_ip(i));
        }
    }
}
