//! Shared assembly idioms for guest networking programs.
//!
//! Register conventions: these emitters clobber `r0`–`r5`, `r10` and `r14`
//! (the assembler's scratch). Callers keep long-lived values in `r6`–`r9`
//! and `r11`–`r13`.

use simcpu::asm::Asm;
use simcpu::isa::{Reg, R0, R1, R10, R2, R3, R4, R5};
use simnet::addr::IpAddr;
use simos::guest::AsmOs;
use simos::syscall::nr;

/// Emits: create a TCP socket, bind `ANY:port` (the pod interposer rewrites
/// the address), listen. Leaves the listening fd in `lfd`.
pub fn emit_listen(a: &mut Asm, port: u16, lfd: Reg) {
    a.sys1(nr::SOCKET, 0);
    a.mov(lfd, R0);
    a.mov(R1, lfd);
    a.movi(R2, 0);
    a.movi(R3, port as i64);
    a.sys(nr::BIND);
    a.mov(R1, lfd);
    a.movi(R2, 4);
    a.sys(nr::LISTEN);
}

/// Emits: accept one connection on `lfd`, leaving the connection fd in
/// `cfd`.
pub fn emit_accept(a: &mut Asm, lfd: Reg, cfd: Reg) {
    a.mov(R1, lfd);
    a.sys(nr::ACCEPT);
    a.mov(cfd, R0);
}

/// Emits: connect to `ip:port` with retry on refusal (the server may not be
/// listening yet). Leaves the connected fd in `fd`.
pub fn emit_connect_retry(a: &mut Asm, ip: IpAddr, port: u16, fd: Reg) {
    let retry = a.label();
    a.bind(retry);
    a.sys1(nr::SOCKET, 0);
    a.mov(fd, R0);
    a.mov(R1, fd);
    a.movi(R2, ip.to_bits() as i64);
    a.movi(R3, port as i64);
    a.sys(nr::CONNECT);
    // Success: r0 == 0.
    let ok = a.label();
    a.jz(R0, ok);
    // Failure: close, nap, retry.
    a.mov(R1, fd);
    a.sys(nr::CLOSE);
    a.sys1(nr::SLEEP, 1_000_000);
    a.jmp(retry);
    a.bind(ok);
}

/// Emits: send exactly `count` bytes from `buf` on `fd`, looping over
/// partial sends. Jumps to `fail` on error.
pub fn emit_send_all(a: &mut Asm, fd: Reg, buf: i64, count: i64, fail: simcpu::asm::Label) {
    a.movi(R10, 0); // bytes sent
    let top = a.label();
    let done = a.label();
    a.bind(top);
    a.mov(R1, fd);
    a.movi(R2, buf);
    a.add(R2, R2, R10);
    a.movi(R3, count);
    a.sub(R3, R3, R10);
    a.sys(nr::SEND);
    // r0 <= 0 (signed) means error.
    a.movi(R5, 1);
    a.clts(simcpu::isa::R14, R0, R5);
    a.jnz(simcpu::isa::R14, fail);
    a.add(R10, R10, R0);
    a.movi(R5, count);
    a.cltu(simcpu::isa::R14, R10, R5);
    a.jnz(simcpu::isa::R14, top);
    a.jmp(done);
    a.bind(done);
}

/// Emits: receive exactly `count` bytes into `buf` from `fd`, looping over
/// partial reads. Jumps to `fail` on EOF or error.
pub fn emit_recv_exact(a: &mut Asm, fd: Reg, buf: i64, count: i64, fail: simcpu::asm::Label) {
    a.movi(R10, 0);
    let top = a.label();
    let done = a.label();
    a.bind(top);
    a.mov(R1, fd);
    a.movi(R2, buf);
    a.add(R2, R2, R10);
    a.movi(R3, count);
    a.sub(R3, R3, R10);
    a.sys(nr::RECV);
    a.movi(R5, 1);
    a.clts(simcpu::isa::R14, R0, R5);
    a.jnz(simcpu::isa::R14, fail);
    a.add(R10, R10, R0);
    a.movi(R5, count);
    a.cltu(simcpu::isa::R14, R10, R5);
    a.jnz(simcpu::isa::R14, top);
    a.jmp(done);
    a.bind(done);
}

/// Emits a `fail:`-style epilogue: binds `fail` and exits with `code`.
pub fn emit_fail_exit(a: &mut Asm, fail: simcpu::asm::Label, code: i64) {
    a.bind(fail);
    a.sys1(nr::EXIT, code);
}

/// Suppresses unused warnings for emitters' conventional scratch registers.
#[allow(dead_code)]
fn _scratch() -> [Reg; 3] {
    [R4, R10, R0]
}
