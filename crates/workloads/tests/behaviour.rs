//! Behavioural tests of the workload programs on a real cluster: each
//! benchmark must do exactly what its harness assumes.

use cluster::{ClusterParams, JobSpec, PodSpec, World};
use des::SimDuration;
use simnet::addr::{IpAddr, MacAddr};
use workloads::pingpong::{PingPongConfig, ROUND_COUNTER_ADDR};
use workloads::slm::{SlmConfig, ITER_COUNTER_ADDR};
use workloads::streaming::{StreamingConfig, RECV_COUNTER_ADDR};
use zap::image::MacMode;

fn counter(w: &World, job: &str, pod: &str, addr: u64) -> u64 {
    w.peek_guest(job, pod, 1, addr, 8)
        .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
        .unwrap_or(0)
}

#[test]
fn streaming_transfers_exactly_total_bytes() {
    let total = 3_333_333u64;
    let cfg = StreamingConfig {
        receiver_ip: IpAddr::from_octets([10, 0, 1, 2]),
        port: 7200,
        total_bytes: Some(total),
        state_bytes: 4096,
    };
    let spec = JobSpec {
        name: "stream".into(),
        coordinator_node: 2,
        pods: vec![
            PodSpec {
                name: "sender".into(),
                ip: IpAddr::from_octets([10, 0, 1, 1]),
                mac_mode: MacMode::Dedicated(MacAddr::from_index(2101)),
                node: 0,
                programs: vec![cfg.sender_program()],
            },
            PodSpec {
                name: "receiver".into(),
                ip: cfg.receiver_ip,
                mac_mode: MacMode::Dedicated(MacAddr::from_index(2102)),
                node: 1,
                programs: vec![cfg.receiver_program()],
            },
        ],
    };
    let mut w = World::new(3, ClusterParams::default());
    w.launch_job(&spec).unwrap();
    assert!(w.run_until_pred(20_000_000, |w| w.job_finished("stream")));
    assert_eq!(w.pod_exit_code("stream", "sender", 1), Some(0));
    assert_eq!(
        w.pod_exit_code("stream", "receiver", 1),
        Some(0),
        "receiver sees orderly EOF"
    );
    assert_eq!(
        counter(&w, "stream", "receiver", RECV_COUNTER_ADDR),
        total,
        "every byte delivered exactly once"
    );
}

#[test]
fn streaming_rate_is_near_line_rate() {
    let cfg = StreamingConfig {
        receiver_ip: IpAddr::from_octets([10, 0, 1, 2]),
        port: 7200,
        total_bytes: None,
        state_bytes: 4096,
    };
    let spec = JobSpec {
        name: "stream".into(),
        coordinator_node: 2,
        pods: vec![
            PodSpec {
                name: "sender".into(),
                ip: IpAddr::from_octets([10, 0, 1, 1]),
                mac_mode: MacMode::Dedicated(MacAddr::from_index(2101)),
                node: 0,
                programs: vec![cfg.sender_program()],
            },
            PodSpec {
                name: "receiver".into(),
                ip: cfg.receiver_ip,
                mac_mode: MacMode::Dedicated(MacAddr::from_index(2102)),
                node: 1,
                programs: vec![cfg.receiver_program()],
            },
        ],
    };
    let mut w = World::new(3, ClusterParams::default());
    w.launch_job(&spec).unwrap();
    w.run_for(SimDuration::from_millis(100));
    let b0 = counter(&w, "stream", "receiver", RECV_COUNTER_ADDR);
    w.run_for(SimDuration::from_millis(100));
    let b1 = counter(&w, "stream", "receiver", RECV_COUNTER_ADDR);
    let mbps = (b1 - b0) as f64 * 8.0 / 0.1 / 1e6;
    assert!(
        mbps > 850.0 && mbps < 1000.0,
        "gigabit link should carry ~960 Mb/s, measured {mbps:.0}"
    );
}

#[test]
fn slm_ring_advances_in_lockstep() {
    let slm = SlmConfig {
        ranks: 3,
        state_bytes: 64 * 1024,
        iters: 50,
        compute_ns: 2_000_000,
        halo_bytes: 1024,
        port: 7100,
        state_step_bytes: 0,
    };
    let mut w = World::new(4, ClusterParams::default());
    w.launch_job(&slm.job_spec("slm", 3)).unwrap();
    w.run_for(SimDuration::from_millis(60));
    // Mid-run: every rank is within one timestep of its neighbours (the
    // halo exchange is a synchronisation point).
    let iters: Vec<u64> = (0..3)
        .map(|r| counter(&w, "slm", &format!("rank{r}"), ITER_COUNTER_ADDR))
        .collect();
    let min = *iters.iter().min().unwrap();
    let max = *iters.iter().max().unwrap();
    assert!(min > 0, "the ring is running: {iters:?}");
    assert!(max - min <= 1, "bulk-synchronous lockstep: {iters:?}");
    assert!(w.run_until_pred(50_000_000, |w| w.job_finished("slm")));
    for r in 0..3 {
        assert_eq!(w.pod_exit_code("slm", &format!("rank{r}"), 1), Some(0));
        assert_eq!(
            counter(&w, "slm", &format!("rank{r}"), ITER_COUNTER_ADDR),
            50
        );
    }
}

#[test]
fn pingpong_counts_every_round() {
    let cfg = PingPongConfig {
        server_ip: IpAddr::from_octets([10, 0, 1, 1]),
        port: 7300,
        rounds: 77,
    };
    let spec = JobSpec {
        name: "pp".into(),
        coordinator_node: 2,
        pods: vec![
            PodSpec {
                name: "server".into(),
                ip: cfg.server_ip,
                mac_mode: MacMode::Dedicated(MacAddr::from_index(2001)),
                node: 0,
                programs: vec![cfg.server_program()],
            },
            PodSpec {
                name: "client".into(),
                ip: IpAddr::from_octets([10, 0, 1, 2]),
                mac_mode: MacMode::Dedicated(MacAddr::from_index(2002)),
                node: 1,
                programs: vec![cfg.client_program()],
            },
        ],
    };
    let mut w = World::new(3, ClusterParams::default());
    w.launch_job(&spec).unwrap();
    assert!(w.run_until_pred(20_000_000, |w| w.job_finished("pp")));
    assert_eq!(counter(&w, "pp", "server", ROUND_COUNTER_ADDR), 77);
    assert_eq!(counter(&w, "pp", "client", ROUND_COUNTER_ADDR), 77);
}

#[test]
fn allreduce_ring_converges_every_round() {
    use workloads::allreduce::AllReduceConfig;
    let cfg = AllReduceConfig {
        ranks: 4,
        rounds: 25,
        port: 7400,
    };
    let mut w = World::new(5, ClusterParams::default());
    w.launch_job(&cfg.job_spec("ar", 4)).unwrap();
    assert!(w.run_until_pred(30_000_000, |w| w.job_finished("ar")));
    for r in 0..4 {
        assert_eq!(
            w.pod_exit_code("ar", &format!("rank{r}"), 1),
            Some(cfg.expected_total()),
            "rank {r} holds the global sum"
        );
    }
}
