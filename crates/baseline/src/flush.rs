//! The flush-based coordinated checkpoint baseline (MPVM / CoCheck /
//! LAM-MPI style), for the paper's §5.2 comparison.
//!
//! Prior systems cannot capture in-kernel TCP state, so before saving they
//! must **flush every communication channel**: each node sends a marker to
//! every other node and must receive markers (plus all data in flight ahead
//! of them) from every other node before its local state is consistent.
//! That is O(N²) messages against Cruz's O(N), and the all-to-all exchange
//! sits on the critical path of every checkpoint. At restart they must
//! additionally re-discover peer locations and re-establish every
//! connection.
//!
//! This module reproduces that coordination structure as a discrete-event
//! model over the same link/CPU parameters as the Cruz runs, taking the
//! measured local-save durations as input, so the comparison isolates
//! exactly the coordination cost the paper claims to eliminate.

use des::{EventQueue, SimDuration, SimTime};
use simnet::link::LinkParams;

/// Inputs of one flush-based coordination round.
#[derive(Debug, Clone)]
pub struct FlushSim {
    /// Number of application nodes.
    pub nodes: usize,
    /// Link parameters (same as the Cruz run).
    pub link: LinkParams,
    /// Per-message CPU cost (same as the Cruz run).
    pub ctl_msg_cpu: SimDuration,
    /// Measured local save duration per node (from the Cruz run, so both
    /// systems save identical state).
    pub local_save: Vec<SimDuration>,
    /// Bytes of in-flight application data that must be flushed per channel
    /// (drained ahead of the marker).
    pub channel_flush_bytes: u64,
    /// Marker message payload bytes.
    pub marker_bytes: usize,
    /// For restart: per-connection re-establishment cost (location lookup +
    /// TCP handshake), charged per peer.
    pub reconnect_rtt: SimDuration,
}

/// The outcome of a modelled flush-based operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushReport {
    /// First coordinator message to last local-save completion.
    pub checkpoint_latency: SimDuration,
    /// Latency minus the largest local save (comparable to
    /// `OpReport::coordination_overhead`).
    pub coordination_overhead: SimDuration,
    /// Total protocol messages exchanged (coordinator + all-to-all).
    pub messages: u64,
}

#[derive(Debug)]
enum Ev {
    /// Coordinator's start message reaches node `i`.
    Start(usize),
    /// A marker (and its flushed channel data) fully received at `to`.
    Marker { to: usize },
    /// Node `i` finished its local save.
    Saved(usize),
}

impl FlushSim {
    /// Runs the checkpoint-coordination model.
    ///
    /// # Panics
    ///
    /// Panics if `local_save.len() != nodes` or `nodes < 2`.
    pub fn run_checkpoint(&self) -> FlushReport {
        assert!(self.nodes >= 2, "flush model needs at least two nodes");
        assert_eq!(
            self.local_save.len(),
            self.nodes,
            "one local-save duration per node"
        );
        let n = self.nodes;
        let mut q: EventQueue<Ev> = EventQueue::new();
        let t0 = SimTime::ZERO;
        let mut messages: u64 = 0;

        // Coordinator serializes its N start messages.
        for i in 0..n {
            let sent = t0 + self.ctl_msg_cpu * (i as u64 + 1);
            let arrive = sent + self.link.tx_time(64) + self.link.latency * 2;
            q.push(arrive, Ev::Start(i));
            messages += 1;
        }

        let mut markers_received = vec![0usize; n];
        let mut started = vec![false; n];
        let mut flushed_at: Vec<Option<SimTime>> = vec![None; n];
        let mut saved_at: Vec<Option<SimTime>> = vec![None; n];
        let mut last_saved = t0;
        // Each node's uplink serializes its outgoing flush traffic.
        let mut uplinks = vec![simnet::link::LinkState::new(); n];

        while let Some((now, ev)) = q.pop() {
            match ev {
                Ev::Start(i) => {
                    started[i] = true;
                    // Send a marker to every other node: serialized on this
                    // node's CPU, preceded on the wire by the channel's
                    // in-flight data, and all of it queueing on one uplink.
                    let mut k = 0u64;
                    for j in 0..n {
                        if j == i {
                            continue;
                        }
                        k += 1;
                        messages += 1;
                        let cpu_done = now + self.ctl_msg_cpu * k;
                        let arrive = uplinks[i].schedule(
                            cpu_done,
                            self.channel_flush_bytes as usize + self.marker_bytes,
                            &self.link,
                        ) + self.link.latency;
                        q.push(arrive, Ev::Marker { to: j });
                    }
                    maybe_flush_done(
                        i,
                        now,
                        &started,
                        &markers_received,
                        n,
                        &mut flushed_at,
                        &mut q,
                        &self.local_save,
                    );
                }
                Ev::Marker { to } => {
                    markers_received[to] += 1;
                    maybe_flush_done(
                        to,
                        now,
                        &started,
                        &markers_received,
                        n,
                        &mut flushed_at,
                        &mut q,
                        &self.local_save,
                    );
                }
                Ev::Saved(i) => {
                    saved_at[i] = Some(now);
                    // done message back to the coordinator.
                    messages += 1;
                    let done_arrive =
                        now + self.ctl_msg_cpu + self.link.tx_time(64) + self.link.latency * 2;
                    if done_arrive > last_saved {
                        last_saved = done_arrive;
                    }
                }
            }
        }
        // Continue round (same as Cruz: N more messages each way).
        messages += 2 * n as u64;

        let latency = last_saved.duration_since(t0);
        let max_local = self.local_save.iter().copied().max().unwrap_or_default();
        FlushReport {
            checkpoint_latency: latency,
            coordination_overhead: latency.saturating_sub(max_local),
            messages,
        }
    }

    /// Runs the restart-coordination model: on top of the checkpoint-shaped
    /// message pattern, every pair must re-discover locations and
    /// re-establish its connection.
    pub fn run_restart(&self) -> FlushReport {
        let base = self.run_checkpoint();
        // Each node reconnects to every other node; connection setups on one
        // node serialize on its CPU and each costs a round trip.
        let per_node = self.ctl_msg_cpu * (self.nodes as u64 - 1) + self.reconnect_rtt;
        let extra_msgs = (self.nodes * (self.nodes - 1)) as u64 * 2; // SYN + ACK per pair, both directions collapsed
        FlushReport {
            checkpoint_latency: base.checkpoint_latency + per_node,
            coordination_overhead: base.coordination_overhead + per_node,
            messages: base.messages + extra_msgs,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn maybe_flush_done(
    i: usize,
    now: SimTime,
    started: &[bool],
    markers: &[usize],
    n: usize,
    flushed_at: &mut [Option<SimTime>],
    q: &mut EventQueue<Ev>,
    local_save: &[SimDuration],
) {
    if flushed_at[i].is_some() || !started[i] || markers[i] < n - 1 {
        return;
    }
    flushed_at[i] = Some(now);
    q.push(now + local_save[i], Ev::Saved(i));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(n: usize) -> FlushSim {
        FlushSim {
            nodes: n,
            link: LinkParams::gigabit(),
            ctl_msg_cpu: SimDuration::from_micros(25),
            local_save: vec![SimDuration::from_millis(100); n],
            channel_flush_bytes: 64 * 1024,
            marker_bytes: 64,
            reconnect_rtt: SimDuration::from_micros(300),
        }
    }

    #[test]
    fn message_count_is_quadratic() {
        // N start + N(N-1) markers + N done + 2N continue.
        let r4 = sim(4).run_checkpoint();
        assert_eq!(r4.messages, 4 + 12 + 4 + 8);
        let r8 = sim(8).run_checkpoint();
        assert_eq!(r8.messages, 8 + 56 + 8 + 16);
        assert!(r8.messages > 2 * r4.messages, "superlinear growth");
    }

    #[test]
    fn overhead_grows_much_faster_than_linear_protocols() {
        let o2 = sim(2).run_checkpoint().coordination_overhead;
        let o16 = sim(16).run_checkpoint().coordination_overhead;
        // The all-to-all flush makes 16 nodes far costlier than 2.
        assert!(o16 > o2 * 4, "o2={o2} o16={o16}");
    }

    #[test]
    fn flush_volume_matters() {
        let mut light = sim(4);
        light.channel_flush_bytes = 0;
        let mut heavy = sim(4);
        heavy.channel_flush_bytes = 10 * 1024 * 1024;
        let lo = light.run_checkpoint().coordination_overhead;
        let hi = heavy.run_checkpoint().coordination_overhead;
        assert!(hi > lo * 10, "in-flight data sits on the critical path");
    }

    #[test]
    fn restart_adds_reconnect_cost() {
        let c = sim(6).run_checkpoint();
        let r = sim(6).run_restart();
        assert!(r.coordination_overhead > c.coordination_overhead);
        assert!(r.messages > c.messages);
    }

    #[test]
    fn latency_still_dominated_by_local_save() {
        let r = sim(4).run_checkpoint();
        assert!(r.checkpoint_latency >= SimDuration::from_millis(100));
        assert!(r.coordination_overhead < SimDuration::from_millis(20));
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn rejects_single_node() {
        let mut s = sim(2);
        s.nodes = 1;
        s.local_save = vec![SimDuration::ZERO];
        let _ = s.run_checkpoint();
    }
}
