//! Baselines the paper compares against.
//!
//! Cruz's evaluation argues (§5.2) that prior coordinated checkpoint
//! systems — MPVM, CoCheck, LAM/MPI — pay O(N²) messages and put an
//! all-to-all channel flush on every checkpoint's critical path, because
//! they cannot capture in-kernel TCP state. This crate reproduces that
//! comparator:
//!
//! * [`flush`] — a discrete-event model of flush-based coordination,
//!   parameterized by the same link/CPU costs as the Cruz runs and fed the
//!   measured local-save durations, so the message-complexity and
//!   coordination-overhead comparison isolates exactly the protocol
//!   difference;
//! * [`logging`] — a cost model of message-logging schemes (§2), which
//!   avoid the flush but tax every message of *normal* execution — the
//!   "prohibitive performance overhead" the paper cites for rejecting them.

#![warn(missing_docs)]

pub mod flush;
pub mod logging;

pub use flush::{FlushReport, FlushSim};
pub use logging::{LoggingCosts, LoggingReport, MessageProfile};
