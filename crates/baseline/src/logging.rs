//! The message-logging baseline (§2's other alternative).
//!
//! Checkpoint schemes built on message logging (Elnozahy & Zwaenepoel;
//! RENEW) avoid the channel flush by logging every application message so
//! in-flight data can be replayed. The paper dismisses them because the
//! logging itself taxes *normal* operation — "prohibitive performance
//! overhead for communication-intensive applications" — whereas Cruz adds
//! nothing to the fast path. This model quantifies that trade-off: given
//! an application's messaging profile, it computes the steady-state
//! slowdown logging imposes, against Cruz's zero.

use des::SimDuration;

/// A communication profile of one application process.
#[derive(Debug, Clone, Copy)]
pub struct MessageProfile {
    /// Messages sent per second of application time.
    pub msgs_per_sec: f64,
    /// Mean message payload size in bytes.
    pub mean_msg_bytes: u64,
}

/// Cost model of the logging substrate.
#[derive(Debug, Clone, Copy)]
pub struct LoggingCosts {
    /// Fixed CPU cost to intercept and record one message.
    pub per_msg_cpu: SimDuration,
    /// Sustained bandwidth of the log device in bytes/second (logs must be
    /// stable before a message is *delivered* under pessimistic logging).
    pub log_bandwidth_bps: u64,
}

impl Default for LoggingCosts {
    fn default() -> Self {
        LoggingCosts {
            per_msg_cpu: SimDuration::from_micros(5),
            log_bandwidth_bps: 100_000_000, // the era's disk
        }
    }
}

/// The modelled steady-state impact of message logging.
#[derive(Debug, Clone, Copy)]
pub struct LoggingReport {
    /// Fraction of wall time spent logging (0.0–1.0+; above 1.0 the log
    /// device cannot keep up at all).
    pub utilization: f64,
    /// Relative application slowdown while logging keeps up
    /// (`1.0` = no slowdown).
    pub slowdown: f64,
    /// Log bytes produced per second.
    pub log_bytes_per_sec: f64,
}

impl MessageProfile {
    /// Evaluates the logging cost model against this profile.
    pub fn evaluate(&self, costs: &LoggingCosts) -> LoggingReport {
        let cpu_per_sec = self.msgs_per_sec * costs.per_msg_cpu.as_secs_f64();
        let log_bytes = self.msgs_per_sec * self.mean_msg_bytes as f64;
        let io_per_sec = log_bytes / costs.log_bandwidth_bps as f64;
        // Pessimistic logging serializes CPU interception and log I/O on
        // the message path.
        let utilization = cpu_per_sec + io_per_sec;
        LoggingReport {
            utilization,
            slowdown: 1.0 / (1.0 - utilization.min(0.99)),
            log_bytes_per_sec: log_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn light_messaging_is_cheap() {
        // 100 small messages/s: logging is almost free.
        let p = MessageProfile {
            msgs_per_sec: 100.0,
            mean_msg_bytes: 1024,
        };
        let r = p.evaluate(&LoggingCosts::default());
        assert!(r.slowdown < 1.01, "slowdown {}", r.slowdown);
    }

    #[test]
    fn communication_intensive_apps_pay_heavily() {
        // A gigabit-rate stream (the paper's Fig. 6 workload, ~80k
        // MSS-sized messages/s): the log device saturates.
        let p = MessageProfile {
            msgs_per_sec: 80_000.0,
            mean_msg_bytes: 1460,
        };
        let r = p.evaluate(&LoggingCosts::default());
        assert!(
            r.utilization > 1.0,
            "the log cannot keep up: utilization {}",
            r.utilization
        );
        assert!(r.slowdown > 10.0, "prohibitive, as the paper says");
    }

    #[test]
    fn slowdown_grows_monotonically_with_rate() {
        let costs = LoggingCosts::default();
        let mut last = 0.0;
        for rate in [1_000.0, 5_000.0, 20_000.0, 50_000.0] {
            let r = MessageProfile {
                msgs_per_sec: rate,
                mean_msg_bytes: 1460,
            }
            .evaluate(&costs);
            assert!(r.slowdown > last);
            last = r.slowdown;
        }
    }
}
