//! Deterministic pending-event queue.
//!
//! Events scheduled for the same instant are delivered in insertion order,
//! which makes simulation runs reproducible regardless of payload type.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A time-ordered queue of simulation events.
///
/// Ties on the timestamp are broken by insertion order (FIFO), so a run is a
/// pure function of the sequence of `push` calls.
///
/// # Examples
///
/// ```
/// use des::queue::EventQueue;
/// use des::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(20), "late");
/// q.push(SimTime::from_nanos(10), "early");
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

/// Heap entry with the ordering key packed into one `u128`:
/// `(timestamp_nanos << 64) | seq`. Comparing the packed key is a single
/// wide compare instead of a two-field lexicographic chain, and it orders
/// identically — timestamps occupy the high bits, the per-push sequence
/// number the low bits, and `seq` is a monotone `u64` that never wraps
/// within a run.
#[derive(Debug, Clone)]
struct Entry<T> {
    key: u128,
    payload: T,
}

fn pack_key(at: SimTime, seq: u64) -> u128 {
    ((at.as_nanos() as u128) << 64) | seq as u128
}

fn key_time(key: u128) -> SimTime {
    SimTime::from_nanos((key >> 64) as u64)
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then first-pushed)
        // entry surfaces first.
        other.key.cmp(&self.key)
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` for delivery at `at`.
    pub fn push(&mut self, at: SimTime, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            key: pack_key(at, seq),
            payload,
        });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (key_time(e.key), e.payload))
    }

    /// Returns the timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| key_time(e.key))
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(t(30), 3);
        q.push(t(10), 1);
        q.push(t(20), 2);
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
    }

    #[test]
    fn ties_resolve_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn peek_and_len_track_state() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(t(7), ());
        q.push(t(3), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(t(3)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(t(10), "a");
        q.push(t(5), "b");
        assert_eq!(q.pop(), Some((t(5), "b")));
        q.push(t(1), "c");
        q.push(t(10), "d");
        assert_eq!(q.pop(), Some((t(1), "c")));
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(10), "d")));
    }
}
