//! Deterministic discrete-event simulation kernel.
//!
//! This crate provides the three primitives every other layer of the Cruz
//! reproduction is built on:
//!
//! * [`time::SimTime`] / [`time::SimDuration`] — an integer-nanosecond virtual
//!   clock;
//! * [`queue::EventQueue`] — a pending-event set with deterministic (FIFO)
//!   tie-breaking;
//! * [`rng::SimRng`] — a seedable random-number generator with deterministic
//!   forking, one stream per simulated component;
//! * [`digest`] — the one audited FNV-1a fold behind every trace digest,
//!   image checksum and chunk content address in the workspace.
//!
//! The kernel is deliberately free of any notion of "node" or "network": the
//! `cluster` crate owns the event loop and dispatches typed events itself.
//!
//! # Examples
//!
//! ```
//! use des::{EventQueue, SimDuration, SimTime};
//!
//! let mut clock = SimTime::ZERO;
//! let mut queue = EventQueue::new();
//! queue.push(clock + SimDuration::from_micros(5), "timer fired");
//! while let Some((at, event)) = queue.pop() {
//!     clock = at;
//!     assert_eq!(event, "timer fired");
//! }
//! assert_eq!(clock.as_nanos(), 5_000);
//! ```

#![warn(missing_docs)]

pub mod digest;
pub mod queue;
pub mod rng;
pub mod time;

pub use queue::EventQueue;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
