//! Simulated time.
//!
//! All simulation components share a single virtual clock. Time is kept in
//! integer nanoseconds so that event ordering is exact and runs are
//! bit-for-bit reproducible.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated clock, in nanoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use des::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(3);
/// assert_eq!(t.as_nanos(), 3_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use des::time::SimDuration;
///
/// let d = SimDuration::from_micros(250) * 2;
/// assert_eq!(d.as_micros_f64(), 500.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Returns the time as raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the time in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the time in (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier time is later than self"),
        )
    }

    /// Returns the duration elapsed since `earlier`, or zero if `earlier` is
    /// in the future.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "duration must be non-negative");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Returns the duration as raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns true if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_nanos(5_000);
        let d = SimDuration::from_micros(2);
        assert_eq!((t + d).as_nanos(), 7_000);
        assert_eq!((t + d).duration_since(t), d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1_000));
        assert_eq!(
            SimDuration::from_secs_f64(0.25),
            SimDuration::from_millis(250)
        );
    }

    #[test]
    fn saturating_duration_since_is_zero_for_future() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(20);
        assert_eq!(early.saturating_duration_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_duration_since(early).as_nanos(), 10);
    }

    #[test]
    #[should_panic(expected = "earlier time is later")]
    fn duration_since_panics_on_inversion() {
        let _ = SimTime::ZERO.duration_since(SimTime::from_nanos(1));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(10).to_string(), "10ns");
        assert_eq!(SimDuration::from_micros(10).to_string(), "10.000us");
        assert_eq!(SimDuration::from_millis(10).to_string(), "10.000ms");
        assert_eq!(SimDuration::from_secs(10).to_string(), "10.000s");
    }

    #[test]
    fn scalar_ops() {
        assert_eq!(
            SimDuration::from_micros(5) * 3,
            SimDuration::from_micros(15)
        );
        assert_eq!(
            SimDuration::from_micros(15) / 3,
            SimDuration::from_micros(5)
        );
        assert!(SimDuration::ZERO.is_zero());
    }
}
