//! Seedable deterministic random numbers for simulations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic random-number generator for simulation use.
///
/// Two `SimRng` values created from the same seed produce identical streams,
/// which keeps whole-cluster simulations reproducible.
///
/// # Examples
///
/// ```
/// use des::rng::SimRng;
///
/// let mut a = SimRng::from_seed(42);
/// let mut b = SimRng::from_seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Returns the next value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Returns a uniformly distributed value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        self.inner.gen_range(lo..hi)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.inner.gen_bool(p)
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen()
    }

    /// Derives an independent generator, e.g. one per simulated node.
    ///
    /// The derived stream is a pure function of this generator's state, so
    /// forking is itself deterministic.
    pub fn fork(&mut self) -> SimRng {
        SimRng::from_seed(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(7);
        let mut b = SimRng::from_seed(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SimRng::from_seed(3);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::from_seed(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn fork_is_deterministic() {
        let mut a = SimRng::from_seed(9);
        let mut b = SimRng::from_seed(9);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.next_u64(), fb.next_u64());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn range_rejects_empty() {
        let mut r = SimRng::from_seed(5);
        let _ = r.range(5, 5);
    }
}
