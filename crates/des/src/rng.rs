//! Seedable deterministic random numbers for simulations.
//!
//! The generator is a self-contained xoshiro256++ implementation (public
//! domain algorithm by Blackman & Vigna) seeded through SplitMix64. Keeping
//! it dependency-free means the whole simulation stack builds offline and,
//! more importantly, that the stream is a pure function of the seed — no
//! ambient entropy can ever leak into a simulation run.

/// A deterministic random-number generator for simulation use.
///
/// Two `SimRng` values created from the same seed produce identical streams,
/// which keeps whole-cluster simulations reproducible.
///
/// # Examples
///
/// ```
/// use des::rng::SimRng;
///
/// let mut a = SimRng::from_seed(42);
/// let mut b = SimRng::from_seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

/// SplitMix64 step, used only to expand the 64-bit seed into the 256-bit
/// xoshiro state (the recommended seeding procedure).
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut s = seed;
        SimRng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Returns the next value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        let span = hi - lo;
        // Debiased multiply-shift (Lemire): draw until the low word clears
        // the rejection zone, so every value in the span is exactly uniform.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(span as u128);
        let mut low = m as u64;
        if low < span {
            let threshold = span.wrapping_neg() % span;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(span as u128);
                low = m as u64;
            }
        }
        lo + (m >> 64) as u64
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    // Probabilities are caller-supplied tuning knobs, never image state;
    // the draw itself is integer. cruz-lint: allow(float-in-sim)
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        if p == 1.0 {
            // unit_f64 never returns 1.0, so compare would be strict-false.
            let _ = self.next_u64();
            return true;
        }
        self.unit_f64() < p
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    // cruz-lint: allow(float-in-sim)
    pub fn unit_f64(&mut self) -> f64 {
        // 53 high-quality bits into the mantissa range: the seeded-uniform
        // derivation is exact (a 53-bit integer scaled by a power of two),
        // so it is bit-identical everywhere. cruz-lint: allow(float-in-sim)
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Derives an independent generator, e.g. one per simulated node.
    ///
    /// The derived stream is a pure function of this generator's state, so
    /// forking is itself deterministic.
    pub fn fork(&mut self) -> SimRng {
        SimRng::from_seed(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(7);
        let mut b = SimRng::from_seed(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SimRng::from_seed(3);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn range_covers_every_value() {
        let mut r = SimRng::from_seed(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.range(0, 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in span reachable");
    }

    #[test]
    fn unit_f64_stays_in_unit_interval() {
        let mut r = SimRng::from_seed(12);
        for _ in 0..1000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::from_seed(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn fork_is_deterministic() {
        let mut a = SimRng::from_seed(9);
        let mut b = SimRng::from_seed(9);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.next_u64(), fb.next_u64());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn range_rejects_empty() {
        let mut r = SimRng::from_seed(5);
        let _ = r.range(5, 5);
    }
}
