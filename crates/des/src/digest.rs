//! The one audited FNV-1a 64-bit fold every digest in the workspace uses.
//!
//! Trace digests, image checksums, chunk content addresses and the bench
//! crates' epoch digests all reduce to the same primitive: fold bytes into
//! a 64-bit FNV-1a state (`h = (h ^ byte) * PRIME`, starting from
//! [`OFFSET`]). Before this module existed that primitive was copied in
//! five places; a typo in any one of them would have silently broken the
//! byte-for-byte reproducibility the whole project is built to witness.
//! Now there is exactly one implementation, and its test vectors pin it to
//! the published FNV-1a constants.
//!
//! FNV-1a has no finalization step — the running state *is* the digest —
//! so [`fold`] both accumulates and finalizes: seed with [`OFFSET`] (or a
//! previous fold's output, for incremental digests), fold bytes, read the
//! result.

/// FNV-1a 64-bit offset basis (the standard one).
pub const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// A second, independent offset basis (the standard basis folded with the
/// 64-bit golden ratio). Folding the same bytes from [`OFFSET`] and
/// `OFFSET_ALT` yields two independent 64-bit digests — together a 128-bit
/// content address (see `cruz::chunk::ChunkId`).
pub const OFFSET_ALT: u64 = OFFSET ^ 0x9e37_79b9_7f4a_7c15;

/// FNV-1a 64-bit prime.
pub const PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `data` into the running digest `h`.
///
/// Seed with [`OFFSET`] for a fresh digest, or with a previous fold's
/// output to digest incrementally; the return value is the finished
/// digest (FNV-1a needs no separate finalize).
///
/// The hot loop reads eight bytes at a time and unrolls the eight
/// xor-multiply steps. FNV-1a is inherently byte-serial — each step feeds
/// the next — so the word loop performs *exactly* the byte recurrence and
/// the result is bit-identical to [`fold_bytewise`]; what the unrolling
/// removes is per-byte bounds checking and loop overhead. The equivalence
/// is pinned by tests here and by the `hotpath_properties` twin-path
/// proptests.
#[must_use]
pub fn fold(mut h: u64, data: &[u8]) -> u64 {
    let mut words = data.chunks_exact(8);
    for w in &mut words {
        let x = u64::from_le_bytes(w.try_into().expect("chunks_exact(8)"));
        h = fold_word(h, x);
    }
    for &b in words.remainder() {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The straight-line byte-at-a-time reference fold. Semantically identical
/// to [`fold`]; kept as the auditable definition the optimized word loop is
/// property-tested against, and as the baseline the hot-path benches
/// measure the unrolled fold over.
#[must_use]
pub fn fold_bytewise(mut h: u64, data: &[u8]) -> u64 {
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Folds `data` into **two** independent running digests in one pass.
///
/// Semantically `(fold(h1, data), fold(h2, data))` — bit-identical, pinned
/// by tests here and by the twin-path proptests. The point is throughput:
/// FNV-1a's xor-multiply chain is inherently serial (each step's input is
/// the previous step's product), so a single fold is latency-bound on the
/// multiplier and a second pass doubles both that latency and the memory
/// traffic. Interleaving the two chains keeps two independent multiplies
/// in flight per step and reads the data once — which is exactly the shape
/// of a 128-bit chunk content address (`cruz::chunk::ChunkId`), the one
/// caller hashing the same bytes from two bases.
#[must_use]
pub fn fold2(mut h1: u64, mut h2: u64, data: &[u8]) -> (u64, u64) {
    let mut words = data.chunks_exact(8);
    for w in &mut words {
        let x = u64::from_le_bytes(w.try_into().expect("chunks_exact(8)"));
        (h1, h2) = fold2_word(h1, h2, x);
    }
    for &b in words.remainder() {
        h1 = (h1 ^ b as u64).wrapping_mul(PRIME);
        h2 = (h2 ^ b as u64).wrapping_mul(PRIME);
    }
    (h1, h2)
}

/// One fully-unrolled word step of both chains: the eight little-endian
/// bytes of `x` folded into `h1` and `h2` in byte order, the two
/// independent multiplies of each step adjacent so they can issue together.
#[inline]
fn fold2_word(mut h1: u64, mut h2: u64, x: u64) -> (u64, u64) {
    macro_rules! step {
        ($b:expr) => {
            h1 = (h1 ^ $b).wrapping_mul(PRIME);
            h2 = (h2 ^ $b).wrapping_mul(PRIME);
        };
    }
    step!(x & 0xff);
    step!((x >> 8) & 0xff);
    step!((x >> 16) & 0xff);
    step!((x >> 24) & 0xff);
    step!((x >> 32) & 0xff);
    step!((x >> 40) & 0xff);
    step!((x >> 48) & 0xff);
    step!(x >> 56);
    (h1, h2)
}

/// One fully-unrolled word step: folds the eight little-endian bytes of
/// `x` into `h` in byte order.
#[inline]
fn fold_word(mut h: u64, x: u64) -> u64 {
    h = (h ^ (x & 0xff)).wrapping_mul(PRIME);
    h = (h ^ ((x >> 8) & 0xff)).wrapping_mul(PRIME);
    h = (h ^ ((x >> 16) & 0xff)).wrapping_mul(PRIME);
    h = (h ^ ((x >> 24) & 0xff)).wrapping_mul(PRIME);
    h = (h ^ ((x >> 32) & 0xff)).wrapping_mul(PRIME);
    h = (h ^ ((x >> 40) & 0xff)).wrapping_mul(PRIME);
    h = (h ^ ((x >> 48) & 0xff)).wrapping_mul(PRIME);
    h = (h ^ (x >> 56)).wrapping_mul(PRIME);
    h
}

/// Folds one `u64` into the running digest as its eight little-endian
/// bytes — the word-granular variant the event-trace digest uses on its
/// hot path. Takes the unrolled word step directly, with no byte
/// round-trip.
#[must_use]
pub fn fold_u64(h: u64, word: u64) -> u64 {
    fold_word(h, word)
}

/// The complete FNV-1a digest of `data` (seeded with [`OFFSET`]).
#[must_use]
pub fn fnv1a(data: &[u8]) -> u64 {
    fold(OFFSET, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Published FNV-1a 64-bit test vectors (draft-eastlake-fnv): the
    // constants and the xor-then-multiply order are load-bearing — the
    // store's on-disk chunk names and every pinned trace digest depend on
    // them.
    #[test]
    fn matches_published_fnv1a_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fold_is_byte_incremental() {
        let whole = fnv1a(b"checkpoint");
        let split = fold(fold(OFFSET, b"check"), b"point");
        assert_eq!(whole, split);
    }

    #[test]
    fn fold_u64_is_the_le_byte_fold() {
        let w = 0x0123_4567_89ab_cdefu64;
        assert_eq!(fold_u64(OFFSET, w), fold(OFFSET, &w.to_le_bytes()));
    }

    #[test]
    fn alt_offset_gives_an_independent_digest() {
        assert_ne!(fold(OFFSET, b"page"), fold(OFFSET_ALT, b"page"));
    }

    #[test]
    fn fold2_is_two_folds() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            b"a".to_vec(),
            b"checkpoint".to_vec(),
            vec![0u8; 4096],
            (0..=255u8).collect(),
            (0..1000u32).map(|i| (i % 251) as u8).collect(),
        ];
        for data in &cases {
            assert_eq!(
                fold2(OFFSET, OFFSET_ALT, data),
                (fold(OFFSET, data), fold(OFFSET_ALT, data)),
                "len {}",
                data.len()
            );
        }
        // Arbitrary seeds, not just the two standard bases.
        assert_eq!(fold2(7, 9, b"xyz"), (fold(7, b"xyz"), fold(9, b"xyz")));
    }
}
