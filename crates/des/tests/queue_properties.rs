//! Property tests on the event queue: total order by (time, insertion).

use des::{EventQueue, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Popping yields times in non-decreasing order, same-time entries in
    /// insertion order, and exactly the pushed multiset.
    #[test]
    fn queue_is_a_stable_priority_queue(times in proptest::collection::vec(0u64..1000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        prop_assert_eq!(q.len(), times.len());
        let mut popped = Vec::new();
        while let Some((at, idx)) = q.pop() {
            popped.push((at.as_nanos(), idx));
        }
        prop_assert_eq!(popped.len(), times.len());
        // Non-decreasing times; FIFO within equal times.
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
        // Each index appears exactly once at its pushed time.
        let mut seen = vec![false; times.len()];
        for (t, idx) in popped {
            prop_assert_eq!(t, times[idx]);
            prop_assert!(!seen[idx]);
            seen[idx] = true;
        }
    }

    /// Interleaved push/pop maintains the invariant: any pop returns the
    /// minimum currently queued (ties by insertion order).
    #[test]
    fn interleaved_ops_return_current_minimum(
        ops in proptest::collection::vec((any::<bool>(), 0u64..100), 1..200),
    ) {
        let mut q = EventQueue::new();
        let mut shadow: Vec<(u64, usize)> = Vec::new();
        let mut seq = 0usize;
        for (push, t) in ops {
            if push || shadow.is_empty() {
                q.push(SimTime::from_nanos(t), seq);
                shadow.push((t, seq));
                seq += 1;
            } else {
                let (at, idx) = q.pop().expect("shadow says non-empty");
                // The shadow minimum by (time, insertion seq):
                let (mi, _) = shadow
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &(t, s))| (t, s))
                    .expect("non-empty");
                let expect = shadow.remove(mi);
                prop_assert_eq!((at.as_nanos(), idx), expect);
            }
        }
    }
}
