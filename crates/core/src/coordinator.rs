//! The Checkpoint Coordinator (Fig. 2, plus the Fig. 4 optimization).
//!
//! The coordinator is a pure state machine: it emits messages and effects;
//! the hosting runtime (the `cluster` crate) ships datagrams and executes
//! effects. This keeps the O(N)-message protocol directly unit-testable.

use std::collections::BTreeSet;

use des::{SimDuration, SimTime};

use crate::proto::{CtlMsg, OpKind, ProtocolMode};

/// Identifies an agent (node index within the operation).
pub type AgentId = usize;

/// A side effect the runtime must perform for the coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordEffect {
    /// All agents saved their state: the global checkpoint is consistent.
    /// Write the commit record for `epoch` (the two-phase-commit decision).
    Commit {
        /// Committed epoch.
        epoch: u64,
    },
    /// The operation finished (all agents resumed).
    Complete {
        /// Epoch.
        epoch: u64,
    },
    /// The operation was aborted.
    Aborted {
        /// Epoch.
        epoch: u64,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    /// Waiting for `Done` (and, in optimized mode, `CommDisabled`) messages.
    Collecting,
    /// Commit decided; waiting for every `ContinueDone`.
    Continuing,
    Done,
    Aborted,
}

/// Timing observations of one coordinated operation, the raw material for
/// Figs. 5(a) and 5(b).
#[derive(Debug, Clone, Default)]
pub struct CoordStats {
    /// When the first `Start` was sent.
    pub started_at: Option<SimTime>,
    /// When each agent's `Done` arrived.
    pub done_at: Vec<(AgentId, SimTime)>,
    /// When each agent's `CommDisabled` arrived (optimized mode).
    pub comm_disabled_at: Vec<(AgentId, SimTime)>,
    /// When the last `Done` arrived (commit point).
    pub all_done_at: Option<SimTime>,
    /// When the last `ContinueDone` arrived (total checkpoint latency end).
    pub completed_at: Option<SimTime>,
    /// Control messages sent by the coordinator.
    pub msgs_sent: u64,
    /// Control messages received by the coordinator.
    pub msgs_received: u64,
}

impl CoordStats {
    /// Total latency: first message sent to last `done` received — the
    /// quantity plotted in Fig. 5(a).
    pub fn checkpoint_latency(&self) -> Option<SimDuration> {
        Some(self.all_done_at?.duration_since(self.started_at?))
    }

    /// Complete-operation latency (through the last `ContinueDone`).
    pub fn total_latency(&self) -> Option<SimDuration> {
        Some(self.completed_at?.duration_since(self.started_at?))
    }
}

/// The coordinator state machine for one operation.
#[derive(Debug)]
pub struct Coordinator {
    kind: OpKind,
    mode: ProtocolMode,
    epoch: u64,
    agents: Vec<AgentId>,
    phase: Phase,
    cow: bool,
    comm_disabled: BTreeSet<AgentId>,
    done: BTreeSet<AgentId>,
    durable: BTreeSet<AgentId>,
    continue_sent: BTreeSet<AgentId>,
    continue_done: BTreeSet<AgentId>,
    committed: bool,
    timeout: Option<SimDuration>,
    deadline: Option<SimTime>,
    /// Timing observations.
    pub stats: CoordStats,
}

impl Coordinator {
    /// Creates a coordinator for `agents`, using the given protocol variant.
    pub fn new(kind: OpKind, mode: ProtocolMode, epoch: u64, agents: Vec<AgentId>) -> Self {
        assert!(!agents.is_empty(), "an operation needs at least one agent");
        Coordinator {
            kind,
            mode,
            epoch,
            agents,
            phase: Phase::Idle,
            cow: false,
            comm_disabled: BTreeSet::new(),
            done: BTreeSet::new(),
            durable: BTreeSet::new(),
            continue_sent: BTreeSet::new(),
            continue_done: BTreeSet::new(),
            committed: false,
            timeout: None,
            deadline: None,
            stats: CoordStats::default(),
        }
    }

    /// Arms a failure-detection timeout: if the operation has not completed
    /// within `timeout` of starting, [`Coordinator::on_timeout`] aborts it.
    pub fn with_timeout(mut self, timeout: SimDuration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Enables the §5.2 copy-on-write optimization: agents report `done` as
    /// soon as state is captured (shrinking the blackout to the capture
    /// time), and the commit record waits for every agent's `durable`.
    pub fn with_cow(mut self) -> Self {
        self.cow = true;
        self
    }

    /// Whether COW mode is on.
    pub fn cow(&self) -> bool {
        self.cow
    }

    /// The operation's epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The operation kind.
    pub fn kind(&self) -> OpKind {
        self.kind
    }

    /// The protocol variant.
    pub fn mode(&self) -> ProtocolMode {
        self.mode
    }

    /// The agents participating.
    pub fn agents(&self) -> &[AgentId] {
        &self.agents
    }

    /// True once every agent has resumed.
    pub fn is_complete(&self) -> bool {
        self.phase == Phase::Done
    }

    /// True if the operation was aborted.
    pub fn is_aborted(&self) -> bool {
        self.phase == Phase::Aborted
    }

    /// The failure-detection deadline, if armed.
    pub fn deadline(&self) -> Option<SimTime> {
        if matches!(self.phase, Phase::Done | Phase::Aborted) {
            None
        } else {
            self.deadline
        }
    }

    /// Step 1: send `<checkpoint>` (or `<restart>`) to every agent.
    pub fn start(&mut self, now: SimTime) -> (Vec<(AgentId, CtlMsg)>, Vec<CoordEffect>) {
        assert_eq!(self.phase, Phase::Idle, "coordinator already started");
        self.phase = Phase::Collecting;
        self.stats.started_at = Some(now);
        self.deadline = self.timeout.map(|t| now + t);
        let msg = CtlMsg::Start {
            kind: self.kind,
            epoch: self.epoch,
            mode: self.mode,
            cow: self.cow,
        };
        let out: Vec<(AgentId, CtlMsg)> = self.agents.iter().map(|&a| (a, msg)).collect();
        self.stats.msgs_sent += out.len() as u64;
        (out, Vec::new())
    }

    /// Feeds an agent message; returns messages to send and effects to run.
    pub fn on_message(
        &mut self,
        from: AgentId,
        msg: CtlMsg,
        now: SimTime,
    ) -> (Vec<(AgentId, CtlMsg)>, Vec<CoordEffect>) {
        let mut out = Vec::new();
        let mut effects = Vec::new();
        if msg.epoch() != self.epoch || matches!(self.phase, Phase::Done | Phase::Aborted) {
            return (out, effects); // stale
        }
        self.stats.msgs_received += 1;
        match msg {
            CtlMsg::CommDisabled { .. } => {
                self.comm_disabled.insert(from);
                self.stats.comm_disabled_at.push((from, now));
            }
            CtlMsg::Done { .. } => {
                if self.done.insert(from) {
                    self.stats.done_at.push((from, now));
                }
                if self.done.len() == self.agents.len() {
                    self.stats.all_done_at = Some(now);
                    self.phase = Phase::Continuing;
                    self.maybe_commit(&mut effects);
                }
            }
            CtlMsg::Durable { .. } => {
                self.durable.insert(from);
                self.maybe_commit(&mut effects);
            }
            CtlMsg::ContinueDone { .. } => {
                self.continue_done.insert(from);
                if self.continue_done.len() == self.agents.len() && self.commit_ready() {
                    self.phase = Phase::Done;
                    self.stats.completed_at = Some(now);
                    effects.push(CoordEffect::Complete { epoch: self.epoch });
                }
            }
            _ => {}
        }
        // Decide which agents may continue.
        for &a in &self.agents.clone() {
            if self.continue_sent.contains(&a) || !self.done.contains(&a) {
                continue;
            }
            let may_continue = match self.mode {
                // Fig. 2: everyone waits for the last save.
                ProtocolMode::Blocking => self.done.len() == self.agents.len(),
                // Fig. 4: communication must be disabled everywhere, then
                // each node goes as soon as its own save is in.
                ProtocolMode::Optimized => self.comm_disabled.len() == self.agents.len(),
            };
            if may_continue {
                self.continue_sent.insert(a);
                out.push((a, CtlMsg::Continue { epoch: self.epoch }));
            }
        }
        self.stats.msgs_sent += out.len() as u64;
        (out, effects)
    }

    fn commit_ready(&self) -> bool {
        self.kind != OpKind::Checkpoint || !self.cow || self.durable.len() == self.agents.len()
    }

    fn maybe_commit(&mut self, effects: &mut Vec<CoordEffect>) {
        if self.committed || self.kind != OpKind::Checkpoint {
            return;
        }
        let done_all = self.done.len() == self.agents.len();
        let durable_all = !self.cow || self.durable.len() == self.agents.len();
        if done_all && durable_all {
            self.committed = true;
            effects.push(CoordEffect::Commit { epoch: self.epoch });
        }
        // The op may have been waiting only on durables to complete.
        if self.committed
            && self.continue_done.len() == self.agents.len()
            && self.phase == Phase::Continuing
        {
            self.phase = Phase::Done;
            effects.push(CoordEffect::Complete { epoch: self.epoch });
        }
    }

    /// Retransmits messages whose expected responses are missing: `start`
    /// to agents that have not answered at all, `continue` to agents that
    /// have not acknowledged resuming. Safe against duplicate delivery —
    /// agents treat repeats idempotently. Call periodically when the
    /// transport may drop datagrams.
    pub fn on_retry(&mut self, _now: SimTime) -> Vec<(AgentId, CtlMsg)> {
        if matches!(self.phase, Phase::Idle | Phase::Done | Phase::Aborted) {
            return Vec::new();
        }
        let mut out = Vec::new();
        for &a in &self.agents {
            if self.continue_sent.contains(&a) {
                if !self.continue_done.contains(&a) {
                    out.push((a, CtlMsg::Continue { epoch: self.epoch }));
                }
            } else if !(self.done.contains(&a)
                || self.mode == ProtocolMode::Optimized && self.comm_disabled.contains(&a))
            {
                // Nothing heard from this agent yet: the start may be lost.
                out.push((
                    a,
                    CtlMsg::Start {
                        kind: self.kind,
                        epoch: self.epoch,
                        mode: self.mode,
                        cow: self.cow,
                    },
                ));
            }
        }
        self.stats.msgs_sent += out.len() as u64;
        out
    }

    /// Fires the failure-detection timeout: aborts the operation.
    pub fn on_timeout(&mut self, now: SimTime) -> (Vec<(AgentId, CtlMsg)>, Vec<CoordEffect>) {
        if matches!(self.phase, Phase::Done | Phase::Aborted) {
            return (Vec::new(), Vec::new());
        }
        let Some(deadline) = self.deadline else {
            return (Vec::new(), Vec::new());
        };
        if now < deadline {
            return (Vec::new(), Vec::new());
        }
        self.force_abort()
    }

    /// Aborts the operation unconditionally (no deadline check): the
    /// recovery manager calls this when it learns out-of-band that a
    /// participant is dead. Idempotent once the operation settled.
    pub fn force_abort(&mut self) -> (Vec<(AgentId, CtlMsg)>, Vec<CoordEffect>) {
        if matches!(self.phase, Phase::Done | Phase::Aborted) {
            return (Vec::new(), Vec::new());
        }
        self.phase = Phase::Aborted;
        let out: Vec<(AgentId, CtlMsg)> = self
            .agents
            .iter()
            .map(|&a| (a, CtlMsg::Abort { epoch: self.epoch }))
            .collect();
        self.stats.msgs_sent += out.len() as u64;
        (out, vec![CoordEffect::Aborted { epoch: self.epoch }])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: SimTime = SimTime::ZERO;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn blocking_protocol_follows_fig2() {
        let mut c = Coordinator::new(OpKind::Checkpoint, ProtocolMode::Blocking, 1, vec![0, 1, 2]);
        let (msgs, fx) = c.start(T);
        assert_eq!(msgs.len(), 3);
        assert!(fx.is_empty());
        // Two dones: nobody continues yet.
        let (m, _) = c.on_message(0, CtlMsg::Done { epoch: 1 }, t(10));
        assert!(m.is_empty());
        let (m, _) = c.on_message(1, CtlMsg::Done { epoch: 1 }, t(20));
        assert!(m.is_empty());
        // Third done: commit + continue to everyone.
        let (m, fx) = c.on_message(2, CtlMsg::Done { epoch: 1 }, t(30));
        assert_eq!(m.len(), 3);
        assert!(m
            .iter()
            .all(|(_, msg)| matches!(msg, CtlMsg::Continue { epoch: 1 })));
        assert_eq!(fx, vec![CoordEffect::Commit { epoch: 1 }]);
        assert_eq!(
            c.stats.checkpoint_latency(),
            Some(SimDuration::from_micros(30))
        );
        // Continue-dones complete the op.
        for a in 0..3 {
            let (_, fx) = c.on_message(a, CtlMsg::ContinueDone { epoch: 1 }, t(40 + a as u64));
            if a == 2 {
                assert_eq!(fx, vec![CoordEffect::Complete { epoch: 1 }]);
            } else {
                assert!(fx.is_empty());
            }
        }
        assert!(c.is_complete());
        // O(N): 3 starts + 3 continues.
        assert_eq!(c.stats.msgs_sent, 6);
        assert_eq!(c.stats.msgs_received, 6);
    }

    #[test]
    fn optimized_protocol_releases_early_savers() {
        let mut c = Coordinator::new(OpKind::Checkpoint, ProtocolMode::Optimized, 7, vec![0, 1]);
        let _ = c.start(T);
        // Node 0 disables comm and even finishes saving — but node 1's
        // communication is not yet known to be disabled: no continue.
        let _ = c.on_message(0, CtlMsg::CommDisabled { epoch: 7 }, t(1));
        let (m, _) = c.on_message(0, CtlMsg::Done { epoch: 7 }, t(5));
        assert!(m.is_empty(), "must wait for all comm-disabled");
        // Node 1 disables comm: node 0 may now continue even though node 1
        // has not saved (its state cannot change node 0's checkpoint).
        let (m, _) = c.on_message(1, CtlMsg::CommDisabled { epoch: 7 }, t(6));
        assert_eq!(m, vec![(0, CtlMsg::Continue { epoch: 7 })]);
        // Node 1 finishes: it continues too, and the commit fires.
        let (m, fx) = c.on_message(1, CtlMsg::Done { epoch: 7 }, t(9));
        assert_eq!(m, vec![(1, CtlMsg::Continue { epoch: 7 })]);
        assert_eq!(fx, vec![CoordEffect::Commit { epoch: 7 }]);
    }

    #[test]
    fn stale_and_duplicate_messages_ignored() {
        let mut c = Coordinator::new(OpKind::Checkpoint, ProtocolMode::Blocking, 2, vec![0]);
        let _ = c.start(T);
        // Wrong epoch.
        let (m, fx) = c.on_message(0, CtlMsg::Done { epoch: 99 }, t(1));
        assert!(m.is_empty() && fx.is_empty());
        // Duplicate done does not double-send continue.
        let (m1, _) = c.on_message(0, CtlMsg::Done { epoch: 2 }, t(2));
        assert_eq!(m1.len(), 1);
        let (m2, _) = c.on_message(0, CtlMsg::Done { epoch: 2 }, t(3));
        assert!(m2.is_empty());
    }

    #[test]
    fn restart_kind_skips_commit_effect() {
        let mut c = Coordinator::new(OpKind::Restart, ProtocolMode::Blocking, 3, vec![0]);
        let _ = c.start(T);
        let (m, fx) = c.on_message(0, CtlMsg::Done { epoch: 3 }, t(1));
        assert_eq!(m.len(), 1);
        assert!(fx.is_empty(), "restart has nothing to commit");
        let (_, fx) = c.on_message(0, CtlMsg::ContinueDone { epoch: 3 }, t(2));
        assert_eq!(fx, vec![CoordEffect::Complete { epoch: 3 }]);
    }

    #[test]
    fn timeout_aborts() {
        let mut c = Coordinator::new(OpKind::Checkpoint, ProtocolMode::Blocking, 4, vec![0, 1])
            .with_timeout(SimDuration::from_millis(100));
        let _ = c.start(T);
        let _ = c.on_message(0, CtlMsg::Done { epoch: 4 }, t(10));
        assert_eq!(c.deadline(), Some(t(100_000)));
        // Early poll: nothing.
        let (m, _) = c.on_timeout(t(50_000));
        assert!(m.is_empty());
        // Deadline passes: abort to everyone.
        let (m, fx) = c.on_timeout(t(100_000));
        assert_eq!(m.len(), 2);
        assert!(m
            .iter()
            .all(|(_, msg)| matches!(msg, CtlMsg::Abort { epoch: 4 })));
        assert_eq!(fx, vec![CoordEffect::Aborted { epoch: 4 }]);
        assert!(c.is_aborted());
        // Post-abort messages are ignored.
        let (m, fx) = c.on_message(1, CtlMsg::Done { epoch: 4 }, t(110_000));
        assert!(m.is_empty() && fx.is_empty());
        assert_eq!(c.deadline(), None);
    }

    #[test]
    fn force_abort_needs_no_deadline_and_is_idempotent() {
        // No timeout armed: on_timeout can never fire, force_abort still can.
        let mut c = Coordinator::new(OpKind::Checkpoint, ProtocolMode::Blocking, 6, vec![0, 1]);
        let _ = c.start(T);
        let (m, _) = c.on_timeout(t(1));
        assert!(m.is_empty(), "no deadline armed");
        let (m, fx) = c.force_abort();
        assert_eq!(m.len(), 2);
        assert!(m
            .iter()
            .all(|(_, msg)| matches!(msg, CtlMsg::Abort { epoch: 6 })));
        assert_eq!(fx, vec![CoordEffect::Aborted { epoch: 6 }]);
        assert!(c.is_aborted());
        // Second call is a no-op.
        let (m, fx) = c.force_abort();
        assert!(m.is_empty() && fx.is_empty());
    }

    #[test]
    fn cow_mode_delays_commit_until_durable() {
        let mut c =
            Coordinator::new(OpKind::Checkpoint, ProtocolMode::Blocking, 8, vec![0, 1]).with_cow();
        let (msgs, _) = c.start(T);
        assert!(msgs
            .iter()
            .all(|(_, m)| matches!(m, CtlMsg::Start { cow: true, .. })));
        // Both captures done: continues flow, but NO commit yet.
        let (_, fx) = c.on_message(0, CtlMsg::Done { epoch: 8 }, t(1));
        assert!(fx.is_empty());
        let (m, fx) = c.on_message(1, CtlMsg::Done { epoch: 8 }, t(2));
        assert_eq!(m.len(), 2, "continues sent at capture time");
        assert!(fx.is_empty(), "commit must wait for durability");
        // Agents resume...
        let (_, fx) = c.on_message(0, CtlMsg::ContinueDone { epoch: 8 }, t(3));
        assert!(fx.is_empty());
        let (_, fx) = c.on_message(1, CtlMsg::ContinueDone { epoch: 8 }, t(4));
        assert!(fx.is_empty(), "completion also gated on durability");
        // ...and the background writes land.
        let (_, fx) = c.on_message(0, CtlMsg::Durable { epoch: 8 }, t(5));
        assert!(fx.is_empty());
        let (_, fx) = c.on_message(1, CtlMsg::Durable { epoch: 8 }, t(6));
        assert_eq!(
            fx,
            vec![
                CoordEffect::Commit { epoch: 8 },
                CoordEffect::Complete { epoch: 8 }
            ]
        );
        assert!(c.is_complete());
    }

    #[test]
    fn cow_durable_before_last_done_still_commits_once() {
        let mut c =
            Coordinator::new(OpKind::Checkpoint, ProtocolMode::Blocking, 9, vec![0, 1]).with_cow();
        let _ = c.start(T);
        let _ = c.on_message(0, CtlMsg::Done { epoch: 9 }, t(1));
        let _ = c.on_message(0, CtlMsg::Durable { epoch: 9 }, t(2));
        let _ = c.on_message(1, CtlMsg::Durable { epoch: 9 }, t(3));
        // All durables in, but agent 1's done missing: no commit.
        let (_, fx) = c.on_message(1, CtlMsg::Done { epoch: 9 }, t(4));
        assert!(fx.contains(&CoordEffect::Commit { epoch: 9 }));
    }

    #[test]
    fn retry_resends_only_whats_missing() {
        let mut c = Coordinator::new(OpKind::Checkpoint, ProtocolMode::Blocking, 5, vec![0, 1, 2]);
        let _ = c.start(T);
        // Agent 0 finished everything it can; agent 1 saved; agent 2 silent.
        let _ = c.on_message(0, CtlMsg::Done { epoch: 5 }, t(1));
        let _ = c.on_message(1, CtlMsg::Done { epoch: 5 }, t(2));
        let retries = c.on_retry(t(1000));
        // Not all done ⇒ nobody was sent continue; agent 2 gets its start
        // again, agents 0/1 are heard from so nothing is resent to them.
        assert_eq!(retries.len(), 1);
        assert!(matches!(retries[0], (2, CtlMsg::Start { .. })));
        // Agent 2 saves: continues flow; drop agent 1's continue-done.
        let _ = c.on_message(2, CtlMsg::Done { epoch: 5 }, t(3));
        let _ = c.on_message(0, CtlMsg::ContinueDone { epoch: 5 }, t(4));
        let _ = c.on_message(2, CtlMsg::ContinueDone { epoch: 5 }, t(5));
        let retries = c.on_retry(t(2000));
        assert_eq!(retries, vec![(1, CtlMsg::Continue { epoch: 5 })]);
        // Completion stops all retries.
        let _ = c.on_message(1, CtlMsg::ContinueDone { epoch: 5 }, t(6));
        assert!(c.is_complete());
        assert!(c.on_retry(t(3000)).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one agent")]
    fn rejects_empty_agent_set() {
        let _ = Coordinator::new(OpKind::Checkpoint, ProtocolMode::Blocking, 1, vec![]);
    }
}
