//! Content-addressed chunks and the per-chunk compression codec.
//!
//! The deduplicating checkpoint store (see [`crate::store`]) splits each
//! serialized pod image into chunks, names every chunk by a deterministic
//! 128-bit content hash, and stores each distinct chunk once per job. Two
//! properties carry the whole design and are enforced by property tests:
//!
//! * **Determinism** — hashing and compression are pure functions of the
//!   input bytes. The same image yields byte-identical chunks in every
//!   process on every machine (the invariant `cruz-lint` audits for).
//! * **Identity** — `decompress(compress(x)) == x` for every input, so a
//!   restart that reassembles chunks reproduces the original image
//!   byte-for-byte.
//!
//! The codec is an RLE + LZ-lite scheme (pure std, per the vendoring
//! constraint): a greedy LZ parse over a 64 KiB window in which matches may
//! overlap their own output — a distance-1 match *is* run-length encoding —
//! so zero pages and repetitive checkpoint payloads collapse to a few
//! bytes. Token stream:
//!
//! * `0lllllll` — literal run of `l + 1` bytes (1..=128) follows;
//! * `1lllllll dd dd` — copy `l + 4` bytes (4..=131) from `distance`
//!   bytes back in the output, `distance` a little-endian `u16` (1..=65535).

use std::fmt;
use std::sync::{Arc, OnceLock};

use des::digest;

/// Shortest back-reference worth a 3-byte token.
pub const MIN_MATCH: usize = 4;
/// Longest match one token can encode.
const MAX_MATCH: usize = MIN_MATCH + 0x7f;
/// Farthest back-reference distance (the LZ window).
const MAX_DIST: usize = 0xffff;
/// Longest literal run one token can carry.
const MAX_LIT: usize = 128;
/// Upper bound on the codec's expansion ratio: the densest token is a
/// 3-byte match emitting up to [`MAX_MATCH`] (131) output bytes, and
/// `131 / 3 < 44`, so no well-formed payload of `n` bytes can decode to
/// more than `44 * n` bytes. A container header promising more is corrupt
/// on its face — the torn-write fault path's defense against a huge bogus
/// decoded-length preallocation.
const MAX_EXPANSION: usize = 44;
/// log2 of the match-finder hash-table size.
const HASH_BITS: u32 = 13;

/// A decode failure. Chunks are checksummed indirectly — the image they
/// reassemble into carries the end-to-end checksum — so these only signal
/// structural corruption of the chunk container itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The token stream ended before its operands did.
    Truncated,
    /// A match referenced bytes before the start of the output.
    BadDistance,
    /// The payload did not decompress to the length the header promised.
    LengthMismatch,
    /// Unknown container tag byte.
    BadTag(u8),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "chunk truncated"),
            CodecError::BadDistance => write!(f, "match distance precedes output start"),
            CodecError::LengthMismatch => write!(f, "decompressed length mismatch"),
            CodecError::BadTag(t) => write!(f, "unknown chunk tag {t:#04x}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A chunk's content address: two independent 64-bit FNV-1a folds of the
/// raw (uncompressed) chunk bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ChunkId(pub u64, pub u64);

impl ChunkId {
    /// The content address of `data`: both folds computed in one pass over
    /// the bytes (`digest::fold2`), bit-identical to folding twice from
    /// [`digest::OFFSET`] and [`digest::OFFSET_ALT`].
    pub fn of(data: &[u8]) -> ChunkId {
        let (lo, hi) = digest::fold2(digest::OFFSET, digest::OFFSET_ALT, data);
        ChunkId(lo, hi)
    }

    /// Fixed-width lowercase-hex rendering (the chunk's file name stem).
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.0, self.1)
    }
}

impl fmt::Display for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.hex())
    }
}

// ---- zero-page fast path ----------------------------------------------------

/// The page size every zero-page shortcut below is specialized to (matches
/// `simos::mem::PAGE_SIZE` and the store's default chunk size).
pub const ZERO_PAGE_LEN: usize = 4096;

static ZERO_PAGE_ID: OnceLock<ChunkId> = OnceLock::new();
static ZERO_PAGE_LZ: OnceLock<Vec<u8>> = OnceLock::new();
static ZERO_PAGE_RAW: OnceLock<Vec<u8>> = OnceLock::new();
static ZERO_PAGE_LZ_ARC: OnceLock<Arc<[u8]>> = OnceLock::new();
static ZERO_PAGE_RAW_ARC: OnceLock<Arc<[u8]>> = OnceLock::new();

/// The content address of an all-zero [`ZERO_PAGE_LEN`]-byte page, computed
/// once per process. Zero pages dominate freshly-touched guest memory, so
/// the capture path checks [`is_zero_page`] first and skips both folds when
/// it hits.
pub fn zero_page_id() -> ChunkId {
    *ZERO_PAGE_ID.get_or_init(|| ChunkId::of(&[0u8; ZERO_PAGE_LEN]))
}

/// The stored container bytes of an all-zero page, computed once per
/// process via the reference [`encode_chunk`] (so the bytes are identical
/// to what the slow path would produce).
pub fn zero_page_encoded(compress_on: bool) -> &'static [u8] {
    if compress_on {
        ZERO_PAGE_LZ.get_or_init(|| encode_chunk(&[0u8; ZERO_PAGE_LEN], true))
    } else {
        ZERO_PAGE_RAW.get_or_init(|| encode_chunk(&[0u8; ZERO_PAGE_LEN], false))
    }
}

/// The stored container of an all-zero page as a process-wide shared
/// `Arc<[u8]>` (one per codec setting), so every capture path — including
/// pool workers on different threads — aliases a single allocation instead
/// of copying [`zero_page_encoded`] per zero page.
pub fn zero_page_stored(compress_on: bool) -> Arc<[u8]> {
    let slot = if compress_on {
        &ZERO_PAGE_LZ_ARC
    } else {
        &ZERO_PAGE_RAW_ARC
    };
    slot.get_or_init(|| Arc::from(zero_page_encoded(compress_on)))
        .clone()
}

/// True iff `data` is exactly one all-zero page. Word-at-a-time: 4096 is a
/// multiple of 8, so the check is 512 `u64` compares with no tail loop.
pub fn is_zero_page(data: &[u8]) -> bool {
    data.len() == ZERO_PAGE_LEN && data.chunks_exact(8).all(|w| w == [0u8; 8])
}

// ---- segmentation -----------------------------------------------------------

/// Splits `0..total` into chunk ranges of at most `chunk_bytes`, aligned to
/// the given payload `cuts` (ascending, non-overlapping `(offset, len)`
/// regions — in practice the page payloads inside a serialized image).
///
/// Alignment is what makes dedup work across epochs: a page keeps its own
/// chunk boundary no matter how the variable-length metadata before it
/// shifts, so an unchanged page re-hashes to the same chunk id every epoch.
/// Returns `(start, len)` ranges whose concatenation covers `0..total`
/// exactly.
pub fn split_ranges(
    total: usize,
    cuts: &[(usize, usize)],
    chunk_bytes: usize,
) -> Vec<(usize, usize)> {
    let chunk = chunk_bytes.max(1);
    let mut ranges = Vec::new();
    let emit = |from: usize, to: usize, ranges: &mut Vec<(usize, usize)>| {
        let mut start = from;
        while start < to {
            let len = (to - start).min(chunk);
            ranges.push((start, len));
            start += len;
        }
    };
    let mut pos = 0;
    for &(off, len) in cuts {
        debug_assert!(off >= pos, "cuts must be ascending and non-overlapping");
        debug_assert!(off + len <= total, "cut exceeds the buffer");
        emit(pos, off, &mut ranges);
        emit(off, off + len, &mut ranges);
        pos = off + len;
    }
    emit(pos, total, &mut ranges);
    ranges
}

// ---- codec ------------------------------------------------------------------

fn hash4(b: &[u8]) -> usize {
    let v = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
    (v.wrapping_mul(2_654_435_761) >> (32 - HASH_BITS)) as usize
}

fn flush_literals(out: &mut Vec<u8>, mut lits: &[u8]) {
    while !lits.is_empty() {
        let n = lits.len().min(MAX_LIT);
        out.push((n - 1) as u8);
        out.extend_from_slice(&lits[..n]);
        lits = &lits[n..];
    }
}

/// Compresses `data`. Deterministic: the greedy parse depends only on the
/// input bytes. The output is never usefully larger than
/// `data.len() + data.len() / 128 + 1` (pure literal runs).
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 8);
    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut lit_start = 0;
    let mut i = 0;
    while i < data.len() {
        let mut best_len = 0;
        let mut best_dist = 0;
        if i + MIN_MATCH <= data.len() {
            let h = hash4(&data[i..]);
            let cand = table[h];
            table[h] = i;
            if cand != usize::MAX && i - cand <= MAX_DIST {
                let max = (data.len() - i).min(MAX_MATCH);
                let mut l = 0;
                while l < max && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l >= MIN_MATCH {
                    best_len = l;
                    best_dist = i - cand;
                }
            }
        }
        if best_len >= MIN_MATCH {
            flush_literals(&mut out, &data[lit_start..i]);
            out.push(0x80 | (best_len - MIN_MATCH) as u8);
            out.extend_from_slice(&(best_dist as u16).to_le_bytes());
            i += best_len;
            lit_start = i;
        } else {
            i += 1;
        }
    }
    flush_literals(&mut out, &data[lit_start..]);
    out
}

/// Reusable codec working memory: the 64 KiB match-finder table and the
/// packed-output buffer that [`compress`] would otherwise allocate per
/// chunk. One scratch serves an entire capture's worth of chunks.
///
/// The table is never re-zeroed between chunks. Each entry packs a
/// generation stamp in its high 32 bits (`(stamp << 32) | position`); an
/// entry is a live candidate only when its stamp matches the current call's,
/// so bumping the stamp invalidates the whole table in O(1). On the rare
/// `u32` stamp wrap the table is re-zeroed once, keeping stale entries from
/// a four-billion-calls-ago generation from aliasing the fresh stamp.
#[derive(Debug, Default)]
pub struct CodecScratch {
    table: Vec<u64>,
    stamp: u32,
    packed: Vec<u8>,
}

impl CodecScratch {
    /// Creates an empty scratch; the table materializes on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// [`compress`] into `scratch.packed`, reusing the scratch table. Produces
/// a byte-identical token stream: the greedy parse consults exactly the
/// candidates the fresh-table reference would (stale-stamp entries read as
/// "no candidate", just like `usize::MAX` slots in a fresh table).
fn compress_into(data: &[u8], scratch: &mut CodecScratch) {
    scratch.packed.clear();
    if data.len() > u32::MAX as usize {
        // Positions would not fit the packed table entry; take the
        // reference path (unreachable for real chunks, which are page-sized).
        scratch.packed = compress(data);
        return;
    }
    if scratch.table.len() != 1 << HASH_BITS {
        scratch.table = vec![0u64; 1 << HASH_BITS];
        scratch.stamp = 0;
    }
    scratch.stamp = scratch.stamp.wrapping_add(1);
    if scratch.stamp == 0 {
        scratch.table.iter_mut().for_each(|e| *e = 0);
        scratch.stamp = 1;
    }
    let gen = (scratch.stamp as u64) << 32;
    let out = &mut scratch.packed;
    let table = &mut scratch.table;
    let mut lit_start = 0;
    let mut i = 0;
    while i < data.len() {
        let mut best_len = 0;
        let mut best_dist = 0;
        if i + MIN_MATCH <= data.len() {
            let h = hash4(&data[i..]);
            let e = table[h];
            let cand = if e & 0xffff_ffff_0000_0000 == gen {
                (e & 0xffff_ffff) as usize
            } else {
                usize::MAX
            };
            table[h] = gen | i as u64;
            if cand != usize::MAX && i - cand <= MAX_DIST {
                let max = (data.len() - i).min(MAX_MATCH);
                let mut l = 0;
                while l < max && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l >= MIN_MATCH {
                    best_len = l;
                    best_dist = i - cand;
                }
            }
        }
        if best_len >= MIN_MATCH {
            flush_literals(out, &data[lit_start..i]);
            out.push(0x80 | (best_len - MIN_MATCH) as u8);
            out.extend_from_slice(&(best_dist as u16).to_le_bytes());
            i += best_len;
            lit_start = i;
        } else {
            i += 1;
        }
    }
    flush_literals(out, &data[lit_start..]);
}

/// Decompresses a [`compress`] token stream.
///
/// # Errors
///
/// [`CodecError::Truncated`] or [`CodecError::BadDistance`] on malformed
/// input.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, CodecError> {
    decompress_with_capacity(data, data.len() * 2)
}

/// [`decompress`] with the output preallocated to `cap` bytes — the chunk
/// container records the decoded length, so [`decode_chunk`] can size the
/// output exactly once instead of growing it incrementally.
///
/// `cap` comes from an **untrusted** container header on the torn-write
/// fault path, so it is clamped to [`MAX_EXPANSION`]`× data.len()` — the
/// most any well-formed payload can decode to — before it reaches the
/// allocator. A corrupt header past the clamp costs at most a few
/// incremental `Vec` growths before the length check in [`decode_chunk`]
/// rejects it; it can never abort the process on an absurd allocation.
fn decompress_with_capacity(data: &[u8], cap: usize) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::with_capacity(cap.min(data.len().saturating_mul(MAX_EXPANSION)));
    let mut i = 0;
    while i < data.len() {
        let c = data[i];
        i += 1;
        if c & 0x80 == 0 {
            let n = c as usize + 1;
            if i + n > data.len() {
                return Err(CodecError::Truncated);
            }
            out.extend_from_slice(&data[i..i + n]);
            i += n;
        } else {
            let len = (c & 0x7f) as usize + MIN_MATCH;
            if i + 2 > data.len() {
                return Err(CodecError::Truncated);
            }
            let dist = u16::from_le_bytes([data[i], data[i + 1]]) as usize;
            i += 2;
            if dist == 0 || dist > out.len() {
                return Err(CodecError::BadDistance);
            }
            let start = out.len() - dist;
            // Byte-by-byte: matches may overlap their own output (RLE).
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        }
    }
    Ok(out)
}

// ---- chunk container --------------------------------------------------------

/// Tag of a stored-raw chunk.
const TAG_RAW: u8 = 0;
/// Tag of a compressed chunk.
const TAG_LZ: u8 = 1;

/// Encodes a chunk for storage: compressed when `compress_on` and the codec
/// actually wins, stored raw otherwise. The container is self-describing,
/// so readers need no store configuration.
pub fn encode_chunk(raw: &[u8], compress_on: bool) -> Vec<u8> {
    if compress_on {
        let packed = compress(raw);
        if packed.len() + 5 < raw.len() + 1 {
            let mut out = Vec::with_capacity(packed.len() + 5);
            out.push(TAG_LZ);
            out.extend_from_slice(&(raw.len() as u32).to_le_bytes());
            out.extend_from_slice(&packed);
            return out;
        }
    }
    let mut out = Vec::with_capacity(raw.len() + 1);
    out.push(TAG_RAW);
    out.extend_from_slice(raw);
    out
}

/// [`encode_chunk`] through a reusable [`CodecScratch`]: same container
/// bytes (pinned by twin-path tests), no per-chunk table or intermediate
/// allocation — the only allocation is the exact-size output container.
pub fn encode_chunk_with(raw: &[u8], compress_on: bool, scratch: &mut CodecScratch) -> Vec<u8> {
    if compress_on {
        compress_into(raw, scratch);
        let packed = &scratch.packed;
        if packed.len() + 5 < raw.len() + 1 {
            let mut out = Vec::with_capacity(packed.len() + 5);
            out.push(TAG_LZ);
            out.extend_from_slice(&(raw.len() as u32).to_le_bytes());
            out.extend_from_slice(packed);
            return out;
        }
    }
    let mut out = Vec::with_capacity(raw.len() + 1);
    out.push(TAG_RAW);
    out.extend_from_slice(raw);
    out
}

/// Decodes a stored chunk back to its raw bytes.
///
/// # Errors
///
/// Any [`CodecError`] on a malformed container or token stream.
pub fn decode_chunk(stored: &[u8]) -> Result<Vec<u8>, CodecError> {
    let (&tag, rest) = stored.split_first().ok_or(CodecError::Truncated)?;
    match tag {
        TAG_RAW => Ok(rest.to_vec()),
        TAG_LZ => {
            if rest.len() < 4 {
                return Err(CodecError::Truncated);
            }
            let (len_bytes, payload) = rest.split_at(4);
            let raw_len =
                u32::from_le_bytes(len_bytes.try_into().map_err(|_| CodecError::Truncated)?)
                    as usize;
            // The decoded-length header is untrusted (a torn disk write can
            // hand us any four bytes): a length no payload of this size
            // could decode to is structural corruption, rejected before any
            // allocation or decode work.
            if raw_len > payload.len().saturating_mul(MAX_EXPANSION) {
                return Err(CodecError::LengthMismatch);
            }
            let raw = decompress_with_capacity(payload, raw_len)?;
            if raw.len() != raw_len {
                return Err(CodecError::LengthMismatch);
            }
            Ok(raw)
        }
        t => Err(CodecError::BadTag(t)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_content() {
        let mut data = Vec::new();
        data.extend(std::iter::repeat(0u8).take(5000)); // zero run → RLE
        data.extend((0..4096u32).map(|i| (i % 251) as u8 | 1)); // periodic
        data.extend((0..700u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)); // noisy
        let packed = compress(&data);
        assert!(packed.len() < data.len() / 3, "repetitive input compresses");
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn round_trip_short_and_empty() {
        for data in [&b""[..], b"a", b"ab", b"abc", b"abcd", b"aaaa"] {
            let packed = compress(data);
            assert_eq!(decompress(&packed).unwrap(), data);
        }
    }

    #[test]
    fn zero_page_collapses() {
        let page = vec![0u8; 4096];
        let stored = encode_chunk(&page, true);
        assert!(stored.len() < 120, "zero page stays tiny: {}", stored.len());
        assert_eq!(decode_chunk(&stored).unwrap(), page);
    }

    #[test]
    fn incompressible_falls_back_to_raw() {
        let data: Vec<u8> = (0..257u32)
            .map(|i| (i.wrapping_mul(97) % 256) as u8)
            .collect();
        let stored = encode_chunk(&data, true);
        assert!(stored.len() <= data.len() + 1);
        assert_eq!(decode_chunk(&stored).unwrap(), data);
        // And with compression off the container is always raw.
        let raw = encode_chunk(&data, false);
        assert_eq!(raw[0], TAG_RAW);
        assert_eq!(decode_chunk(&raw).unwrap(), data);
    }

    #[test]
    fn malformed_chunks_rejected() {
        assert_eq!(decode_chunk(&[]), Err(CodecError::Truncated));
        assert_eq!(decode_chunk(&[9, 1, 2]), Err(CodecError::BadTag(9)));
        assert_eq!(decode_chunk(&[TAG_LZ, 1, 0]), Err(CodecError::Truncated));
        // A match before the output starts.
        assert_eq!(
            decompress(&[0x80, 2, 0]),
            Err(CodecError::BadDistance),
            "distance beyond output"
        );
        // Literal run cut short.
        assert_eq!(decompress(&[5, 1, 2]), Err(CodecError::Truncated));
        // Compressed payload shorter than promised.
        let mut stored = vec![TAG_LZ];
        stored.extend_from_slice(&100u32.to_le_bytes());
        stored.extend_from_slice(&compress(b"abc"));
        assert_eq!(decode_chunk(&stored), Err(CodecError::LengthMismatch));
    }

    #[test]
    fn torn_headers_with_huge_lengths_are_rejected_cheaply() {
        // A torn write can corrupt the decoded-length header into any
        // value; a u32::MAX length over a tiny payload must be rejected
        // (not trusted as a preallocation size, which would abort on OOM).
        for bogus in [u32::MAX, u32::MAX / 2, 1 << 24] {
            let mut stored = vec![TAG_LZ];
            stored.extend_from_slice(&bogus.to_le_bytes());
            stored.extend_from_slice(&compress(b"tiny"));
            assert_eq!(
                decode_chunk(&stored),
                Err(CodecError::LengthMismatch),
                "header {bogus:#x} over a {}-byte payload",
                stored.len() - 5
            );
        }
        // Just past the expansion bound over an empty payload too.
        let mut stored = vec![TAG_LZ];
        stored.extend_from_slice(&1u32.to_le_bytes());
        assert_eq!(decode_chunk(&stored), Err(CodecError::LengthMismatch));
        // The bound never rejects a legitimate container: the most
        // expansive real input is a long run (distance-1 RLE).
        let page = vec![7u8; ZERO_PAGE_LEN];
        let stored = encode_chunk(&page, true);
        assert_eq!(decode_chunk(&stored).unwrap(), page);
    }

    #[test]
    fn scratch_codec_matches_reference() {
        let inputs: Vec<Vec<u8>> = vec![
            vec![],
            b"a".to_vec(),
            vec![0u8; 4096],
            (0..4096u32).map(|i| (i % 251) as u8 | 1).collect(),
            (0..700u32)
                .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
                .collect(),
            b"abcabcabcabcabcabc".to_vec(),
        ];
        // One scratch across all inputs and both compress settings: reuse
        // (stale table entries, leftover packed bytes) must not leak.
        let mut scratch = CodecScratch::new();
        for round in 0..3 {
            for data in &inputs {
                for on in [true, false] {
                    assert_eq!(
                        encode_chunk_with(data, on, &mut scratch),
                        encode_chunk(data, on),
                        "round {round} len {} compress {on}",
                        data.len()
                    );
                }
            }
        }
    }

    #[test]
    fn zero_page_constants_match_slow_path() {
        let page = vec![0u8; ZERO_PAGE_LEN];
        assert!(is_zero_page(&page));
        assert!(!is_zero_page(&page[..ZERO_PAGE_LEN - 1]));
        let mut dirty = page.clone();
        dirty[4095] = 1;
        assert!(!is_zero_page(&dirty));
        assert_eq!(zero_page_id(), ChunkId::of(&page));
        assert_eq!(zero_page_encoded(true), &encode_chunk(&page, true)[..]);
        assert_eq!(zero_page_encoded(false), &encode_chunk(&page, false)[..]);
        // The shared Arc container is the same bytes, and repeated calls
        // alias one allocation.
        for on in [true, false] {
            let a = zero_page_stored(on);
            assert_eq!(&a[..], zero_page_encoded(on));
            assert!(Arc::ptr_eq(&a, &zero_page_stored(on)));
        }
    }

    #[test]
    fn chunk_ids_discriminate() {
        let a = ChunkId::of(b"hello");
        let b = ChunkId::of(b"hellp");
        assert_ne!(a, b);
        assert_eq!(a, ChunkId::of(b"hello"), "hash is a pure function");
        assert_eq!(a.hex().len(), 32);
    }

    #[test]
    fn split_ranges_cover_and_align() {
        // 100 bytes, a "page" at 30..62, chunk size 16.
        let ranges = split_ranges(100, &[(30, 32)], 16);
        // Coverage: concatenation is exactly 0..100.
        let mut pos = 0;
        for &(start, len) in &ranges {
            assert_eq!(start, pos);
            pos += len;
        }
        assert_eq!(pos, 100);
        // Alignment: a chunk starts exactly at the cut.
        assert!(ranges.iter().any(|&(s, l)| s == 30 && l == 16));
        assert!(ranges.iter().any(|&(s, l)| s == 46 && l == 16));
        // Degenerate chunk size is clamped, empty input yields no ranges.
        assert_eq!(split_ranges(0, &[], 0), vec![]);
        assert_eq!(split_ranges(3, &[], 0), vec![(0, 1), (1, 1), (2, 1)]);
    }
}
