//! Deterministic worker pool for the capture/restore hot paths.
//!
//! The checkpoint pipeline's expensive kernels — chunk hashing, per-chunk
//! compression, restore-side decompression — are pure functions of their
//! input bytes. This module shards such kernels across a pool of scoped
//! `std::thread` workers and merges the results **in input order**, so the
//! output is a plain `Vec<R>` indistinguishable from what a serial loop
//! would produce. That ordered merge is the whole determinism argument:
//!
//! * tasks are distributed as *indexed blocks* — workers race for blocks,
//!   but every result carries its block index home;
//! * the merge slots each block's results by index and flattens, so the
//!   final sequence is the input sequence regardless of which worker ran
//!   which block or in what order blocks finished;
//! * the kernels themselves are pure (no shared mutable state, no I/O),
//!   so per-item results cannot depend on scheduling either.
//!
//! Together: byte-identical output at every thread count, which is what
//! lets the golden-trace digests stay pinned while wall-clock capture cost
//! drops with available cores. `threads == 1` short-circuits to a plain
//! serial loop — the reference oracle the twin-path property tests compare
//! the pooled paths against.
//!
//! Thread count resolution (see [`resolve`]): an explicit non-zero request
//! wins; `0` means "auto" — the `CRUZ_THREADS` environment variable if set,
//! else the host's available parallelism. Simulated time is unaffected in
//! every case: the pool only parallelizes wall-clock work *inside* a single
//! DES event, never event scheduling.

use std::sync::mpsc;
use std::sync::Mutex;
use std::thread;

/// Environment variable overriding the worker count when a `StoreConfig`
/// leaves it on auto (`0`). `CRUZ_THREADS=1` forces the serial reference
/// path; values above the block count are harmlessly clamped by workload.
pub const THREADS_ENV: &str = "CRUZ_THREADS";

/// Resolves a configured thread count to an effective one: a non-zero
/// request is honored as-is; `0` (auto) consults [`THREADS_ENV`] and then
/// the host's available parallelism. Always at least 1.
pub fn resolve(threads: usize) -> usize {
    if threads != 0 {
        return threads;
    }
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A fixed-width worker pool. Creating one is free — threads are scoped to
/// each [`Pool::map_ordered`] call, so a `Pool` is just the resolved width.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool of [`resolve`]`(threads)` workers.
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: resolve(threads),
        }
    }

    /// The effective worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items`, preserving input order in the output.
    ///
    /// `init` builds one per-worker state `S` (e.g. a `CodecScratch`) that
    /// `f` may mutate freely: state never crosses workers, and `f` must be
    /// pure with respect to everything else, so the per-item results are
    /// independent of which worker computes them. With one worker (or a
    /// trivially small input) this is exactly a serial fold over one state
    /// — the reference oracle.
    pub fn map_ordered<T, R, S>(
        &self,
        items: Vec<T>,
        init: impl Fn() -> S + Sync,
        f: impl Fn(&mut S, T) -> R + Sync,
    ) -> Vec<R>
    where
        T: Send,
        R: Send,
    {
        let n = items.len();
        if self.threads <= 1 || n <= 1 {
            let mut state = init();
            return items.into_iter().map(|it| f(&mut state, it)).collect();
        }
        // Indexed blocks, a few per worker so a slow block (incompressible
        // pages) can't serialize the tail behind one thread.
        let block = n.div_ceil(self.threads * 4).max(1);
        let mut blocks: Vec<Vec<T>> = Vec::with_capacity(n.div_ceil(block));
        let mut it = items.into_iter();
        loop {
            let b: Vec<T> = it.by_ref().take(block).collect();
            if b.is_empty() {
                break;
            }
            blocks.push(b);
        }
        let nblocks = blocks.len();
        let workers = self.threads.min(nblocks);
        // Every block is queued up front, so workers never block on recv:
        // the channel acts as a Mutex-guarded deque they drain to empty.
        let (task_tx, task_rx) = mpsc::channel::<(usize, Vec<T>)>();
        for task in blocks.into_iter().enumerate() {
            if task_tx.send(task).is_err() {
                break; // receiver alive until scope end; unreachable
            }
        }
        drop(task_tx);
        let tasks = Mutex::new(task_rx);
        let (res_tx, res_rx) = mpsc::channel::<(usize, Vec<R>)>();
        let mut out: Vec<Option<Vec<R>>> = (0..nblocks).map(|_| None).collect();
        thread::scope(|scope| {
            for _ in 0..workers {
                let res_tx = res_tx.clone();
                let tasks = &tasks;
                let init = &init;
                let f = &f;
                scope.spawn(move || {
                    let mut state = init();
                    loop {
                        // Lock → recv → unlock; recv never waits because the
                        // queue was filled before any worker started.
                        let task = {
                            let rx = match tasks.lock() {
                                Ok(rx) => rx,
                                Err(poisoned) => poisoned.into_inner(),
                            };
                            rx.try_recv()
                        };
                        let Ok((idx, block)) = task else {
                            return; // queue drained
                        };
                        let results: Vec<R> =
                            block.into_iter().map(|item| f(&mut state, item)).collect();
                        if res_tx.send((idx, results)).is_err() {
                            return; // collector gone; nothing left to do
                        }
                    }
                });
            }
            drop(res_tx);
            // Slot results by block index: this is the ordered merge.
            while let Ok((idx, results)) = res_rx.recv() {
                out[idx] = Some(results);
            }
        });
        // Scope joins every worker before returning (propagating any worker
        // panic), so each slot is filled exactly once by construction.
        out.into_iter().flatten().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_merge_matches_serial_at_every_width() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x) ^ 7).collect();
        for threads in [1usize, 2, 3, 4, 8, 16] {
            let pool = Pool::new(threads);
            let got = pool.map_ordered(items.clone(), || (), |_, x: u64| x.wrapping_mul(x) ^ 7);
            assert_eq!(got, serial, "threads={threads}");
        }
    }

    #[test]
    fn per_worker_state_is_used_and_isolated() {
        // The state counts items seen by one worker; results must not
        // depend on it beyond what a serial run would produce when the
        // kernel ignores the count (purity is the caller's contract —
        // here we only check the state plumbing compiles and runs).
        let pool = Pool::new(4);
        let got = pool.map_ordered(
            (0..100u32).collect::<Vec<_>>(),
            || 0usize,
            |count, x| {
                *count += 1;
                x * 2
            },
        );
        assert_eq!(got, (0..100u32).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let pool = Pool::new(8);
        let empty: Vec<u8> = pool.map_ordered(Vec::<u8>::new(), || (), |_, x| x);
        assert!(empty.is_empty());
        let one = pool.map_ordered(vec![42u8], || (), |_, x| x + 1);
        assert_eq!(one, vec![43]);
    }

    #[test]
    fn resolve_precedence() {
        assert_eq!(resolve(3), 3, "explicit request wins");
        std::env::set_var(THREADS_ENV, "5");
        assert_eq!(resolve(0), 5, "auto consults the env");
        assert_eq!(resolve(2), 2, "explicit still wins over the env");
        std::env::set_var(THREADS_ENV, "0");
        assert_eq!(resolve(0), 1, "degenerate env clamps to 1");
        std::env::set_var(THREADS_ENV, "nonsense");
        assert!(resolve(0) >= 1, "unparsable env falls through to auto");
        std::env::remove_var(THREADS_ENV);
        assert!(resolve(0) >= 1);
    }
}
