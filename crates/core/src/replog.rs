//! k-way replicated checkpoint store over a deterministic operation log.
//!
//! The single [`CheckpointStore`] is one logical disk: lose it and every
//! committed epoch is gone. This module replicates it k ways behind the
//! same API. Every logical mutation — a prepared put, a commit record, an
//! epoch discard, an orphan GC — is encoded as a [`LogOp`] and appended to
//! each replica's append-only operation log (the byte-exact `CRZL` format
//! below, pinned in `wire-registry.txt`); the replica then applies the op
//! to its own store tree. Because the ops are deterministic and the
//! per-replica apply is idempotent, *log bytes equal ⇒ store trees
//! byte-identical*, which is the invariant every repair path leans on:
//!
//! * **Quorum reads** — [`ReplicatedStore::get_image`] collects the image
//!   digest sidecar from every live replica, picks the majority digest
//!   (ties break to the lowest replica index), and serves the first
//!   replica whose reassembled bytes actually verify against it. A torn
//!   or corrupt copy — caught by the store's per-chunk content addresses
//!   and whole-image digest — just falls through to a healthy replica.
//! * **Scrub/repair** — [`ReplicatedStore::scrub_and_repair`] elects a
//!   reference replica by `(newest committed epoch in the log, log
//!   length)` — commit history first, so a freshly compacted log outranks
//!   a stale replica's longer one — rebuilds it canonically (wipe +
//!   replay its own log), and rebuilds every
//!   diverging or dead replica the same way from the reference log.
//!   Replay-from-empty is the one true constructor of replica state, so
//!   convergence is byte-exact by construction, and a replica that died
//!   mid-append (a *torn log*: valid prefix + garbage tail) is revived
//!   with the tail truncated to the last whole record.
//!
//! Replica faults are armed declaratively (see [`ReplicaFault`]) and
//! tracked in small control files on the shared simulated filesystem, so
//! fault state survives store-handle reconstruction and replays
//! deterministically under a pinned seed.
//!
//! With `k = 1` every method short-circuits to the plain store: no log,
//! no control files, byte-for-byte the unreplicated layout.
//!
//! # `CRZL` log format
//!
//! ```text
//! header:  u32 REPLOG_MAGIC | u16 REPLOG_VERSION
//! record:  u32 payload_len | u8 tag | payload | u64 fnv(tag ++ payload)
//! ```
//!
//! All integers little-endian. A reader accepts the longest prefix of
//! whole, checksum-valid records and ignores everything after the first
//! invalid byte — exactly the semantics a torn append needs.

use std::collections::BTreeSet;

use simos::fs::NetFs;

use crate::chunk::ChunkId;
use crate::digest;
use crate::pagecache::{DigestCache, PageHint};
use crate::store::{self, CheckpointStore, PreparedChunked, PreparedPut, StoreConfig};

/// Magic number of a replica operation log (`CRZL`).
pub const REPLOG_MAGIC: u32 = 0x4352_5a4c;
/// Current operation-log format version.
pub const REPLOG_VERSION: u16 = 1;

// ---- fault model (re-exported from the fault plane) --------------------------

pub use crate::repfault::{
    clear_replica_faults, install_replica_faults, ReplicaFault, ReplicaFaultKind, StoreOpPoint,
};
use crate::repfault::{read_dead, take_fault_effect, write_dead, Cur};

// ---- operation log ----------------------------------------------------------

/// One logical store mutation, as recorded in the `CRZL` operation log.
/// Replaying a log's ops in order against an empty store tree is the
/// canonical constructor of replica state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogOp {
    /// A plain (monolithic) pod-image put.
    PutPlain {
        /// Pod name.
        pod: String,
        /// Checkpoint epoch.
        epoch: u64,
        /// The serialized image bytes.
        bytes: Vec<u8>,
    },
    /// A chunked (deduplicated) pod-image put. Carries only the chunk
    /// bodies that were novel when the op was logged — replay encounters
    /// the same store state the writer saw, so the log is self-contained.
    PutChunked {
        /// Pod name.
        pod: String,
        /// Checkpoint epoch.
        epoch: u64,
        /// The serialized `CRZM` manifest.
        manifest: Vec<u8>,
        /// Whole-image content digest (the epoch's digest sidecar).
        image: ChunkId,
        /// Novel chunk bodies: `(content address, encoded container)`.
        blobs: Vec<(ChunkId, Vec<u8>)>,
    },
    /// A commit-record write for an epoch.
    Commit {
        /// The epoch committed.
        epoch: u64,
    },
    /// An epoch discard (abort rollback or recovery cleanup).
    Discard {
        /// The epoch discarded.
        epoch: u64,
    },
    /// An orphan-chunk garbage collection.
    Gc,
    /// Discard of every committed epoch below `keep` (retention pruning).
    Prune {
        /// Oldest epoch retained.
        keep: u64,
    },
}

impl LogOp {
    /// The protocol point this op counts as for fault injection.
    pub fn point(&self) -> StoreOpPoint {
        match self {
            LogOp::PutPlain { .. } | LogOp::PutChunked { .. } => StoreOpPoint::Put,
            LogOp::Commit { .. } => StoreOpPoint::Commit,
            LogOp::Discard { .. } | LogOp::Prune { .. } => StoreOpPoint::Discard,
            LogOp::Gc => StoreOpPoint::Gc,
        }
    }

    fn encode_payload(&self) -> (u8, Vec<u8>) {
        let mut w = Vec::new();
        match self {
            LogOp::PutPlain { pod, epoch, bytes } => {
                put_str(&mut w, pod);
                w.extend_from_slice(&epoch.to_le_bytes());
                put_bytes(&mut w, bytes);
                (0, w)
            }
            LogOp::PutChunked {
                pod,
                epoch,
                manifest,
                image,
                blobs,
            } => {
                put_str(&mut w, pod);
                w.extend_from_slice(&epoch.to_le_bytes());
                put_bytes(&mut w, manifest);
                w.extend_from_slice(&image.0.to_le_bytes());
                w.extend_from_slice(&image.1.to_le_bytes());
                w.extend_from_slice(&(blobs.len() as u32).to_le_bytes());
                for (id, body) in blobs {
                    w.extend_from_slice(&id.0.to_le_bytes());
                    w.extend_from_slice(&id.1.to_le_bytes());
                    put_bytes(&mut w, body);
                }
                (1, w)
            }
            LogOp::Commit { epoch } => {
                w.extend_from_slice(&epoch.to_le_bytes());
                (2, w)
            }
            LogOp::Discard { epoch } => {
                w.extend_from_slice(&epoch.to_le_bytes());
                (3, w)
            }
            LogOp::Gc => (4, w),
            LogOp::Prune { keep } => {
                w.extend_from_slice(&keep.to_le_bytes());
                (5, w)
            }
        }
    }

    fn decode_payload(tag: u8, payload: &[u8]) -> Option<LogOp> {
        let mut c = Cur::new(payload);
        let op = match tag {
            0 => LogOp::PutPlain {
                pod: c.string()?,
                epoch: c.u64()?,
                bytes: c.bytes()?,
            },
            1 => {
                let pod = c.string()?;
                let epoch = c.u64()?;
                let manifest = c.bytes()?;
                let image = ChunkId(c.u64()?, c.u64()?);
                let n = c.u32()?;
                let mut blobs = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let id = ChunkId(c.u64()?, c.u64()?);
                    blobs.push((id, c.bytes()?));
                }
                LogOp::PutChunked {
                    pod,
                    epoch,
                    manifest,
                    image,
                    blobs,
                }
            }
            2 => LogOp::Commit { epoch: c.u64()? },
            3 => LogOp::Discard { epoch: c.u64()? },
            4 => LogOp::Gc,
            5 => LogOp::Prune { keep: c.u64()? },
            _ => return None,
        };
        c.done().then_some(op)
    }
}

fn put_bytes(w: &mut Vec<u8>, b: &[u8]) {
    w.extend_from_slice(&(b.len() as u32).to_le_bytes());
    w.extend_from_slice(b);
}

fn put_str(w: &mut Vec<u8>, s: &str) {
    put_bytes(w, s.as_bytes());
}

fn log_header() -> Vec<u8> {
    let mut h = Vec::with_capacity(6);
    h.extend_from_slice(&REPLOG_MAGIC.to_le_bytes());
    h.extend_from_slice(&REPLOG_VERSION.to_le_bytes());
    h
}

fn encode_record(op: &LogOp) -> Vec<u8> {
    let (tag, payload) = op.encode_payload();
    let mut rec = Vec::with_capacity(payload.len() + 13);
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.push(tag);
    rec.extend_from_slice(&payload);
    let h = digest::fold(digest::fold(digest::OFFSET, &[tag]), &payload);
    rec.extend_from_slice(&h.to_le_bytes());
    rec
}

/// Appends one op to the `CRZL` log at `path`, creating the file (with
/// its header) on first use.
pub fn append_record(fs: &NetFs, path: &str, op: &LogOp) {
    if !fs.exists(path) {
        fs.write_file(path, log_header());
    }
    fs.append_file(path, &encode_record(op));
}

/// Appends only the first `frac`/256 of the record's bytes — a log append
/// torn by a mid-write crash. The valid-prefix reader will stop at the
/// record boundary before the tear.
pub fn append_torn_record(fs: &NetFs, path: &str, op: &LogOp, frac: u8) {
    if !fs.exists(path) {
        fs.write_file(path, log_header());
    }
    let rec = encode_record(op);
    let keep = rec.len() * frac as usize / 256;
    fs.append_file(path, &rec[..keep]);
}

/// Reads the longest valid prefix of the log at `path`: the decoded ops
/// and the byte length of that prefix (header included). A missing file,
/// bad header, torn tail or checksum mismatch terminates the scan at the
/// last whole record.
pub fn read_log(fs: &NetFs, path: &str) -> (Vec<LogOp>, u64) {
    let Some(bytes) = fs.read_file(path) else {
        return (Vec::new(), 0);
    };
    let mut c = Cur::new(&bytes);
    let hdr = (|| Some((c.u32()?, c.u16()?)))();
    if hdr != Some((REPLOG_MAGIC, REPLOG_VERSION)) {
        return (Vec::new(), 0);
    }
    let mut ops = Vec::new();
    let mut valid = c.i as u64;
    loop {
        let rec = (|| {
            let len = c.u32()? as usize;
            let tag = c.u8()?;
            let payload = c.take(len)?;
            let want = digest::fold(digest::fold(digest::OFFSET, &[tag]), payload);
            if c.u64()? != want {
                return None;
            }
            LogOp::decode_payload(tag, payload)
        })();
        match rec {
            Some(op) => {
                ops.push(op);
                valid = c.i as u64;
            }
            None => break,
        }
    }
    (ops, valid)
}

// ---- op application ---------------------------------------------------------

/// Applies one log op to a replica's store tree. `torn` injects a
/// torn-data fault: the op's log record landed whole, but chunk bodies /
/// the plain image only got `frac`/256 of their bytes (and the plain arm's
/// digest sidecar never lands — the disk died before the rename). Returns
/// the GC reclaim count for [`LogOp::Gc`], `0` otherwise.
fn apply_op(store: &CheckpointStore, op: &LogOp, torn: Option<u8>) -> usize {
    match op {
        LogOp::PutPlain { pod, epoch, bytes } => match torn {
            None => store.put_image(pod, *epoch, bytes.clone()),
            Some(frac) => {
                let keep = bytes.len() * frac as usize / 256;
                if keep > 0 {
                    store
                        .fs()
                        .write_file(&store.image_path(pod, *epoch), bytes[..keep].to_vec());
                }
            }
        },
        LogOp::PutChunked {
            pod,
            epoch,
            manifest,
            image,
            blobs,
        } => apply_chunked(store, pod, *epoch, manifest, *image, blobs, torn),
        LogOp::Commit { epoch } => store.commit(*epoch),
        LogOp::Discard { epoch } => store.discard_epoch(*epoch),
        LogOp::Gc => return store.gc_orphan_chunks(),
        LogOp::Prune { keep } => store.prune_below(*keep),
    }
    0
}

/// The chunked-put apply: write absent chunk bodies (torn to a prefix
/// under a [`ReplicaFaultKind::TornChunk`] fault), then the digest sidecar
/// and manifest, then bump refcounts — once per manifest record, and only
/// if this exact manifest wasn't already on disk (idempotence under
/// replay, mirroring [`CheckpointStore::put_prepared`]).
fn apply_chunked(
    store: &CheckpointStore,
    pod: &str,
    epoch: u64,
    manifest: &[u8],
    image: ChunkId,
    blobs: &[(ChunkId, Vec<u8>)],
    torn: Option<u8>,
) {
    for (id, body) in blobs {
        let path = store.chunk_path(*id);
        if !store.fs().exists(&path) {
            let stored = match torn {
                None => body.clone(),
                Some(frac) => body[..body.len() * frac as usize / 256].to_vec(),
            };
            store.fs().write_file(&path, stored);
        }
    }
    let mpath = store.manifest_path(pod, epoch);
    let fresh = store.fs().read_file(&mpath).as_deref() != Some(manifest);
    store.write_digest(pod, epoch, image);
    store.fs().write_file(&mpath, manifest.to_vec());
    if fresh {
        if let Some((_, recs)) = store::decode_manifest(manifest) {
            let mut refs = store.read_refs();
            for (id, _, _) in recs {
                *refs.entry(id).or_insert(0) += 1;
            }
            store.write_refs(&refs);
        }
    }
}

// ---- the replicated store ---------------------------------------------------

/// What a scrub pass found and fixed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScrubReport {
    /// The replica elected as reference: newest committed epoch in its
    /// valid log prefix, then log length, ties to the lowest index.
    pub reference: usize,
    /// Replicas whose log or tree diverged and were rebuilt from the
    /// reference log.
    pub repaired: Vec<usize>,
    /// Previously-crashed replicas brought back into the read/write set.
    pub revived: Vec<usize>,
}

/// What a compaction pass rewrote (see [`ReplicatedStore::compact_logs`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CompactReport {
    /// The live replicas whose logs were rewritten, ascending.
    pub compacted: Vec<usize>,
    /// Op count of the primary's log before compaction.
    pub ops_before: usize,
    /// Op count of the synthesized minimal log.
    pub ops_after: usize,
    /// Log bytes reclaimed per replica (primary's old length minus the
    /// minimal log's length; saturating).
    pub bytes_reclaimed: u64,
}

/// k replica [`CheckpointStore`]s behind the one-store API. Replica 0
/// lives at the primary `/ckpt/...` layout; replica `i > 0` under
/// `/rep<i>`. All writes fan out through the operation log; reads are
/// digest-checked quorum reads with healthy-replica fallback.
#[derive(Debug, Clone)]
pub struct ReplicatedStore {
    fs: NetFs,
    job: String,
    k: usize,
    threads: usize,
}

impl ReplicatedStore {
    /// Creates a k-way replicated store view for `job` (`k` is clamped to
    /// at least 1; `k = 1` is the plain unreplicated store).
    pub fn new(fs: NetFs, job: impl Into<String>, k: usize) -> Self {
        ReplicatedStore {
            fs,
            job: job.into(),
            k: k.max(1),
            threads: 0,
        }
    }

    /// Sets the worker count for the capture/restore kernels (`0` = auto).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The job name.
    pub fn job(&self) -> &str {
        &self.job
    }

    /// The replication factor k.
    pub fn replica_count(&self) -> usize {
        self.k
    }

    fn replica_root(r: usize) -> String {
        if r == 0 {
            String::new()
        } else {
            format!("/rep{r}")
        }
    }

    /// The store view of replica `r` (0 = the primary layout).
    pub fn replica(&self, r: usize) -> CheckpointStore {
        CheckpointStore::new(self.fs.clone(), self.job.clone())
            .with_root(Self::replica_root(r))
            .with_threads(self.threads)
    }

    /// Path of replica `r`'s operation log.
    pub fn log_path(&self, r: usize) -> String {
        format!("{}/replog/{}.log", Self::replica_root(r), self.job)
    }

    fn dead(&self) -> BTreeSet<usize> {
        if self.k == 1 {
            BTreeSet::new()
        } else {
            read_dead(&self.fs)
        }
    }

    /// Replica indices currently in the read/write set, ascending.
    pub fn alive_replicas(&self) -> Vec<usize> {
        let dead = self.dead();
        (0..self.k).filter(|r| !dead.contains(r)).collect()
    }

    fn primary_index(&self) -> usize {
        self.alive_replicas().first().copied().unwrap_or(0)
    }

    /// The first live replica's store view — the one whose state every
    /// prepare consults (all live replicas are byte-identical, so any
    /// would do; picking the lowest index keeps it deterministic).
    pub fn primary(&self) -> CheckpointStore {
        self.replica(self.primary_index())
    }

    /// Fans one logical op out to every live replica: fault check, log
    /// append, apply. Returns the primary's apply result (the GC count).
    fn write_op(&self, op: LogOp) -> usize {
        let mut dead = read_dead(&self.fs);
        let point = op.point();
        let mut out = None;
        for r in 0..self.k {
            if dead.contains(&r) {
                continue;
            }
            match take_fault_effect(&self.fs, r, point) {
                Some(ReplicaFaultKind::Crash) => {
                    dead.insert(r);
                }
                Some(ReplicaFaultKind::TornLog(frac)) => {
                    append_torn_record(&self.fs, &self.log_path(r), &op, frac);
                    dead.insert(r);
                }
                Some(ReplicaFaultKind::TornChunk(frac)) => {
                    append_record(&self.fs, &self.log_path(r), &op);
                    apply_op(&self.replica(r), &op, Some(frac));
                }
                None => {
                    append_record(&self.fs, &self.log_path(r), &op);
                    let n = apply_op(&self.replica(r), &op, None);
                    if out.is_none() {
                        out = Some(n);
                    }
                }
            }
        }
        write_dead(&self.fs, &dead);
        out.unwrap_or(0)
    }

    // ---- writes (logged) ------------------------------------------------

    /// Applies a prepared write to every live replica through the log.
    pub fn put_prepared(&self, pod_name: &str, epoch: u64, put: PreparedPut) {
        if self.k == 1 {
            return self.replica(0).put_prepared(pod_name, epoch, put);
        }
        let op = match put {
            PreparedPut::Plain(bytes) => LogOp::PutPlain {
                pod: pod_name.to_owned(),
                epoch,
                bytes,
            },
            PreparedPut::Chunked(c) => {
                // The record carries exactly the chunk bodies absent from
                // the live replicas' shared state right now, so replaying
                // the log from empty encounters the same store the writer
                // saw and the log stays self-contained.
                let primary = self.primary();
                let mut seen = BTreeSet::new();
                let mut blobs = Vec::new();
                for ch in &c.chunks {
                    if seen.insert(ch.id) && !self.fs.exists(&primary.chunk_path(ch.id)) {
                        blobs.push((ch.id, ch.stored.to_vec()));
                    }
                }
                LogOp::PutChunked {
                    pod: pod_name.to_owned(),
                    epoch,
                    manifest: c.manifest().to_vec(),
                    image: c.image_digest(),
                    blobs,
                }
            }
        };
        self.write_op(op);
    }

    /// Applies only a torn prefix of a prepared write — a disk tear, not a
    /// store op, so it is deliberately *not* logged: replay never
    /// resurrects the stranded bytes, and scrub's wipe+replay reclaims
    /// them on every replica.
    pub fn put_torn(&self, pod_name: &str, epoch: u64, put: &PreparedPut, frac: u8) {
        for r in self.alive_replicas() {
            self.replica(r).put_torn(pod_name, epoch, put, frac);
        }
    }

    /// Writes the commit record for `epoch` on every live replica.
    pub fn commit(&self, epoch: u64) {
        if self.k == 1 {
            return self.replica(0).commit(epoch);
        }
        self.write_op(LogOp::Commit { epoch });
    }

    /// Discards every file of `epoch` on every live replica.
    pub fn discard_epoch(&self, epoch: u64) {
        if self.k == 1 {
            return self.replica(0).discard_epoch(epoch);
        }
        self.write_op(LogOp::Discard { epoch });
    }

    /// Discards every committed epoch below `keep` on every live replica.
    pub fn prune_below(&self, keep: u64) {
        if self.k == 1 {
            return self.replica(0).prune_below(keep);
        }
        self.write_op(LogOp::Prune { keep });
    }

    /// Reclaims orphan chunk files on every live replica; returns the
    /// primary's reclaim count.
    pub fn gc_orphan_chunks(&self) -> usize {
        if self.k == 1 {
            return self.replica(0).gc_orphan_chunks();
        }
        self.write_op(LogOp::Gc)
    }

    // ---- prepares (pure, primary state) ---------------------------------

    /// [`CheckpointStore::prepare_chunked`] against the primary replica's
    /// chunk population.
    pub fn prepare_chunked(
        &self,
        raw: &[u8],
        cuts: &[(usize, usize)],
        cfg: &StoreConfig,
    ) -> PreparedChunked {
        self.primary().prepare_chunked(raw, cuts, cfg)
    }

    /// [`CheckpointStore::prepare_chunked_hinted`] against the primary
    /// replica's chunk population.
    pub fn prepare_chunked_hinted(
        &self,
        raw: &[u8],
        hints: &[PageHint],
        cfg: &StoreConfig,
        pod_name: &str,
        cache: &mut DigestCache,
    ) -> PreparedChunked {
        self.primary()
            .prepare_chunked_hinted(raw, hints, cfg, pod_name, cache)
    }

    // ---- reads ----------------------------------------------------------

    /// Quorum read of a pod image: collect digest-sidecar votes from every
    /// live replica, elect the majority digest (ties to the lowest
    /// replica), and serve the first replica whose bytes verify against
    /// it. Falls back to any live replica that self-verifies when no
    /// majority copy is readable.
    pub fn get_image(&self, pod_name: &str, epoch: u64) -> Option<Vec<u8>> {
        if self.k == 1 {
            return self.replica(0).get_image(pod_name, epoch);
        }
        let alive = self.alive_replicas();
        let mut votes: Vec<(ChunkId, usize)> = Vec::new();
        for &r in &alive {
            if let Some(d) = self.replica(r).read_digest(pod_name, epoch) {
                match votes.iter_mut().find(|(x, _)| *x == d) {
                    Some((_, n)) => *n += 1,
                    None => votes.push((d, 1)),
                }
            }
        }
        let mut winner = None;
        for &(d, n) in &votes {
            if winner.is_none_or(|(_, wn)| n > wn) {
                winner = Some((d, n));
            }
        }
        let (want, _) = winner?;
        for &r in &alive {
            let rep = self.replica(r);
            if rep.read_digest(pod_name, epoch) == Some(want) {
                // The store's own read path re-verifies chunk addresses
                // and the whole-image digest, so a corrupt copy under a
                // matching sidecar still falls through.
                if let Some(bytes) = rep.get_image(pod_name, epoch) {
                    return Some(bytes);
                }
            }
        }
        for &r in &alive {
            if let Some(bytes) = self.replica(r).get_image(pod_name, epoch) {
                return Some(bytes);
            }
        }
        None
    }

    /// Logical image size, from the primary replica.
    pub fn image_len(&self, pod_name: &str, epoch: u64) -> Option<u64> {
        self.primary().image_len(pod_name, epoch)
    }

    /// Physical restore size, from the primary replica.
    pub fn stored_len(&self, pod_name: &str, epoch: u64) -> Option<u64> {
        self.primary().stored_len(pod_name, epoch)
    }

    /// True if `epoch` has a commit record on the primary replica.
    pub fn is_committed(&self, epoch: u64) -> bool {
        self.primary().is_committed(epoch)
    }

    /// The newest committed epoch visible on *any* live replica — what a
    /// restart rolls back to even when the primary died mid-commit.
    pub fn latest_committed_epoch(&self) -> Option<u64> {
        self.alive_replicas()
            .into_iter()
            .filter_map(|r| self.replica(r).latest_committed_epoch())
            .max()
    }

    /// Committed epochs on the primary replica, ascending.
    pub fn committed_epochs(&self) -> Vec<u64> {
        self.primary().committed_epochs()
    }

    /// Uncommitted (half-written) epochs on the primary replica.
    pub fn uncommitted_epochs(&self) -> Vec<u64> {
        self.primary().uncommitted_epochs()
    }

    /// Pod names with images in an epoch, from the primary replica.
    pub fn pods_in_epoch(&self, epoch: u64) -> Vec<String> {
        self.primary().pods_in_epoch(epoch)
    }

    /// Orphan chunk audit on the primary replica.
    pub fn orphan_chunks(&self) -> Vec<ChunkId> {
        self.primary().orphan_chunks()
    }

    /// Every chunk file on the primary replica, ascending.
    pub fn live_chunks(&self) -> Vec<ChunkId> {
        self.primary().live_chunks()
    }

    // ---- compaction -----------------------------------------------------

    /// Rewrites every live replica's log (and tree) to the minimal
    /// self-contained form that reconstructs its current contents: one
    /// put per pod image still on disk plus one commit record per
    /// committed epoch, in epoch order.
    ///
    /// The append-only log otherwise retains every historical put's blob
    /// bytes forever — discarded and pruned epochs included — so a
    /// long-running job's write amplification grows with history, not
    /// state. Compaction caps it at ≈2k (k store trees + k minimal logs);
    /// the floor is 2k rather than k because the log must keep carrying
    /// the retained epochs' blobs — wipe + replay-from-empty is scrub's
    /// one true constructor of replica state.
    ///
    /// Each live replica is rebuilt by wipe + replay of the synthesized
    /// log, so the post-compaction invariant is exactly scrub's: log
    /// bytes equal ⇒ trees byte-identical. Dead replicas keep their stale
    /// logs until scrub revives them; the scrub election ranks newest
    /// commit epoch above log length precisely so a freshly compacted
    /// (short) log still outranks a stale replica's longer history. A
    /// maintenance pass, not a logical store op: nothing is appended to
    /// the log and the replica fault points do not fire. No-op at `k = 1`.
    pub fn compact_logs(&self) -> CompactReport {
        if self.k == 1 {
            return CompactReport::default();
        }
        let alive = self.alive_replicas();
        let Some(&primary) = alive.first() else {
            return CompactReport::default();
        };
        let (old_ops, old_len) = read_log(&self.fs, &self.log_path(primary));
        let ops = self.synthesize_ops(primary);
        let mut log = log_header();
        for op in &ops {
            log.extend_from_slice(&encode_record(op));
        }
        for &r in &alive {
            self.wipe_replica(r);
            self.replay_log(r, &log);
        }
        CompactReport {
            compacted: alive,
            ops_before: old_ops.len(),
            ops_after: ops.len(),
            bytes_reclaimed: old_len.saturating_sub(log.len() as u64),
        }
    }

    /// The minimal op sequence whose replay-from-empty reconstructs
    /// replica `r`'s current tree: for each epoch still on disk
    /// (ascending) the put of every pod image present, then its commit
    /// record if committed. Chunk blobs ride with the first put that
    /// references them, exactly as a live [`ReplicatedStore::put_prepared`]
    /// would have logged them against an empty store, so the synthesized
    /// log is self-contained.
    fn synthesize_ops(&self, r: usize) -> Vec<LogOp> {
        let store = self.replica(r);
        let committed: BTreeSet<u64> = store.committed_epochs().into_iter().collect();
        let mut epochs: Vec<u64> = store.uncommitted_epochs();
        epochs.extend(committed.iter().copied());
        epochs.sort_unstable();
        epochs.dedup();
        let mut emitted: BTreeSet<ChunkId> = BTreeSet::new();
        let mut ops = Vec::new();
        for &epoch in &epochs {
            let mut pods = store.pods_in_epoch(epoch);
            pods.sort();
            pods.dedup();
            for pod in pods {
                if let Some(manifest) = self.fs.read_file(&store.manifest_path(&pod, epoch)) {
                    // A chunked image missing its digest sidecar is torn
                    // state no quorum read will ever serve; drop it rather
                    // than synthesize a sidecar the bytes never earned.
                    let Some(image) = store.read_digest(&pod, epoch) else {
                        continue;
                    };
                    let mut blobs = Vec::new();
                    if let Some((_, recs)) = store::decode_manifest(&manifest) {
                        for (id, _, _) in recs {
                            if emitted.insert(id) {
                                if let Some(body) = self.fs.read_file(&store.chunk_path(id)) {
                                    blobs.push((id, body));
                                }
                            }
                        }
                    }
                    ops.push(LogOp::PutChunked {
                        pod,
                        epoch,
                        manifest,
                        image,
                        blobs,
                    });
                } else if let Some(bytes) = self.fs.read_file(&store.image_path(&pod, epoch)) {
                    ops.push(LogOp::PutPlain { pod, epoch, bytes });
                }
            }
            if committed.contains(&epoch) {
                ops.push(LogOp::Commit { epoch });
            }
        }
        ops
    }

    // ---- scrub ----------------------------------------------------------

    /// Digest of replica `r`'s entire store tree (every path and byte
    /// under its `/ckpt/<job>/` prefix). Two replicas with equal tree
    /// digests hold byte-identical checkpoint state.
    pub fn tree_digest(&self, r: usize) -> u64 {
        let root = Self::replica_root(r);
        let prefix = format!("{}/ckpt/{}/", root, self.job);
        let mut h = digest::OFFSET;
        for path in self.fs.list(&prefix) {
            let rel = path.strip_prefix(&root).unwrap_or(&path);
            h = digest::fold_u64(h, rel.len() as u64);
            h = digest::fold(h, rel.as_bytes());
            let bytes = self.fs.read_file(&path).unwrap_or_default();
            h = digest::fold_u64(h, bytes.len() as u64);
            h = digest::fold(h, &bytes);
        }
        h
    }

    fn wipe_replica(&self, r: usize) {
        let root = Self::replica_root(r);
        for path in self.fs.list(&format!("{}/ckpt/{}/", root, self.job)) {
            self.fs.remove(&path);
        }
        self.fs.remove(&self.log_path(r));
    }

    fn replay_log(&self, r: usize, log_bytes: &[u8]) {
        self.fs.write_file(&self.log_path(r), log_bytes.to_vec());
        let (ops, _) = read_log(&self.fs, &self.log_path(r));
        let store = self.replica(r);
        for op in &ops {
            apply_op(&store, op, None);
        }
    }

    /// Compares replica logs and tree digests, elects a reference replica
    /// by `(newest committed epoch in the valid log prefix, op count)` —
    /// ties to the lowest index — rebuilds it canonically (wipe + replay
    /// its own valid log prefix, which also truncates any torn tail and
    /// reclaims unlogged stranded bytes), and rebuilds every diverging
    /// replica from the reference log. Crashed replicas are revived:
    /// after repair they hold the reference state and rejoin the
    /// read/write set.
    ///
    /// Commit history outranks raw length so that a live replica whose
    /// log was compacted (short, but current) can never lose the election
    /// to a replica that died before compaction holding a longer — but
    /// staler — history, which would silently roll back committed epochs.
    pub fn scrub_and_repair(&self) -> ScrubReport {
        if self.k == 1 {
            return ScrubReport::default();
        }
        let prev_dead = read_dead(&self.fs);
        let mut reference = 0;
        let mut best: Option<(u64, usize)> = None;
        for r in 0..self.k {
            let (ops, _) = read_log(&self.fs, &self.log_path(r));
            let newest_commit = ops
                .iter()
                .filter_map(|op| match op {
                    LogOp::Commit { epoch } => Some(*epoch),
                    _ => None,
                })
                .max()
                .unwrap_or(0);
            let key = (newest_commit, ops.len());
            if best.is_none_or(|b| key > b) {
                best = Some(key);
                reference = r;
            }
        }
        let (_, valid) = read_log(&self.fs, &self.log_path(reference));
        let ref_log = self
            .fs
            .read_file(&self.log_path(reference))
            .map(|b| b[..valid as usize].to_vec())
            .unwrap_or_else(log_header);
        // Canonical rebuild of the reference itself: wipe + replay is the
        // one true constructor, so even a reference whose *tree* was
        // corrupted (torn chunk bodies under an intact log) converges to
        // the state its log dictates.
        self.wipe_replica(reference);
        self.replay_log(reference, &ref_log);
        let want = self.tree_digest(reference);
        let mut repaired = Vec::new();
        for r in 0..self.k {
            if r == reference {
                continue;
            }
            let r_log = self.fs.read_file(&self.log_path(r)).unwrap_or_default();
            if r_log != ref_log || self.tree_digest(r) != want {
                self.wipe_replica(r);
                self.replay_log(r, &ref_log);
                repaired.push(r);
            }
        }
        write_dead(&self.fs, &BTreeSet::new());
        ScrubReport {
            reference,
            repaired,
            revived: prev_dead.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(fill: u8, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| fill.wrapping_add((i / 256) as u8))
            .collect()
    }

    fn dedup_cfg() -> StoreConfig {
        StoreConfig {
            chunk_bytes: 256,
            dedup: true,
            compress: true,
            threads: 1,
            replicas: 3,
        }
    }

    fn put_epoch(rs: &ReplicatedStore, cfg: &StoreConfig, epoch: u64, fill: u8) {
        let raw = image(fill, 1024);
        let prepared = rs.prepare_chunked(&raw, &[], cfg);
        rs.put_prepared("pod0", epoch, PreparedPut::Chunked(prepared));
        rs.commit(epoch);
    }

    fn digests(rs: &ReplicatedStore) -> Vec<u64> {
        (0..rs.replica_count()).map(|r| rs.tree_digest(r)).collect()
    }

    #[test]
    fn record_codec_round_trips_every_op() {
        let ops = vec![
            LogOp::PutPlain {
                pod: "a".into(),
                epoch: 3,
                bytes: vec![1, 2, 3],
            },
            LogOp::PutChunked {
                pod: "b".into(),
                epoch: 4,
                manifest: vec![9; 40],
                image: ChunkId(7, 8),
                blobs: vec![(ChunkId(1, 2), vec![5; 10]), (ChunkId(3, 4), vec![])],
            },
            LogOp::Commit { epoch: 4 },
            LogOp::Discard { epoch: 3 },
            LogOp::Gc,
            LogOp::Prune { keep: 4 },
        ];
        let fs = NetFs::new();
        for op in &ops {
            append_record(&fs, "/replog/t.log", op);
        }
        let (back, valid) = read_log(&fs, "/replog/t.log");
        assert_eq!(back, ops);
        assert_eq!(valid, fs.len_of("/replog/t.log").unwrap());
    }

    #[test]
    fn torn_append_keeps_only_the_valid_prefix() {
        let fs = NetFs::new();
        let a = LogOp::Commit { epoch: 1 };
        let b = LogOp::Commit { epoch: 2 };
        append_record(&fs, "/replog/t.log", &a);
        append_torn_record(&fs, "/replog/t.log", &b, 128);
        let (ops, valid) = read_log(&fs, "/replog/t.log");
        assert_eq!(ops, vec![a]);
        assert!(valid < fs.len_of("/replog/t.log").unwrap());
    }

    #[test]
    fn replicas_converge_and_replay_is_idempotent() {
        let fs = NetFs::new();
        let cfg = dedup_cfg();
        let rs = ReplicatedStore::new(fs.clone(), "job", 3).with_threads(1);
        put_epoch(&rs, &cfg, 1, 0x11);
        put_epoch(&rs, &cfg, 2, 0x11); // heavy dedup vs epoch 1
        rs.prune_below(2);
        let d = digests(&rs);
        assert_eq!(d[0], d[1]);
        assert_eq!(d[1], d[2]);
        // Re-applying the full log over the existing replica state must be
        // a no-op (crash-during-replay safety).
        let (ops, _) = read_log(&fs, &rs.log_path(1));
        let store = rs.replica(1);
        for op in &ops {
            apply_op(&store, op, None);
        }
        assert_eq!(rs.tree_digest(1), d[1]);
        // And replaying onto an empty tree reconstructs the same bytes.
        rs.wipe_replica(2);
        let log = fs.read_file(&rs.log_path(1)).unwrap();
        rs.replay_log(2, &log);
        assert_eq!(rs.tree_digest(2), d[1]);
    }

    #[test]
    fn quorum_read_survives_crash_and_corruption() {
        let fs = NetFs::new();
        let cfg = dedup_cfg();
        let rs = ReplicatedStore::new(fs.clone(), "job", 3).with_threads(1);
        put_epoch(&rs, &cfg, 1, 0x22);
        let raw = image(0x22, 1024);
        install_replica_faults(
            &fs,
            &[
                ReplicaFault {
                    replica: 0,
                    point: StoreOpPoint::Put,
                    nth: 0,
                    kind: ReplicaFaultKind::Crash,
                },
                ReplicaFault {
                    replica: 1,
                    point: StoreOpPoint::Put,
                    nth: 0,
                    kind: ReplicaFaultKind::TornChunk(64),
                },
            ],
        );
        let raw2 = image(0x99, 1024);
        let prepared = rs.prepare_chunked(&raw2, &[], &cfg);
        rs.put_prepared("pod0", 2, PreparedPut::Chunked(prepared));
        rs.commit(2);
        // Replica 0 crashed (stale), replica 1 is corrupt, replica 2 is
        // whole: epoch 2 must still read back exactly.
        assert_eq!(rs.alive_replicas(), vec![1, 2]);
        assert_eq!(rs.get_image("pod0", 2), Some(raw2));
        assert_eq!(rs.get_image("pod0", 1), Some(raw));
        assert_eq!(rs.latest_committed_epoch(), Some(2));
    }

    #[test]
    fn scrub_converges_torn_and_crashed_replicas() {
        let fs = NetFs::new();
        let cfg = dedup_cfg();
        let rs = ReplicatedStore::new(fs.clone(), "job", 3).with_threads(1);
        put_epoch(&rs, &cfg, 1, 0x33);
        install_replica_faults(
            &fs,
            &[
                ReplicaFault {
                    replica: 1,
                    point: StoreOpPoint::Put,
                    nth: 0,
                    kind: ReplicaFaultKind::TornChunk(100),
                },
                ReplicaFault {
                    replica: 2,
                    point: StoreOpPoint::Commit,
                    nth: 0,
                    kind: ReplicaFaultKind::TornLog(77),
                },
            ],
        );
        put_epoch(&rs, &cfg, 2, 0x44);
        let rep = rs.scrub_and_repair();
        assert_eq!(rep.reference, 0);
        assert_eq!(rep.repaired, vec![1, 2]);
        assert_eq!(rep.revived, vec![2]);
        let d = digests(&rs);
        assert_eq!(d[0], d[1]);
        assert_eq!(d[1], d[2]);
        assert_eq!(rs.alive_replicas(), vec![0, 1, 2]);
        assert_eq!(rs.get_image("pod0", 2), Some(image(0x44, 1024)));
    }

    #[test]
    fn compaction_minimizes_logs_and_preserves_reads() {
        let fs = NetFs::new();
        let cfg = dedup_cfg();
        let rs = ReplicatedStore::new(fs.clone(), "job", 3).with_threads(1);
        put_epoch(&rs, &cfg, 1, 0x61);
        put_epoch(&rs, &cfg, 2, 0x61); // heavy dedup vs epoch 1
        put_epoch(&rs, &cfg, 3, 0x77);
        rs.prune_below(3);
        rs.gc_orphan_chunks();
        let before_len = fs.len_of(&rs.log_path(0)).unwrap_or(0);

        let rep = rs.compact_logs();
        assert_eq!(rep.compacted, vec![0, 1, 2]);
        // History: 3 × (put + commit) + prune + gc = 8 ops; state: one
        // retained epoch = put + commit.
        assert_eq!(rep.ops_before, 8);
        assert_eq!(rep.ops_after, 2);
        assert!(rep.bytes_reclaimed > 0);
        assert!(fs.len_of(&rs.log_path(0)).unwrap_or(u64::MAX) < before_len);

        // All replicas hold identical trees and the retained epoch still
        // reads back exactly.
        let d = digests(&rs);
        assert_eq!(d[0], d[1]);
        assert_eq!(d[1], d[2]);
        assert_eq!(rs.get_image("pod0", 3), Some(image(0x77, 1024)));
        assert_eq!(rs.latest_committed_epoch(), Some(3));

        // The compacted log is self-contained: replay-from-empty
        // reconstructs the same tree.
        rs.wipe_replica(2);
        let log = fs.read_file(&rs.log_path(0)).unwrap_or_default();
        rs.replay_log(2, &log);
        assert_eq!(rs.tree_digest(2), d[0]);

        // And a scrub over the compacted set is a no-op.
        let scrub = rs.scrub_and_repair();
        assert!(scrub.repaired.is_empty());
        assert_eq!(digests(&rs), d);
    }

    #[test]
    fn scrub_election_prefers_commit_history_over_log_length() {
        let fs = NetFs::new();
        let cfg = dedup_cfg();
        let rs = ReplicatedStore::new(fs.clone(), "job", 3).with_threads(1);
        put_epoch(&rs, &cfg, 1, 0x11);
        put_epoch(&rs, &cfg, 2, 0x22);
        // Replica 2 dies before epoch 3, stranded with the 4-op history
        // [put1, commit1, put2, commit2].
        install_replica_faults(
            &fs,
            &[ReplicaFault {
                replica: 2,
                point: StoreOpPoint::Put,
                nth: 0,
                kind: ReplicaFaultKind::Crash,
            }],
        );
        put_epoch(&rs, &cfg, 3, 0x33);
        rs.prune_below(3);
        // The live replicas compact to the 2-op minimal log [put3,
        // commit3] — *shorter* than the dead replica's stale history. A
        // longest-log election would resurrect the stale replica as
        // reference and roll committed epoch 3 back; the commit-first key
        // must keep a live replica in charge.
        rs.compact_logs();
        let rep = rs.scrub_and_repair();
        assert_eq!(rep.reference, 0);
        assert_eq!(rep.revived, vec![2]);
        let d = digests(&rs);
        assert_eq!(d[0], d[1]);
        assert_eq!(d[1], d[2]);
        assert_eq!(rs.latest_committed_epoch(), Some(3));
        assert_eq!(rs.get_image("pod0", 3), Some(image(0x33, 1024)));
    }

    #[test]
    fn k1_writes_no_control_or_log_files() {
        let fs = NetFs::new();
        let rs = ReplicatedStore::new(fs.clone(), "job", 1);
        rs.put_prepared("pod0", 1, PreparedPut::Plain(image(0x55, 512)));
        rs.commit(1);
        assert_eq!(rs.compact_logs(), CompactReport::default());
        assert!(fs.list("/replog/").is_empty());
        assert!(fs.list("/replctl/").is_empty());
        assert!(fs.list("/rep").is_empty());
        assert_eq!(rs.get_image("pod0", 1), Some(image(0x55, 512)));
    }
}
