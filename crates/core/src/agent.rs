//! The per-node Checkpoint Agent (Fig. 2's right-hand column).
//!
//! Like the coordinator, the agent is a pure state machine: control
//! messages and local-completion notifications go in; actions for the
//! hosting runtime come out. The runtime executes them with real costs —
//! netfilter-rule installation, pod freeze, state extraction, disk I/O.

use des::SimTime;

use crate::proto::{CtlMsg, OpKind, ProtocolMode};

/// An action the hosting node must perform for its agent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AgentAction {
    /// Install filter rules silently dropping all traffic to/from the
    /// job's local pods (Fig. 2, Agent step 1).
    DisableComm,
    /// Remove those rules (Agent step 6).
    EnableComm,
    /// Stop the local pods and save their state; report completion via
    /// [`Agent::on_local_done`] (Agent step 2).
    BeginLocalCheckpoint {
        /// Epoch to tag the images with.
        epoch: u64,
    },
    /// Restore the local pods from epoch images; report completion via
    /// [`Agent::on_local_done`].
    BeginLocalRestore {
        /// Epoch to restore.
        epoch: u64,
    },
    /// Resume the stopped/restored pods (Agent step 5).
    ResumePods,
    /// Roll back an uncommitted checkpoint (abort path): discard images,
    /// resume pods, re-enable communication.
    RollBack {
        /// Epoch being abandoned.
        epoch: u64,
    },
    /// Send a message to the coordinator.
    Send(CtlMsg),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    Saving,
    Saved,
    Done,
}

/// The agent state machine.
#[derive(Debug)]
pub struct Agent {
    epoch: u64,
    kind: OpKind,
    mode: ProtocolMode,
    cow: bool,
    phase: Phase,
}

impl Agent {
    /// Creates an idle agent.
    pub fn new() -> Self {
        Agent {
            epoch: 0,
            kind: OpKind::Checkpoint,
            mode: ProtocolMode::Blocking,
            cow: false,
            phase: Phase::Idle,
        }
    }

    /// The epoch of the operation in progress (meaningless when idle).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// True when no operation is in progress.
    pub fn is_idle(&self) -> bool {
        matches!(self.phase, Phase::Idle | Phase::Done)
    }

    /// Handles a coordinator message.
    pub fn on_ctl(&mut self, msg: CtlMsg, _now: SimTime) -> Vec<AgentAction> {
        match msg {
            CtlMsg::Start { epoch, .. }
                if epoch == self.epoch && !matches!(self.phase, Phase::Idle) =>
            {
                // Duplicate start (retransmission): never restart the local
                // operation. If we already saved, our done may have been
                // lost — repeat it.
                if self.phase == Phase::Saved {
                    vec![AgentAction::Send(CtlMsg::Done { epoch })]
                } else {
                    Vec::new()
                }
            }
            CtlMsg::Start {
                kind,
                epoch,
                mode,
                cow,
            } => {
                self.epoch = epoch;
                self.kind = kind;
                self.mode = mode;
                self.cow = cow && kind == OpKind::Checkpoint;
                self.phase = Phase::Saving;
                let mut actions = vec![AgentAction::DisableComm];
                if mode == ProtocolMode::Optimized && kind == OpKind::Checkpoint {
                    // Fig. 4: acknowledge the communication cut immediately.
                    actions.push(AgentAction::Send(CtlMsg::CommDisabled { epoch }));
                }
                actions.push(match kind {
                    OpKind::Checkpoint => AgentAction::BeginLocalCheckpoint { epoch },
                    OpKind::Restart => AgentAction::BeginLocalRestore { epoch },
                });
                actions
            }
            CtlMsg::Continue { epoch } if epoch == self.epoch => {
                if self.phase == Phase::Done {
                    // Duplicate continue: our continue-done may have been
                    // lost — repeat it (resuming already happened).
                    return vec![AgentAction::Send(CtlMsg::ContinueDone { epoch })];
                }
                if !matches!(self.phase, Phase::Saved) {
                    return Vec::new(); // premature
                }
                self.phase = Phase::Done;
                vec![
                    AgentAction::ResumePods,
                    AgentAction::EnableComm,
                    AgentAction::Send(CtlMsg::ContinueDone { epoch }),
                ]
            }
            CtlMsg::Abort { epoch } if epoch == self.epoch => {
                if matches!(self.phase, Phase::Idle | Phase::Done) {
                    return Vec::new();
                }
                self.phase = Phase::Done;
                vec![AgentAction::RollBack { epoch }]
            }
            _ => Vec::new(),
        }
    }

    /// Notifies the agent that its local save/restore finished (state
    /// *captured*; in COW mode the disk write may still be in flight).
    pub fn on_local_done(&mut self, _now: SimTime) -> Vec<AgentAction> {
        if self.phase != Phase::Saving {
            return Vec::new(); // aborted meanwhile
        }
        self.phase = Phase::Saved;
        vec![AgentAction::Send(CtlMsg::Done { epoch: self.epoch })]
    }

    /// Notifies the agent that the captured image reached stable storage
    /// (COW mode only).
    pub fn on_local_durable(&mut self, _now: SimTime) -> Vec<AgentAction> {
        if !self.cow || matches!(self.phase, Phase::Idle) {
            return Vec::new();
        }
        vec![AgentAction::Send(CtlMsg::Durable { epoch: self.epoch })]
    }
}

impl Default for Agent {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: SimTime = SimTime::ZERO;

    #[test]
    fn blocking_checkpoint_flow_matches_fig2() {
        let mut a = Agent::new();
        let actions = a.on_ctl(
            CtlMsg::Start {
                kind: OpKind::Checkpoint,
                epoch: 5,
                mode: ProtocolMode::Blocking,
                cow: false,
            },
            T,
        );
        // Steps 1-2: filter first, then the local checkpoint.
        assert_eq!(
            actions,
            vec![
                AgentAction::DisableComm,
                AgentAction::BeginLocalCheckpoint { epoch: 5 }
            ]
        );
        // Step 3: done goes to the coordinator.
        assert_eq!(
            a.on_local_done(T),
            vec![AgentAction::Send(CtlMsg::Done { epoch: 5 })]
        );
        // Steps 5-7: resume, re-enable comm, ack.
        assert_eq!(
            a.on_ctl(CtlMsg::Continue { epoch: 5 }, T),
            vec![
                AgentAction::ResumePods,
                AgentAction::EnableComm,
                AgentAction::Send(CtlMsg::ContinueDone { epoch: 5 })
            ]
        );
        assert!(a.is_idle());
    }

    #[test]
    fn optimized_mode_acks_comm_disabled_immediately() {
        let mut a = Agent::new();
        let actions = a.on_ctl(
            CtlMsg::Start {
                kind: OpKind::Checkpoint,
                epoch: 1,
                mode: ProtocolMode::Optimized,
                cow: false,
            },
            T,
        );
        assert_eq!(
            actions,
            vec![
                AgentAction::DisableComm,
                AgentAction::Send(CtlMsg::CommDisabled { epoch: 1 }),
                AgentAction::BeginLocalCheckpoint { epoch: 1 }
            ]
        );
    }

    #[test]
    fn restart_disables_comm_before_restoring() {
        // §5: restore without a filter would let restored TCP state emit
        // segments before peers are ready — comm must be cut first.
        let mut a = Agent::new();
        let actions = a.on_ctl(
            CtlMsg::Start {
                kind: OpKind::Restart,
                epoch: 2,
                mode: ProtocolMode::Blocking,
                cow: false,
            },
            T,
        );
        assert_eq!(actions[0], AgentAction::DisableComm);
        assert_eq!(actions[1], AgentAction::BeginLocalRestore { epoch: 2 });
    }

    #[test]
    fn premature_continue_is_ignored() {
        let mut a = Agent::new();
        let _ = a.on_ctl(
            CtlMsg::Start {
                kind: OpKind::Checkpoint,
                epoch: 3,
                mode: ProtocolMode::Blocking,
                cow: false,
            },
            T,
        );
        // Continue before local save finished (should not happen with a
        // correct coordinator, but must be safe).
        assert!(a.on_ctl(CtlMsg::Continue { epoch: 3 }, T).is_empty());
        let _ = a.on_local_done(T);
        assert_eq!(a.on_ctl(CtlMsg::Continue { epoch: 3 }, T).len(), 3);
        // A duplicate continue only re-acks (idempotent under
        // retransmission); it must not resume anything twice.
        assert_eq!(
            a.on_ctl(CtlMsg::Continue { epoch: 3 }, T),
            vec![AgentAction::Send(CtlMsg::ContinueDone { epoch: 3 })]
        );
    }

    #[test]
    fn abort_rolls_back() {
        let mut a = Agent::new();
        let _ = a.on_ctl(
            CtlMsg::Start {
                kind: OpKind::Checkpoint,
                epoch: 9,
                mode: ProtocolMode::Blocking,
                cow: false,
            },
            T,
        );
        let _ = a.on_local_done(T);
        assert_eq!(
            a.on_ctl(CtlMsg::Abort { epoch: 9 }, T),
            vec![AgentAction::RollBack { epoch: 9 }]
        );
        // Local completion after abort is swallowed.
        assert!(a.on_local_done(T).is_empty());
    }

    #[test]
    fn cow_flow_reports_done_then_durable() {
        let mut a = Agent::new();
        let actions = a.on_ctl(
            CtlMsg::Start {
                kind: OpKind::Checkpoint,
                epoch: 4,
                mode: ProtocolMode::Blocking,
                cow: true,
            },
            T,
        );
        assert_eq!(actions[0], AgentAction::DisableComm);
        // Capture finishes first...
        assert_eq!(
            a.on_local_done(T),
            vec![AgentAction::Send(CtlMsg::Done { epoch: 4 })]
        );
        // ...the background write lands later (possibly after the resume).
        let _ = a.on_ctl(CtlMsg::Continue { epoch: 4 }, T);
        assert_eq!(
            a.on_local_durable(T),
            vec![AgentAction::Send(CtlMsg::Durable { epoch: 4 })]
        );
    }

    #[test]
    fn durable_is_suppressed_outside_cow_checkpoints() {
        let mut a = Agent::new();
        let _ = a.on_ctl(
            CtlMsg::Start {
                kind: OpKind::Checkpoint,
                epoch: 6,
                mode: ProtocolMode::Blocking,
                cow: false,
            },
            T,
        );
        let _ = a.on_local_done(T);
        assert!(a.on_local_durable(T).is_empty());
    }

    #[test]
    fn wrong_epoch_messages_ignored() {
        let mut a = Agent::new();
        let _ = a.on_ctl(
            CtlMsg::Start {
                kind: OpKind::Checkpoint,
                epoch: 1,
                mode: ProtocolMode::Blocking,
                cow: false,
            },
            T,
        );
        assert!(a.on_ctl(CtlMsg::Continue { epoch: 2 }, T).is_empty());
        assert!(a.on_ctl(CtlMsg::Abort { epoch: 2 }, T).is_empty());
    }
}
