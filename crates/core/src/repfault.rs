//! Replica fault plane: declaratively armed store faults and the crashed-
//! replica set, persisted in small control files on the shared filesystem.
//!
//! The replicated store (see [`crate::replog`]) consults this plane on
//! every logged mutation: [`take_fault_effect`] counts one occurrence of a
//! protocol point at a replica against every armed [`ReplicaFault`] and
//! reports the first whose trigger count was just reached. Keeping the
//! armed faults and their hit counters *on the filesystem* — rather than
//! in the store handle — means fault state survives handle
//! reconstruction (the cluster layer builds a fresh store view per
//! operation) and replays deterministically under a pinned seed.
//!
//! Control files live under `/replctl/` and never exist with replication
//! off; a `k = 1` store neither reads nor writes them.

use std::collections::BTreeSet;

use simos::fs::NetFs;

/// Control file holding armed replica faults and their hit counters.
const FAULTS_PATH: &str = "/replctl/FAULTS";
/// Control file holding the set of crashed replica indices.
const DEAD_PATH: &str = "/replctl/DEAD";

/// The store-protocol points a replica fault can trigger at: each logical
/// mutation class the operation log distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StoreOpPoint {
    /// A pod-image put (plain or chunked).
    Put = 0,
    /// A commit-record write.
    Commit = 1,
    /// An epoch discard (including prune compaction).
    Discard = 2,
    /// An orphan-chunk garbage collection.
    Gc = 3,
}

impl StoreOpPoint {
    /// Every point, in tag order.
    pub const ALL: [StoreOpPoint; 4] = [
        StoreOpPoint::Put,
        StoreOpPoint::Commit,
        StoreOpPoint::Discard,
        StoreOpPoint::Gc,
    ];

    /// The wire tag of this point.
    pub fn tag(self) -> u8 {
        self as u8
    }

    /// Parses a wire tag.
    pub fn from_tag(t: u8) -> Option<StoreOpPoint> {
        StoreOpPoint::ALL.into_iter().find(|p| p.tag() == t)
    }
}

/// What happens to a replica when an armed fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaFaultKind {
    /// The replica stops cold *before* the op reaches its log: nothing is
    /// appended or applied, now or ever again (until scrub revives it).
    /// Its on-disk state stays frozen at the previous op — stale, and
    /// excluded from reads.
    Crash,
    /// The log append tears partway through the record (`frac`/256 of the
    /// record's bytes land) and the replica dies. The valid-prefix reader
    /// drops the torn tail, so the replica's log is one op short.
    TornLog(u8),
    /// The log append completes but the op's data files (chunk bodies or
    /// the plain image) are torn to `frac`/256 of their bytes. The replica
    /// stays up — alive but corrupt — which is exactly what quorum reads
    /// must survive and scrub must detect (its log matches the reference
    /// byte-for-byte; only the tree digest betrays it).
    TornChunk(u8),
}

impl ReplicaFaultKind {
    pub(crate) fn encode(self) -> (u8, u8) {
        match self {
            ReplicaFaultKind::Crash => (0, 0),
            ReplicaFaultKind::TornLog(f) => (1, f),
            ReplicaFaultKind::TornChunk(f) => (2, f),
        }
    }

    pub(crate) fn decode(tag: u8, arg: u8) -> Option<ReplicaFaultKind> {
        match tag {
            0 => Some(ReplicaFaultKind::Crash),
            1 => Some(ReplicaFaultKind::TornLog(arg)),
            2 => Some(ReplicaFaultKind::TornChunk(arg)),
            _ => None,
        }
    }
}

/// One armed replica-store fault: at the `nth` occurrence (0-based) of
/// `point` on `replica`, inject `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaFault {
    /// Replica index in `0..k`.
    pub replica: usize,
    /// The store-protocol point to trigger at.
    pub point: StoreOpPoint,
    /// Which occurrence of `point` at this replica fires the fault
    /// (0 = the first).
    pub nth: u32,
    /// The injected failure.
    pub kind: ReplicaFaultKind,
}

/// Arms `faults` for the replicated stores sharing `fs` (hit counters
/// reset to zero) and clears any crashed-replica state from earlier runs.
pub fn install_replica_faults(fs: &NetFs, faults: &[ReplicaFault]) {
    let mut w = Vec::with_capacity(4 + faults.len() * 15);
    w.extend_from_slice(&(faults.len() as u32).to_le_bytes());
    for f in faults {
        let (ktag, arg) = f.kind.encode();
        w.extend_from_slice(&(f.replica as u32).to_le_bytes());
        w.push(f.point.tag());
        w.extend_from_slice(&f.nth.to_le_bytes());
        w.push(ktag);
        w.push(arg);
        w.extend_from_slice(&0u32.to_le_bytes()); // hit counter
    }
    fs.write_file(FAULTS_PATH, w);
    fs.remove(DEAD_PATH);
}

/// Removes all armed replica faults and crashed-replica state from `fs`,
/// leaving the filesystem byte-identical to a never-faulted run.
pub fn clear_replica_faults(fs: &NetFs) {
    fs.remove(FAULTS_PATH);
    fs.remove(DEAD_PATH);
}

fn load_faults(fs: &NetFs) -> Vec<(ReplicaFault, u32)> {
    let Some(bytes) = fs.read_file(FAULTS_PATH) else {
        return Vec::new();
    };
    let mut c = Cur::new(&bytes);
    let Some(n) = c.u32() else { return Vec::new() };
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let f = (|| {
            let replica = c.u32()? as usize;
            let point = StoreOpPoint::from_tag(c.u8()?)?;
            let nth = c.u32()?;
            let kind = ReplicaFaultKind::decode(c.u8()?, c.u8()?)?;
            let hits = c.u32()?;
            Some((
                ReplicaFault {
                    replica,
                    point,
                    nth,
                    kind,
                },
                hits,
            ))
        })();
        match f {
            Some(rec) => out.push(rec),
            None => return Vec::new(),
        }
    }
    out
}

fn store_fault_counters(fs: &NetFs, list: &[(ReplicaFault, u32)]) {
    let mut w = Vec::with_capacity(4 + list.len() * 19);
    w.extend_from_slice(&(list.len() as u32).to_le_bytes());
    for (f, hits) in list {
        let (ktag, arg) = f.kind.encode();
        w.extend_from_slice(&(f.replica as u32).to_le_bytes());
        w.push(f.point.tag());
        w.extend_from_slice(&f.nth.to_le_bytes());
        w.push(ktag);
        w.push(arg);
        w.extend_from_slice(&hits.to_le_bytes());
    }
    fs.write_file(FAULTS_PATH, w);
}

/// Counts one occurrence of `point` at `replica` against every armed
/// fault, returning the kind of the first fault whose trigger count was
/// just reached.
pub(crate) fn take_fault_effect(
    fs: &NetFs,
    replica: usize,
    point: StoreOpPoint,
) -> Option<ReplicaFaultKind> {
    let mut list = load_faults(fs);
    if list.is_empty() {
        return None;
    }
    let mut fired = None;
    for (f, hits) in &mut list {
        if f.replica == replica && f.point == point {
            if *hits == f.nth && fired.is_none() {
                fired = Some(f.kind);
            }
            *hits += 1;
        }
    }
    store_fault_counters(fs, &list);
    fired
}

pub(crate) fn read_dead(fs: &NetFs) -> BTreeSet<usize> {
    let Some(bytes) = fs.read_file(DEAD_PATH) else {
        return BTreeSet::new();
    };
    let mut c = Cur::new(&bytes);
    let Some(n) = c.u32() else {
        return BTreeSet::new();
    };
    let mut out = BTreeSet::new();
    for _ in 0..n {
        match c.u32() {
            Some(r) => out.insert(r as usize),
            None => return BTreeSet::new(),
        };
    }
    out
}

pub(crate) fn write_dead(fs: &NetFs, dead: &BTreeSet<usize>) {
    if dead.is_empty() {
        fs.remove(DEAD_PATH);
        return;
    }
    let mut w = Vec::with_capacity(4 + dead.len() * 4);
    w.extend_from_slice(&(dead.len() as u32).to_le_bytes());
    for r in dead {
        w.extend_from_slice(&(*r as u32).to_le_bytes());
    }
    fs.write_file(DEAD_PATH, w);
}

/// Little-endian byte cursor shared by the fault control files and the
/// `CRZL` record decoder in [`crate::replog`]: every `Option`-returning
/// accessor fails cleanly at a truncation instead of panicking.
pub(crate) struct Cur<'a> {
    b: &'a [u8],
    pub(crate) i: usize,
}

impl<'a> Cur<'a> {
    pub(crate) fn new(b: &'a [u8]) -> Self {
        Cur { b, i: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.i.checked_add(n)?;
        if end > self.b.len() {
            return None;
        }
        let s = &self.b[self.i..end];
        self.i = end;
        Some(s)
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.take(2)?.try_into().ok()?))
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    pub(crate) fn bytes(&mut self) -> Option<Vec<u8>> {
        let n = self.u32()? as usize;
        Some(self.take(n)?.to_vec())
    }

    pub(crate) fn string(&mut self) -> Option<String> {
        String::from_utf8(self.bytes()?).ok()
    }

    pub(crate) fn done(&self) -> bool {
        self.i == self.b.len()
    }
}
