//! Epoch-granular page-digest cache for the dedup capture path.
//!
//! Steady-state checkpoint epochs touch a small fraction of a pod's pages,
//! yet the reference [`CheckpointStore::prepare_chunked`] re-hashes and
//! re-encodes every page of every image each epoch. This module skips that
//! work for pages the kernel's dirty tracking proves untouched since the
//! previous capture:
//!
//! * [`page_hints`] labels each page-payload cut of a serialized
//!   [`PodImage`] with a stable identity (`(group index, page address)`) and
//!   a *clean* bit derived from the per-space dirty set the capture path
//!   already maintains (every capture clears the dirty set, so "not dirty
//!   at capture" means "byte-identical to the previous capture").
//! * [`DigestCache`] remembers, per pod and page identity, the chunk ids
//!   and encoded containers the previous capture produced.
//! * [`CheckpointStore::prepare_chunked_hinted`] reuses those entries for
//!   clean pages and computes everything else fresh — the compute ranges
//!   fan out across the [`crate::parpool`] worker pool (each worker with
//!   its own `CodecScratch`, each range through the `is_zero_page` fast
//!   path), while cache hits skip the pool entirely — producing a
//!   [`PreparedChunked`] **byte-identical** to the reference path's.
//!
//! # Determinism argument
//!
//! The hinted path never changes *what* is produced, only *how much work*
//! (and on how many threads) produces it. Chunk ranges are identical (same
//! cuts, same `split_ranges`). For a cache hit, the cut's raw bytes equal
//! the previous capture's bytes (the clean bit), so the remembered
//! `ChunkId` and encoded container are exactly what re-hashing and
//! re-encoding would yield. Computed ranges go through the pool's ordered
//! merge, so their sequence is the input sequence at every thread count.
//! Novelty and stored-length accounting always consult the live
//! filesystem, in range order, on the calling thread — identically on both
//! paths. The equivalence is pinned by the `hotpath_properties` and
//! `parallel_properties` twin-path proptests, and any doubt about a hint
//! degrades safely: an unrecognized cut layout or a dirty/unkeyed page
//! just takes the compute path.
//!
//! Cache entries are only ever trusted for one epoch step: each prepare
//! replaces the pod's entry map wholesale, and the cluster invalidates a
//! job's cache whenever pod memory changes outside a completed capture
//! (restores, migrations, aborted COW drains).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use zap::image::{ImageWriter, PodImage};

use crate::chunk::{self, ChunkId};
use crate::parpool::Pool;
use crate::store::{
    encode_ranges, CheckpointStore, PreparedChunked, StoreConfig, MANIFEST_MAGIC, STORE_VERSION,
};

/// Stable identity of a page payload across epochs: `(group index within
/// the image, guest page address)`.
pub type PageKey = (u32, u64);

/// One page-payload cut of a serialized image, labeled for the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageHint {
    /// Byte offset of the cut within the serialized image.
    pub offset: usize,
    /// Length of the cut.
    pub len: usize,
    /// Stable page identity, if this cut is a trackable private page.
    /// `None` (shared-memory segments, unrecognized layouts) always takes
    /// the compute path.
    pub key: Option<PageKey>,
    /// True iff the page was not written since the previous capture, per
    /// the kernel's dirty tracking. Only `clean` pages may reuse cache
    /// entries.
    pub clean: bool,
}

/// Labels the page cuts of `img` (as returned by
/// `PodImage::encode_with_page_cuts`) with identities and clean bits.
///
/// The encoder emits one cut per shared-memory segment (in `img.shm`
/// order) followed by one cut per page (groups in `img.groups` order,
/// pages in each group's stored order); `dirty[g]` is group `g`'s
/// dirty-page set as of this capture. If the cut count does not match that
/// layout the function falls back to keyless hints, which makes the hinted
/// prepare path equivalent to the reference path rather than wrong.
pub fn page_hints(
    img: &PodImage,
    cuts: &[(usize, usize)],
    dirty: &[BTreeSet<u64>],
) -> Vec<PageHint> {
    let expected = img.shm.len() + img.groups.iter().map(|g| g.pages.len()).sum::<usize>();
    if cuts.len() != expected || dirty.len() != img.groups.len() {
        return cuts
            .iter()
            .map(|&(offset, len)| PageHint {
                offset,
                len,
                key: None,
                clean: false,
            })
            .collect();
    }
    // Labels in cut order: shm segments first (keyless), then every
    // group's pages. The count check above guarantees the zip is exact.
    let mut labels: Vec<(Option<PageKey>, bool)> = Vec::with_capacity(expected);
    labels.resize(img.shm.len(), (None, false));
    for (gi, g) in img.groups.iter().enumerate() {
        for &(addr, _) in &g.pages {
            labels.push(((Some((gi as u32, addr))), !dirty[gi].contains(&addr)));
        }
    }
    cuts.iter()
        .zip(labels)
        .map(|(&(offset, len), (key, clean))| PageHint {
            offset,
            len,
            key,
            clean,
        })
        .collect()
}

/// What the previous capture produced for one chunk range of a page cut.
#[derive(Debug, Clone)]
struct CachedChunk {
    id: ChunkId,
    seg_len: usize,
    stored: Arc<[u8]>,
}

/// Per-job page-digest cache: remembered chunk work from each pod's most
/// recent prepare.
#[derive(Debug, Default)]
pub struct DigestCache {
    /// The store config the entries were computed under; a config change
    /// clears the cache (different chunking or codec → different bytes).
    /// The thread count is deliberately **not** part of the key: it never
    /// changes produced bytes, so cached entries survive it.
    cfg: Option<(usize, bool)>,
    pods: BTreeMap<String, BTreeMap<PageKey, Vec<CachedChunk>>>,
    hits: u64,
    misses: u64,
}

impl DigestCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops every remembered entry (the big hammer the cluster swings
    /// whenever pod memory may have changed outside a completed capture).
    pub fn clear(&mut self) {
        self.pods.clear();
    }

    /// Drops one pod's remembered entries (e.g. after a migration restores
    /// that pod from an older epoch).
    pub fn invalidate_pod(&mut self, pod_name: &str) {
        self.pods.remove(pod_name);
    }

    /// Chunk ranges served from the cache since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Chunk ranges computed fresh since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn ensure_cfg(&mut self, cfg: &StoreConfig) {
        let want = (cfg.chunk_bytes, cfg.compress);
        if self.cfg != Some(want) {
            self.pods.clear();
            self.cfg = Some(want);
        }
    }
}

/// One unit of the hinted prepare, in image order, as classified by the
/// plan pass: either served from the cache or owed to the compute pool.
enum PlanStep {
    /// Metadata between cuts: a single range, always computed, never
    /// counted against the cache (it has no stable identity — its content
    /// shifts with the image layout).
    Meta { ri: usize },
    /// A clean, keyed cut whose remembered entry still matches its range
    /// layout: chunk ids and containers reused as-is.
    CutHit {
        ri: usize,
        rj: usize,
        key: Option<PageKey>,
        entry: Vec<CachedChunk>,
    },
    /// A cut that must be (re)computed: dirty, unkeyed, or cache-missed.
    CutCompute {
        ri: usize,
        rj: usize,
        key: Option<PageKey>,
    },
}

impl CheckpointStore {
    /// [`CheckpointStore::prepare_chunked`] with a page-digest cache:
    /// produces a byte-identical [`PreparedChunked`], but chunk ranges
    /// covered by a clean, keyed [`PageHint`] reuse the id and encoded
    /// container remembered from the pod's previous prepare instead of
    /// re-hashing and re-encoding, and the ranges that *are* computed fan
    /// out across the worker pool. The cut list is `hints` itself (each
    /// hint's `(offset, len)`), so callers pass the same page cuts they
    /// would hand the reference path.
    ///
    /// Three passes: **plan** (classify every range as cache-hit or
    /// compute — pure bookkeeping), **encode** (the compute ranges through
    /// [`encode_ranges`]' ordered pool merge), **merge** (manifest records,
    /// filesystem novelty accounting and cache replacement, serially in
    /// image order).
    pub fn prepare_chunked_hinted(
        &self,
        raw: &[u8],
        hints: &[PageHint],
        cfg: &StoreConfig,
        pod_name: &str,
        cache: &mut DigestCache,
    ) -> PreparedChunked {
        cache.ensure_cfg(cfg);
        let cuts: Vec<(usize, usize)> = hints.iter().map(|h| (h.offset, h.len)).collect();
        let ranges = chunk::split_ranges(raw.len(), &cuts, cfg.chunk_bytes);
        let prev = cache.pods.remove(pod_name).unwrap_or_default();

        // ---- plan: classify ranges, collecting the compute worklist ------
        let mut steps = Vec::new();
        let mut work: Vec<(usize, usize)> = Vec::new();
        let mut ri = 0;
        let mut hi = 0;
        while ri < ranges.len() {
            let (start, len) = ranges[ri];
            while hi < hints.len() && hints[hi].offset + hints[hi].len <= start {
                hi += 1;
            }
            let in_hint = hi < hints.len()
                && start >= hints[hi].offset
                && start + len <= hints[hi].offset + hints[hi].len;
            if !in_hint {
                steps.push(PlanStep::Meta { ri });
                work.push(ranges[ri]);
                ri += 1;
                continue;
            }
            // All ranges of this cut, processed as one unit so a cache hit
            // can substitute for the cut's whole chunk sequence.
            let hint = hints[hi];
            let cut_end = hint.offset + hint.len;
            let mut rj = ri;
            while rj < ranges.len() && ranges[rj].0 < cut_end {
                rj += 1;
            }
            let cut_ranges = &ranges[ri..rj];
            let cached = if hint.clean {
                hint.key.and_then(|k| prev.get(&k)).filter(|entry| {
                    entry.len() == cut_ranges.len()
                        && entry
                            .iter()
                            .zip(cut_ranges)
                            .all(|(c, &(_, l))| c.seg_len == l)
                })
            } else {
                None
            };
            match cached {
                Some(entry) => steps.push(PlanStep::CutHit {
                    ri,
                    rj,
                    key: hint.key,
                    entry: entry.clone(),
                }),
                None => {
                    work.extend_from_slice(cut_ranges);
                    steps.push(PlanStep::CutCompute {
                        ri,
                        rj,
                        key: hint.key,
                    });
                }
            }
            ri = rj;
        }

        // ---- encode: only the compute ranges touch the pool --------------
        let pool = Pool::new(self.threads_for(cfg));
        let encoded = encode_ranges(raw, &work, cfg.compress, &pool);

        // ---- merge: manifest + fs accounting + cache, in image order -----
        let mut enc = encoded.into_iter();
        let mut take = |s: usize, l: usize| -> (ChunkId, Arc<[u8]>) {
            enc.next().unwrap_or_else(|| {
                // One encoded result per compute range by construction;
                // recompute defensively rather than ever truncate.
                let seg = &raw[s..s + l];
                (
                    ChunkId::of(seg),
                    chunk::encode_chunk(seg, cfg.compress).into(),
                )
            })
        };
        let mut next: BTreeMap<PageKey, Vec<CachedChunk>> = BTreeMap::new();
        let mut seen = BTreeSet::new();
        let mut chunks = Vec::with_capacity(ranges.len());
        let mut mw = ImageWriter::new();
        mw.u32(MANIFEST_MAGIC);
        mw.u16(STORE_VERSION);
        mw.u64(raw.len() as u64);
        mw.u32(ranges.len() as u32);
        for step in steps {
            match step {
                PlanStep::Meta { ri } => {
                    let (s, l) = ranges[ri];
                    let (id, stored) = take(s, l);
                    self.push_prepared(&mut mw, &mut seen, &mut chunks, id, s + l, l, stored);
                }
                PlanStep::CutHit { ri, rj, key, entry } => {
                    cache.hits += (rj - ri) as u64;
                    for (c, &(s, l)) in entry.iter().zip(&ranges[ri..rj]) {
                        self.push_prepared(
                            &mut mw,
                            &mut seen,
                            &mut chunks,
                            c.id,
                            s + l,
                            l,
                            c.stored.clone(),
                        );
                    }
                    if let Some(k) = key {
                        next.insert(k, entry);
                    }
                }
                PlanStep::CutCompute { ri, rj, key } => {
                    cache.misses += (rj - ri) as u64;
                    let mut fresh = Vec::with_capacity(rj - ri);
                    for &(s, l) in &ranges[ri..rj] {
                        let (id, stored) = take(s, l);
                        fresh.push(CachedChunk {
                            id,
                            seg_len: l,
                            stored: stored.clone(),
                        });
                        self.push_prepared(&mut mw, &mut seen, &mut chunks, id, s + l, l, stored);
                    }
                    if let Some(k) = key {
                        next.insert(k, fresh);
                    }
                }
            }
        }
        // Wholesale replacement: entries are only ever trusted for exactly
        // one epoch step (the clean bit's guarantee covers nothing older).
        cache.pods.insert(pod_name.to_string(), next);
        PreparedChunked {
            raw_len: raw.len() as u64,
            manifest: mw.finish(),
            chunks,
            raw_digest: ChunkId::of(raw),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simos::fs::NetFs;

    fn cfg() -> StoreConfig {
        StoreConfig {
            chunk_bytes: 256,
            dedup: true,
            compress: true,
            ..StoreConfig::default()
        }
    }

    /// A two-"page" toy image with 256-byte pages at fixed offsets.
    fn toy(pages: &[&[u8]]) -> (Vec<u8>, Vec<PageHint>) {
        let mut raw = vec![0xEEu8; 16]; // header metadata
        let mut hints = Vec::new();
        for (i, p) in pages.iter().enumerate() {
            hints.push(PageHint {
                offset: raw.len(),
                len: p.len(),
                key: Some((0, i as u64 * 0x1000)),
                clean: false,
            });
            raw.extend_from_slice(p);
        }
        raw.extend_from_slice(&[0xDD; 7]); // trailer metadata
        (raw, hints)
    }

    #[test]
    fn hinted_prepare_matches_reference_and_skips_clean_pages() {
        let fs = NetFs::new();
        let s = CheckpointStore::new(fs, "j");
        let mut cache = DigestCache::new();
        let page_a = vec![0x11u8; 256];
        let page_b: Vec<u8> = (0..256).map(|i| (i % 7) as u8).collect();
        let (raw1, hints1) = toy(&[&page_a, &page_b]);
        let cuts1: Vec<(usize, usize)> = hints1.iter().map(|h| (h.offset, h.len)).collect();
        let h1 = s.prepare_chunked_hinted(&raw1, &hints1, &cfg(), "p", &mut cache);
        let r1 = s.prepare_chunked(&raw1, &cuts1, &cfg());
        assert_eq!(h1.manifest, r1.manifest);
        assert_eq!(cache.hits(), 0, "first epoch has nothing to reuse");
        s.put_prepared("p", 1, crate::store::PreparedPut::Chunked(h1));

        // Second epoch: page B rewritten, page A clean.
        let page_b2 = vec![0x55u8; 256];
        let (raw2, mut hints2) = toy(&[&page_a, &page_b2]);
        hints2[0].clean = true;
        let cuts2: Vec<(usize, usize)> = hints2.iter().map(|h| (h.offset, h.len)).collect();
        let h2 = s.prepare_chunked_hinted(&raw2, &hints2, &cfg(), "p", &mut cache);
        let r2 = s.prepare_chunked(&raw2, &cuts2, &cfg());
        assert_eq!(h2.manifest, r2.manifest, "hinted path is byte-identical");
        assert_eq!(h2.novel_count(), r2.novel_count());
        assert!(cache.hits() > 0, "the clean page was served from cache");
        let round = s
            .get_image("p", 1)
            .expect("epoch 1 reconstructs from hinted chunks");
        assert_eq!(round, raw1);
    }

    #[test]
    fn config_change_clears_the_cache() {
        let fs = NetFs::new();
        let s = CheckpointStore::new(fs, "j");
        let mut cache = DigestCache::new();
        let page = vec![3u8; 256];
        let (raw, mut hints) = toy(&[&page]);
        s.prepare_chunked_hinted(&raw, &hints, &cfg(), "p", &mut cache);
        hints[0].clean = true;
        let other = StoreConfig {
            compress: false,
            ..cfg()
        };
        // Same pod, same clean page, different codec: must recompute.
        let h = s.prepare_chunked_hinted(&raw, &hints, &other, "p", &mut cache);
        let r = s.prepare_chunked(
            &raw,
            &hints.iter().map(|h| (h.offset, h.len)).collect::<Vec<_>>(),
            &other,
        );
        assert_eq!(h.manifest, r.manifest);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn thread_count_change_keeps_the_cache() {
        // The worker count is a wall-clock knob, not a bytes knob: a clean
        // page cached under one thread count must still hit under another.
        let fs = NetFs::new();
        let s = CheckpointStore::new(fs, "j");
        let mut cache = DigestCache::new();
        let page = vec![3u8; 256];
        let (raw, mut hints) = toy(&[&page]);
        let serial = StoreConfig {
            threads: 1,
            ..cfg()
        };
        let wide = StoreConfig {
            threads: 4,
            ..cfg()
        };
        s.prepare_chunked_hinted(&raw, &hints, &serial, "p", &mut cache);
        hints[0].clean = true;
        let h = s.prepare_chunked_hinted(&raw, &hints, &wide, "p", &mut cache);
        let r = s.prepare_chunked(
            &raw,
            &hints.iter().map(|h| (h.offset, h.len)).collect::<Vec<_>>(),
            &serial,
        );
        assert_eq!(h.manifest, r.manifest);
        assert!(cache.hits() > 0, "entries survive a thread-count change");
    }

    #[test]
    fn stale_or_mismatched_hints_fall_back_to_compute() {
        let fs = NetFs::new();
        let s = CheckpointStore::new(fs, "j");
        let mut cache = DigestCache::new();
        let page = vec![9u8; 256];
        let (raw, mut hints) = toy(&[&page]);
        // Claiming clean with no prior entry: computed fresh, identically.
        hints[0].clean = true;
        let h = s.prepare_chunked_hinted(&raw, &hints, &cfg(), "p", &mut cache);
        let r = s.prepare_chunked(
            &raw,
            &hints.iter().map(|h| (h.offset, h.len)).collect::<Vec<_>>(),
            &cfg(),
        );
        assert_eq!(h.manifest, r.manifest);
        // Keyless hints (the defensive fallback) also match the reference.
        let keyless: Vec<PageHint> = hints
            .iter()
            .map(|h| PageHint {
                key: None,
                clean: false,
                ..*h
            })
            .collect();
        let h2 = s.prepare_chunked_hinted(&raw, &keyless, &cfg(), "p", &mut cache);
        assert_eq!(h2.manifest, r.manifest);
    }
}
