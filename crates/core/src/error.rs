//! Typed errors for the checkpoint-restart control plane.
//!
//! The coordinator and agent state machines are total functions — they
//! ignore stale or malformed inputs rather than fail. Errors arise where
//! the protocol meets the world: binding control sockets, decoding stored
//! images, driving the Zap layer. Hosting runtimes (the `cluster` crate)
//! surface those as [`CruzError`] values instead of panicking, so a corrupt
//! image or an exhausted port aborts one operation, not the whole cluster.

use std::fmt;

use simnet::stack::NetError;
use zap::image::ImageError;
use zap::manager::ZapError;

/// An error in the checkpoint-restart control plane.
#[derive(Debug)]
pub enum CruzError {
    /// A coordinator or agent control socket could not be created/bound.
    ControlSocket(NetError),
    /// A stored checkpoint image failed to decode or an incremental chain
    /// failed to fold. Restarting from it must abort, not panic.
    BadImage(ImageError),
    /// The Zap layer refused a checkpoint/restore action.
    Zap(ZapError),
    /// A control-plane invariant was violated (e.g. a message referenced an
    /// operation that does not exist).
    Protocol(&'static str),
}

impl fmt::Display for CruzError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CruzError::ControlSocket(e) => write!(f, "control socket: {e}"),
            CruzError::BadImage(e) => write!(f, "checkpoint image: {e}"),
            CruzError::Zap(e) => write!(f, "zap layer: {e}"),
            CruzError::Protocol(what) => write!(f, "protocol invariant violated: {what}"),
        }
    }
}

impl std::error::Error for CruzError {}

impl From<ImageError> for CruzError {
    fn from(e: ImageError) -> Self {
        CruzError::BadImage(e)
    }
}

impl From<ZapError> for CruzError {
    fn from(e: ZapError) -> Self {
        CruzError::Zap(e)
    }
}

impl From<NetError> for CruzError {
    fn from(e: NetError) -> Self {
        CruzError::ControlSocket(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = CruzError::Protocol("continue before done");
        assert!(e.to_string().contains("continue before done"));
    }
}
