//! The coordination wire protocol (Fig. 2 / Fig. 4 of the paper).
//!
//! Messages ride UDP datagrams on the simulated network, so coordination
//! overhead is *measured* — it includes real link serialization, switch
//! hops and per-message CPU costs — rather than synthesized.

use std::fmt;

/// Which coordination protocol variant runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolMode {
    /// Fig. 2: nodes stay blocked until *all* nodes finished saving.
    Blocking,
    /// Fig. 4: each node resumes as soon as communication is disabled
    /// everywhere and its own save completed.
    Optimized,
}

/// Whether an operation saves or restores state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Coordinated checkpoint.
    Checkpoint,
    /// Coordinated restart.
    Restart,
}

/// A control-plane message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtlMsg {
    /// Coordinator → agent: begin the operation for `epoch`.
    Start {
        /// Operation kind.
        kind: OpKind,
        /// Checkpoint epoch number.
        epoch: u64,
        /// Protocol variant in use.
        mode: ProtocolMode,
        /// Copy-on-write mode (§5.2 optimization): `done` is sent as soon
        /// as the state is *captured*; a later `durable` reports the image
        /// safely on disk and gates the commit.
        cow: bool,
    },
    /// Agent → coordinator: communication is disabled (optimized mode only).
    CommDisabled {
        /// Epoch.
        epoch: u64,
    },
    /// Agent → coordinator: local save/restore completed.
    Done {
        /// Epoch.
        epoch: u64,
    },
    /// Coordinator → agent: resume execution and re-enable communication.
    Continue {
        /// Epoch.
        epoch: u64,
    },
    /// Agent → coordinator: resumed; communication re-enabled.
    ContinueDone {
        /// Epoch.
        epoch: u64,
    },
    /// Agent → coordinator (COW mode): the captured image reached stable
    /// storage; commit may proceed.
    Durable {
        /// Epoch.
        epoch: u64,
    },
    /// Coordinator → agent: abandon the operation; roll back local effects.
    Abort {
        /// Epoch.
        epoch: u64,
    },
    /// Coordinator → agent: liveness probe (recovery manager heartbeat).
    /// The `seq` field rides the epoch slot of the wire format.
    Ping {
        /// Heartbeat sequence number.
        seq: u64,
    },
    /// Agent → coordinator: liveness reply echoing the probe's sequence.
    Pong {
        /// Heartbeat sequence number.
        seq: u64,
    },
}

impl CtlMsg {
    /// The epoch this message belongs to.
    pub fn epoch(&self) -> u64 {
        match self {
            CtlMsg::Start { epoch, .. }
            | CtlMsg::CommDisabled { epoch }
            | CtlMsg::Done { epoch }
            | CtlMsg::Continue { epoch }
            | CtlMsg::ContinueDone { epoch }
            | CtlMsg::Durable { epoch }
            | CtlMsg::Abort { epoch } => *epoch,
            CtlMsg::Ping { seq } | CtlMsg::Pong { seq } => *seq,
        }
    }

    /// Serializes to a datagram payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(11);
        match self {
            CtlMsg::Start {
                kind,
                epoch,
                mode,
                cow,
            } => {
                v.push(0);
                v.extend_from_slice(&epoch.to_le_bytes());
                v.push(match kind {
                    OpKind::Checkpoint => 0,
                    OpKind::Restart => 1,
                });
                v.push(match mode {
                    ProtocolMode::Blocking => 0,
                    ProtocolMode::Optimized => 1,
                });
                v.push(*cow as u8);
            }
            CtlMsg::CommDisabled { epoch } => {
                v.push(1);
                v.extend_from_slice(&epoch.to_le_bytes());
            }
            CtlMsg::Done { epoch } => {
                v.push(2);
                v.extend_from_slice(&epoch.to_le_bytes());
            }
            CtlMsg::Continue { epoch } => {
                v.push(3);
                v.extend_from_slice(&epoch.to_le_bytes());
            }
            CtlMsg::ContinueDone { epoch } => {
                v.push(4);
                v.extend_from_slice(&epoch.to_le_bytes());
            }
            CtlMsg::Abort { epoch } => {
                v.push(5);
                v.extend_from_slice(&epoch.to_le_bytes());
            }
            CtlMsg::Durable { epoch } => {
                v.push(6);
                v.extend_from_slice(&epoch.to_le_bytes());
            }
            CtlMsg::Ping { seq } => {
                v.push(7);
                v.extend_from_slice(&seq.to_le_bytes());
            }
            CtlMsg::Pong { seq } => {
                v.push(8);
                v.extend_from_slice(&seq.to_le_bytes());
            }
        }
        v
    }

    /// Parses a datagram payload.
    pub fn decode(bytes: &[u8]) -> Option<CtlMsg> {
        if bytes.len() < 9 {
            return None;
        }
        let epoch = u64::from_le_bytes(bytes[1..9].try_into().ok()?);
        Some(match bytes[0] {
            0 => {
                if bytes.len() < 12 {
                    return None;
                }
                let kind = match bytes[9] {
                    0 => OpKind::Checkpoint,
                    1 => OpKind::Restart,
                    _ => return None,
                };
                let mode = match bytes[10] {
                    0 => ProtocolMode::Blocking,
                    1 => ProtocolMode::Optimized,
                    _ => return None,
                };
                let cow = bytes[11] != 0;
                CtlMsg::Start {
                    kind,
                    epoch,
                    mode,
                    cow,
                }
            }
            1 => CtlMsg::CommDisabled { epoch },
            2 => CtlMsg::Done { epoch },
            3 => CtlMsg::Continue { epoch },
            4 => CtlMsg::ContinueDone { epoch },
            5 => CtlMsg::Abort { epoch },
            6 => CtlMsg::Durable { epoch },
            7 => CtlMsg::Ping { seq: epoch },
            8 => CtlMsg::Pong { seq: epoch },
            _ => return None,
        })
    }
}

impl fmt::Display for CtlMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtlMsg::Start {
                kind,
                epoch,
                mode,
                cow,
            } => {
                write!(f, "<start {kind:?} epoch={epoch} {mode:?} cow={cow}>")
            }
            CtlMsg::CommDisabled { epoch } => write!(f, "<comm-disabled epoch={epoch}>"),
            CtlMsg::Done { epoch } => write!(f, "<done epoch={epoch}>"),
            CtlMsg::Continue { epoch } => write!(f, "<continue epoch={epoch}>"),
            CtlMsg::ContinueDone { epoch } => write!(f, "<continue-done epoch={epoch}>"),
            CtlMsg::Abort { epoch } => write!(f, "<abort epoch={epoch}>"),
            CtlMsg::Durable { epoch } => write!(f, "<durable epoch={epoch}>"),
            CtlMsg::Ping { seq } => write!(f, "<ping seq={seq}>"),
            CtlMsg::Pong { seq } => write!(f, "<pong seq={seq}>"),
        }
    }
}

/// The UDP port agents listen on.
pub const AGENT_PORT: u16 = 7770;
/// The UDP port the coordinator listens on.
pub const COORD_PORT: u16 = 7771;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_round_trips() {
        let msgs = [
            CtlMsg::Start {
                kind: OpKind::Checkpoint,
                epoch: 3,
                mode: ProtocolMode::Blocking,
                cow: false,
            },
            CtlMsg::Start {
                kind: OpKind::Restart,
                epoch: 9,
                mode: ProtocolMode::Optimized,
                cow: true,
            },
            CtlMsg::CommDisabled { epoch: 1 },
            CtlMsg::Done { epoch: 2 },
            CtlMsg::Continue { epoch: 3 },
            CtlMsg::ContinueDone { epoch: 4 },
            CtlMsg::Durable { epoch: 6 },
            CtlMsg::Abort { epoch: 5 },
            CtlMsg::Ping { seq: 77 },
            CtlMsg::Pong { seq: 78 },
        ];
        for m in msgs {
            assert_eq!(CtlMsg::decode(&m.encode()), Some(m));
            assert_eq!(m.epoch(), m.epoch());
        }
    }

    #[test]
    fn malformed_rejected() {
        assert_eq!(CtlMsg::decode(&[]), None);
        assert_eq!(CtlMsg::decode(&[9; 12]), None);
        assert_eq!(CtlMsg::decode(&[0, 0, 0, 0, 0, 0, 0, 0, 0]), None); // start too short
    }
}
