//! Cruz: distributed coordinated checkpoint-restart (the paper's core
//! contribution).
//!
//! The insight the protocol rests on: because the Zap layer checkpoints
//! **live TCP state** (§4.1), the only uncaptured channel state is packets
//! in flight — state of the *unreliable* layer, which may be dropped
//! without violating Chandy-Lamport consistency. So instead of the
//! O(N²)-message channel flush of MPVM/CoCheck/LAM-MPI, coordination
//! reduces to the minimum for atomicity:
//!
//! 1. coordinator sends `<checkpoint>` to each agent;
//! 2. each agent installs a packet-filter rule silently dropping its pods'
//!    traffic, saves its pods locally, replies `<done>`;
//! 3. coordinator collects all `<done>`s (commit point), sends
//!    `<continue>`;
//! 4. agents resume pods, lift the filters, reply `<continue-done>`.
//!
//! Dropped packets are retransmitted by the checkpointed TCP state when
//! execution continues — whether after the checkpoint or after a restart
//! from it.
//!
//! * [`proto`] — the control messages and their wire codec;
//! * [`coordinator`] — the coordinator state machine (Fig. 2), including
//!   the Fig. 4 early-release optimization and timeout-driven abort;
//! * [`agent`] — the per-node agent state machine;
//! * [`store`] — image paths, two-phase-commit records and the
//!   content-addressed deduplicating chunk store on the shared filesystem;
//! * [`chunk`] — deterministic content addressing and the per-chunk
//!   RLE+LZ codec the store builds on;
//! * [`pagecache`] — the epoch-granular page-digest cache that lets clean
//!   pages skip re-hash/re-encode on the dedup capture path;
//! * [`replog`] — the k-way replicated store: every mutation goes through
//!   a deterministic append-only operation log per replica, reads are
//!   digest-checked quorum reads, and scrub repairs divergence by
//!   replaying the log (its fault plane lives in the private `repfault`
//!   module and is re-exported here);
//! * [`parpool`] — the deterministic worker pool that shards the pure
//!   hash/encode/decode kernels across threads with an ordered merge, so
//!   produced bytes are identical at every thread count;
//! * [`digest`] — the one audited FNV-1a fold (re-exported from `des`)
//!   behind trace digests, image checksums and chunk addresses.
//!
//! The engines are pure: the `cluster` crate hosts them on simulated nodes,
//! ships their datagrams over the simulated network, and executes their
//! actions (filter rules, pod freeze, state extraction, disk I/O) with
//! realistic costs.

#![warn(missing_docs)]

pub mod agent;
pub mod chunk;
pub mod coordinator;
pub mod error;
pub mod pagecache;
pub mod parpool;
pub mod proto;
mod repfault;
pub mod replog;
pub mod store;

pub use des::digest;

pub use agent::{Agent, AgentAction};
pub use chunk::ChunkId;
pub use coordinator::{AgentId, CoordEffect, CoordStats, Coordinator};
pub use error::CruzError;
pub use pagecache::{page_hints, DigestCache, PageHint};
pub use parpool::Pool;
pub use proto::{CtlMsg, OpKind, ProtocolMode, AGENT_PORT, COORD_PORT};
pub use replog::{
    install_replica_faults, CompactReport, ReplicaFault, ReplicaFaultKind, ReplicatedStore,
    ScrubReport, StoreOpPoint,
};
pub use store::{CheckpointStore, PreparedPut, StoreConfig};
