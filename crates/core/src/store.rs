//! Checkpoint storage conventions over the network filesystem.
//!
//! Images live under `/ckpt/<job>/`; an epoch becomes *committed* — and
//! thus eligible for restart — only when the coordinator writes its commit
//! record after collecting every agent's `done` (the two-phase-commit
//! decision point). A crash mid-checkpoint therefore never leaves a
//! half-written epoch that restart could pick up.

use simos::fs::NetFs;

/// Path helpers and commit bookkeeping for one job's checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    fs: NetFs,
    job: String,
}

impl CheckpointStore {
    /// Creates a store view for `job` on the shared filesystem.
    pub fn new(fs: NetFs, job: impl Into<String>) -> Self {
        CheckpointStore {
            fs,
            job: job.into(),
        }
    }

    /// The job name.
    pub fn job(&self) -> &str {
        &self.job
    }

    /// Path of a pod's image for an epoch.
    pub fn image_path(&self, pod_name: &str, epoch: u64) -> String {
        format!("/ckpt/{}/epoch{:08}/{}.img", self.job, epoch, pod_name)
    }

    /// Path of the commit record for an epoch.
    pub fn commit_path(&self, epoch: u64) -> String {
        format!("/ckpt/{}/epoch{:08}/COMMIT", self.job, epoch)
    }

    /// Writes a pod image.
    pub fn put_image(&self, pod_name: &str, epoch: u64, bytes: Vec<u8>) {
        self.fs.write_file(&self.image_path(pod_name, epoch), bytes);
    }

    /// Reads a pod image.
    pub fn get_image(&self, pod_name: &str, epoch: u64) -> Option<Vec<u8>> {
        self.fs.read_file(&self.image_path(pod_name, epoch))
    }

    /// Size of a pod image in bytes, if present.
    pub fn image_len(&self, pod_name: &str, epoch: u64) -> Option<u64> {
        self.fs.len_of(&self.image_path(pod_name, epoch))
    }

    /// Writes the commit record, marking `epoch` globally consistent.
    pub fn commit(&self, epoch: u64) {
        self.fs
            .write_file(&self.commit_path(epoch), epoch.to_le_bytes().to_vec());
    }

    /// True if `epoch` has a commit record.
    pub fn is_committed(&self, epoch: u64) -> bool {
        self.fs.exists(&self.commit_path(epoch))
    }

    /// The newest committed epoch, if any — what restart rolls back to.
    pub fn latest_committed_epoch(&self) -> Option<u64> {
        let prefix = format!("/ckpt/{}/", self.job);
        self.fs
            .list(&prefix)
            .into_iter()
            .filter_map(|p| {
                let rest = p.strip_prefix(&prefix)?;
                let (dir, file) = rest.split_once('/')?;
                if file != "COMMIT" {
                    return None;
                }
                dir.strip_prefix("epoch")?.parse::<u64>().ok()
            })
            .max()
    }

    /// All committed epochs, ascending.
    pub fn committed_epochs(&self) -> Vec<u64> {
        let prefix = format!("/ckpt/{}/", self.job);
        let mut v: Vec<u64> = self
            .fs
            .list(&prefix)
            .into_iter()
            .filter_map(|p| {
                let rest = p.strip_prefix(&prefix)?;
                let (dir, file) = rest.split_once('/')?;
                if file != "COMMIT" {
                    return None;
                }
                dir.strip_prefix("epoch")?.parse::<u64>().ok()
            })
            .collect();
        v.sort_unstable();
        v
    }

    /// Discards every epoch older than `keep` (garbage collection once a
    /// newer consistent checkpoint is committed).
    pub fn prune_below(&self, keep: u64) {
        for e in self.committed_epochs() {
            if e < keep {
                self.discard_epoch(e);
            }
        }
    }

    /// Removes every file of an epoch (the abort rollback).
    pub fn discard_epoch(&self, epoch: u64) {
        let prefix = format!("/ckpt/{}/epoch{:08}/", self.job, epoch);
        for path in self.fs.list(&prefix) {
            self.fs.remove(&path);
        }
    }

    /// Pod names with images in an epoch.
    pub fn pods_in_epoch(&self, epoch: u64) -> Vec<String> {
        let prefix = format!("/ckpt/{}/epoch{:08}/", self.job, epoch);
        self.fs
            .list(&prefix)
            .into_iter()
            .filter_map(|p| {
                let f = p.strip_prefix(&prefix)?;
                f.strip_suffix(".img").map(str::to_owned)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_gating() {
        let fs = NetFs::new();
        let s = CheckpointStore::new(fs, "job1");
        s.put_image("pod0", 1, vec![1, 2, 3]);
        assert!(!s.is_committed(1));
        assert_eq!(s.latest_committed_epoch(), None, "uncommitted is invisible");
        s.commit(1);
        assert!(s.is_committed(1));
        assert_eq!(s.latest_committed_epoch(), Some(1));
        assert_eq!(s.get_image("pod0", 1), Some(vec![1, 2, 3]));
    }

    #[test]
    fn latest_epoch_wins() {
        let fs = NetFs::new();
        let s = CheckpointStore::new(fs, "j");
        for e in [3u64, 1, 7, 5] {
            s.put_image("p", e, vec![e as u8]);
            s.commit(e);
        }
        assert_eq!(s.latest_committed_epoch(), Some(7));
    }

    #[test]
    fn discard_rolls_back_an_epoch() {
        let fs = NetFs::new();
        let s = CheckpointStore::new(fs, "j");
        s.put_image("a", 2, vec![1]);
        s.put_image("b", 2, vec![2]);
        s.commit(2);
        s.discard_epoch(2);
        assert!(!s.is_committed(2));
        assert_eq!(s.get_image("a", 2), None);
        assert_eq!(s.latest_committed_epoch(), None);
    }

    #[test]
    fn pods_in_epoch_lists_images() {
        let fs = NetFs::new();
        let s = CheckpointStore::new(fs, "j");
        s.put_image("x", 4, vec![]);
        s.put_image("y", 4, vec![]);
        s.commit(4);
        let mut pods = s.pods_in_epoch(4);
        pods.sort();
        assert_eq!(pods, vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn prune_keeps_only_recent_epochs() {
        let fs = NetFs::new();
        let s = CheckpointStore::new(fs, "j");
        for e in [1u64, 2, 3] {
            s.put_image("p", e, vec![e as u8]);
            s.commit(e);
        }
        assert_eq!(s.committed_epochs(), vec![1, 2, 3]);
        s.prune_below(3);
        assert_eq!(s.committed_epochs(), vec![3]);
        assert_eq!(s.get_image("p", 3), Some(vec![3]));
        assert_eq!(s.get_image("p", 1), None);
    }

    #[test]
    fn jobs_are_isolated() {
        let fs = NetFs::new();
        let a = CheckpointStore::new(fs.clone(), "a");
        let b = CheckpointStore::new(fs, "b");
        a.put_image("p", 1, vec![]);
        a.commit(1);
        assert_eq!(b.latest_committed_epoch(), None);
    }
}
