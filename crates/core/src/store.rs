//! Checkpoint storage conventions over the network filesystem.
//!
//! Images live under `/ckpt/<job>/`; an epoch becomes *committed* — and
//! thus eligible for restart — only when the coordinator writes its commit
//! record after collecting every agent's `done` (the two-phase-commit
//! decision point). A crash mid-checkpoint therefore never leaves a
//! half-written epoch that restart could pick up.
//!
//! # Two image representations
//!
//! * **Plain** — one monolithic `<pod>.img` per pod per epoch (the seed
//!   layout, and what the paper's testbed wrote).
//! * **Deduplicated** — the serialized image is split into
//!   content-addressed chunks (see [`crate::chunk`]) stored once per job
//!   under `/ckpt/<job>/chunks/`, and the epoch holds only a small
//!   `<pod>.manifest` referencing them by hash. Unchanged pages re-hash to
//!   chunks that already exist, so a steady-state epoch writes only the
//!   pages that actually changed (plus the manifest) — the optimization
//!   that attacks the disk-write term dominating Fig. 5(a).
//!
//! Reads are representation-transparent: [`CheckpointStore::get_image`]
//! returns the full image bytes either way, so a restart from a dedup
//! epoch is byte-equivalent to a restart from a plain image. Manifests are
//! always *full-fidelity* (they describe the complete image), which is why
//! the dedup store subsumes incremental checkpointing: there is no delta
//! chain to fold at restore time.
//!
//! Chunks are garbage-collected by reference counting: every manifest
//! reference bumps the chunk's count in the job's `chunks/REFS` table, and
//! discarding an epoch releases its manifests' references, deleting chunks
//! that hit zero. Retiring old epochs therefore reclaims exactly the
//! chunks no retained epoch shares.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use simos::fs::NetFs;
use zap::image::{ImageReader, ImageWriter};

use crate::chunk::{self, ChunkId, CodecScratch};
use crate::parpool::Pool;

/// Magic number of a chunk manifest (`CRZM`).
pub const MANIFEST_MAGIC: u32 = 0x4352_5a4d;
/// Magic number of the chunk refcount table (`CRZR`).
pub const REFS_MAGIC: u32 = 0x4352_5a52;
/// Current manifest / refcount-table format version.
pub const STORE_VERSION: u16 = 1;

/// Knobs of the deduplicating store (threaded from `ClusterParams` for
/// ablation: plain vs. dedup vs. dedup+compress).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreConfig {
    /// Maximum chunk payload size. Page payloads get their own chunk
    /// boundaries regardless, so the default of one page keeps page-granular
    /// dedup exact.
    pub chunk_bytes: usize,
    /// Store images as content-addressed chunk manifests instead of
    /// monolithic files.
    pub dedup: bool,
    /// Apply the per-chunk RLE+LZ codec (only meaningful with `dedup`).
    pub compress: bool,
    /// Worker threads for the parallel capture/restore pipeline: `0`
    /// (default) resolves via `CRUZ_THREADS` / available parallelism, `1`
    /// is the serial reference path, higher values shard the pure
    /// hash/encode/decode kernels across that many workers. Produced bytes
    /// are identical at every setting (see [`crate::parpool`]), so this is
    /// a wall-clock knob only — never part of the digest-cache identity.
    pub threads: usize,
    /// Number of replica stores every logical write lands on (`1` = the
    /// unreplicated store, byte-identical to earlier versions). Values
    /// above one route writes through the [`crate::replog`] operation log
    /// so restores survive the loss of up to `replicas - 1` copies.
    pub replicas: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            chunk_bytes: 4096,
            dedup: false,
            compress: false,
            threads: 0,
            replicas: 1,
        }
    }
}

impl StoreConfig {
    /// Dedup without compression (the ablation midpoint).
    pub fn dedup() -> Self {
        StoreConfig {
            dedup: true,
            ..StoreConfig::default()
        }
    }

    /// Dedup with per-chunk compression (the full optimization).
    pub fn dedup_compress() -> Self {
        StoreConfig {
            dedup: true,
            compress: true,
            ..StoreConfig::default()
        }
    }
}

/// One chunk of a prepared (not yet applied) dedup write.
#[derive(Debug, Clone)]
pub struct PreparedChunk {
    /// Content address.
    pub id: ChunkId,
    /// Exclusive end offset of this chunk's raw bytes within the image.
    pub raw_end: u64,
    /// The encoded chunk container (what the chunk file will hold).
    /// Reference-counted so the page-digest cache can hand the same encoded
    /// bytes to consecutive epochs without re-encoding or copying; `Arc`
    /// (not `Rc`) so pool workers can produce segments on other threads.
    pub stored: Arc<[u8]>,
    /// True if the store lacked this chunk when the write was prepared —
    /// the bytes that actually hit the disk.
    pub novel: bool,
}

/// A dedup image write split into its cheap (hash/dedup, done at capture
/// time) and effectful (filesystem mutation, done when the simulated disk
/// write completes) halves, so the cluster can model the disk cost of
/// exactly the novel bytes while deferring store mutation to the
/// event that represents durability.
#[derive(Debug, Clone)]
pub struct PreparedChunked {
    pub(crate) raw_len: u64,
    pub(crate) manifest: Vec<u8>,
    pub(crate) chunks: Vec<PreparedChunk>,
    /// Content digest of the whole serialized image, written as the epoch's
    /// digest sidecar so every read path can verify the reassembled bytes
    /// end-to-end (a torn manifest that still decodes cleanly is caught
    /// here, not just by the per-chunk checks).
    pub(crate) raw_digest: ChunkId,
}

impl PreparedChunked {
    /// Length of the original serialized image.
    pub fn raw_len(&self) -> u64 {
        self.raw_len
    }

    /// Content digest of the full serialized image (what the digest
    /// sidecar will pin for end-to-end read verification).
    pub fn image_digest(&self) -> ChunkId {
        self.raw_digest
    }

    /// Length of the manifest file.
    pub fn manifest_len(&self) -> u64 {
        self.manifest.len() as u64
    }

    /// The serialized manifest. The manifest fixes every chunk id, segment
    /// length, and stored length, so byte-equality of two manifests over
    /// the same image proves two prepare paths did identical work — the
    /// equivalence check the hot-path benchmarks and twin-path property
    /// tests pin.
    pub fn manifest(&self) -> &[u8] {
        &self.manifest
    }

    /// The chunk writes the store will actually perform: `(raw_end,
    /// stored_bytes)` per novel chunk, in image order. `raw_end` lets the
    /// caller pipeline each write against the capture progress that
    /// produces it.
    pub fn novel_writes(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.chunks
            .iter()
            .filter(|c| c.novel)
            .map(|c| (c.raw_end, c.stored.len() as u64))
    }

    /// Total bytes this write sends to disk (novel chunks + manifest).
    pub fn new_bytes(&self) -> u64 {
        self.novel_writes().map(|(_, b)| b).sum::<u64>() + self.manifest_len()
    }

    /// Total chunks the image splits into.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Chunks absent from the store at prepare time.
    pub fn novel_count(&self) -> usize {
        self.chunks.iter().filter(|c| c.novel).count()
    }
}

/// A pod-image write prepared for a specific store representation.
#[derive(Debug, Clone)]
pub enum PreparedPut {
    /// Monolithic image bytes.
    Plain(Vec<u8>),
    /// Chunked, deduplicated write.
    Chunked(PreparedChunked),
}

impl PreparedPut {
    /// Length of the serialized image this write represents.
    pub fn raw_len(&self) -> u64 {
        match self {
            PreparedPut::Plain(b) => b.len() as u64,
            PreparedPut::Chunked(c) => c.raw_len(),
        }
    }

    /// Bytes this write sends to disk.
    pub fn new_bytes(&self) -> u64 {
        match self {
            PreparedPut::Plain(b) => b.len() as u64,
            PreparedPut::Chunked(c) => c.new_bytes(),
        }
    }
}

/// Path helpers, commit bookkeeping and the dedup chunk store for one
/// job's checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    fs: NetFs,
    job: String,
    /// Filesystem prefix all of this store's paths live under. Empty for
    /// the primary layout (`/ckpt/...`, byte-identical to earlier
    /// versions); replica stores use `/rep<i>` so k independent copies
    /// share one simulated filesystem without colliding.
    root: String,
    /// Worker count for the pure capture/restore kernels (`0` = auto; see
    /// [`StoreConfig::threads`]). Never changes produced bytes.
    threads: usize,
}

impl CheckpointStore {
    /// Creates a store view for `job` on the shared filesystem, with the
    /// worker count on auto.
    pub fn new(fs: NetFs, job: impl Into<String>) -> Self {
        CheckpointStore {
            fs,
            job: job.into(),
            root: String::new(),
            threads: 0,
        }
    }

    /// Sets the worker count for the parallel capture/restore kernels
    /// (`0` = auto, `1` = the serial reference path).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Roots every path of this store view under `root` (empty = the
    /// primary `/ckpt/...` layout). Replica stores of the replicated
    /// checkpoint store live at `/rep<i>`.
    pub fn with_root(mut self, root: impl Into<String>) -> Self {
        self.root = root.into();
        self
    }

    /// The job name.
    pub fn job(&self) -> &str {
        &self.job
    }

    /// The filesystem prefix this store view is rooted under.
    pub fn root(&self) -> &str {
        &self.root
    }

    /// The shared filesystem handle (for in-crate replication plumbing).
    pub(crate) fn fs(&self) -> &NetFs {
        &self.fs
    }

    /// The effective worker setting for a prepare under `cfg`: an explicit
    /// config wins, otherwise the store's own setting (both `0` = auto).
    pub(crate) fn threads_for(&self, cfg: &StoreConfig) -> usize {
        if cfg.threads != 0 {
            cfg.threads
        } else {
            self.threads
        }
    }

    /// Path of a pod's plain image for an epoch.
    pub fn image_path(&self, pod_name: &str, epoch: u64) -> String {
        format!(
            "{}/ckpt/{}/epoch{:08}/{}.img",
            self.root, self.job, epoch, pod_name
        )
    }

    /// Path of a pod's chunk manifest for an epoch.
    pub fn manifest_path(&self, pod_name: &str, epoch: u64) -> String {
        format!(
            "{}/ckpt/{}/epoch{:08}/{}.manifest",
            self.root, self.job, epoch, pod_name
        )
    }

    /// Path of a pod image's content-digest sidecar for an epoch: 16 bytes
    /// pinning the FNV digest of the full serialized image, verified on
    /// every read. Sidecar writes are free on the simulated disk (only
    /// image and chunk bytes are charged), so torn-write detection never
    /// perturbs pinned traces.
    pub fn digest_path(&self, pod_name: &str, epoch: u64) -> String {
        format!(
            "{}/ckpt/{}/epoch{:08}/{}.fnv",
            self.root, self.job, epoch, pod_name
        )
    }

    /// Path of a chunk file.
    pub fn chunk_path(&self, id: ChunkId) -> String {
        format!("{}/ckpt/{}/chunks/{}.c", self.root, self.job, id.hex())
    }

    /// Path of the chunk refcount table.
    fn refs_path(&self) -> String {
        format!("{}/ckpt/{}/chunks/REFS", self.root, self.job)
    }

    /// Path of the committed high-water-mark cache.
    fn latest_path(&self) -> String {
        format!("{}/ckpt/{}/LATEST", self.root, self.job)
    }

    /// Path of the commit record for an epoch.
    pub fn commit_path(&self, epoch: u64) -> String {
        format!("{}/ckpt/{}/epoch{:08}/COMMIT", self.root, self.job, epoch)
    }

    // ---- writes -------------------------------------------------------------

    /// Writes a pod image in the plain (monolithic) representation, plus
    /// its digest sidecar so reads can verify the body end-to-end.
    pub fn put_image(&self, pod_name: &str, epoch: u64, bytes: Vec<u8>) {
        self.write_digest(pod_name, epoch, ChunkId::of(&bytes));
        self.fs.write_file(&self.image_path(pod_name, epoch), bytes);
    }

    /// Reads the digest sidecar of a pod image, if present and well-formed.
    pub fn read_digest(&self, pod_name: &str, epoch: u64) -> Option<ChunkId> {
        let bytes = self.fs.read_file(&self.digest_path(pod_name, epoch))?;
        let arr: [u8; 16] = bytes.try_into().ok()?;
        let lo = u64::from_le_bytes(arr[..8].try_into().ok()?);
        let hi = u64::from_le_bytes(arr[8..].try_into().ok()?);
        Some(ChunkId(lo, hi))
    }

    pub(crate) fn write_digest(&self, pod_name: &str, epoch: u64, d: ChunkId) {
        let mut v = Vec::with_capacity(16);
        v.extend_from_slice(&d.0.to_le_bytes());
        v.extend_from_slice(&d.1.to_le_bytes());
        self.fs.write_file(&self.digest_path(pod_name, epoch), v);
    }

    /// Splits a serialized image into content-addressed chunks and computes
    /// which of them the store already holds. Pure with respect to the
    /// store: nothing is written until [`CheckpointStore::put_prepared`].
    /// `cuts` are the page-payload regions of `raw` (see
    /// `PodImage::encode_with_page_cuts`), which pin chunk boundaries so
    /// unchanged pages dedup across epochs.
    pub fn prepare_chunked(
        &self,
        raw: &[u8],
        cuts: &[(usize, usize)],
        cfg: &StoreConfig,
    ) -> PreparedChunked {
        let ranges = chunk::split_ranges(raw.len(), cuts, cfg.chunk_bytes);
        let pool = Pool::new(self.threads_for(cfg));
        let mut seen = BTreeSet::new();
        let mut chunks = Vec::with_capacity(ranges.len());
        let mut mw = ImageWriter::new();
        mw.u32(MANIFEST_MAGIC);
        mw.u16(STORE_VERSION);
        mw.u64(raw.len() as u64);
        mw.u32(ranges.len() as u32);
        if pool.threads() == 1 {
            // The serial reference path, kept verbatim: per-range fold +
            // fresh-allocation encode on the calling thread. This is the
            // oracle every pooled prepare is property-tested against (and
            // the threads=1 baseline `bench_parallel` measures from).
            for (start, len) in ranges {
                let seg = &raw[start..start + len];
                let id = ChunkId::of(seg);
                let stored: Arc<[u8]> = chunk::encode_chunk(seg, cfg.compress).into();
                self.push_prepared(
                    &mut mw,
                    &mut seen,
                    &mut chunks,
                    id,
                    start + len,
                    len,
                    stored,
                );
            }
        } else {
            // Fan the pure hash/encode work out across the pool; the
            // ordered merge below does the filesystem-consulting novelty
            // and size accounting in range order, exactly like the serial
            // loop (the shared `NetFs` handle is single-threaded).
            let encoded = encode_ranges(raw, &ranges, cfg.compress, &pool);
            for (&(start, len), (id, stored)) in ranges.iter().zip(encoded) {
                self.push_prepared(
                    &mut mw,
                    &mut seen,
                    &mut chunks,
                    id,
                    start + len,
                    len,
                    stored,
                );
            }
        }
        PreparedChunked {
            raw_len: raw.len() as u64,
            manifest: mw.finish(),
            chunks,
            raw_digest: ChunkId::of(raw),
        }
    }

    /// Appends one chunk's manifest record and [`PreparedChunk`], with the
    /// live-filesystem novelty and size accounting both prepare paths
    /// share. Size accounting prefers the bytes already on disk: a chunk
    /// written earlier (possibly under another codec setting) is what a
    /// restore will actually read.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn push_prepared(
        &self,
        mw: &mut ImageWriter,
        seen: &mut BTreeSet<ChunkId>,
        chunks: &mut Vec<PreparedChunk>,
        id: ChunkId,
        raw_end: usize,
        seg_len: usize,
        stored: Arc<[u8]>,
    ) {
        let path = self.chunk_path(id);
        let stored_len = self.fs.len_of(&path).unwrap_or(stored.len() as u64);
        mw.u64(id.0);
        mw.u64(id.1);
        mw.u32(seg_len as u32);
        mw.u32(stored_len as u32);
        let novel = seen.insert(id) && !self.fs.exists(&path);
        chunks.push(PreparedChunk {
            id,
            raw_end: raw_end as u64,
            stored,
            novel,
        });
    }

    /// Applies a prepared write: stores absent chunks, writes the manifest
    /// (or the plain image), and bumps chunk refcounts. Takes the prepared
    /// write by value so the plain arm moves its image bytes straight to the
    /// filesystem (no clone of the full image) and the chunked arm moves
    /// its manifest.
    pub fn put_prepared(&self, pod_name: &str, epoch: u64, put: PreparedPut) {
        match put {
            PreparedPut::Plain(bytes) => self.put_image(pod_name, epoch, bytes),
            PreparedPut::Chunked(c) => {
                for ch in &c.chunks {
                    let path = self.chunk_path(ch.id);
                    if !self.fs.exists(&path) {
                        self.fs.write_file(&path, ch.stored.to_vec());
                    }
                }
                let mpath = self.manifest_path(pod_name, epoch);
                // Idempotence under replay: re-applying a put whose
                // identical manifest already landed (an operation-log
                // replay after a replica crash) must not double-count the
                // chunk references it already took.
                let fresh = self.fs.read_file(&mpath).as_deref() != Some(&c.manifest[..]);
                self.write_digest(pod_name, epoch, c.raw_digest);
                self.fs.write_file(&mpath, c.manifest);
                if fresh {
                    let mut refs = self.read_refs();
                    for ch in &c.chunks {
                        *refs.entry(ch.id).or_insert(0) += 1;
                    }
                    self.write_refs(&refs);
                }
            }
        }
    }

    /// Applies only a torn prefix of a prepared write, modeling a disk
    /// write that failed partway: the first `frac/256` of the image's
    /// bytes reach disk, the manifest (or the plain image's tail) never
    /// does, and no chunk references are taken. A torn chunked write
    /// therefore strands orphan chunk files — exactly what
    /// [`CheckpointStore::orphan_chunks`] audits and
    /// [`CheckpointStore::gc_orphan_chunks`] reclaims. The epoch can never
    /// be committed through this path: no durability is ever reported for
    /// a torn write.
    pub fn put_torn(&self, pod_name: &str, epoch: u64, put: &PreparedPut, frac: u8) {
        match put {
            PreparedPut::Plain(bytes) => {
                let keep = (bytes.len() as u64 * frac as u64 / 256) as usize;
                if keep > 0 {
                    self.fs
                        .write_file(&self.image_path(pod_name, epoch), bytes[..keep].to_vec());
                }
            }
            PreparedPut::Chunked(c) => {
                let cutoff = c.raw_len * frac as u64 / 256;
                for ch in &c.chunks {
                    if !ch.novel || ch.raw_end > cutoff {
                        continue;
                    }
                    let path = self.chunk_path(ch.id);
                    if !self.fs.exists(&path) {
                        self.fs.write_file(&path, ch.stored.to_vec());
                    }
                }
            }
        }
    }

    // ---- reads --------------------------------------------------------------

    /// Reads a pod image, reassembling it from chunks when the epoch holds
    /// a manifest. The returned bytes are identical to what `put` received,
    /// whichever representation stored them. Returns `None` if the image
    /// (or any chunk it references) is missing, structurally corrupt, or
    /// fails its digest sidecar — a torn prefix that still happens to
    /// decode is rejected here, not left for the caller to trip over.
    pub fn get_image(&self, pod_name: &str, epoch: u64) -> Option<Vec<u8>> {
        if let Some(bytes) = self.fs.read_file(&self.image_path(pod_name, epoch)) {
            return (self.read_digest(pod_name, epoch)? == ChunkId::of(&bytes)).then_some(bytes);
        }
        let manifest = self.fs.read_file(&self.manifest_path(pod_name, epoch))?;
        let want = self.read_digest(pod_name, epoch)?;
        self.reconstruct(&manifest, want)
    }

    /// Logical size of a pod image in bytes (the size of the serialized
    /// image, not of its on-disk representation), if present.
    pub fn image_len(&self, pod_name: &str, epoch: u64) -> Option<u64> {
        if let Some(len) = self.fs.len_of(&self.image_path(pod_name, epoch)) {
            return Some(len);
        }
        let manifest = self.fs.read_file(&self.manifest_path(pod_name, epoch))?;
        decode_manifest(&manifest).map(|(raw_len, _)| raw_len)
    }

    /// Physical bytes a restart must read for a pod image: the plain file,
    /// or the manifest plus every distinct chunk it references.
    pub fn stored_len(&self, pod_name: &str, epoch: u64) -> Option<u64> {
        if let Some(len) = self.fs.len_of(&self.image_path(pod_name, epoch)) {
            return Some(len);
        }
        let manifest = self.fs.read_file(&self.manifest_path(pod_name, epoch))?;
        let (_, recs) = decode_manifest(&manifest)?;
        let mut seen = BTreeSet::new();
        let mut total = manifest.len() as u64;
        for (id, _, stored_len) in recs {
            if seen.insert(id) {
                total += stored_len as u64;
            }
        }
        Some(total)
    }

    fn reconstruct(&self, manifest: &[u8], want: ChunkId) -> Option<Vec<u8>> {
        let (raw_len, recs) = decode_manifest(manifest)?;
        // Chunk files are read on the calling thread (the `NetFs` handle is
        // single-threaded); the pure decompression fans out across the
        // pool and reassembles in manifest order. Each decoded chunk must
        // re-hash to the content address the manifest named it by — a chunk
        // file whose torn tail still decodes cannot masquerade as the
        // original — and the assembled image must match the digest sidecar,
        // which closes the same hole for torn manifests.
        let mut stored = Vec::with_capacity(recs.len());
        for (id, seg_len, _) in recs {
            stored.push((self.fs.read_file(&self.chunk_path(id))?, id, seg_len));
        }
        let pool = Pool::new(self.threads);
        let decoded = pool.map_ordered(
            stored,
            || (),
            |_, (bytes, id, seg_len): (Vec<u8>, ChunkId, u32)| {
                chunk::decode_chunk(&bytes)
                    .ok()
                    .filter(|raw| raw.len() == seg_len as usize && ChunkId::of(raw) == id)
            },
        );
        let mut out = Vec::with_capacity(raw_len as usize);
        for raw in decoded {
            out.extend_from_slice(&raw?);
        }
        (out.len() as u64 == raw_len && ChunkId::of(&out) == want).then_some(out)
    }

    // ---- commit bookkeeping -------------------------------------------------

    /// Writes the commit record, marking `epoch` globally consistent, and
    /// advances the cached high-water mark.
    pub fn commit(&self, epoch: u64) {
        self.fs
            .write_file(&self.commit_path(epoch), epoch.to_le_bytes().to_vec());
        if self.read_latest_file().is_none_or(|cur| epoch > cur) {
            self.fs
                .write_file(&self.latest_path(), epoch.to_le_bytes().to_vec());
        }
    }

    /// True if `epoch` has a commit record.
    pub fn is_committed(&self, epoch: u64) -> bool {
        self.fs.exists(&self.commit_path(epoch))
    }

    fn read_latest_file(&self) -> Option<u64> {
        let bytes = self.fs.read_file(&self.latest_path())?;
        let arr: [u8; 8] = bytes.try_into().ok()?;
        Some(u64::from_le_bytes(arr))
    }

    /// The newest committed epoch, if any — what restart rolls back to.
    /// Served from the high-water-mark cache maintained by
    /// [`CheckpointStore::commit`] and invalidated by epoch discard; the
    /// full directory scan runs only when the cache is absent.
    pub fn latest_committed_epoch(&self) -> Option<u64> {
        self.read_latest_file().or_else(|| self.scan_latest())
    }

    fn scan_latest(&self) -> Option<u64> {
        self.committed_epochs().into_iter().max()
    }

    /// Every epoch with any file on disk (committed or not), ascending.
    pub fn all_epochs(&self) -> Vec<u64> {
        let prefix = format!("{}/ckpt/{}/", self.root, self.job);
        let mut v: Vec<u64> = self
            .fs
            .list(&prefix)
            .into_iter()
            .filter_map(|p| {
                let rest = p.strip_prefix(&prefix)?;
                let (dir, _) = rest.split_once('/')?;
                dir.strip_prefix("epoch")?.parse::<u64>().ok()
            })
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Epochs with files on disk but no commit record — the half-written
    /// leftovers of crashed or aborted operations, which recovery must
    /// discard before restarting.
    pub fn uncommitted_epochs(&self) -> Vec<u64> {
        self.all_epochs()
            .into_iter()
            .filter(|&e| !self.is_committed(e))
            .collect()
    }

    /// All committed epochs, ascending.
    pub fn committed_epochs(&self) -> Vec<u64> {
        let prefix = format!("{}/ckpt/{}/", self.root, self.job);
        let mut v: Vec<u64> = self
            .fs
            .list(&prefix)
            .into_iter()
            .filter_map(|p| {
                let rest = p.strip_prefix(&prefix)?;
                let (dir, file) = rest.split_once('/')?;
                if file != "COMMIT" {
                    return None;
                }
                dir.strip_prefix("epoch")?.parse::<u64>().ok()
            })
            .collect();
        v.sort_unstable();
        v
    }

    /// Discards every epoch older than `keep` (garbage collection once a
    /// newer consistent checkpoint is committed). Chunks left unreferenced
    /// by the retained epochs are reclaimed.
    pub fn prune_below(&self, keep: u64) {
        for e in self.committed_epochs() {
            if e < keep {
                self.discard_epoch(e);
            }
        }
    }

    /// Removes every file of an epoch (the abort rollback), releasing its
    /// manifests' chunk references and deleting chunks that drop to zero.
    pub fn discard_epoch(&self, epoch: u64) {
        let was_committed = self.is_committed(epoch);
        let prefix = format!("{}/ckpt/{}/epoch{:08}/", self.root, self.job, epoch);
        // Remove the epoch's files *before* releasing their references:
        // a replayed discard then finds no manifests and is a no-op,
        // instead of double-decrementing refcounts. A crash between the
        // two halves leaks references (reclaimed by scrub), which is safe;
        // the reverse order could delete chunks live epochs still need.
        let mut manifests = Vec::new();
        for path in self.fs.list(&prefix) {
            if path.ends_with(".manifest") {
                if let Some(manifest) = self.fs.read_file(&path) {
                    manifests.push(manifest);
                }
            }
            self.fs.remove(&path);
        }
        for manifest in &manifests {
            self.release_manifest(manifest);
        }
        if was_committed && self.read_latest_file() == Some(epoch) {
            // The cached high-water mark pointed at the discarded epoch:
            // recompute it from the surviving commit records.
            match self.scan_latest() {
                Some(m) => self
                    .fs
                    .write_file(&self.latest_path(), m.to_le_bytes().to_vec()),
                None => {
                    self.fs.remove(&self.latest_path());
                }
            }
        }
    }

    fn release_manifest(&self, manifest: &[u8]) {
        let Some((_, recs)) = decode_manifest(manifest) else {
            return;
        };
        let mut refs = self.read_refs();
        for (id, _, _) in recs {
            match refs.get_mut(&id) {
                Some(count) if *count > 1 => *count -= 1,
                _ => {
                    refs.remove(&id);
                    self.fs.remove(&self.chunk_path(id));
                }
            }
        }
        self.write_refs(&refs);
    }

    // ---- chunk bookkeeping --------------------------------------------------

    pub(crate) fn read_refs(&self) -> BTreeMap<ChunkId, u64> {
        let Some(bytes) = self.fs.read_file(&self.refs_path()) else {
            return BTreeMap::new();
        };
        let mut refs = BTreeMap::new();
        let Ok(mut r) = ImageReader::verify(&bytes) else {
            return refs;
        };
        let ok = (|| -> Result<(), zap::image::ImageError> {
            if r.u32()? != REFS_MAGIC || r.u16()? != STORE_VERSION {
                return Ok(());
            }
            let n = r.u32()?;
            for _ in 0..n {
                let id = ChunkId(r.u64()?, r.u64()?);
                let count = r.u64()?;
                refs.insert(id, count);
            }
            Ok(())
        })();
        if ok.is_err() {
            refs.clear();
        }
        refs
    }

    pub(crate) fn write_refs(&self, refs: &BTreeMap<ChunkId, u64>) {
        if refs.is_empty() {
            self.fs.remove(&self.refs_path());
            return;
        }
        let mut w = ImageWriter::new();
        w.u32(REFS_MAGIC);
        w.u16(STORE_VERSION);
        w.u32(refs.len() as u32);
        for (id, count) in refs {
            w.u64(id.0);
            w.u64(id.1);
            w.u64(*count);
        }
        self.fs.write_file(&self.refs_path(), w.finish());
    }

    /// Every chunk file currently stored for the job, ascending by id.
    pub fn live_chunks(&self) -> Vec<ChunkId> {
        let prefix = format!("{}/ckpt/{}/chunks/", self.root, self.job);
        self.fs
            .list(&prefix)
            .into_iter()
            .filter_map(|p| {
                let name = p.strip_prefix(&prefix)?.strip_suffix(".c")?;
                if name.len() != 32 {
                    return None;
                }
                let (lo, hi) = name.split_at(16);
                Some(ChunkId(
                    u64::from_str_radix(lo, 16).ok()?,
                    u64::from_str_radix(hi, 16).ok()?,
                ))
            })
            .collect()
    }

    /// Chunk files referenced by **no** epoch's manifest — garbage left by
    /// a write that persisted chunks but never landed (or lost) its
    /// manifest, e.g. a torn disk write or a node crash between the two.
    /// A healthy store always returns an empty set.
    pub fn orphan_chunks(&self) -> Vec<ChunkId> {
        let mut referenced = BTreeSet::new();
        for e in self.all_epochs() {
            referenced.extend(self.chunks_referenced_by(e));
        }
        self.live_chunks()
            .into_iter()
            .filter(|id| !referenced.contains(id))
            .collect()
    }

    /// Deletes orphan chunk files and scrubs their refcount entries (and
    /// any refcount entry whose chunk file is gone). Returns the number of
    /// chunk files reclaimed.
    pub fn gc_orphan_chunks(&self) -> usize {
        let orphans = self.orphan_chunks();
        let mut refs = self.read_refs();
        for id in &orphans {
            self.fs.remove(&self.chunk_path(*id));
            refs.remove(id);
        }
        refs.retain(|id, _| self.fs.exists(&self.chunk_path(*id)));
        self.write_refs(&refs);
        orphans.len()
    }

    /// Chunk ids referenced by an epoch's manifests (deduplicated).
    pub fn chunks_referenced_by(&self, epoch: u64) -> BTreeSet<ChunkId> {
        let prefix = format!("{}/ckpt/{}/epoch{:08}/", self.root, self.job, epoch);
        let mut ids = BTreeSet::new();
        for path in self.fs.list(&prefix) {
            if !path.ends_with(".manifest") {
                continue;
            }
            let Some(manifest) = self.fs.read_file(&path) else {
                continue;
            };
            let Some((_, recs)) = decode_manifest(&manifest) else {
                continue;
            };
            ids.extend(recs.into_iter().map(|(id, _, _)| id));
        }
        ids
    }

    /// Pod names with images (plain or chunked) in an epoch.
    pub fn pods_in_epoch(&self, epoch: u64) -> Vec<String> {
        let prefix = format!("{}/ckpt/{}/epoch{:08}/", self.root, self.job, epoch);
        self.fs
            .list(&prefix)
            .into_iter()
            .filter_map(|p| {
                let f = p.strip_prefix(&prefix)?;
                f.strip_suffix(".img")
                    .or_else(|| f.strip_suffix(".manifest"))
                    .map(str::to_owned)
            })
            .collect()
    }
}

/// Hashes and encodes image ranges through the worker pool, in input
/// order: per-range `(ChunkId, stored container)` via the zero-page fast
/// path and a per-worker [`CodecScratch`]. Byte-identical to the serial
/// reference (`ChunkId::of` + fresh-allocation `encode_chunk`) — the
/// zero-page and scratch-codec equivalences are pinned by chunk-level unit
/// tests, the ordered merge by the `parallel_properties` twin-path
/// proptests. Shared by [`CheckpointStore::prepare_chunked`] and the
/// hinted prepare in [`crate::pagecache`].
pub(crate) fn encode_ranges(
    raw: &[u8],
    ranges: &[(usize, usize)],
    compress: bool,
    pool: &Pool,
) -> Vec<(ChunkId, Arc<[u8]>)> {
    pool.map_ordered(
        ranges.to_vec(),
        CodecScratch::new,
        |scratch, (start, len)| {
            let seg = &raw[start..start + len];
            if chunk::is_zero_page(seg) {
                (chunk::zero_page_id(), chunk::zero_page_stored(compress))
            } else {
                (
                    ChunkId::of(seg),
                    chunk::encode_chunk_with(seg, compress, scratch).into(),
                )
            }
        },
    )
}

/// Parses a manifest into `(raw_len, [(id, seg_len, stored_len)])`.
pub(crate) fn decode_manifest(bytes: &[u8]) -> Option<(u64, Vec<(ChunkId, u32, u32)>)> {
    let mut r = ImageReader::verify(bytes).ok()?;
    let parsed = (|| -> Result<Option<(u64, Vec<(ChunkId, u32, u32)>)>, zap::image::ImageError> {
        if r.u32()? != MANIFEST_MAGIC || r.u16()? != STORE_VERSION {
            return Ok(None);
        }
        let raw_len = r.u64()?;
        let n = r.u32()?;
        let mut recs = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let id = ChunkId(r.u64()?, r.u64()?);
            let seg_len = r.u32()?;
            let stored_len = r.u32()?;
            recs.push((id, seg_len, stored_len));
        }
        Ok(Some((raw_len, recs)))
    })();
    parsed.ok().flatten()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latest_cache_tracks_discard() {
        let fs = NetFs::new();
        let s = CheckpointStore::new(fs, "j");
        for e in [1u64, 2, 3] {
            s.put_image("p", e, vec![e as u8]);
            s.commit(e);
        }
        assert_eq!(s.latest_committed_epoch(), Some(3));
        // Discarding the newest epoch must roll the cached mark back.
        s.discard_epoch(3);
        assert_eq!(s.latest_committed_epoch(), Some(2));
        // Discarding an older epoch leaves the mark alone.
        s.discard_epoch(1);
        assert_eq!(s.latest_committed_epoch(), Some(2));
        s.discard_epoch(2);
        assert_eq!(s.latest_committed_epoch(), None);
    }

    #[test]
    fn discard_rolls_back_an_epoch() {
        let fs = NetFs::new();
        let s = CheckpointStore::new(fs, "j");
        s.put_image("a", 2, vec![1]);
        s.put_image("b", 2, vec![2]);
        s.commit(2);
        s.discard_epoch(2);
        assert!(!s.is_committed(2));
        assert_eq!(s.get_image("a", 2), None);
        assert_eq!(s.latest_committed_epoch(), None);
    }

    #[test]
    fn prune_keeps_only_recent_epochs() {
        let fs = NetFs::new();
        let s = CheckpointStore::new(fs, "j");
        for e in [1u64, 2, 3] {
            s.put_image("p", e, vec![e as u8]);
            s.commit(e);
        }
        assert_eq!(s.committed_epochs(), vec![1, 2, 3]);
        s.prune_below(3);
        assert_eq!(s.committed_epochs(), vec![3]);
        assert_eq!(s.get_image("p", 3), Some(vec![3]));
        assert_eq!(s.get_image("p", 1), None);
    }

    // ---- dedup store --------------------------------------------------------

    /// A toy "image": `reps` distinct page-sized blocks of periodic
    /// (compressible) content, with block `hot` overwritten by `fill`.
    fn toy_image(reps: usize, hot: usize, fill: u8) -> (Vec<u8>, Vec<(usize, usize)>) {
        let block = 256usize;
        let mut raw = Vec::with_capacity(reps * block);
        let mut cuts = Vec::new();
        for b in 0..reps {
            cuts.push((raw.len(), block));
            if b == hot {
                raw.extend(std::iter::repeat(fill).take(block));
            } else {
                raw.extend((0..block).map(|i| (((b * 31) + (i % 7)) % 251) as u8 | 1));
            }
        }
        (raw, cuts)
    }

    fn cfg() -> StoreConfig {
        StoreConfig {
            chunk_bytes: 256,
            dedup: true,
            compress: true,
            ..StoreConfig::default()
        }
    }

    #[test]
    fn chunked_round_trip_is_byte_identical() {
        let fs = NetFs::new();
        let s = CheckpointStore::new(fs, "j");
        let (raw, cuts) = toy_image(32, 3, 0xaa);
        let put = s.prepare_chunked(&raw, &cuts, &cfg());
        s.put_prepared("p", 1, PreparedPut::Chunked(put));
        s.commit(1);
        assert_eq!(s.get_image("p", 1), Some(raw.clone()));
        assert_eq!(s.image_len("p", 1), Some(raw.len() as u64));
        assert!(
            s.stored_len("p", 1).unwrap() < raw.len() as u64,
            "compression + in-image dedup shrink the stored form"
        );
        assert_eq!(s.pods_in_epoch(1), vec!["p".to_string()]);
    }

    #[test]
    fn second_epoch_writes_only_changed_chunks() {
        let fs = NetFs::new();
        let s = CheckpointStore::new(fs, "j");
        let (raw1, cuts1) = toy_image(32, 3, 0xaa);
        let put1 = s.prepare_chunked(&raw1, &cuts1, &cfg());
        let first_bytes = put1.new_bytes();
        s.put_prepared("p", 1, PreparedPut::Chunked(put1));
        s.commit(1);
        // Epoch 2: one block changed.
        let (raw2, cuts2) = toy_image(32, 3, 0xbb);
        let put2 = s.prepare_chunked(&raw2, &cuts2, &cfg());
        assert_eq!(put2.novel_count(), 1, "only the hot block is novel");
        // The steady-state write is far below the plain store's full image
        // and below even the first (all-novel) dedup epoch.
        assert!(put2.new_bytes() * 5 < raw2.len() as u64);
        assert!(put2.new_bytes() < first_bytes);
        s.put_prepared("p", 2, PreparedPut::Chunked(put2));
        s.commit(2);
        assert_eq!(s.get_image("p", 2), Some(raw2));
        assert_eq!(s.get_image("p", 1), Some(raw1), "old epoch still intact");
    }

    #[test]
    fn gc_reclaims_exactly_unshared_chunks() {
        let fs = NetFs::new();
        let s = CheckpointStore::new(fs, "j");
        let (raw1, cuts1) = toy_image(16, 2, 0xaa);
        let (raw2, cuts2) = toy_image(16, 2, 0xbb);
        let put1 = PreparedPut::Chunked(s.prepare_chunked(&raw1, &cuts1, &cfg()));
        s.put_prepared("p", 1, put1);
        s.commit(1);
        let put2 = PreparedPut::Chunked(s.prepare_chunked(&raw2, &cuts2, &cfg()));
        s.put_prepared("p", 2, put2);
        s.commit(2);
        // Both epochs alive: the chunk set is the union of their manifests.
        let want: BTreeSet<ChunkId> = s
            .chunks_referenced_by(1)
            .union(&s.chunks_referenced_by(2))
            .copied()
            .collect();
        let live: BTreeSet<ChunkId> = s.live_chunks().into_iter().collect();
        assert_eq!(live, want);
        // Retire epoch 1: only epoch 2's chunks survive (shared ones stay).
        s.prune_below(2);
        let live: BTreeSet<ChunkId> = s.live_chunks().into_iter().collect();
        assert_eq!(live, s.chunks_referenced_by(2));
        assert_eq!(s.get_image("p", 2), Some(raw2), "survivor reconstructs");
        // Retire everything: the chunk store empties completely.
        s.discard_epoch(2);
        assert!(s.live_chunks().is_empty());
        assert!(!s.fs.exists(&s.refs_path()), "refcount table reclaimed");
        assert!(
            s.orphan_chunks().is_empty(),
            "refcount GC never strands a chunk"
        );
    }

    #[test]
    fn orphan_audit_finds_and_reclaims_strays() {
        let fs = NetFs::new();
        let s = CheckpointStore::new(fs, "j");
        let (raw, cuts) = toy_image(8, 1, 0xaa);
        let put = PreparedPut::Chunked(s.prepare_chunked(&raw, &cuts, &cfg()));
        s.put_prepared("p", 1, put);
        s.commit(1);
        assert!(s.orphan_chunks().is_empty(), "healthy store has no orphans");
        // Simulate a crash that persisted chunks but lost the manifest.
        s.fs.remove(&s.manifest_path("p", 1));
        let orphans = s.orphan_chunks();
        assert!(!orphans.is_empty(), "manifest loss strands its chunks");
        assert_eq!(s.gc_orphan_chunks(), orphans.len());
        assert!(s.live_chunks().is_empty());
        assert!(s.orphan_chunks().is_empty());
        assert!(
            !s.fs.exists(&s.refs_path()),
            "dangling REFS entries scrubbed"
        );
    }

    #[test]
    fn torn_writes_strand_only_a_prefix_and_never_commit() {
        let fs = NetFs::new();
        let s = CheckpointStore::new(fs, "j");
        let (raw, cuts) = toy_image(8, 1, 0x5a);
        let full = s.prepare_chunked(&raw, &cuts, &cfg());
        let novel = full.novel_count();
        // Half the image reaches disk; the manifest never does.
        s.put_torn("p", 1, &PreparedPut::Chunked(full), 128);
        let stranded = s.live_chunks().len();
        assert!(stranded > 0, "a torn write leaves a chunk prefix");
        assert!(stranded < novel, "but not the whole image");
        assert_eq!(s.orphan_chunks().len(), stranded, "all of it is orphaned");
        assert_eq!(s.get_image("p", 1), None, "no manifest, no image");
        assert!(!s.is_committed(1));
        assert_eq!(s.gc_orphan_chunks(), stranded);
        assert!(s.live_chunks().is_empty());
        // Torn plain writes truncate: frac 0 writes nothing at all.
        s.put_torn("p", 2, &PreparedPut::Plain(vec![9; 100]), 64);
        assert_eq!(s.fs.len_of(&s.image_path("p", 2)), Some(25));
        s.put_torn("p", 3, &PreparedPut::Plain(vec![9; 100]), 0);
        assert!(!s.fs.exists(&s.image_path("p", 3)));
    }

    #[test]
    fn uncommitted_epochs_surface_half_written_state() {
        let fs = NetFs::new();
        let s = CheckpointStore::new(fs, "j");
        s.put_image("p", 1, vec![1]);
        s.commit(1);
        s.put_image("p", 2, vec![2]); // no commit record: crashed mid-write
        assert_eq!(s.all_epochs(), vec![1, 2]);
        assert_eq!(s.uncommitted_epochs(), vec![2]);
        s.discard_epoch(2);
        assert!(s.uncommitted_epochs().is_empty());
        assert_eq!(s.latest_committed_epoch(), Some(1));
    }

    #[test]
    fn repeated_chunks_within_one_image_refcount_correctly() {
        let fs = NetFs::new();
        let s = CheckpointStore::new(fs, "j");
        // Four identical blocks → one chunk, referenced four times.
        let raw = vec![7u8; 1024];
        let put = s.prepare_chunked(&raw, &[], &cfg());
        assert_eq!(put.chunk_count(), 4);
        assert_eq!(put.novel_count(), 1);
        s.put_prepared("p", 1, PreparedPut::Chunked(put));
        assert_eq!(s.live_chunks().len(), 1);
        s.discard_epoch(1);
        assert!(s.live_chunks().is_empty(), "all four references released");
    }

    #[test]
    fn missing_chunk_fails_closed() {
        let fs = NetFs::new();
        let s = CheckpointStore::new(fs, "j");
        let (raw, cuts) = toy_image(8, 1, 0xaa);
        s.put_prepared(
            "p",
            1,
            PreparedPut::Chunked(s.prepare_chunked(&raw, &cuts, &cfg())),
        );
        let victim = s.live_chunks()[0];
        s.fs.remove(&s.chunk_path(victim));
        assert_eq!(s.get_image("p", 1), None, "a torn image is not served");
    }
}
