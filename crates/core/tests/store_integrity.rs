//! End-to-end read-integrity and replay-idempotency tests for the
//! checkpoint store.
//!
//! The store must never hand back bytes it cannot prove are the ones that
//! were written: every read path — plain images, chunk bodies, manifests —
//! re-verifies content against the epoch's digest sidecar and the chunks'
//! content addresses, and fails closed (returns `None`) on any mismatch.
//! The mutation paths must also be idempotent under operation-log replay:
//! re-applying a put or a discard after a replica crash must leave
//! refcounts and on-disk state exactly as a single application would.

use cruz::store::{CheckpointStore, PreparedPut, StoreConfig};
use simos::fs::NetFs;

/// A toy "image": `reps` distinct page-sized blocks of periodic
/// (compressible) content, with block `hot` overwritten by `fill`.
fn toy_image(reps: usize, hot: usize, fill: u8) -> (Vec<u8>, Vec<(usize, usize)>) {
    let block = 256usize;
    let mut raw = Vec::with_capacity(reps * block);
    let mut cuts = Vec::new();
    for b in 0..reps {
        cuts.push((raw.len(), block));
        if b == hot {
            raw.extend(std::iter::repeat(fill).take(block));
        } else {
            raw.extend((0..block).map(|i| (((b * 31) + (i % 7)) % 251) as u8 | 1));
        }
    }
    (raw, cuts)
}

fn cfg() -> StoreConfig {
    StoreConfig {
        chunk_bytes: 256,
        dedup: true,
        compress: true,
        ..StoreConfig::default()
    }
}

fn put_chunked(s: &CheckpointStore, pod: &str, epoch: u64, raw: &[u8], cuts: &[(usize, usize)]) {
    let prep = s.prepare_chunked(raw, cuts, &cfg());
    s.put_prepared(pod, epoch, PreparedPut::Chunked(prep));
}

// ---- lifecycle (public API) -------------------------------------------------

#[test]
fn commit_gating() {
    let s = CheckpointStore::new(NetFs::new(), "job1");
    s.put_image("pod0", 1, vec![1, 2, 3]);
    assert!(!s.is_committed(1));
    assert_eq!(s.latest_committed_epoch(), None, "uncommitted is invisible");
    s.commit(1);
    assert!(s.is_committed(1));
    assert_eq!(s.latest_committed_epoch(), Some(1));
    assert_eq!(s.get_image("pod0", 1), Some(vec![1, 2, 3]));
}

#[test]
fn latest_epoch_wins() {
    let s = CheckpointStore::new(NetFs::new(), "j");
    for e in [3u64, 1, 7, 5] {
        s.put_image("p", e, vec![e as u8]);
        s.commit(e);
    }
    assert_eq!(s.latest_committed_epoch(), Some(7));
}

#[test]
fn pods_in_epoch_lists_images() {
    let s = CheckpointStore::new(NetFs::new(), "j");
    s.put_image("x", 4, vec![]);
    s.put_image("y", 4, vec![]);
    s.commit(4);
    let mut pods = s.pods_in_epoch(4);
    pods.sort();
    assert_eq!(pods, vec!["x".to_string(), "y".to_string()]);
}

#[test]
fn jobs_are_isolated() {
    let fs = NetFs::new();
    let a = CheckpointStore::new(fs.clone(), "a");
    let b = CheckpointStore::new(fs, "b");
    a.put_image("p", 1, vec![]);
    a.commit(1);
    assert_eq!(b.latest_committed_epoch(), None);
}

// ---- read integrity: every path verifies, every mismatch fails closed -------

#[test]
fn corrupted_plain_image_is_rejected() {
    let fs = NetFs::new();
    let s = CheckpointStore::new(fs.clone(), "j");
    s.put_image("p", 1, vec![7u8; 1024]);
    s.commit(1);
    assert!(s.get_image("p", 1).is_some(), "clean read succeeds");

    // Flip one byte in the middle of the stored image: same length, same
    // structure, silently wrong content — only the digest sidecar can
    // catch it.
    let path = s.image_path("p", 1);
    let mut bytes = fs.read_file(&path).unwrap();
    bytes[512] ^= 0xff;
    fs.write_file(&path, bytes);
    assert_eq!(s.get_image("p", 1), None, "bit rot must not be served");
    assert!(
        s.image_len("p", 1).is_some(),
        "the file itself is still there — only the verified read refuses"
    );
}

#[test]
fn swapped_manifest_that_still_decodes_is_rejected() {
    let fs = NetFs::new();
    let s = CheckpointStore::new(fs.clone(), "j");
    let (raw_a, cuts_a) = toy_image(16, 3, 0xaa);
    let (raw_b, cuts_b) = toy_image(16, 5, 0x55);
    put_chunked(&s, "a", 1, &raw_a, &cuts_a);
    put_chunked(&s, "b", 1, &raw_b, &cuts_b);
    s.commit(1);

    // Overwrite b's manifest with a's: the result is a perfectly
    // well-formed manifest (magic, version, records, resolvable chunks)
    // that reconstructs the WRONG image. Structural decode cannot catch
    // this — only the whole-image digest sidecar can.
    let stolen = fs.read_file(&s.manifest_path("a", 1)).unwrap();
    fs.write_file(&s.manifest_path("b", 1), stolen);
    assert_eq!(s.get_image("b", 1), None, "torn/swapped manifest rejected");
    assert_eq!(
        s.get_image("a", 1),
        Some(raw_a),
        "the donor pod still reads"
    );
}

#[test]
fn corrupt_chunk_body_is_rejected_by_content_address() {
    let fs = NetFs::new();
    let s = CheckpointStore::new(fs.clone(), "j");
    let (raw, cuts) = toy_image(8, 2, 0xee);
    put_chunked(&s, "p", 1, &raw, &cuts);
    s.commit(1);

    // Overwrite one chunk's body with another chunk's: the container
    // still decodes cleanly, but the content no longer matches the
    // chunk's address.
    let ids: Vec<_> = s.chunks_referenced_by(1).into_iter().collect();
    assert!(ids.len() >= 2, "toy image must span several chunks");
    let donor = fs.read_file(&s.chunk_path(ids[0])).unwrap();
    fs.write_file(&s.chunk_path(ids[1]), donor);
    assert_eq!(s.get_image("p", 1), None, "content-address mismatch");
}

#[test]
fn missing_digest_sidecar_fails_closed() {
    let fs = NetFs::new();
    let s = CheckpointStore::new(fs.clone(), "j");
    s.put_image("plain", 1, vec![1, 2, 3]);
    let (raw, cuts) = toy_image(4, 0, 0x11);
    put_chunked(&s, "chunked", 1, &raw, &cuts);
    s.commit(1);

    // A read with no digest sidecar cannot be verified, so it must not be
    // served — trusting the raw bytes is exactly the hole this closes.
    assert!(fs.remove(&s.digest_path("plain", 1)));
    assert!(fs.remove(&s.digest_path("chunked", 1)));
    assert_eq!(s.get_image("plain", 1), None);
    assert_eq!(s.get_image("chunked", 1), None);
}

// ---- replay idempotency -----------------------------------------------------

#[test]
fn replayed_put_takes_chunk_refs_once() {
    let s = CheckpointStore::new(NetFs::new(), "j");
    let (raw, cuts) = toy_image(8, 1, 0x3c);
    // The same logical put applied twice (an operation-log replay after a
    // replica crash): the second application sees its identical manifest
    // already on disk and must not bump refcounts again.
    put_chunked(&s, "p", 1, &raw, &cuts);
    put_chunked(&s, "p", 1, &raw, &cuts);
    s.commit(1);
    assert_eq!(s.get_image("p", 1), Some(raw));

    s.discard_epoch(1);
    // A double-counted put would leave every chunk at refcount 1 after the
    // discard, stranding the files forever; a single count drops them to
    // zero and deletes them on the spot.
    assert!(
        s.live_chunks().is_empty(),
        "one discard must zero the refs a single put took"
    );
    assert_eq!(s.gc_orphan_chunks(), 0, "nothing left to reclaim");
}

#[test]
fn replayed_discard_is_a_no_op() {
    let s = CheckpointStore::new(NetFs::new(), "j");
    let (raw1, cuts) = toy_image(8, 1, 0x3c);
    let (raw2, _) = toy_image(8, 1, 0x99);
    put_chunked(&s, "p", 1, &raw1, &cuts);
    s.commit(1);
    put_chunked(&s, "p", 2, &raw2, &cuts);
    s.commit(2);

    let epoch1_chunks = s.chunks_referenced_by(1);
    s.discard_epoch(2);
    s.discard_epoch(2); // replayed: files already gone, refs must not drop again
    let live: std::collections::BTreeSet<_> = s.live_chunks().into_iter().collect();
    assert_eq!(
        live, epoch1_chunks,
        "the surviving epoch's refs are untouched by the replay"
    );
    assert_eq!(s.get_image("p", 1), Some(raw1), "epoch 1 still restores");
    assert_eq!(s.gc_orphan_chunks(), 0, "no strays: discard cleaned up");
}
