//! Property tests on the chunk codec and content addressing — the two
//! invariants the dedup store rests on:
//!
//! * **round-trip identity**: `decode(encode(x)) == x` for arbitrary
//!   inputs, compressed or raw, so reassembled images are byte-exact;
//! * **determinism**: chunking, hashing and compression are pure functions
//!   of the input bytes — two stores fed the same image produce
//!   byte-identical chunk files and manifests.

use cruz::chunk::{self, ChunkId};
use cruz::store::{CheckpointStore, PreparedPut, StoreConfig};
use proptest::prelude::*;

use simos::fs::NetFs;

/// Inputs spanning the interesting regimes: runs (RLE), periodic
/// patterns (LZ matches), and incompressible noise, at sizes around the
/// token-length and chunk boundaries.
fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // Arbitrary bytes, including empty and sub-MIN_MATCH sizes.
        proptest::collection::vec(any::<u8>(), 0..600),
        // A run of one byte (worst case for literal emission, best for RLE).
        (any::<u8>(), 0usize..5000).prop_map(|(b, n)| vec![b; n]),
        // Periodic content with an arbitrary period.
        (1usize..40, 1usize..3000)
            .prop_map(|(period, len)| (0..len).map(|i| (i % period) as u8).collect()),
        // Noise via a multiplicative hash (defeats the match finder).
        (any::<u64>(), 0usize..2000).prop_map(|(seed, len)| {
            (0..len)
                .map(|i| ((i as u64).wrapping_mul(seed | 1) >> 24) as u8)
                .collect()
        }),
    ]
}

/// Raw (offset, len) pairs; [`cuts_from`] normalises them for a buffer.
fn arb_cut_recipe() -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0usize..6000, 0usize..300), 0..6)
}

/// Turns an arbitrary recipe into a valid ascending, non-overlapping cut
/// list for a buffer of length `len`, as `prepare_chunked` requires.
fn cuts_from(recipe: &[(usize, usize)], len: usize) -> Vec<(usize, usize)> {
    let mut raw = recipe.to_vec();
    raw.sort_unstable();
    let mut cuts: Vec<(usize, usize)> = Vec::new();
    let mut pos = 0;
    for (off, l) in raw {
        let off = off.max(pos);
        if off >= len {
            break;
        }
        let l = l.min(len - off);
        cuts.push((off, l));
        pos = off + l;
    }
    cuts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn compress_round_trips(data in arb_payload()) {
        let packed = chunk::compress(&data);
        prop_assert_eq!(chunk::decompress(&packed).expect("valid stream"), data);
    }

    #[test]
    fn chunk_container_round_trips(data in arb_payload(), on in any::<bool>()) {
        let stored = chunk::encode_chunk(&data, on);
        prop_assert_eq!(chunk::decode_chunk(&stored).expect("valid container"), data);
        // The container never bloats beyond the raw fallback.
        prop_assert!(stored.len() <= data.len() + 1);
    }

    #[test]
    fn codec_is_deterministic(data in arb_payload()) {
        prop_assert_eq!(chunk::compress(&data), chunk::compress(&data));
        prop_assert_eq!(ChunkId::of(&data), ChunkId::of(&data));
        prop_assert_eq!(chunk::encode_chunk(&data, true), chunk::encode_chunk(&data, true));
    }

    #[test]
    fn split_ranges_partition_exactly(
        data in arb_payload(),
        recipe in arb_cut_recipe(),
        chunk_bytes in 1usize..700,
    ) {
        let cuts = cuts_from(&recipe, data.len());
        let ranges = chunk::split_ranges(data.len(), &cuts, chunk_bytes);
        // The ranges tile 0..len contiguously and respect the chunk cap.
        let mut pos = 0;
        for &(start, len) in &ranges {
            prop_assert_eq!(start, pos);
            prop_assert!(len >= 1 && len <= chunk_bytes);
            pos += len;
        }
        prop_assert_eq!(pos, data.len());
        // Every cut start is also a chunk start (the alignment guarantee).
        for &(off, l) in &cuts {
            if l > 0 {
                prop_assert!(ranges.iter().any(|&(s, _)| s == off));
            }
        }
    }

    #[test]
    fn same_image_yields_byte_identical_chunks_and_manifests(
        data in arb_payload(),
        recipe in arb_cut_recipe(),
        compress in any::<bool>(),
    ) {
        let cuts = cuts_from(&recipe, data.len());
        let cfg = StoreConfig { chunk_bytes: 128, dedup: true, compress, ..StoreConfig::default() };
        // Two fresh stores, same input: the chunk files and manifests they
        // persist must match byte for byte (cross-process dedup soundness).
        let mk = || {
            let fs = NetFs::new();
            let s = CheckpointStore::new(fs.clone(), "j");
            let put = s.prepare_chunked(&data, &cuts, &cfg);
            s.put_prepared("p", 1, PreparedPut::Chunked(put));
            let mut files: Vec<(String, Vec<u8>)> = fs
                .list("/ckpt/")
                .into_iter()
                .map(|p| {
                    let bytes = fs.read_file(&p).expect("listed file exists");
                    (p, bytes)
                })
                .collect();
            files.sort();
            files
        };
        prop_assert_eq!(mk(), mk());
        // And the store reassembles the original bytes.
        let fs = NetFs::new();
        let s = CheckpointStore::new(fs, "j");
        let put = s.prepare_chunked(&data, &cuts, &cfg);
        s.put_prepared("p", 1, PreparedPut::Chunked(put));
        prop_assert_eq!(s.get_image("p", 1).expect("image reconstructs"), data);
    }
}
