//! The system-call interface between guest programs and the kernel.
//!
//! Calling convention: the guest places the syscall number in `r0` and the
//! arguments in `r1..=r5`, executes the `syscall` instruction, and receives
//! the result in `r0` (negative values encode [`crate::error::Errno`]).
//!
//! The [`SyscallHook`] trait is the kernel's module-interposition point —
//! the analogue of the syscall-table wrapping the paper's Zap kernel module
//! performs. The hook sees every syscall before the kernel does and may
//! pass it through, rewrite its arguments (e.g. `bind` to the pod VIF
//! address, §4.2), or service it entirely (e.g. `recv` from the restore-time
//! alternate buffer, §4.1).

use crate::kernel::Kernel;
use crate::proc::Pid;

/// Syscall numbers.
pub mod nr {
    /// `exit(code)` — terminate the calling process.
    pub const EXIT: u64 = 0;
    /// `log(buf, len)` — write a line to the process console.
    pub const LOG: u64 = 1;
    /// `getpid() -> pid`.
    pub const GETPID: u64 = 2;
    /// `sleep(ns)` — block for a duration.
    pub const SLEEP: u64 = 3;
    /// `time() -> ns` — current simulated time.
    pub const TIME: u64 = 4;
    /// `yield()` — relinquish the CPU.
    pub const YIELD: u64 = 5;
    /// `open(path_ptr, path_len, flags) -> fd` (flags: 1 = create/truncate).
    pub const OPEN: u64 = 6;
    /// `close(fd)`.
    pub const CLOSE: u64 = 7;
    /// `read(fd, buf, len) -> n` — file, pipe or socket.
    pub const READ: u64 = 8;
    /// `write(fd, buf, len) -> n` — file, pipe, socket or console.
    pub const WRITE: u64 = 9;
    /// `pipe(fds_ptr)` — writes read fd then write fd as two u64s.
    pub const PIPE: u64 = 10;
    /// `socket(proto) -> fd` (0 = TCP, 1 = UDP).
    pub const SOCKET: u64 = 11;
    /// `bind(fd, ip, port)`.
    pub const BIND: u64 = 12;
    /// `listen(fd, backlog)`.
    pub const LISTEN: u64 = 13;
    /// `accept(fd) -> fd`.
    pub const ACCEPT: u64 = 14;
    /// `connect(fd, ip, port)`.
    pub const CONNECT: u64 = 15;
    /// `send(fd, buf, len) -> n`.
    pub const SEND: u64 = 16;
    /// `recv(fd, buf, len) -> n` (0 = EOF).
    pub const RECV: u64 = 17;
    /// `setsockopt(fd, opt, val)` (opt 1 = NODELAY, 2 = CORK).
    pub const SETSOCKOPT: u64 = 18;
    /// `getsockopt(fd, opt) -> val`.
    pub const GETSOCKOPT: u64 = 19;
    /// `kill(pid, sig)`.
    pub const KILL: u64 = 20;
    /// `shmget(key, size) -> shmid`.
    pub const SHMGET: u64 = 21;
    /// `shmat(shmid, addr) -> addr`.
    pub const SHMAT: u64 = 22;
    /// `semget(key, n) -> semid`.
    pub const SEMGET: u64 = 23;
    /// `semop(semid, idx, delta)` — blocks if the op would go negative.
    pub const SEMOP: u64 = 24;
    /// `spawn(entry, stack_top, arg) -> pid` — thread sharing memory/fds.
    pub const SPAWN: u64 = 25;
    /// `waitpid(pid) -> exit_code`.
    pub const WAITPID: u64 = 26;
    /// `ioctl(fd, req, ptr)`.
    pub const IOCTL: u64 = 27;
    /// `sendto(fd, ip, port, buf, len)` — UDP.
    pub const SENDTO: u64 = 28;
    /// `recvfrom(fd, buf, len, src_ptr) -> n` — UDP; writes ip,port u64s.
    pub const RECVFROM: u64 = 29;
    /// `fork() -> pid` — clone the process: copied address space, shared
    /// open objects (pipes/sockets stay open while any copy references
    /// them). Returns the child pid in the parent and 0 in the child.
    pub const FORK: u64 = 30;
}

/// `ioctl` request codes.
pub mod ioctl {
    /// `SIOCGIFHWADDR`: write the interface hardware address (6 bytes,
    /// zero-extended to a u64) to the pointer argument. The Zap layer
    /// intercepts this to return the pod's *fake* MAC (§4.2).
    pub const SIOCGIFHWADDR: u64 = 0x8927;
    /// `SIOCGIFADDR`: write the interface IPv4 address (u64) to the pointer.
    pub const SIOCGIFADDR: u64 = 0x8915;
}

/// Signal numbers.
pub mod sig {
    /// Terminate immediately.
    pub const SIGKILL: u64 = 9;
    /// Freeze the process (checkpoint uses this, like the paper's Zap).
    pub const SIGSTOP: u64 = 19;
    /// Resume a stopped process.
    pub const SIGCONT: u64 = 18;
    /// Polite termination (same effect as SIGKILL here).
    pub const SIGTERM: u64 = 15;
}

/// A hook's decision about an intercepted syscall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HookDecision {
    /// Let the kernel handle the call unchanged.
    Pass,
    /// Let the kernel handle the call with rewritten arguments.
    PassArgs([u64; 5]),
    /// The hook fully serviced the call; return this value to the guest.
    Done(u64),
}

/// A syscall interposition layer (the "kernel module" slot).
///
/// At most one hook is installed per kernel; the Zap layer's interposer
/// multiplexes per-pod behaviour internally.
pub trait SyscallHook {
    /// Inspects (and possibly services) a syscall before the kernel does.
    fn on_syscall(
        &mut self,
        kernel: &mut Kernel,
        pid: Pid,
        num: u64,
        args: [u64; 5],
    ) -> HookDecision;
}
