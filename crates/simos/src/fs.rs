//! The network-accessible filesystem.
//!
//! Like the paper's setup, checkpoint images and application files live on a
//! file system reachable from every node, so an application checkpointed on
//! one machine can be restarted on any other. The store is a single shared
//! object; each node accesses it through its own handle.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// A shared in-memory filesystem.
///
/// Cloning the handle shares the same underlying store (this is the
/// "network" part — every node mounts the same server).
///
/// # Examples
///
/// ```
/// use simos::fs::NetFs;
///
/// let fs = NetFs::new();
/// let node_a = fs.clone();
/// let node_b = fs.clone();
/// node_a.write_file("/ckpt/pod1.img", b"image".to_vec());
/// assert_eq!(node_b.read_file("/ckpt/pod1.img").unwrap(), b"image");
/// ```
#[derive(Debug, Clone, Default)]
pub struct NetFs {
    files: Rc<RefCell<BTreeMap<String, Vec<u8>>>>,
}

impl NetFs {
    /// Creates an empty filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates or truncates a file with `data`.
    pub fn write_file(&self, path: &str, data: Vec<u8>) {
        self.files.borrow_mut().insert(path.to_owned(), data);
    }

    /// Appends to a file, creating it if needed. Returns the new length.
    pub fn append_file(&self, path: &str, data: &[u8]) -> usize {
        let mut files = self.files.borrow_mut();
        let f = files.entry(path.to_owned()).or_default();
        f.extend_from_slice(data);
        f.len()
    }

    /// Reads a whole file.
    pub fn read_file(&self, path: &str) -> Option<Vec<u8>> {
        self.files.borrow().get(path).cloned()
    }

    /// Reads up to `len` bytes at `offset`.
    pub fn read_at(&self, path: &str, offset: u64, len: usize) -> Option<Vec<u8>> {
        let files = self.files.borrow();
        let f = files.get(path)?;
        let start = (offset as usize).min(f.len());
        let end = (start + len).min(f.len());
        Some(f[start..end].to_vec())
    }

    /// Writes `data` at `offset`, extending the file with zeros if needed.
    pub fn write_at(&self, path: &str, offset: u64, data: &[u8]) {
        let mut files = self.files.borrow_mut();
        let f = files.entry(path.to_owned()).or_default();
        let end = offset as usize + data.len();
        if f.len() < end {
            f.resize(end, 0);
        }
        f[offset as usize..end].copy_from_slice(data);
    }

    /// File size, if it exists.
    pub fn len_of(&self, path: &str) -> Option<u64> {
        self.files.borrow().get(path).map(|f| f.len() as u64)
    }

    /// True if the file exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.borrow().contains_key(path)
    }

    /// Removes a file; returns true if it existed.
    pub fn remove(&self, path: &str) -> bool {
        self.files.borrow_mut().remove(path).is_some()
    }

    /// Lists paths under a prefix.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.files
            .borrow()
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_across_clones() {
        let fs = NetFs::new();
        let other = fs.clone();
        fs.write_file("/a", vec![1, 2, 3]);
        assert_eq!(other.read_file("/a"), Some(vec![1, 2, 3]));
        assert!(other.exists("/a"));
    }

    #[test]
    fn positional_io() {
        let fs = NetFs::new();
        fs.write_at("/f", 4, b"xy");
        assert_eq!(fs.read_file("/f").unwrap(), vec![0, 0, 0, 0, b'x', b'y']);
        assert_eq!(fs.read_at("/f", 4, 10).unwrap(), b"xy");
        assert_eq!(fs.read_at("/f", 100, 10).unwrap(), b"");
        assert_eq!(fs.read_at("/missing", 0, 1), None);
    }

    #[test]
    fn append_and_len() {
        let fs = NetFs::new();
        assert_eq!(fs.append_file("/log", b"ab"), 2);
        assert_eq!(fs.append_file("/log", b"cd"), 4);
        assert_eq!(fs.len_of("/log"), Some(4));
    }

    #[test]
    fn list_and_remove() {
        let fs = NetFs::new();
        fs.write_file("/ckpt/1", vec![]);
        fs.write_file("/ckpt/2", vec![]);
        fs.write_file("/data/x", vec![]);
        assert_eq!(fs.list("/ckpt/").len(), 2);
        assert!(fs.remove("/ckpt/1"));
        assert!(!fs.remove("/ckpt/1"));
        assert_eq!(fs.list("/ckpt/").len(), 1);
    }
}
