//! The simulated per-node operating system of the Cruz reproduction.
//!
//! Each cluster node runs one [`kernel::Kernel`]: a small but complete OS
//! with processes and threads ([`proc`]), paged virtual memory ([`mem`]),
//! file descriptors ([`fd`]), pipes ([`pipe`]), System-V shared memory and
//! semaphores ([`sem`], [`mem::SharedSeg`]), signals, sockets backed by the
//! `simnet` stack, a network filesystem ([`fs`]) and a timed disk
//! ([`disk`]). Guest applications are `simcpu` programs loaded through
//! [`program::Program`] and run under a round-robin scheduler with
//! restartable blocking syscalls.
//!
//! The kernel is deliberately unaware of pods and checkpointing: the `zap`
//! crate layers those on through the [`syscall::SyscallHook`] interposition
//! slot and the kernel's public object tables, mirroring how the paper's
//! Zap is a loadable module on an unmodified Linux kernel.

#![warn(missing_docs)]

pub mod disk;
pub mod error;
pub mod fd;
pub mod fs;
pub mod guest;
pub mod kernel;
pub mod mem;
pub mod pipe;
pub mod proc;
pub mod program;
pub mod sem;
pub mod syscall;

pub use disk::{Disk, DiskParams, WriteFault};
pub use error::Errno;
pub use fs::NetFs;
pub use kernel::{Kernel, KernelParams, SliceOutcome};
pub use mem::AddressSpace;
pub use proc::{Pid, ProcState, Process, WaitFor};
pub use program::Program;
