//! Per-process virtual memory: mapped areas backed by sparse 4 KiB pages.
//!
//! The address space is the bulk of a checkpoint image. As in the paper,
//! only the non-zero pages are saved: untouched demand-zero pages cost
//! nothing on disk and are recreated implicitly at restore.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use simcpu::mem::{MemFault, Memory};

/// Page size in bytes.
pub const PAGE_SIZE: u64 = 4096;

/// What backs a mapped area.
#[derive(Debug, Clone)]
pub enum AreaBacking {
    /// Private demand-zero pages.
    Private,
    /// A System-V shared-memory segment, shared between processes.
    Shared(SharedSeg),
}

/// A shared-memory segment handle (contents shared by all attachments).
#[derive(Debug, Clone)]
pub struct SharedSeg {
    /// Segment id, as returned by `shmget`.
    pub id: u64,
    /// The shared bytes.
    pub data: Rc<RefCell<Vec<u8>>>,
}

impl SharedSeg {
    /// Creates a zero-filled segment.
    pub fn new(id: u64, size: usize) -> Self {
        SharedSeg {
            id,
            data: Rc::new(RefCell::new(vec![0; size])),
        }
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.data.borrow().len()
    }

    /// Returns true for an empty segment.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A mapped region of the address space.
#[derive(Debug, Clone)]
pub struct VmArea {
    /// First byte address (page aligned).
    pub start: u64,
    /// Length in bytes (page aligned).
    pub len: u64,
    /// Backing store.
    pub backing: AreaBacking,
    /// Human-readable tag (`text`, `data`, `stack`, `heap`, `shm`).
    pub tag: String,
}

impl VmArea {
    /// One-past-the-end address.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }

    /// True if `addr` falls inside the area.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.start && addr < self.end()
    }
}

/// A process address space.
///
/// # Examples
///
/// ```
/// use simos::mem::AddressSpace;
/// use simcpu::mem::Memory;
///
/// let mut space = AddressSpace::new();
/// space.map(0x1000, 0x2000, "data").unwrap();
/// space.store_u64(0x1008, 42).unwrap();
/// assert_eq!(space.load_u64(0x1008).unwrap(), 42);
/// assert!(space.load_u64(0x5000).is_err(), "unmapped access faults");
/// ```
#[derive(Debug, Clone, Default)]
pub struct AddressSpace {
    areas: Vec<VmArea>,
    /// Private pages, keyed by page-aligned address.
    pages: BTreeMap<u64, Box<[u8]>>,
    /// Pages written since the last [`AddressSpace::clear_dirty`] — the
    /// book-keeping incremental checkpointing consumes.
    dirty: std::collections::BTreeSet<u64>,
    /// An armed copy-on-write snapshot, if a checkpoint drain is pending.
    cow: Option<CowSnapshot>,
}

/// The state of one armed copy-on-write snapshot: everything needed to
/// reconstruct the private pages exactly as they were at
/// [`AddressSpace::cow_arm`] time, while the owning process keeps writing.
///
/// Arming is O(dirty set): no page is copied up front. The first
/// post-arm write to a page preserves its pre-image here (the write-protect
/// fault of a real COW implementation); pages never written again are read
/// straight from the live page table at drain time.
#[derive(Debug, Clone)]
struct CowSnapshot {
    /// Pre-images of pages mutated (or dropped) since arm. `Some(page)` is
    /// the page's contents at arm time; `None` records that the page was
    /// not resident (demand-zero) at arm time and must not appear in the
    /// snapshot even though it is resident now.
    preserved: BTreeMap<u64, Option<Box<[u8]>>>,
    /// The dirty set at arm time (what an incremental drain captures).
    dirty_at_arm: std::collections::BTreeSet<u64>,
    /// Bytes of pre-image copies forced by post-arm writes — the extra
    /// copy cost COW trades for a short freeze.
    copied_bytes: u64,
}

/// Error mapping a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapError {
    /// The requested range overlaps an existing area.
    Overlap,
    /// Start or length is not page aligned, or length is zero.
    BadAlignment,
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Overlap => write!(f, "mapping overlaps an existing area"),
            MapError::BadAlignment => write!(f, "mapping not page aligned or empty"),
        }
    }
}

impl std::error::Error for MapError {}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps a private demand-zero area.
    ///
    /// # Errors
    ///
    /// [`MapError`] on misalignment or overlap with an existing area.
    pub fn map(&mut self, start: u64, len: u64, tag: &str) -> Result<(), MapError> {
        self.map_area(start, len, AreaBacking::Private, tag)
    }

    /// Maps a shared segment at `start`.
    ///
    /// # Errors
    ///
    /// [`MapError`] on misalignment or overlap.
    pub fn map_shared(&mut self, start: u64, seg: SharedSeg, tag: &str) -> Result<(), MapError> {
        let len = (seg.len() as u64).div_ceil(PAGE_SIZE) * PAGE_SIZE;
        self.map_area(start, len, AreaBacking::Shared(seg), tag)
    }

    fn map_area(
        &mut self,
        start: u64,
        len: u64,
        backing: AreaBacking,
        tag: &str,
    ) -> Result<(), MapError> {
        if len == 0 || !start.is_multiple_of(PAGE_SIZE) || !len.is_multiple_of(PAGE_SIZE) {
            return Err(MapError::BadAlignment);
        }
        let end = start + len;
        if self.areas.iter().any(|a| start < a.end() && a.start < end) {
            return Err(MapError::Overlap);
        }
        self.areas.push(VmArea {
            start,
            len,
            backing,
            tag: tag.to_owned(),
        });
        self.areas.sort_by_key(|a| a.start);
        Ok(())
    }

    /// Unmaps the area starting at `start`, dropping its private pages.
    /// Returns true if an area was removed.
    pub fn unmap(&mut self, start: u64) -> bool {
        let Some(pos) = self.areas.iter().position(|a| a.start == start) else {
            return false;
        };
        let area = self.areas.remove(pos);
        let keys: Vec<u64> = self
            .pages
            .range(area.start..area.end())
            .map(|(&k, _)| k)
            .collect();
        for k in keys {
            self.cow_preserve(k);
            self.pages.remove(&k);
        }
        true
    }

    /// The mapped areas, sorted by start address.
    pub fn areas(&self) -> &[VmArea] {
        &self.areas
    }

    /// Finds the area containing `addr`.
    pub fn area_for(&self, addr: u64) -> Option<&VmArea> {
        self.areas.iter().find(|a| a.contains(addr))
    }

    /// Iterates over the resident private pages (page address, contents),
    /// skipping pages that are entirely zero — the checkpoint's page set.
    pub fn nonzero_pages(&self) -> impl Iterator<Item = (u64, &[u8])> {
        self.pages
            .iter()
            .filter(|(_, p)| p.iter().any(|&b| b != 0))
            .map(|(&a, p)| (a, &p[..]))
    }

    /// Number of resident private pages (zero or not).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Installs page contents directly (used by program loading and restore).
    ///
    /// # Panics
    ///
    /// Panics if `page_addr` is not page aligned or `data` is longer than a
    /// page.
    pub fn install_page(&mut self, page_addr: u64, data: &[u8]) {
        assert_eq!(page_addr % PAGE_SIZE, 0, "page address must be aligned");
        assert!(data.len() <= PAGE_SIZE as usize, "page data too long");
        self.cow_preserve(page_addr);
        let mut page = vec![0u8; PAGE_SIZE as usize].into_boxed_slice();
        page[..data.len()].copy_from_slice(data);
        self.pages.insert(page_addr, page);
        self.dirty.insert(page_addr);
    }

    /// Pages written since the last [`AddressSpace::clear_dirty`], with
    /// their current contents (zero-filled pages included — a page that
    /// *became* zero must still appear in an incremental image).
    pub fn dirty_pages(&self) -> impl Iterator<Item = (u64, &[u8])> {
        self.dirty
            .iter()
            .filter_map(|&a| self.pages.get(&a).map(|p| (a, &p[..])))
    }

    /// Number of dirty pages.
    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }

    /// Addresses of the pages written since the last
    /// [`AddressSpace::clear_dirty`] — the set the capture path's
    /// page-digest cache keys its clean-page reuse on.
    pub fn dirty_set(&self) -> &std::collections::BTreeSet<u64> {
        &self.dirty
    }

    /// Resets dirty tracking (called when a checkpoint captures the space).
    pub fn clear_dirty(&mut self) {
        self.dirty.clear();
    }

    /// Bulk-writes `data` at `addr` ignoring area bounds checks per byte
    /// (still requires the whole range to be mapped). Convenience for
    /// loaders.
    ///
    /// # Errors
    ///
    /// Returns the fault of the first unmapped byte.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) -> Result<(), MemFault> {
        self.store(addr, data)
    }

    /// Reads `len` bytes at `addr` into a fresh buffer.
    ///
    /// # Errors
    ///
    /// Returns the fault of the first unmapped byte.
    pub fn read_bytes(&mut self, addr: u64, len: usize) -> Result<Vec<u8>, MemFault> {
        let mut buf = vec![0u8; len];
        self.load(addr, &mut buf)?;
        Ok(buf)
    }

    /// Total mapped bytes across areas.
    pub fn mapped_bytes(&self) -> u64 {
        self.areas.iter().map(|a| a.len).sum()
    }

    // ---- copy-on-write snapshots ---------------------------------------

    /// Arms a copy-on-write snapshot of the private pages: cheap
    /// (no page is copied), equivalent to write-protecting every page. From
    /// now until [`AddressSpace::cow_disarm`], the first write to any page
    /// preserves its pre-image, so the drain methods below reconstruct the
    /// pages exactly as they are at this instant — however long the owner
    /// keeps executing in between.
    ///
    /// Only private pages are covered: shared segments ([`SharedSeg`]) are
    /// kernel objects visible to other processes and must be captured
    /// eagerly while the whole pod is frozen. Re-arming replaces any
    /// previous snapshot.
    pub fn cow_arm(&mut self) {
        self.cow = Some(CowSnapshot {
            preserved: BTreeMap::new(),
            dirty_at_arm: self.dirty.clone(),
            copied_bytes: 0,
        });
    }

    /// True while a snapshot is armed.
    pub fn cow_armed(&self) -> bool {
        self.cow.is_some()
    }

    /// Bytes of pre-image copies the armed snapshot has accumulated.
    pub fn cow_copied_bytes(&self) -> u64 {
        self.cow.as_ref().map(|c| c.copied_bytes).unwrap_or(0)
    }

    /// Drops the armed snapshot (drain complete, or checkpoint aborted),
    /// returning the pre-image copy bytes it accumulated.
    pub fn cow_disarm(&mut self) -> u64 {
        self.cow.take().map(|c| c.copied_bytes).unwrap_or(0)
    }

    /// The snapshot's view of one page: the preserved pre-image if the
    /// page was written since arm, the live page otherwise.
    fn cow_page_at_arm(&self, addr: u64) -> Option<&[u8]> {
        let snap = self.cow.as_ref()?;
        match snap.preserved.get(&addr) {
            Some(Some(pre)) => Some(&pre[..]),
            Some(None) => None, // not resident at arm time
            None => self.pages.get(&addr).map(|p| &p[..]),
        }
    }

    /// Every page address the snapshot may contain: live pages plus
    /// preserved pre-images (a page unmapped since arm is only in the
    /// latter).
    fn cow_candidate_addrs(&self) -> Vec<u64> {
        let Some(snap) = self.cow.as_ref() else {
            return Vec::new();
        };
        let mut addrs: Vec<u64> = self.pages.keys().copied().collect();
        addrs.extend(snap.preserved.keys().copied());
        addrs.sort_unstable();
        addrs.dedup();
        addrs
    }

    /// Drains the non-zero pages as of arm time — the full-image
    /// counterpart of [`AddressSpace::nonzero_pages`]. The snapshot stays
    /// armed; call [`AddressSpace::cow_disarm`] when done with it.
    ///
    /// # Panics
    ///
    /// Panics if no snapshot is armed.
    pub fn cow_snapshot_pages(&self) -> Vec<(u64, Vec<u8>)> {
        assert!(self.cow.is_some(), "no armed snapshot to drain");
        self.cow_candidate_addrs()
            .into_iter()
            .filter_map(|a| self.cow_page_at_arm(a).map(|p| (a, p)))
            .filter(|(_, p)| p.iter().any(|&b| b != 0))
            .map(|(a, p)| (a, p.to_vec()))
            .collect()
    }

    /// Drains the pages that were dirty at arm time, with their arm-time
    /// contents — the incremental counterpart of
    /// [`AddressSpace::dirty_pages`] (zero pages included, non-resident
    /// ones skipped, exactly as there).
    ///
    /// # Panics
    ///
    /// Panics if no snapshot is armed.
    pub fn cow_snapshot_dirty_pages(&self) -> Vec<(u64, Vec<u8>)> {
        let snap = self.cow.as_ref().expect("no armed snapshot to drain");
        snap.dirty_at_arm
            .iter()
            .filter_map(|&a| self.cow_page_at_arm(a).map(|p| (a, p.to_vec())))
            .collect()
    }

    /// Payload bytes a drain will produce (`dirty_only` selects the
    /// incremental page set), without materializing any copy — what the
    /// checkpoint scheduler needs at arm time to plan the background
    /// encode.
    pub fn cow_pending_bytes(&self, dirty_only: bool) -> u64 {
        let Some(snap) = self.cow.as_ref() else {
            return 0;
        };
        if dirty_only {
            snap.dirty_at_arm
                .iter()
                .filter(|&&a| self.cow_page_at_arm(a).is_some())
                .count() as u64
                * PAGE_SIZE
        } else {
            self.cow_candidate_addrs()
                .into_iter()
                .filter_map(|a| self.cow_page_at_arm(a))
                .filter(|p| p.iter().any(|&b| b != 0))
                .count() as u64
                * PAGE_SIZE
        }
    }

    /// Preserves a page's pre-image before its first post-arm mutation
    /// (the write-protect fault handler of a real COW implementation).
    fn cow_preserve(&mut self, page_addr: u64) {
        let Some(snap) = self.cow.as_mut() else {
            return;
        };
        if snap.preserved.contains_key(&page_addr) {
            return; // already preserved by an earlier write
        }
        let pre = self.pages.get(&page_addr).cloned();
        if pre.is_some() {
            snap.copied_bytes += PAGE_SIZE;
        }
        snap.preserved.insert(page_addr, pre);
    }

    fn page_of(&mut self, page_addr: u64) -> &mut Box<[u8]> {
        self.pages
            .entry(page_addr)
            .or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice())
    }

    /// Performs an access of `len` bytes at `addr`, calling `f` for each
    /// (area-validated) page-chunk.
    fn walk<F>(&mut self, addr: u64, len: usize, write: bool, mut f: F) -> Result<(), MemFault>
    where
        F: FnMut(&mut AddressSpace, u64, usize, usize),
    {
        if len == 0 {
            return Ok(());
        }
        // Validate the whole range against areas first.
        let mut cursor = addr;
        let end = addr
            .checked_add(len as u64)
            .ok_or(MemFault { addr, write })?;
        while cursor < end {
            let area = self.area_for(cursor).ok_or(MemFault {
                addr: cursor,
                write,
            })?;
            cursor = area.end().min(end);
        }
        // Then perform page-wise.
        let mut off = 0usize;
        while off < len {
            let a = addr + off as u64;
            let page_addr = a & !(PAGE_SIZE - 1);
            let in_page = (a - page_addr) as usize;
            let chunk = ((PAGE_SIZE as usize) - in_page).min(len - off);
            f(self, a, off, chunk);
            off += chunk;
        }
        Ok(())
    }
}

impl Memory for AddressSpace {
    fn load(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), MemFault> {
        let len = buf.len();
        // Collect chunks via walk; we need interior mutability workaround:
        // gather into a temp vec of (offset, data).
        let mut out = vec![0u8; len];
        self.walk(addr, len, false, |space, a, off, chunk| {
            let area = space.area_for(a).expect("validated").clone();
            match &area.backing {
                AreaBacking::Private => {
                    let page_addr = a & !(PAGE_SIZE - 1);
                    if let Some(page) = space.pages.get(&page_addr) {
                        let in_page = (a - page_addr) as usize;
                        out[off..off + chunk].copy_from_slice(&page[in_page..in_page + chunk]);
                    }
                    // else: demand-zero, already zeroed
                }
                AreaBacking::Shared(seg) => {
                    let data = seg.data.borrow();
                    let rel = (a - area.start) as usize;
                    let take = chunk.min(data.len().saturating_sub(rel));
                    out[off..off + take].copy_from_slice(&data[rel..rel + take]);
                }
            }
        })?;
        buf.copy_from_slice(&out);
        Ok(())
    }

    fn store(&mut self, addr: u64, data: &[u8]) -> Result<(), MemFault> {
        let owned: Vec<u8> = data.to_vec();
        self.walk(addr, data.len(), true, |space, a, off, chunk| {
            let area = space.area_for(a).expect("validated").clone();
            match &area.backing {
                AreaBacking::Private => {
                    let page_addr = a & !(PAGE_SIZE - 1);
                    let in_page = (a - page_addr) as usize;
                    space.cow_preserve(page_addr);
                    let page = space.page_of(page_addr);
                    page[in_page..in_page + chunk].copy_from_slice(&owned[off..off + chunk]);
                    space.dirty.insert(page_addr);
                }
                AreaBacking::Shared(seg) => {
                    let mut d = seg.data.borrow_mut();
                    let rel = (a - area.start) as usize;
                    let take = chunk.min(d.len().saturating_sub(rel));
                    d[rel..rel + take].copy_from_slice(&owned[off..off + take]);
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_zero_reads() {
        let mut s = AddressSpace::new();
        s.map(0x1000, PAGE_SIZE, "data").unwrap();
        assert_eq!(s.load_u64(0x1000).unwrap(), 0);
        assert_eq!(s.resident_pages(), 0, "reads do not allocate");
    }

    #[test]
    fn store_allocates_and_round_trips() {
        let mut s = AddressSpace::new();
        s.map(0x1000, PAGE_SIZE * 4, "data").unwrap();
        s.store_u64(0x2ff8, 0x1122334455667788).unwrap();
        assert_eq!(s.load_u64(0x2ff8).unwrap(), 0x1122334455667788);
        assert_eq!(s.resident_pages(), 1);
    }

    #[test]
    fn cross_page_access() {
        let mut s = AddressSpace::new();
        s.map(0x1000, PAGE_SIZE * 2, "data").unwrap();
        // Write across a page boundary.
        s.store_u64(0x1ffc, u64::MAX).unwrap();
        assert_eq!(s.load_u64(0x1ffc).unwrap(), u64::MAX);
        assert_eq!(s.resident_pages(), 2);
    }

    #[test]
    fn cross_area_contiguous_access_works() {
        let mut s = AddressSpace::new();
        s.map(0x1000, PAGE_SIZE, "a").unwrap();
        s.map(0x1000 + PAGE_SIZE, PAGE_SIZE, "b").unwrap();
        s.store_u64(0x1000 + PAGE_SIZE - 4, 7).unwrap();
        assert_eq!(s.load_u64(0x1000 + PAGE_SIZE - 4).unwrap(), 7);
    }

    #[test]
    fn unmapped_access_faults() {
        let mut s = AddressSpace::new();
        s.map(0x1000, PAGE_SIZE, "data").unwrap();
        let err = s.store_u64(0x1000 + PAGE_SIZE - 4, 7).unwrap_err();
        assert!(err.write);
        assert!(s.load_u64(0x8000).is_err());
    }

    #[test]
    fn map_validation() {
        let mut s = AddressSpace::new();
        assert_eq!(s.map(0x1001, PAGE_SIZE, "x"), Err(MapError::BadAlignment));
        assert_eq!(s.map(0x1000, 100, "x"), Err(MapError::BadAlignment));
        assert_eq!(s.map(0x1000, 0, "x"), Err(MapError::BadAlignment));
        s.map(0x1000, PAGE_SIZE * 2, "x").unwrap();
        assert_eq!(
            s.map(0x1000 + PAGE_SIZE, PAGE_SIZE, "y"),
            Err(MapError::Overlap)
        );
    }

    #[test]
    fn unmap_frees_pages() {
        let mut s = AddressSpace::new();
        s.map(0x1000, PAGE_SIZE, "x").unwrap();
        s.store_u8(0x1000, 1).unwrap();
        assert!(s.unmap(0x1000));
        assert_eq!(s.resident_pages(), 0);
        assert!(s.load_u8(0x1000).is_err());
        assert!(!s.unmap(0x1000));
    }

    #[test]
    fn nonzero_pages_skips_zero_pages() {
        let mut s = AddressSpace::new();
        s.map(0x1000, PAGE_SIZE * 3, "x").unwrap();
        s.store_u8(0x1000, 0).unwrap(); // resident but zero
        s.store_u8(0x2000, 9).unwrap(); // nonzero
        let pages: Vec<u64> = s.nonzero_pages().map(|(a, _)| a).collect();
        assert_eq!(pages, vec![0x2000]);
    }

    #[test]
    fn dirty_tracking_follows_writes() {
        let mut s = AddressSpace::new();
        s.map(0x1000, PAGE_SIZE * 4, "x").unwrap();
        assert_eq!(s.dirty_count(), 0);
        s.store_u64(0x1000, 1).unwrap();
        s.store_u64(0x3000, 2).unwrap();
        let dirty: Vec<u64> = s.dirty_pages().map(|(a, _)| a).collect();
        assert_eq!(dirty, vec![0x1000, 0x3000]);
        s.clear_dirty();
        assert_eq!(s.dirty_count(), 0);
        // Overwriting with zero still dirties (the page changed).
        s.store_u64(0x1000, 0).unwrap();
        assert_eq!(s.dirty_count(), 1);
        // Reads do not dirty.
        let _ = s.load_u64(0x2000).unwrap();
        assert_eq!(s.dirty_count(), 1);
    }

    #[test]
    fn shared_segment_visible_across_spaces() {
        let seg = SharedSeg::new(1, PAGE_SIZE as usize);
        let mut a = AddressSpace::new();
        let mut b = AddressSpace::new();
        a.map_shared(0x10000, seg.clone(), "shm").unwrap();
        b.map_shared(0x20000, seg, "shm").unwrap();
        a.store_u64(0x10008, 777).unwrap();
        assert_eq!(b.load_u64(0x20008).unwrap(), 777);
    }

    /// The snapshot drained from an armed space must equal an eager capture
    /// of the same instant, whatever happened in between.
    fn assert_snapshot_matches(space: &AddressSpace, frozen: &AddressSpace) {
        let expect: Vec<(u64, Vec<u8>)> = frozen
            .nonzero_pages()
            .map(|(a, p)| (a, p.to_vec()))
            .collect();
        assert_eq!(space.cow_snapshot_pages(), expect);
    }

    #[test]
    fn cow_snapshot_survives_racing_writes() {
        let mut s = AddressSpace::new();
        s.map(0x1000, PAGE_SIZE * 4, "data").unwrap();
        s.store_u64(0x1000, 0x11).unwrap();
        s.store_u64(0x2000, 0x22).unwrap();
        let frozen = s.clone();
        s.cow_arm();
        assert!(s.cow_armed());
        // Overwrite an armed page, dirty a fresh one, and zero another.
        s.store_u64(0x1000, 0x99).unwrap();
        s.store_u64(0x3000, 0x33).unwrap();
        s.store_u64(0x2000, 0).unwrap();
        assert_snapshot_matches(&s, &frozen);
        // Live reads still see the new values.
        assert_eq!(s.load_u64(0x1000).unwrap(), 0x99);
        // Only the two pre-existing pages forced a pre-image copy; the
        // fresh page was demand-zero at arm.
        assert_eq!(s.cow_copied_bytes(), 2 * PAGE_SIZE);
        assert_eq!(s.cow_disarm(), 2 * PAGE_SIZE);
        assert!(!s.cow_armed());
    }

    #[test]
    fn cow_snapshot_survives_unmap_and_install() {
        let mut s = AddressSpace::new();
        s.map(0x1000, PAGE_SIZE, "a").unwrap();
        s.map(0x5000, PAGE_SIZE, "b").unwrap();
        s.store_u8(0x1000, 7).unwrap();
        s.store_u8(0x5000, 8).unwrap();
        let frozen = s.clone();
        s.cow_arm();
        // Unmap one armed area, remap it, and loader-install over the other.
        s.unmap(0x1000);
        s.map(0x1000, PAGE_SIZE, "a2").unwrap();
        s.store_u8(0x1000, 42).unwrap();
        s.install_page(0x5000, &[9, 9]);
        assert_snapshot_matches(&s, &frozen);
    }

    #[test]
    fn cow_pending_bytes_sizes_the_drain() {
        let mut s = AddressSpace::new();
        s.map(0x1000, PAGE_SIZE * 4, "data").unwrap();
        s.store_u8(0x1000, 1).unwrap();
        s.store_u8(0x2000, 2).unwrap();
        s.clear_dirty();
        s.store_u8(0x2000, 3).unwrap(); // dirty again
        s.cow_arm();
        s.store_u8(0x3000, 4).unwrap(); // post-arm: excluded everywhere
        assert_eq!(s.cow_pending_bytes(false), 2 * PAGE_SIZE);
        assert_eq!(s.cow_pending_bytes(true), PAGE_SIZE);
        assert_eq!(
            s.cow_snapshot_dirty_pages()
                .iter()
                .map(|(a, _)| *a)
                .collect::<Vec<_>>(),
            vec![0x2000]
        );
        assert_eq!(
            s.cow_pending_bytes(false),
            s.cow_snapshot_pages()
                .iter()
                .map(|(_, p)| p.len() as u64)
                .sum::<u64>()
        );
    }

    #[test]
    fn install_page_used_by_loader() {
        let mut s = AddressSpace::new();
        s.map(0x1000, PAGE_SIZE, "text").unwrap();
        s.install_page(0x1000, &[1, 2, 3]);
        assert_eq!(s.load_u8(0x1000).unwrap(), 1);
        assert_eq!(s.load_u8(0x1002).unwrap(), 3);
        assert_eq!(s.load_u8(0x1003).unwrap(), 0);
    }
}
