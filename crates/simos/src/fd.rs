//! File-descriptor tables.

use std::collections::BTreeMap;

use simnet::stack::SocketId;

/// A file descriptor number.
pub type Fd = u32;

/// Identifier of a pipe object in the kernel pipe table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PipeId(pub u64);

/// Which end of a pipe a descriptor refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipeEnd {
    /// The reading end.
    Read,
    /// The writing end.
    Write,
}

/// What a file descriptor refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Desc {
    /// An open file on the network filesystem.
    File {
        /// Path of the file.
        path: String,
        /// Current read/write offset.
        offset: u64,
    },
    /// One end of a pipe.
    Pipe {
        /// The pipe object.
        id: PipeId,
        /// Which end.
        end: PipeEnd,
    },
    /// A network socket (TCP or UDP, resolved by the stack).
    Socket(SocketId),
    /// The per-process console (write-only log).
    Console,
}

/// A per-process (or per-thread-group) descriptor table.
#[derive(Debug, Clone, Default)]
pub struct FdTable {
    entries: BTreeMap<Fd, Desc>,
    next: Fd,
}

impl FdTable {
    /// Creates an empty table. Descriptor 0 is reserved for the console.
    pub fn new() -> Self {
        let mut t = FdTable {
            entries: BTreeMap::new(),
            next: 1,
        };
        t.entries.insert(0, Desc::Console);
        t
    }

    /// Allocates the lowest free descriptor for `desc`.
    pub fn insert(&mut self, desc: Desc) -> Fd {
        // Reuse the lowest free slot, like POSIX.
        let mut fd = 1;
        while self.entries.contains_key(&fd) {
            fd += 1;
        }
        self.entries.insert(fd, desc);
        self.next = self.next.max(fd + 1);
        fd
    }

    /// Looks up a descriptor.
    pub fn get(&self, fd: Fd) -> Option<&Desc> {
        self.entries.get(&fd)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, fd: Fd) -> Option<&mut Desc> {
        self.entries.get_mut(&fd)
    }

    /// Removes a descriptor, returning what it referred to.
    pub fn remove(&mut self, fd: Fd) -> Option<Desc> {
        if fd == 0 {
            return None; // console is permanent
        }
        self.entries.remove(&fd)
    }

    /// Iterates over (fd, desc) pairs in order.
    pub fn iter(&self) -> impl Iterator<Item = (Fd, &Desc)> {
        self.entries.iter().map(|(&fd, d)| (fd, d))
    }

    /// Number of open descriptors (including the console).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true if only the console descriptor exists.
    pub fn is_empty(&self) -> bool {
        self.entries.len() <= 1
    }

    /// Re-installs a descriptor at a specific number (restore path).
    ///
    /// # Panics
    ///
    /// Panics if the slot is already occupied by a different descriptor.
    pub fn install_at(&mut self, fd: Fd, desc: Desc) {
        let prev = self.entries.insert(fd, desc);
        assert!(
            prev.is_none() || fd == 0,
            "descriptor {fd} already occupied during restore"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn console_is_fd_zero() {
        let t = FdTable::new();
        assert_eq!(t.get(0), Some(&Desc::Console));
    }

    #[test]
    fn lowest_free_slot_reused() {
        let mut t = FdTable::new();
        let a = t.insert(Desc::Console);
        let b = t.insert(Desc::Console);
        assert_eq!((a, b), (1, 2));
        t.remove(a);
        let c = t.insert(Desc::Console);
        assert_eq!(c, 1, "lowest free slot reused");
    }

    #[test]
    fn console_cannot_be_removed() {
        let mut t = FdTable::new();
        assert!(t.remove(0).is_none());
        assert_eq!(t.get(0), Some(&Desc::Console));
    }

    #[test]
    fn install_at_restores_exact_numbers() {
        let mut t = FdTable::new();
        t.install_at(
            7,
            Desc::File {
                path: "x".into(),
                offset: 3,
            },
        );
        assert!(matches!(t.get(7), Some(Desc::File { offset: 3, .. })));
        // Next dynamic insert avoids the occupied slot.
        let fd = t.insert(Desc::Console);
        assert_eq!(fd, 1);
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn install_at_rejects_collisions() {
        let mut t = FdTable::new();
        t.install_at(3, Desc::Console);
        t.install_at(3, Desc::Console);
    }
}
