//! Processes and threads.

use std::cell::RefCell;
use std::rc::Rc;

use des::SimTime;
use simcpu::cpu::Cpu;
use simnet::stack::SocketId;

use crate::fd::{FdTable, PipeId};
use crate::mem::AddressSpace;
use crate::sem::SemId;

/// A process identifier (real, host-level; pods expose virtual PIDs).
pub type Pid = u32;

/// What a blocked process is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitFor {
    /// Socket has data (or EOF) to read.
    SockReadable(SocketId),
    /// Socket has send-buffer space.
    SockWritable(SocketId),
    /// Listener has an established connection.
    SockAccept(SocketId),
    /// Connect completed.
    SockConnect(SocketId),
    /// Pipe has data or a closed write end.
    PipeReadable(PipeId),
    /// Pipe has space or a closed read end.
    PipeWritable(PipeId),
    /// Semaphore can be decremented.
    Sem {
        /// The semaphore set.
        id: SemId,
        /// Index within the set.
        idx: u32,
    },
    /// A sleep deadline.
    SleepUntil(SimTime),
    /// A child process exiting.
    Child(Pid),
}

/// Scheduler-visible process state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcState {
    /// Runnable.
    Ready,
    /// Waiting for an event; a pending syscall will be retried on wake.
    Blocked(WaitFor),
    /// Stopped by `SIGSTOP` (checkpoint freeze); remembers the state to
    /// resume into.
    Stopped {
        /// The state to restore on `SIGCONT`.
        resume_to: Box<ProcState>,
    },
    /// Exited; holds the exit code until reaped.
    Zombie(u64),
}

impl ProcState {
    /// True if the scheduler may run this process.
    pub fn is_ready(&self) -> bool {
        matches!(self, ProcState::Ready)
    }

    /// True once exited.
    pub fn is_zombie(&self) -> bool {
        matches!(self, ProcState::Zombie(_))
    }

    /// True while frozen by `SIGSTOP`.
    pub fn is_stopped(&self) -> bool {
        matches!(self, ProcState::Stopped { .. })
    }
}

/// A syscall that blocked and will be re-executed when its wait condition
/// is satisfied (the restartable-syscall model checkpoint/restore relies
/// on: a process checkpointed mid-block simply re-issues the call after
/// restore).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingSyscall {
    /// Syscall number.
    pub num: u64,
    /// The five argument registers at the time of the call.
    pub args: [u64; 5],
}

/// A process (or thread: threads share `mem` and `fds` with their group).
#[derive(Debug)]
pub struct Process {
    /// Process id.
    pub pid: Pid,
    /// Parent process id (0 for roots).
    pub parent: Pid,
    /// CPU register state.
    pub cpu: Cpu,
    /// Address space, shared among a thread group.
    pub mem: Rc<RefCell<AddressSpace>>,
    /// Descriptor table, shared among a thread group.
    pub fds: Rc<RefCell<FdTable>>,
    /// Scheduler state.
    pub state: ProcState,
    /// Blocked syscall to retry on wake.
    pub pending: Option<PendingSyscall>,
    /// Lines written to the console descriptor.
    pub console: Vec<String>,
    /// Identifier of the shared address-space group (equal to the group
    /// leader's pid); used by checkpoint to save shared state once.
    pub group: Pid,
}

impl Process {
    /// True if this process shares its address space with `other`.
    pub fn same_group(&self, other: &Process) -> bool {
        self.group == other.group
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_predicates() {
        assert!(ProcState::Ready.is_ready());
        assert!(!ProcState::Zombie(0).is_ready());
        assert!(ProcState::Zombie(1).is_zombie());
        let stopped = ProcState::Stopped {
            resume_to: Box::new(ProcState::Ready),
        };
        assert!(stopped.is_stopped());
        assert!(!stopped.is_ready());
    }
}
