//! Kernel pipe objects.

use std::collections::{BTreeMap, VecDeque};

use crate::fd::PipeId;

/// Default pipe capacity in bytes (as in Linux 2.4: one page... times four
/// for comfort).
pub const PIPE_CAPACITY: usize = 16 * 1024;

/// A unidirectional byte pipe.
#[derive(Debug, Clone)]
pub struct Pipe {
    buf: VecDeque<u8>,
    capacity: usize,
    readers: u32,
    writers: u32,
}

impl Pipe {
    fn new() -> Self {
        Pipe {
            buf: VecDeque::new(),
            capacity: PIPE_CAPACITY,
            readers: 1,
            writers: 1,
        }
    }

    /// Bytes currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns true if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Free space.
    pub fn free(&self) -> usize {
        self.capacity - self.buf.len()
    }

    /// True once every writer descriptor is closed.
    pub fn write_end_closed(&self) -> bool {
        self.writers == 0
    }

    /// True once every reader descriptor is closed.
    pub fn read_end_closed(&self) -> bool {
        self.readers == 0
    }

    /// The buffered bytes, for checkpointing.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        self.buf.iter().copied().collect()
    }
}

/// The kernel's table of pipe objects.
#[derive(Debug, Clone, Default)]
pub struct PipeTable {
    pipes: BTreeMap<PipeId, Pipe>,
    next: u64,
}

impl PipeTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a pipe with one reader and one writer reference.
    pub fn create(&mut self) -> PipeId {
        let id = PipeId(self.next);
        self.next += 1;
        self.pipes.insert(id, Pipe::new());
        id
    }

    /// Recreates a pipe with specific buffered contents (restore path).
    pub fn restore(&mut self, contents: &[u8], readers: u32, writers: u32) -> PipeId {
        let id = self.create();
        let p = self.pipes.get_mut(&id).expect("just created");
        p.buf.extend(contents);
        p.readers = readers;
        p.writers = writers;
        id
    }

    /// Looks up a pipe.
    pub fn get(&self, id: PipeId) -> Option<&Pipe> {
        self.pipes.get(&id)
    }

    /// Writes up to `free()` bytes; returns bytes accepted, or `None` if the
    /// read end is closed (EPIPE).
    pub fn write(&mut self, id: PipeId, data: &[u8]) -> Option<usize> {
        let p = self.pipes.get_mut(&id)?;
        if p.read_end_closed() {
            return None;
        }
        let n = data.len().min(p.free());
        p.buf.extend(&data[..n]);
        Some(n)
    }

    /// Reads up to `max` bytes. Returns the data; an empty result with
    /// `write_end_closed` means EOF.
    pub fn read(&mut self, id: PipeId, max: usize) -> Vec<u8> {
        let Some(p) = self.pipes.get_mut(&id) else {
            return Vec::new();
        };
        let n = p.buf.len().min(max);
        p.buf.drain(..n).collect()
    }

    /// Notes an additional reference to one end (e.g. thread spawn sharing
    /// the table does not call this: it shares the same descriptors).
    pub fn add_ref(&mut self, id: PipeId, write_end: bool) {
        if let Some(p) = self.pipes.get_mut(&id) {
            if write_end {
                p.writers += 1;
            } else {
                p.readers += 1;
            }
        }
    }

    /// Drops a reference to one end; removes the pipe when both ends reach
    /// zero references.
    pub fn drop_ref(&mut self, id: PipeId, write_end: bool) {
        let remove = {
            let Some(p) = self.pipes.get_mut(&id) else {
                return;
            };
            if write_end {
                p.writers = p.writers.saturating_sub(1);
            } else {
                p.readers = p.readers.saturating_sub(1);
            }
            p.readers == 0 && p.writers == 0
        };
        if remove {
            self.pipes.remove(&id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trips() {
        let mut t = PipeTable::new();
        let id = t.create();
        assert_eq!(t.write(id, b"hello"), Some(5));
        assert_eq!(t.read(id, 3), b"hel");
        assert_eq!(t.read(id, 10), b"lo");
        assert_eq!(t.read(id, 10), b"");
    }

    #[test]
    fn capacity_limits_writes() {
        let mut t = PipeTable::new();
        let id = t.create();
        let big = vec![0u8; PIPE_CAPACITY + 100];
        assert_eq!(t.write(id, &big), Some(PIPE_CAPACITY));
        assert_eq!(t.write(id, b"x"), Some(0));
    }

    #[test]
    fn closed_read_end_breaks_pipe() {
        let mut t = PipeTable::new();
        let id = t.create();
        t.drop_ref(id, false);
        assert_eq!(t.write(id, b"x"), None, "EPIPE");
    }

    #[test]
    fn closed_write_end_gives_eof_after_drain() {
        let mut t = PipeTable::new();
        let id = t.create();
        t.write(id, b"last").unwrap();
        t.drop_ref(id, true);
        assert!(t.get(id).unwrap().write_end_closed());
        assert_eq!(t.read(id, 10), b"last");
        assert_eq!(t.read(id, 10), b"");
    }

    #[test]
    fn pipe_removed_when_both_ends_close() {
        let mut t = PipeTable::new();
        let id = t.create();
        t.drop_ref(id, true);
        assert!(t.get(id).is_some());
        t.drop_ref(id, false);
        assert!(t.get(id).is_none());
    }

    #[test]
    fn restore_reinstates_contents() {
        let mut t = PipeTable::new();
        let id = t.restore(b"buffered", 1, 1);
        assert_eq!(t.get(id).unwrap().snapshot_bytes(), b"buffered");
        assert_eq!(t.read(id, 100), b"buffered");
    }
}
