//! Guest program images and the loader.

use std::fmt;

use crate::mem::{AddressSpace, MapError, PAGE_SIZE};

/// Conventional base address for program text.
pub const CODE_BASE: u64 = 0x1_0000;
/// Conventional base address for static data.
pub const DATA_BASE: u64 = 0x10_0000;
/// Conventional top of the initial stack.
pub const STACK_TOP: u64 = 0x4000_0000;
/// Default stack size.
pub const STACK_SIZE: u64 = 64 * 1024;

/// A loadable guest program: machine code plus initialized data segments.
///
/// # Examples
///
/// ```
/// use simcpu::asm::Asm;
/// use simos::program::Program;
///
/// let mut asm = Asm::new(simos::program::CODE_BASE);
/// asm.halt();
/// let prog = Program::from_asm(&asm).unwrap();
/// assert_eq!(prog.entry, simos::program::CODE_BASE);
/// ```
#[derive(Debug, Clone)]
pub struct Program {
    /// Machine code bytes.
    pub code: Vec<u8>,
    /// Address the code is loaded at.
    pub code_base: u64,
    /// Initial program counter.
    pub entry: u64,
    /// Initialized data segments: (address, bytes).
    pub data: Vec<(u64, Vec<u8>)>,
    /// Extra anonymous mappings: (start, len, tag) — e.g. a large heap.
    pub extra_maps: Vec<(u64, u64, String)>,
    /// Top of the initial stack (the stack area lies below it).
    pub stack_top: u64,
    /// Stack area size.
    pub stack_size: u64,
}

/// Errors loading a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramError {
    /// The program assembles/loads outside its declared areas.
    Map(MapError),
    /// A segment write failed.
    BadSegment,
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Map(e) => write!(f, "{e}"),
            ProgramError::BadSegment => write!(f, "segment write out of bounds"),
        }
    }
}

impl std::error::Error for ProgramError {}

impl From<MapError> for ProgramError {
    fn from(e: MapError) -> Self {
        ProgramError::Map(e)
    }
}

impl Program {
    /// Builds a program from assembled code at the conventional layout.
    ///
    /// # Errors
    ///
    /// Returns the assembler's error if a label was left unbound.
    pub fn from_asm(asm: &simcpu::asm::Asm) -> Result<Program, simcpu::asm::AsmError> {
        Ok(Program {
            code: asm.assemble()?,
            code_base: asm.base(),
            entry: asm.base(),
            data: Vec::new(),
            extra_maps: Vec::new(),
            stack_top: STACK_TOP,
            stack_size: STACK_SIZE,
        })
    }

    /// Adds an initialized data segment.
    pub fn with_data(mut self, addr: u64, bytes: Vec<u8>) -> Program {
        self.data.push((addr, bytes));
        self
    }

    /// Adds an anonymous mapping (demand-zero heap/workspace).
    pub fn with_map(mut self, start: u64, len: u64, tag: &str) -> Program {
        self.extra_maps.push((start, len, tag.to_owned()));
        self
    }

    /// Maps all areas and installs code and data into `space`. Returns the
    /// initial stack pointer.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] on overlapping/unaligned areas.
    pub fn load_into(&self, space: &mut AddressSpace) -> Result<u64, ProgramError> {
        let code_len = round_up(self.code.len() as u64);
        space.map(self.code_base, code_len.max(PAGE_SIZE), "text")?;
        space
            .write_bytes(self.code_base, &self.code)
            .map_err(|_| ProgramError::BadSegment)?;
        for (addr, bytes) in &self.data {
            let start = addr & !(PAGE_SIZE - 1);
            let end = round_up(addr + bytes.len() as u64);
            // Merge-tolerant: map only if not already covered.
            if space.area_for(start).is_none() {
                space.map(start, end - start, "data")?;
            }
            space
                .write_bytes(*addr, bytes)
                .map_err(|_| ProgramError::BadSegment)?;
        }
        for (start, len, tag) in &self.extra_maps {
            space.map(*start, round_up(*len), tag)?;
        }
        let stack_base = self.stack_top - self.stack_size;
        space.map(stack_base, self.stack_size, "stack")?;
        Ok(self.stack_top)
    }

    /// Total initialized bytes (code + data), a lower bound on image size.
    pub fn initialized_bytes(&self) -> usize {
        self.code.len() + self.data.iter().map(|(_, b)| b.len()).sum::<usize>()
    }
}

fn round_up(v: u64) -> u64 {
    v.div_ceil(PAGE_SIZE) * PAGE_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcpu::asm::Asm;
    use simcpu::isa::R1;
    use simcpu::mem::Memory;

    #[test]
    fn load_places_code_data_stack() {
        let mut asm = Asm::new(CODE_BASE);
        asm.movi(R1, 1);
        asm.halt();
        let prog = Program::from_asm(&asm)
            .unwrap()
            .with_data(DATA_BASE, vec![9, 8, 7])
            .with_map(0x2000_0000, 8192, "heap");
        let mut space = AddressSpace::new();
        let sp = prog.load_into(&mut space).unwrap();
        assert_eq!(sp, STACK_TOP);
        assert_eq!(space.load_u8(DATA_BASE).unwrap(), 9);
        assert_eq!(
            space.load_u8(CODE_BASE).unwrap(),
            asm.assemble().unwrap()[0]
        );
        assert!(space.area_for(0x2000_0000).is_some());
        assert!(space.area_for(STACK_TOP - 8).is_some());
        assert_eq!(prog.initialized_bytes(), 32 + 3);
    }

    #[test]
    fn data_crossing_mapped_area_is_tolerated() {
        let mut asm = Asm::new(CODE_BASE);
        asm.halt();
        let prog = Program::from_asm(&asm)
            .unwrap()
            .with_data(DATA_BASE, vec![1; 100])
            .with_data(DATA_BASE + 50, vec![2; 10]);
        let mut space = AddressSpace::new();
        prog.load_into(&mut space).unwrap();
        assert_eq!(space.load_u8(DATA_BASE + 55).unwrap(), 2);
    }
}
