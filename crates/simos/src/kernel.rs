//! The per-node kernel: processes, scheduler, syscalls, and the
//! interposition hook.
//!
//! The kernel is the "standard operating system" of the paper's title: it
//! knows nothing about pods or checkpointing. The Zap layer attaches from
//! the outside through two sanctioned extension points — the
//! [`SyscallHook`] slot (a loadable-module analogue) and the public object
//! tables (processes, pipes, semaphores, shared memory, network stack) that
//! a kernel module could reach.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use des::{SimDuration, SimTime};
use simcpu::cpu::{Cpu, StepOutcome};
use simcpu::isa::{R0, R1, R2, R3, R4, R5};
use simnet::addr::{IpAddr, SockAddr};
use simnet::stack::{NetStack, RecvOutcome, SockEvent, SocketId};
use simnet::NetError;

use crate::disk::Disk;
use crate::error::Errno;
use crate::fd::{Desc, Fd, FdTable, PipeEnd};
use crate::fs::NetFs;
use crate::mem::{AddressSpace, SharedSeg};
use crate::pipe::PipeTable;
use crate::proc::{PendingSyscall, Pid, ProcState, Process, WaitFor};
use crate::program::{Program, ProgramError};
use crate::sem::{SemId, SemTable};
use crate::syscall::{ioctl, nr, sig, HookDecision, SyscallHook};

/// Kernel timing parameters.
#[derive(Debug, Clone, Copy)]
pub struct KernelParams {
    /// Simulated cost of one guest instruction.
    pub inst_time: SimDuration,
    /// Fixed overhead of entering/leaving the kernel for a syscall.
    pub syscall_time: SimDuration,
    /// Extra per-syscall cost while an interposition hook is installed (the
    /// virtualization-layer overhead the paper reports as < 0.5 %).
    pub hook_overhead: SimDuration,
    /// Scheduler quantum in instructions.
    pub quantum: u64,
}

impl Default for KernelParams {
    fn default() -> Self {
        KernelParams {
            // A 1 GHz single-issue CPU, matching the paper's testbed scale.
            inst_time: SimDuration::from_nanos(1),
            syscall_time: SimDuration::from_nanos(500),
            hook_overhead: SimDuration::from_nanos(150),
            quantum: 20_000,
        }
    }
}

/// Result of one scheduler slice.
#[derive(Debug, Clone, Copy)]
pub struct SliceOutcome {
    /// Whether any process ran.
    pub ran: bool,
    /// Simulated time consumed.
    pub elapsed: SimDuration,
}

enum Outcome {
    /// Syscall finished with a return value.
    Ret(u64),
    /// Block and retry the syscall when the wait is satisfied.
    Block(WaitFor),
    /// Block without retry; `r0` gets the value now (used by `sleep`).
    BlockNoRetry(WaitFor, u64),
    /// Yield the CPU, returning the value.
    Yield(u64),
    /// The process exited.
    Exited,
}

impl From<Result<u64, Errno>> for Outcome {
    fn from(r: Result<u64, Errno>) -> Self {
        match r {
            Ok(v) => Outcome::Ret(v),
            Err(e) => Outcome::Ret(e.to_ret()),
        }
    }
}

/// The per-node operating system kernel.
pub struct Kernel {
    /// The network stack (public: the Zap layer manages VIFs and the
    /// checkpoint agent installs filter rules here).
    pub net: NetStack,
    /// The network filesystem mount.
    pub fs: NetFs,
    /// The local disk used for checkpoint I/O timing.
    pub disk: Disk,
    /// Pipe table (public for checkpoint extraction).
    pub pipes: PipeTable,
    /// Semaphore table (public for checkpoint extraction).
    pub sems: SemTable,

    shm_by_key: BTreeMap<u64, SharedSeg>,
    shm_by_id: BTreeMap<u64, SharedSeg>,
    next_shm: u64,

    procs: BTreeMap<Pid, Process>,
    run_queue: VecDeque<Pid>,
    next_pid: Pid,
    params: KernelParams,
    hook: Option<Rc<RefCell<dyn SyscallHook>>>,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("procs", &self.procs.len())
            .field("runnable", &self.run_queue.len())
            .field("net", &self.net)
            .finish()
    }
}

impl Kernel {
    /// Creates a kernel with the given network stack and filesystem mount.
    pub fn new(net: NetStack, fs: NetFs, disk: Disk, params: KernelParams) -> Self {
        Kernel {
            net,
            fs,
            disk,
            pipes: PipeTable::new(),
            sems: SemTable::new(),
            shm_by_key: BTreeMap::new(),
            shm_by_id: BTreeMap::new(),
            next_shm: 1,
            procs: BTreeMap::new(),
            run_queue: VecDeque::new(),
            next_pid: 1,
            params,
            hook: None,
        }
    }

    /// The kernel's timing parameters.
    pub fn params(&self) -> KernelParams {
        self.params
    }

    /// Installs the syscall interposition hook (at most one).
    pub fn set_hook(&mut self, hook: Rc<RefCell<dyn SyscallHook>>) {
        self.hook = Some(hook);
    }

    /// Removes the hook.
    pub fn clear_hook(&mut self) {
        self.hook = None;
    }

    // ---- process management ------------------------------------------------

    /// Loads `program` into a fresh address space and schedules it.
    ///
    /// # Errors
    ///
    /// Propagates loader failures.
    pub fn spawn(&mut self, program: &Program) -> Result<Pid, ProgramError> {
        let mut space = AddressSpace::new();
        let sp = program.load_into(&mut space)?;
        let pid = self.alloc_pid();
        let mut cpu = Cpu::new(program.entry);
        cpu.set_reg(simcpu::isa::SP, sp);
        let proc = Process {
            pid,
            parent: 0,
            cpu,
            mem: Rc::new(RefCell::new(space)),
            fds: Rc::new(RefCell::new(FdTable::new())),
            state: ProcState::Ready,
            pending: None,
            console: Vec::new(),
            group: pid,
        };
        self.procs.insert(pid, proc);
        self.run_queue.push_back(pid);
        Ok(pid)
    }

    /// Inserts a fully-constructed process (the restore path). The caller
    /// is responsible for its state being consistent.
    pub fn insert_process(&mut self, proc: Process) -> Pid {
        let pid = proc.pid;
        assert!(
            !self.procs.contains_key(&pid),
            "pid {pid} already exists on this kernel"
        );
        let ready = proc.state.is_ready();
        self.procs.insert(pid, proc);
        if ready {
            self.run_queue.push_back(pid);
        }
        pid
    }

    /// Allocates a fresh pid (also used by the restore path, which maps
    /// virtual pids to whatever this returns).
    pub fn alloc_pid(&mut self) -> Pid {
        let pid = self.next_pid;
        self.next_pid += 1;
        pid
    }

    /// Claims a specific pid as used, so a later [`Kernel::alloc_pid`] will
    /// not hand it out. Used by tests that simulate pid-space collisions.
    pub fn reserve_pid(&mut self, pid: Pid) {
        self.next_pid = self.next_pid.max(pid + 1);
    }

    /// Looks up a process.
    pub fn process(&self, pid: Pid) -> Option<&Process> {
        self.procs.get(&pid)
    }

    /// Mutable process lookup.
    pub fn process_mut(&mut self, pid: Pid) -> Option<&mut Process> {
        self.procs.get_mut(&pid)
    }

    /// All live pids.
    pub fn pids(&self) -> Vec<Pid> {
        self.procs.keys().copied().collect()
    }

    /// Removes a process without running exit paths (checkpoint teardown
    /// after migration). Sockets and pipes are left to the caller.
    pub fn remove_process(&mut self, pid: Pid) -> Option<Process> {
        self.procs.remove(&pid)
    }

    /// Marks a process runnable (restore/SIGCONT path).
    pub fn make_ready(&mut self, pid: Pid) {
        if let Some(p) = self.procs.get_mut(&pid) {
            p.state = ProcState::Ready;
            self.run_queue.push_back(pid);
        }
    }

    /// Sends a signal.
    ///
    /// # Errors
    ///
    /// [`Errno::Srch`] if the process does not exist.
    pub fn signal(&mut self, pid: Pid, signal: u64, now: SimTime) -> Result<(), Errno> {
        if !self.procs.contains_key(&pid) {
            return Err(Errno::Srch);
        }
        match signal {
            sig::SIGSTOP => {
                let p = self.procs.get_mut(&pid).expect("checked");
                if !p.state.is_stopped() && !p.state.is_zombie() {
                    let prev = std::mem::replace(&mut p.state, ProcState::Ready);
                    p.state = ProcState::Stopped {
                        resume_to: Box::new(prev),
                    };
                }
            }
            sig::SIGCONT => {
                let p = self.procs.get_mut(&pid).expect("checked");
                if let ProcState::Stopped { resume_to } = &p.state {
                    // Timer waits resume exactly (they have no retryable
                    // pending syscall); every other wait wakes conservatively
                    // to Ready — its pending syscall retries and re-blocks if
                    // the condition still does not hold, so no wakeup can be
                    // lost across the stop.
                    match **resume_to {
                        ProcState::Blocked(WaitFor::SleepUntil(t)) => {
                            p.state = ProcState::Blocked(WaitFor::SleepUntil(t));
                        }
                        _ => {
                            p.state = ProcState::Ready;
                            self.run_queue.push_back(pid);
                        }
                    }
                }
            }
            sig::SIGKILL | sig::SIGTERM => {
                self.exit_process(pid, 128 + signal, now);
            }
            _ => return Err(Errno::Inval),
        }
        Ok(())
    }

    /// True if any process can run right now.
    pub fn has_runnable(&self) -> bool {
        self.procs.values().any(|p| p.state.is_ready())
    }

    /// Count of live (non-zombie) processes.
    pub fn live_processes(&self) -> usize {
        self.procs.values().filter(|p| !p.state.is_zombie()).count()
    }

    /// The earliest kernel timer: sleeping processes or protocol timers.
    pub fn next_timer(&self) -> Option<SimTime> {
        let sleep = self
            .procs
            .values()
            .filter_map(|p| match p.state {
                ProcState::Blocked(WaitFor::SleepUntil(t)) => Some(t),
                _ => None,
            })
            .min();
        match (sleep, self.net.next_timer()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Fires due timers: wakes sleepers and runs protocol timers.
    pub fn on_tick(&mut self, now: SimTime) {
        let due: Vec<Pid> = self
            .procs
            .iter()
            .filter_map(|(&pid, p)| match p.state {
                ProcState::Blocked(WaitFor::SleepUntil(t)) if t <= now => Some(pid),
                _ => None,
            })
            .collect();
        for pid in due {
            self.make_ready(pid);
        }
        self.net.on_timer(now);
        self.process_net_wakes();
    }

    /// Delivers a frame from the wire.
    pub fn on_frame(&mut self, frame: simnet::EthFrame, now: SimTime) {
        self.net.on_frame(frame, now);
        self.process_net_wakes();
    }

    /// Drains frames the stack queued for transmission.
    pub fn take_frames(&mut self) -> Vec<simnet::EthFrame> {
        self.net.take_outgoing()
    }

    /// Converts network readiness events into process wakeups.
    pub fn process_net_wakes(&mut self) {
        for ev in self.net.take_wakes() {
            let matches = |w: &WaitFor| match (ev, w) {
                (SockEvent::Readable(s), WaitFor::SockReadable(t)) => s == *t,
                (SockEvent::Writable(s), WaitFor::SockWritable(t)) => s == *t,
                (SockEvent::Acceptable(s), WaitFor::SockAccept(t)) => s == *t,
                (SockEvent::Connected(s), WaitFor::SockConnect(t)) => s == *t,
                _ => false,
            };
            self.wake_matching(&matches);
        }
    }

    fn wake_matching(&mut self, pred: &dyn Fn(&WaitFor) -> bool) {
        let pids: Vec<Pid> = self
            .procs
            .iter()
            .filter_map(|(&pid, p)| match &p.state {
                ProcState::Blocked(w) if pred(w) => Some(pid),
                _ => None,
            })
            .collect();
        for pid in pids {
            self.make_ready(pid);
        }
    }

    // ---- scheduling --------------------------------------------------------

    /// Runs one scheduler slice at `now`: at most one process, for at most
    /// one quantum. Returns how much simulated time passed.
    pub fn run_slice(&mut self, now: SimTime) -> SliceOutcome {
        let pid = loop {
            let Some(pid) = self.run_queue.pop_front() else {
                return SliceOutcome {
                    ran: false,
                    elapsed: SimDuration::ZERO,
                };
            };
            match self.procs.get(&pid) {
                Some(p) if p.state.is_ready() => break pid,
                _ => continue, // stale queue entry
            }
        };
        let mut elapsed = SimDuration::ZERO;

        // Retry a pending (blocked) syscall before touching the CPU.
        if let Some(ps) = self.procs.get(&pid).and_then(|p| p.pending) {
            elapsed += self.syscall_cost();
            match self.dispatch(pid, ps.num, ps.args, now) {
                Outcome::Ret(v) => {
                    if let Some(p) = self.procs.get_mut(&pid) {
                        p.pending = None;
                        p.cpu.set_reg(R0, v);
                    }
                }
                Outcome::Block(w) => {
                    if let Some(p) = self.procs.get_mut(&pid) {
                        p.state = ProcState::Blocked(w);
                    }
                    return SliceOutcome { ran: true, elapsed };
                }
                Outcome::BlockNoRetry(w, v) => {
                    if let Some(p) = self.procs.get_mut(&pid) {
                        p.pending = None;
                        p.cpu.set_reg(R0, v);
                        p.state = ProcState::Blocked(w);
                    }
                    return SliceOutcome { ran: true, elapsed };
                }
                Outcome::Yield(v) => {
                    if let Some(p) = self.procs.get_mut(&pid) {
                        p.pending = None;
                        p.cpu.set_reg(R0, v);
                    }
                    self.run_queue.push_back(pid);
                    return SliceOutcome { ran: true, elapsed };
                }
                Outcome::Exited => {
                    return SliceOutcome { ran: true, elapsed };
                }
            }
        }

        // Execute guest instructions.
        let mut budget = self.params.quantum;
        while budget > 0 {
            let (steps, outcome) = {
                let p = self.procs.get_mut(&pid).expect("scheduled process exists");
                let mem = p.mem.clone();
                let mut mem = mem.borrow_mut();
                match p.cpu.run(&mut *mem, budget) {
                    Ok(r) => r,
                    Err(fault) => {
                        drop(mem);
                        p.console.push(format!("FAULT: {fault}"));
                        self.exit_process(pid, 139, now);
                        return SliceOutcome { ran: true, elapsed };
                    }
                }
            };
            elapsed += self.params.inst_time * steps;
            budget = budget.saturating_sub(steps.max(1));
            match outcome {
                StepOutcome::Continue => {
                    // Quantum exhausted; the final requeue below reschedules.
                    break;
                }
                StepOutcome::Halted => {
                    self.exit_process(pid, 0, now);
                    break;
                }
                StepOutcome::Syscall => {
                    let (num, args) = {
                        let p = self.procs.get(&pid).expect("exists");
                        (
                            p.cpu.reg(R0),
                            [
                                p.cpu.reg(R1),
                                p.cpu.reg(R2),
                                p.cpu.reg(R3),
                                p.cpu.reg(R4),
                                p.cpu.reg(R5),
                            ],
                        )
                    };
                    elapsed += self.syscall_cost();
                    match self.dispatch(pid, num, args, now) {
                        Outcome::Ret(v) => {
                            if let Some(p) = self.procs.get_mut(&pid) {
                                p.cpu.set_reg(R0, v);
                            }
                            // keep running within the quantum
                        }
                        Outcome::Block(w) => {
                            if let Some(p) = self.procs.get_mut(&pid) {
                                p.pending = Some(PendingSyscall { num, args });
                                p.state = ProcState::Blocked(w);
                            }
                            break;
                        }
                        Outcome::BlockNoRetry(w, v) => {
                            if let Some(p) = self.procs.get_mut(&pid) {
                                p.cpu.set_reg(R0, v);
                                p.state = ProcState::Blocked(w);
                            }
                            break;
                        }
                        Outcome::Yield(v) => {
                            if let Some(p) = self.procs.get_mut(&pid) {
                                p.cpu.set_reg(R0, v);
                            }
                            break;
                        }
                        Outcome::Exited => break,
                    }
                }
            }
        }
        // Whatever path left the loop: a process that is still ready must
        // stay schedulable (e.g. a syscall retiring exactly at the quantum
        // boundary must not strand it outside the run queue).
        if self
            .procs
            .get(&pid)
            .map(|p| p.state.is_ready())
            .unwrap_or(false)
        {
            self.run_queue.push_back(pid);
        }
        SliceOutcome { ran: true, elapsed }
    }

    /// Runs slices and timers until no process is runnable and no timer is
    /// pending (or `max_slices` is hit). Returns the finishing time.
    /// Intended for single-node tests; clusters drive the kernel from the
    /// event loop instead.
    pub fn run_to_quiescence(&mut self, mut now: SimTime, max_slices: u64) -> SimTime {
        for _ in 0..max_slices {
            if self.has_runnable() {
                let out = self.run_slice(now);
                now += out.elapsed;
                // Single-node: loop back frames addressed to ourselves is
                // already handled inside the stack; external frames are
                // dropped here.
                let _ = self.take_frames();
                continue;
            }
            match self.next_timer() {
                Some(t) => {
                    now = now.max(t);
                    self.on_tick(now);
                }
                None => break,
            }
        }
        now
    }

    // ---- syscall dispatch ----------------------------------------------------

    fn syscall_cost(&self) -> SimDuration {
        if self.hook.is_some() {
            self.params.syscall_time + self.params.hook_overhead
        } else {
            self.params.syscall_time
        }
    }

    fn dispatch(&mut self, pid: Pid, num: u64, mut args: [u64; 5], now: SimTime) -> Outcome {
        // Interposition hook first (the Zap layer).
        if let Some(hook) = self.hook.clone() {
            match hook.borrow_mut().on_syscall(self, pid, num, args) {
                HookDecision::Pass => {}
                HookDecision::PassArgs(a) => args = a,
                HookDecision::Done(v) => return Outcome::Ret(v),
            }
        }
        match num {
            nr::EXIT => {
                self.exit_process(pid, args[0], now);
                Outcome::Exited
            }
            nr::LOG => self.sys_log(pid, args[0], args[1] as usize),
            nr::GETPID => Outcome::Ret(pid as u64),
            nr::SLEEP => Outcome::BlockNoRetry(
                WaitFor::SleepUntil(now + SimDuration::from_nanos(args[0])),
                0,
            ),
            nr::TIME => Outcome::Ret(now.as_nanos()),
            nr::YIELD => Outcome::Yield(0),
            nr::OPEN => self.sys_open(pid, args[0], args[1] as usize, args[2]),
            nr::CLOSE => self.sys_close(pid, args[0] as Fd, now),
            nr::READ => self.sys_read(pid, args[0] as Fd, args[1], args[2] as usize, now),
            nr::WRITE => self.sys_write(pid, args[0] as Fd, args[1], args[2] as usize, now),
            nr::PIPE => self.sys_pipe(pid, args[0]),
            nr::SOCKET => self.sys_socket(pid, args[0]),
            nr::BIND => self.sys_bind(pid, args[0] as Fd, args[1], args[2]),
            nr::LISTEN => self.sys_listen(pid, args[0] as Fd, args[1] as usize),
            nr::ACCEPT => self.sys_accept(pid, args[0] as Fd),
            nr::CONNECT => self.sys_connect(pid, args[0] as Fd, args[1], args[2], now),
            nr::SEND => self.sys_send(pid, args[0] as Fd, args[1], args[2] as usize, now),
            nr::RECV => self.sys_recv(pid, args[0] as Fd, args[1], args[2] as usize, now),
            nr::SETSOCKOPT => self.sys_setsockopt(pid, args[0] as Fd, args[1], args[2], now),
            nr::GETSOCKOPT => self.sys_getsockopt(pid, args[0] as Fd, args[1]),
            nr::KILL => match self.signal(args[0] as Pid, args[1], now) {
                Ok(()) => Outcome::Ret(0),
                Err(e) => Outcome::Ret(e.to_ret()),
            },
            nr::SHMGET => self.sys_shmget(args[0], args[1] as usize),
            nr::SHMAT => self.sys_shmat(pid, args[0], args[1]),
            nr::SEMGET => self.sys_semget(args[0], args[1] as u32),
            nr::SEMOP => self.sys_semop(args[0], args[1] as u32, args[2] as i64),
            nr::SPAWN => self.sys_spawn(pid, args[0], args[1], args[2]),
            nr::FORK => match self.fork_process(pid) {
                Ok(child) => Outcome::Ret(child as u64),
                Err(e) => Outcome::Ret(e.to_ret()),
            },
            nr::WAITPID => self.sys_waitpid(pid, args[0] as Pid),
            nr::IOCTL => self.sys_ioctl(pid, args[0] as Fd, args[1], args[2]),
            nr::SENDTO => self.sys_sendto(
                pid,
                args[0] as Fd,
                args[1],
                args[2],
                args[3],
                args[4] as usize,
                now,
            ),
            nr::RECVFROM => {
                self.sys_recvfrom(pid, args[0] as Fd, args[1], args[2] as usize, args[3])
            }
            _ => Outcome::Ret(Errno::NoSys.to_ret()),
        }
    }

    // ---- guest memory helpers ----------------------------------------------

    /// Reads guest memory.
    ///
    /// # Errors
    ///
    /// [`Errno::Fault`] on an unmapped range, [`Errno::Srch`] on a bad pid.
    pub fn read_guest(&self, pid: Pid, addr: u64, len: usize) -> Result<Vec<u8>, Errno> {
        let p = self.procs.get(&pid).ok_or(Errno::Srch)?;
        let mem = p.mem.clone();
        let mut mem = mem.borrow_mut();
        mem.read_bytes(addr, len).map_err(|_| Errno::Fault)
    }

    /// Writes guest memory.
    ///
    /// # Errors
    ///
    /// [`Errno::Fault`] on an unmapped range, [`Errno::Srch`] on a bad pid.
    pub fn write_guest(&self, pid: Pid, addr: u64, data: &[u8]) -> Result<(), Errno> {
        let p = self.procs.get(&pid).ok_or(Errno::Srch)?;
        let mem = p.mem.clone();
        let mut mem = mem.borrow_mut();
        mem.write_bytes(addr, data).map_err(|_| Errno::Fault)
    }

    /// Resolves a descriptor to a socket id (used by the Zap interposer).
    pub fn socket_of(&self, pid: Pid, fd: Fd) -> Option<SocketId> {
        match self.procs.get(&pid)?.fds.borrow().get(fd)? {
            Desc::Socket(sid) => Some(*sid),
            _ => None,
        }
    }

    // ---- syscall implementations ---------------------------------------------

    fn with_desc<T>(&self, pid: Pid, fd: Fd, f: impl FnOnce(&Desc) -> T) -> Result<T, Errno> {
        let p = self.procs.get(&pid).ok_or(Errno::Srch)?;
        let fds = p.fds.borrow();
        let d = fds.get(fd).ok_or(Errno::Badf)?;
        Ok(f(d))
    }

    fn sys_log(&mut self, pid: Pid, buf: u64, len: usize) -> Outcome {
        let data = match self.read_guest(pid, buf, len.min(4096)) {
            Ok(d) => d,
            Err(e) => return Outcome::Ret(e.to_ret()),
        };
        let line = String::from_utf8_lossy(&data).into_owned();
        if let Some(p) = self.procs.get_mut(&pid) {
            p.console.push(line);
        }
        Outcome::Ret(len as u64)
    }

    fn sys_open(&mut self, pid: Pid, path_ptr: u64, path_len: usize, flags: u64) -> Outcome {
        let bytes = match self.read_guest(pid, path_ptr, path_len.min(1024)) {
            Ok(b) => b,
            Err(e) => return Outcome::Ret(e.to_ret()),
        };
        let path = String::from_utf8_lossy(&bytes).into_owned();
        let create = flags & 1 != 0;
        if !self.fs.exists(&path) {
            if create {
                self.fs.write_file(&path, Vec::new());
            } else {
                return Outcome::Ret(Errno::NoEnt.to_ret());
            }
        } else if create {
            self.fs.write_file(&path, Vec::new());
        }
        let p = self.procs.get_mut(&pid).expect("caller exists");
        let fd = p.fds.borrow_mut().insert(Desc::File { path, offset: 0 });
        Outcome::Ret(fd as u64)
    }

    fn sys_close(&mut self, pid: Pid, fd: Fd, now: SimTime) -> Outcome {
        let Some(p) = self.procs.get(&pid) else {
            return Outcome::Ret(Errno::Srch.to_ret());
        };
        let removed = p.fds.borrow_mut().remove(fd);
        match removed {
            None => Outcome::Ret(Errno::Badf.to_ret()),
            Some(Desc::Pipe { id, end }) => {
                self.pipes.drop_ref(id, end == PipeEnd::Write);
                // Closing an end may unblock the other side.
                self.wake_matching(&|w| {
                    matches!(w, WaitFor::PipeReadable(p) if *p == id)
                        || matches!(w, WaitFor::PipeWritable(p) if *p == id)
                });
                Outcome::Ret(0)
            }
            Some(Desc::Socket(sid)) => {
                // Forked copies may still reference this socket.
                let table = self.procs.get(&pid).expect("caller exists").fds.clone();
                let _ = table; // the fd was already removed from this table
                let still_referenced = self.procs.values().any(|p| {
                    p.fds
                        .borrow()
                        .iter()
                        .any(|(_, d)| matches!(d, Desc::Socket(s) if *s == sid))
                });
                if !still_referenced {
                    self.net.close(sid, now);
                    self.process_net_wakes();
                }
                Outcome::Ret(0)
            }
            Some(_) => Outcome::Ret(0),
        }
    }

    fn sys_read(&mut self, pid: Pid, fd: Fd, buf: u64, len: usize, now: SimTime) -> Outcome {
        let desc = match self.with_desc(pid, fd, |d| d.clone()) {
            Ok(d) => d,
            Err(e) => return Outcome::Ret(e.to_ret()),
        };
        match desc {
            Desc::File { path, offset } => {
                let Some(data) = self.fs.read_at(&path, offset, len) else {
                    return Outcome::Ret(Errno::NoEnt.to_ret());
                };
                if let Err(e) = self.write_guest(pid, buf, &data) {
                    return Outcome::Ret(e.to_ret());
                }
                let n = data.len() as u64;
                if let Some(p) = self.procs.get_mut(&pid) {
                    if let Some(Desc::File { offset, .. }) = p.fds.borrow_mut().get_mut(fd) {
                        *offset += n;
                    }
                }
                Outcome::Ret(n)
            }
            Desc::Pipe {
                id,
                end: PipeEnd::Read,
            } => {
                let data = self.pipes.read(id, len);
                if !data.is_empty() {
                    if let Err(e) = self.write_guest(pid, buf, &data) {
                        return Outcome::Ret(e.to_ret());
                    }
                    self.wake_matching(&|w| matches!(w, WaitFor::PipeWritable(p) if *p == id));
                    return Outcome::Ret(data.len() as u64);
                }
                match self.pipes.get(id) {
                    Some(p) if p.write_end_closed() => Outcome::Ret(0),
                    Some(_) => Outcome::Block(WaitFor::PipeReadable(id)),
                    None => Outcome::Ret(0),
                }
            }
            Desc::Pipe { .. } => Outcome::Ret(Errno::NotSup.to_ret()),
            Desc::Socket(_) => self.sys_recv(pid, fd, buf, len, now),
            Desc::Console => Outcome::Ret(Errno::NotSup.to_ret()),
        }
    }

    fn sys_write(&mut self, pid: Pid, fd: Fd, buf: u64, len: usize, now: SimTime) -> Outcome {
        let desc = match self.with_desc(pid, fd, |d| d.clone()) {
            Ok(d) => d,
            Err(e) => return Outcome::Ret(e.to_ret()),
        };
        match desc {
            Desc::Console => self.sys_log(pid, buf, len),
            Desc::File { path, offset } => {
                let data = match self.read_guest(pid, buf, len) {
                    Ok(d) => d,
                    Err(e) => return Outcome::Ret(e.to_ret()),
                };
                self.fs.write_at(&path, offset, &data);
                if let Some(p) = self.procs.get_mut(&pid) {
                    if let Some(Desc::File { offset, .. }) = p.fds.borrow_mut().get_mut(fd) {
                        *offset += data.len() as u64;
                    }
                }
                Outcome::Ret(len as u64)
            }
            Desc::Pipe {
                id,
                end: PipeEnd::Write,
            } => {
                let data = match self.read_guest(pid, buf, len) {
                    Ok(d) => d,
                    Err(e) => return Outcome::Ret(e.to_ret()),
                };
                match self.pipes.write(id, &data) {
                    None => Outcome::Ret(Errno::Pipe.to_ret()),
                    Some(0) => Outcome::Block(WaitFor::PipeWritable(id)),
                    Some(n) => {
                        self.wake_matching(&|w| matches!(w, WaitFor::PipeReadable(p) if *p == id));
                        Outcome::Ret(n as u64)
                    }
                }
            }
            Desc::Pipe { .. } => Outcome::Ret(Errno::NotSup.to_ret()),
            Desc::Socket(_) => self.sys_send(pid, fd, buf, len, now),
        }
    }

    fn sys_pipe(&mut self, pid: Pid, out_ptr: u64) -> Outcome {
        let id = self.pipes.create();
        let p = self.procs.get(&pid).expect("caller exists");
        let rfd = p.fds.borrow_mut().insert(Desc::Pipe {
            id,
            end: PipeEnd::Read,
        });
        let wfd = p.fds.borrow_mut().insert(Desc::Pipe {
            id,
            end: PipeEnd::Write,
        });
        let mut bytes = Vec::with_capacity(16);
        bytes.extend_from_slice(&(rfd as u64).to_le_bytes());
        bytes.extend_from_slice(&(wfd as u64).to_le_bytes());
        match self.write_guest(pid, out_ptr, &bytes) {
            Ok(()) => Outcome::Ret(0),
            Err(e) => Outcome::Ret(e.to_ret()),
        }
    }

    fn sys_socket(&mut self, pid: Pid, proto: u64) -> Outcome {
        let sid = match proto {
            0 => self.net.tcp_socket(),
            1 => self.net.udp_socket(),
            _ => return Outcome::Ret(Errno::Inval.to_ret()),
        };
        let p = self.procs.get(&pid).expect("caller exists");
        let fd = p.fds.borrow_mut().insert(Desc::Socket(sid));
        Outcome::Ret(fd as u64)
    }

    fn sock_of(&self, pid: Pid, fd: Fd) -> Result<SocketId, Errno> {
        self.with_desc(pid, fd, |d| match d {
            Desc::Socket(sid) => Some(*sid),
            _ => None,
        })?
        .ok_or(Errno::NotSup)
    }

    fn sys_bind(&mut self, pid: Pid, fd: Fd, ip: u64, port: u64) -> Outcome {
        let sid = match self.sock_of(pid, fd) {
            Ok(s) => s,
            Err(e) => return Outcome::Ret(e.to_ret()),
        };
        let addr = SockAddr::new(IpAddr::from_bits(ip as u32), port as u16);
        match self.net.bind(sid, addr) {
            Ok(_) => Outcome::Ret(0),
            Err(e) => Outcome::Ret(map_net_err(e).to_ret()),
        }
    }

    fn sys_listen(&mut self, pid: Pid, fd: Fd, backlog: usize) -> Outcome {
        let sid = match self.sock_of(pid, fd) {
            Ok(s) => s,
            Err(e) => return Outcome::Ret(e.to_ret()),
        };
        match self.net.tcp_listen(sid, backlog) {
            Ok(()) => Outcome::Ret(0),
            Err(e) => Outcome::Ret(map_net_err(e).to_ret()),
        }
    }

    fn sys_accept(&mut self, pid: Pid, fd: Fd) -> Outcome {
        let sid = match self.sock_of(pid, fd) {
            Ok(s) => s,
            Err(e) => return Outcome::Ret(e.to_ret()),
        };
        match self.net.tcp_accept(sid) {
            Ok(Some((child, _remote))) => {
                let p = self.procs.get(&pid).expect("caller exists");
                let newfd = p.fds.borrow_mut().insert(Desc::Socket(child));
                Outcome::Ret(newfd as u64)
            }
            Ok(None) => Outcome::Block(WaitFor::SockAccept(sid)),
            Err(e) => Outcome::Ret(map_net_err(e).to_ret()),
        }
    }

    fn sys_connect(&mut self, pid: Pid, fd: Fd, ip: u64, port: u64, now: SimTime) -> Outcome {
        let sid = match self.sock_of(pid, fd) {
            Ok(s) => s,
            Err(e) => return Outcome::Ret(e.to_ret()),
        };
        // Retry path: the socket is already a connection.
        if let Ok(info) = self.net.tcp_info(sid) {
            return if info.reset {
                Outcome::Ret(Errno::ConnRefused.to_ret())
            } else if info.connected {
                Outcome::Ret(0)
            } else {
                Outcome::Block(WaitFor::SockConnect(sid))
            };
        }
        let remote = SockAddr::new(IpAddr::from_bits(ip as u32), port as u16);
        match self.net.tcp_connect(sid, remote, now) {
            Ok(()) => {
                self.process_net_wakes();
                // Loopback connections may complete synchronously.
                match self.net.tcp_info(sid) {
                    Ok(info) if info.connected && !info.reset => Outcome::Ret(0),
                    Ok(info) if info.reset => Outcome::Ret(Errno::ConnRefused.to_ret()),
                    _ => Outcome::Block(WaitFor::SockConnect(sid)),
                }
            }
            Err(e) => Outcome::Ret(map_net_err(e).to_ret()),
        }
    }

    fn sys_send(&mut self, pid: Pid, fd: Fd, buf: u64, len: usize, now: SimTime) -> Outcome {
        let sid = match self.sock_of(pid, fd) {
            Ok(s) => s,
            Err(e) => return Outcome::Ret(e.to_ret()),
        };
        let data = match self.read_guest(pid, buf, len) {
            Ok(d) => d,
            Err(e) => return Outcome::Ret(e.to_ret()),
        };
        match self.net.tcp_send(sid, &data, now) {
            Ok(0) if len > 0 => Outcome::Block(WaitFor::SockWritable(sid)),
            Ok(n) => {
                self.process_net_wakes();
                Outcome::Ret(n as u64)
            }
            Err(e) => Outcome::Ret(map_net_err(e).to_ret()),
        }
    }

    fn sys_recv(&mut self, pid: Pid, fd: Fd, buf: u64, len: usize, now: SimTime) -> Outcome {
        let sid = match self.sock_of(pid, fd) {
            Ok(s) => s,
            Err(e) => return Outcome::Ret(e.to_ret()),
        };
        match self.net.tcp_recv(sid, len, now) {
            Ok(RecvOutcome::Data(data)) => {
                if let Err(e) = self.write_guest(pid, buf, &data) {
                    return Outcome::Ret(e.to_ret());
                }
                self.process_net_wakes();
                Outcome::Ret(data.len() as u64)
            }
            Ok(RecvOutcome::Eof) => Outcome::Ret(0),
            Ok(RecvOutcome::WouldBlock) => Outcome::Block(WaitFor::SockReadable(sid)),
            Err(e) => Outcome::Ret(map_net_err(e).to_ret()),
        }
    }

    fn sys_setsockopt(&mut self, pid: Pid, fd: Fd, opt: u64, val: u64, now: SimTime) -> Outcome {
        let sid = match self.sock_of(pid, fd) {
            Ok(s) => s,
            Err(e) => return Outcome::Ret(e.to_ret()),
        };
        let res = match opt {
            1 => self.net.tcp_set_nodelay(sid, val != 0, now),
            2 => self.net.tcp_set_cork(sid, val != 0, now),
            _ => return Outcome::Ret(Errno::Inval.to_ret()),
        };
        match res {
            Ok(()) => Outcome::Ret(0),
            Err(e) => Outcome::Ret(map_net_err(e).to_ret()),
        }
    }

    fn sys_getsockopt(&mut self, pid: Pid, fd: Fd, opt: u64) -> Outcome {
        let sid = match self.sock_of(pid, fd) {
            Ok(s) => s,
            Err(e) => return Outcome::Ret(e.to_ret()),
        };
        let info = match self.net.tcp_info(sid) {
            Ok(i) => i,
            Err(e) => return Outcome::Ret(map_net_err(e).to_ret()),
        };
        match opt {
            1 => Outcome::Ret(info.nodelay as u64),
            2 => Outcome::Ret(info.cork as u64),
            _ => Outcome::Ret(Errno::Inval.to_ret()),
        }
    }

    fn sys_shmget(&mut self, key: u64, size: usize) -> Outcome {
        if let Some(seg) = self.shm_by_key.get(&key) {
            return Outcome::Ret(seg.id);
        }
        let id = self.next_shm;
        self.next_shm += 1;
        let seg = SharedSeg::new(id, size);
        self.shm_by_key.insert(key, seg.clone());
        self.shm_by_id.insert(id, seg);
        Outcome::Ret(id)
    }

    fn sys_shmat(&mut self, pid: Pid, shmid: u64, addr: u64) -> Outcome {
        let Some(seg) = self.shm_by_id.get(&shmid).cloned() else {
            return Outcome::Ret(Errno::Inval.to_ret());
        };
        let p = self.procs.get(&pid).expect("caller exists");
        let mem = p.mem.clone();
        let mut mem = mem.borrow_mut();
        match mem.map_shared(addr, seg, "shm") {
            Ok(()) => Outcome::Ret(addr),
            Err(_) => Outcome::Ret(Errno::Inval.to_ret()),
        }
    }

    fn sys_semget(&mut self, key: u64, n: u32) -> Outcome {
        let id = self.sems.get_or_create(key, n.max(1));
        Outcome::Ret(id.0)
    }

    fn sys_semop(&mut self, semid: u64, idx: u32, delta: i64) -> Outcome {
        let id = SemId(semid);
        match self.sems.try_op(id, idx, delta) {
            Some(_) => {
                if delta > 0 {
                    self.wake_matching(
                        &|w| matches!(w, WaitFor::Sem { id: i, idx: j } if *i == id && *j == idx),
                    );
                }
                Outcome::Ret(0)
            }
            None => {
                if self.sems.value(id, idx).is_none() {
                    Outcome::Ret(Errno::Inval.to_ret())
                } else {
                    Outcome::Block(WaitFor::Sem { id, idx })
                }
            }
        }
    }

    fn sys_spawn(&mut self, pid: Pid, entry: u64, stack_top: u64, arg: u64) -> Outcome {
        match self.spawn_thread(pid, entry, stack_top, arg) {
            Ok(child) => Outcome::Ret(child as u64),
            Err(e) => Outcome::Ret(e.to_ret()),
        }
    }

    /// Forks `parent`: the child gets a deep copy of the address space and
    /// a copy of the descriptor table (underlying pipes and sockets are
    /// shared — they close only when the last referencing descriptor
    /// closes). The child resumes at the same PC with `r0 = 0`; the caller
    /// returns the child pid to the parent. Public so the Zap interposer
    /// can service `fork` and hand the guest a virtual pid.
    ///
    /// # Errors
    ///
    /// [`Errno::Srch`] if the parent does not exist.
    pub fn fork_process(&mut self, parent: Pid) -> Result<Pid, Errno> {
        let (mem_copy, fds_copy, mut cpu) = {
            let p = self.procs.get(&parent).ok_or(Errno::Srch)?;
            (
                p.mem.borrow().clone(),
                p.fds.borrow().clone(),
                p.cpu.clone(),
            )
        };
        // New references to shared pipe ends.
        for (_fd, desc) in fds_copy.iter() {
            if let Desc::Pipe { id, end } = desc {
                self.pipes.add_ref(*id, *end == PipeEnd::Write);
            }
        }
        let child = self.alloc_pid();
        cpu.set_reg(R0, 0); // the child's fork() return value
        let proc = Process {
            pid: child,
            parent,
            cpu,
            mem: Rc::new(RefCell::new(mem_copy)),
            fds: Rc::new(RefCell::new(fds_copy)),
            state: ProcState::Ready,
            pending: None,
            console: Vec::new(),
            group: child, // its own address space ⇒ its own group
        };
        self.procs.insert(child, proc);
        self.run_queue.push_back(child);
        Ok(child)
    }

    /// True if any descriptor other than those in `excluding_table` still
    /// refers to `sid` (fork shares sockets across distinct tables; a
    /// socket closes only when the last copy does).
    fn socket_referenced_elsewhere(
        &self,
        sid: SocketId,
        excluding_table: &Rc<RefCell<FdTable>>,
    ) -> bool {
        self.procs.values().any(|p| {
            if Rc::ptr_eq(&p.fds, excluding_table) {
                return false;
            }
            p.fds
                .borrow()
                .iter()
                .any(|(_, d)| matches!(d, Desc::Socket(s) if *s == sid))
        })
    }

    /// Creates a thread sharing `parent`'s address space and descriptor
    /// table, starting at `entry` with the given stack pointer and `r1 =
    /// arg`. Public so the Zap interposer can service `spawn` and hand the
    /// guest a *virtual* pid.
    ///
    /// # Errors
    ///
    /// [`Errno::Srch`] if the parent does not exist.
    pub fn spawn_thread(
        &mut self,
        parent: Pid,
        entry: u64,
        stack_top: u64,
        arg: u64,
    ) -> Result<Pid, Errno> {
        let (mem, fds, group) = {
            let p = self.procs.get(&parent).ok_or(Errno::Srch)?;
            (p.mem.clone(), p.fds.clone(), p.group)
        };
        let child = self.alloc_pid();
        let mut cpu = Cpu::new(entry);
        cpu.set_reg(simcpu::isa::SP, stack_top);
        cpu.set_reg(R1, arg);
        let proc = Process {
            pid: child,
            parent,
            cpu,
            mem,
            fds,
            state: ProcState::Ready,
            pending: None,
            console: Vec::new(),
            group,
        };
        self.procs.insert(child, proc);
        self.run_queue.push_back(child);
        Ok(child)
    }

    fn sys_waitpid(&mut self, _pid: Pid, child: Pid) -> Outcome {
        match self.procs.get(&child) {
            Some(p) => match p.state {
                ProcState::Zombie(code) => {
                    self.procs.remove(&child);
                    Outcome::Ret(code)
                }
                _ => Outcome::Block(WaitFor::Child(child)),
            },
            None => Outcome::Ret(Errno::Child.to_ret()),
        }
    }

    fn sys_ioctl(&mut self, pid: Pid, _fd: Fd, req: u64, ptr: u64) -> Outcome {
        match req {
            ioctl::SIOCGIFHWADDR => {
                let mac = self.net.primary_mac();
                let mut v = [0u8; 8];
                v[..6].copy_from_slice(&mac.octets());
                match self.write_guest(pid, ptr, &v) {
                    Ok(()) => Outcome::Ret(0),
                    Err(e) => Outcome::Ret(e.to_ret()),
                }
            }
            ioctl::SIOCGIFADDR => {
                let ip = self.net.primary_ip().to_bits() as u64;
                match self.write_guest(pid, ptr, &ip.to_le_bytes()) {
                    Ok(()) => Outcome::Ret(0),
                    Err(e) => Outcome::Ret(e.to_ret()),
                }
            }
            _ => Outcome::Ret(Errno::Inval.to_ret()),
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the guest ABI argument list
    fn sys_sendto(
        &mut self,
        pid: Pid,
        fd: Fd,
        ip: u64,
        port: u64,
        buf: u64,
        len: usize,
        now: SimTime,
    ) -> Outcome {
        let sid = match self.sock_of(pid, fd) {
            Ok(s) => s,
            Err(e) => return Outcome::Ret(e.to_ret()),
        };
        let data = match self.read_guest(pid, buf, len) {
            Ok(d) => d,
            Err(e) => return Outcome::Ret(e.to_ret()),
        };
        let dst = SockAddr::new(IpAddr::from_bits(ip as u32), port as u16);
        match self
            .net
            .udp_send_to(sid, dst, bytes::Bytes::from(data), now)
        {
            Ok(()) => {
                self.process_net_wakes();
                Outcome::Ret(len as u64)
            }
            Err(e) => Outcome::Ret(map_net_err(e).to_ret()),
        }
    }

    fn sys_recvfrom(&mut self, pid: Pid, fd: Fd, buf: u64, len: usize, src_ptr: u64) -> Outcome {
        let sid = match self.sock_of(pid, fd) {
            Ok(s) => s,
            Err(e) => return Outcome::Ret(e.to_ret()),
        };
        match self.net.udp_recv_from(sid) {
            Ok(Some((from, data))) => {
                let n = data.len().min(len);
                if let Err(e) = self.write_guest(pid, buf, &data[..n]) {
                    return Outcome::Ret(e.to_ret());
                }
                if src_ptr != 0 {
                    let mut v = Vec::with_capacity(16);
                    v.extend_from_slice(&(from.ip.to_bits() as u64).to_le_bytes());
                    v.extend_from_slice(&(from.port as u64).to_le_bytes());
                    if let Err(e) = self.write_guest(pid, src_ptr, &v) {
                        return Outcome::Ret(e.to_ret());
                    }
                }
                Outcome::Ret(n as u64)
            }
            Ok(None) => Outcome::Block(WaitFor::SockReadable(sid)),
            Err(e) => Outcome::Ret(map_net_err(e).to_ret()),
        }
    }

    // ---- exit ------------------------------------------------------------

    /// Terminates `pid` with `code`: closes its descriptors (unless shared
    /// with live threads), marks it zombie and wakes waiters.
    pub fn exit_process(&mut self, pid: Pid, code: u64, now: SimTime) {
        let Some(p) = self.procs.get_mut(&pid) else {
            return;
        };
        if p.state.is_zombie() {
            return;
        }
        p.state = ProcState::Zombie(code);
        p.pending = None;
        // Close descriptors only when the last thread of the group exits.
        let fds = p.fds.clone();
        let last_of_group = Rc::strong_count(&fds) <= 2; // proc + our clone
        if last_of_group {
            // Drain the table as it closes, so the zombie's descriptors do
            // not count as live references for fork-shared objects.
            let entries: Vec<(Fd, Desc)> =
                fds.borrow().iter().map(|(fd, d)| (fd, d.clone())).collect();
            for (fd, _) in &entries {
                let _ = fds.borrow_mut().remove(*fd);
            }
            for (_fd, desc) in entries {
                match desc {
                    Desc::Pipe { id, end } => {
                        self.pipes.drop_ref(id, end == PipeEnd::Write);
                        self.wake_matching(&|w| {
                            matches!(w, WaitFor::PipeReadable(p) if *p == id)
                                || matches!(w, WaitFor::PipeWritable(p) if *p == id)
                        });
                    }
                    Desc::Socket(sid) => {
                        if !self.socket_referenced_elsewhere(sid, &fds) {
                            self.net.close(sid, now);
                        }
                    }
                    _ => {}
                }
            }
            self.process_net_wakes();
        }
        // Wake parents waiting on this child.
        self.wake_matching(&|w| matches!(w, WaitFor::Child(c) if *c == pid));
    }

    // ---- shared memory accessors for checkpoint ---------------------------

    /// The shared-memory segment for `id`.
    pub fn shm_segment(&self, id: u64) -> Option<&SharedSeg> {
        self.shm_by_id.get(&id)
    }

    /// Iterates (key, segment) pairs.
    pub fn shm_iter(&self) -> impl Iterator<Item = (u64, &SharedSeg)> {
        self.shm_by_key.iter().map(|(&k, s)| (k, s))
    }

    /// Registers a restored shared segment under its original key.
    pub fn shm_restore(&mut self, key: u64, data: Vec<u8>) -> u64 {
        let id = self.next_shm;
        self.next_shm += 1;
        let seg = SharedSeg::new(id, data.len());
        *seg.data.borrow_mut() = data;
        self.shm_by_key.insert(key, seg.clone());
        self.shm_by_id.insert(id, seg);
        id
    }
}

fn map_net_err(e: NetError) -> Errno {
    match e {
        NetError::BadSocket => Errno::Badf,
        NetError::InvalidState => Errno::Inval,
        NetError::AddrInUse => Errno::AddrInUse,
        NetError::AddrNotAvailable => Errno::AddrNotAvail,
        NetError::PortsExhausted => Errno::NoBufs,
        NetError::ConnectionReset => Errno::ConnReset,
    }
}
