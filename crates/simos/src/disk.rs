//! Disk timing model.
//!
//! Fig. 5(a) of the paper shows checkpoint latency dominated by the time to
//! write the application's virtual-memory contents to disk. The simulation
//! reproduces that by charging every checkpoint write against a
//! bandwidth/seek model of the node's disk.

use des::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// An injected failure of one write operation (fault-injection plane).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// The write returns an I/O error; nothing reaches the platter.
    Fail,
    /// The write is torn: a prefix reaches the platter, the rest is lost.
    /// The payload is the fraction of the payload that survives, in
    /// 1/256ths (0 = nothing, 255 ≈ all but the tail).
    Torn(u8),
}

/// Static parameters of a disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskParams {
    /// Sustained sequential bandwidth in bytes per second.
    pub bandwidth_bps: u64,
    /// Fixed per-operation overhead (seek + controller).
    pub op_overhead: SimDuration,
}

impl DiskParams {
    /// A 2005-era SCSI disk: ~100 MB/s sequential, 5 ms overhead.
    pub fn era_2005() -> Self {
        DiskParams {
            bandwidth_bps: 100_000_000,
            op_overhead: SimDuration::from_millis(5),
        }
    }

    /// Time to transfer `bytes` in one sequential operation.
    pub fn io_time(&self, bytes: u64) -> SimDuration {
        self.op_overhead + self.transfer_time(bytes)
    }

    /// Pure transfer time of `bytes` at sequential bandwidth, without the
    /// per-operation overhead (what each item of an already-seeked batch
    /// costs).
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos(bytes.saturating_mul(1_000_000_000) / self.bandwidth_bps)
    }
}

impl Default for DiskParams {
    fn default() -> Self {
        Self::era_2005()
    }
}

/// A disk with a serialized request queue.
#[derive(Debug, Clone)]
pub struct Disk {
    params: DiskParams,
    busy_until: SimTime,
    bytes_written: u64,
    bytes_read: u64,
    /// Ordinal of the next write operation (a batch counts as one).
    write_ops: u64,
    /// Injected faults keyed by the write ordinal they strike.
    pending_faults: BTreeMap<u64, WriteFault>,
    /// Fault consumed by the most recent write, if any.
    last_fault: Option<WriteFault>,
}

impl Disk {
    /// Creates an idle disk.
    pub fn new(params: DiskParams) -> Self {
        Disk {
            params,
            busy_until: SimTime::ZERO,
            bytes_written: 0,
            bytes_read: 0,
            write_ops: 0,
            pending_faults: BTreeMap::new(),
            last_fault: None,
        }
    }

    /// Arms a fault against the `nth` write operation from now (0 = the
    /// very next write). Timing is unaffected — the faulted write still
    /// occupies the disk — only the durability outcome changes; the caller
    /// learns of the strike via [`Disk::take_write_fault`].
    pub fn inject_write_fault(&mut self, nth: u64, fault: WriteFault) {
        self.pending_faults.insert(self.write_ops + nth, fault);
    }

    /// Returns and clears the fault consumed by the most recent write.
    pub fn take_write_fault(&mut self) -> Option<WriteFault> {
        self.last_fault.take()
    }

    fn consume_fault(&mut self) {
        self.last_fault = self.pending_faults.remove(&self.write_ops);
        self.write_ops += 1;
    }

    /// The disk parameters.
    pub fn params(&self) -> DiskParams {
        self.params
    }

    /// Submits a write of `bytes` at `now`; returns its completion time.
    pub fn submit_write(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.consume_fault();
        self.bytes_written += bytes;
        self.submit(now, bytes)
    }

    /// Submits a read of `bytes` at `now`; returns its completion time.
    pub fn submit_read(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.bytes_read += bytes;
        self.submit(now, bytes)
    }

    /// Submits a pipelined batch of writes: `(ready, bytes)` items, each
    /// becoming available for write-out at its `ready` time (ascending).
    /// The batch pays the per-operation overhead **once** — chunked
    /// checkpoint write-out is one logical operation streaming chunks as
    /// capture produces them — and each item then costs pure transfer
    /// time, starting no earlier than its `ready` time (the pipeline
    /// stalls when capture is the bottleneck). Returns the completion time
    /// of the last item; an empty batch completes at `now`.
    ///
    /// `now` may lie in the past relative to the caller's clock: a
    /// copy-on-write checkpoint drain submits its batch retroactively at
    /// snapshot-arm time so the write-out overlaps the background encode.
    /// That is safe because the batch never completes before its last
    /// `ready` time or the disk's prior `busy_until`, whichever is later.
    pub fn submit_write_batch(&mut self, now: SimTime, items: &[(SimTime, u64)]) -> SimTime {
        let Some(&(first_ready, _)) = items.first() else {
            return now;
        };
        self.consume_fault();
        let start = [now, first_ready, self.busy_until]
            .into_iter()
            .max()
            .unwrap_or(now);
        let mut t = start + self.params.op_overhead;
        for &(ready, bytes) in items {
            if ready > t {
                t = ready;
            }
            t = t + self.params.transfer_time(bytes);
            self.bytes_written += bytes;
        }
        self.busy_until = t;
        t
    }

    fn submit(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = if self.busy_until > now {
            self.busy_until
        } else {
            now
        };
        let done = start + self.params.io_time(bytes);
        self.busy_until = done;
        done
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Total bytes read so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }
}

impl Default for Disk {
    fn default() -> Self {
        Disk::new(DiskParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_time_scales_with_size() {
        let p = DiskParams::era_2005();
        // 100 MB at 100 MB/s = 1 s + 5 ms overhead.
        let t = p.io_time(100_000_000);
        assert_eq!(t, SimDuration::from_millis(1005));
    }

    #[test]
    fn requests_serialize() {
        let mut d = Disk::new(DiskParams {
            bandwidth_bps: 1_000_000,
            op_overhead: SimDuration::from_millis(1),
        });
        let t0 = SimTime::ZERO;
        let d1 = d.submit_write(t0, 1_000_000); // 1s + 1ms
        let d2 = d.submit_write(t0, 1_000_000);
        assert_eq!(d1, t0 + SimDuration::from_millis(1001));
        assert_eq!(d2, t0 + SimDuration::from_millis(2002));
        assert_eq!(d.bytes_written(), 2_000_000);
        // After it idles, a new request starts fresh.
        let later = t0 + SimDuration::from_secs(10);
        let d3 = d.submit_read(later, 0);
        assert_eq!(d3, later + SimDuration::from_millis(1));
    }

    #[test]
    fn batch_pays_overhead_once() {
        let p = DiskParams {
            bandwidth_bps: 1_000_000, // 1 B/µs
            op_overhead: SimDuration::from_millis(5),
        };
        let t0 = SimTime::ZERO;
        // Four 1000-byte chunks, all ready immediately: 5 ms seek + 4 ms.
        let mut batched = Disk::new(p);
        let items: Vec<(SimTime, u64)> = (0..4).map(|_| (t0, 1000)).collect();
        assert_eq!(
            batched.submit_write_batch(t0, &items),
            t0 + SimDuration::from_millis(9)
        );
        assert_eq!(batched.bytes_written(), 4000);
        // The same chunks as separate ops pay the seek four times.
        let mut split = Disk::new(p);
        let mut done = t0;
        for _ in 0..4 {
            done = split.submit_write(t0, 1000);
        }
        assert_eq!(done, t0 + SimDuration::from_millis(24));
    }

    #[test]
    fn batch_pipeline_stalls_on_late_items() {
        let p = DiskParams {
            bandwidth_bps: 1_000_000,
            op_overhead: SimDuration::from_millis(5),
        };
        let mut d = Disk::new(p);
        let t0 = SimTime::ZERO;
        // Second chunk only materializes at t=20 ms: the disk waits for it,
        // then streams without a second seek.
        let items = [(t0, 1000u64), (t0 + SimDuration::from_millis(20), 1000u64)];
        assert_eq!(
            d.submit_write_batch(t0, &items),
            t0 + SimDuration::from_millis(21)
        );
        // An empty batch is free and leaves the disk untouched.
        let mut idle = Disk::new(p);
        assert_eq!(idle.submit_write_batch(t0, &[]), t0);
        assert_eq!(idle.bytes_written(), 0);
    }

    #[test]
    fn retroactive_batch_backfills_but_never_completes_early() {
        let p = DiskParams {
            bandwidth_bps: 1_000_000,
            op_overhead: SimDuration::from_millis(5),
        };
        let t0 = SimTime::ZERO;
        // A COW drain at t=50 ms submits its batch as of arm time t=0: the
        // disk retroactively overlapped the encode, so the result is the
        // same as if the batch had been submitted at arm time...
        let mut d = Disk::new(p);
        let items = [
            (t0 + SimDuration::from_millis(10), 1000u64),
            (t0 + SimDuration::from_millis(40), 1000u64),
        ];
        let done = d.submit_write_batch(t0, &items);
        assert_eq!(done, t0 + SimDuration::from_millis(41));
        // ...and never earlier than the last ready time: monotonicity holds
        // for any drain event scheduled at or after that instant.
        assert!(done >= items.last().unwrap().0);
        // Prior traffic still serializes: with the disk busy until after the
        // retroactive start, the batch queues behind it as usual.
        let mut busy = Disk::new(p);
        busy.submit_write(t0, 30_000); // busy until 35 ms
        let done = busy.submit_write_batch(t0, &items);
        assert_eq!(done, t0 + SimDuration::from_millis(42));
    }

    #[test]
    fn injected_faults_strike_the_named_write() {
        let mut d = Disk::new(DiskParams::era_2005());
        let t0 = SimTime::ZERO;
        d.inject_write_fault(1, WriteFault::Fail);
        d.inject_write_fault(2, WriteFault::Torn(128));
        d.submit_write(t0, 100);
        assert_eq!(d.take_write_fault(), None);
        d.submit_write(t0, 100);
        assert_eq!(d.take_write_fault(), Some(WriteFault::Fail));
        // A batch counts as one write op and can be struck too.
        d.submit_write_batch(t0, &[(t0, 10), (t0, 10)]);
        assert_eq!(d.take_write_fault(), Some(WriteFault::Torn(128)));
        // take clears: asking again yields nothing.
        assert_eq!(d.take_write_fault(), None);
        // Reads never consume write faults.
        d.inject_write_fault(5, WriteFault::Fail);
        d.submit_read(t0, 100);
        assert_eq!(d.take_write_fault(), None);
    }

    #[test]
    fn batch_queues_behind_prior_io() {
        let p = DiskParams {
            bandwidth_bps: 1_000_000,
            op_overhead: SimDuration::from_millis(5),
        };
        let mut d = Disk::new(p);
        let t0 = SimTime::ZERO;
        let first = d.submit_write(t0, 1000); // done at 6 ms
        let done = d.submit_write_batch(t0, &[(t0, 1000)]);
        assert_eq!(done, first + SimDuration::from_millis(6));
    }
}
