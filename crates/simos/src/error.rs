//! Kernel error numbers returned to guest programs.

use std::fmt;

/// Errors returned by system calls (as negative values in `r0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Errno {
    /// Bad file descriptor.
    Badf = 1,
    /// Invalid argument.
    Inval = 2,
    /// Address already in use.
    AddrInUse = 3,
    /// Address not available on this host.
    AddrNotAvail = 4,
    /// Connection reset by peer.
    ConnReset = 5,
    /// No such file.
    NoEnt = 6,
    /// Bad guest memory address.
    Fault = 7,
    /// No such process.
    Srch = 8,
    /// Operation not supported on this descriptor.
    NotSup = 9,
    /// Broken pipe (no readers left).
    Pipe = 10,
    /// No such syscall.
    NoSys = 11,
    /// Out of resources (ports, pool slots, …).
    NoBufs = 12,
    /// No child to wait for.
    Child = 13,
    /// Not connected.
    NotConn = 14,
    /// Connection refused.
    ConnRefused = 15,
}

impl Errno {
    /// The value placed in `r0`: the negated error number.
    pub fn to_ret(self) -> u64 {
        (-(self as i64)) as u64
    }

    /// Decodes a syscall return value into `Ok(value)` or `Err(errno)`.
    pub fn decode(ret: u64) -> Result<u64, Errno> {
        let s = ret as i64;
        if s >= 0 {
            return Ok(ret);
        }
        Err(match -s {
            1 => Errno::Badf,
            2 => Errno::Inval,
            3 => Errno::AddrInUse,
            4 => Errno::AddrNotAvail,
            5 => Errno::ConnReset,
            6 => Errno::NoEnt,
            7 => Errno::Fault,
            8 => Errno::Srch,
            9 => Errno::NotSup,
            10 => Errno::Pipe,
            11 => Errno::NoSys,
            12 => Errno::NoBufs,
            13 => Errno::Child,
            14 => Errno::NotConn,
            15 => Errno::ConnRefused,
            _ => Errno::Inval,
        })
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Errno::Badf => "bad file descriptor",
            Errno::Inval => "invalid argument",
            Errno::AddrInUse => "address in use",
            Errno::AddrNotAvail => "address not available",
            Errno::ConnReset => "connection reset",
            Errno::NoEnt => "no such file",
            Errno::Fault => "bad address",
            Errno::Srch => "no such process",
            Errno::NotSup => "operation not supported",
            Errno::Pipe => "broken pipe",
            Errno::NoSys => "no such syscall",
            Errno::NoBufs => "no buffer space",
            Errno::Child => "no child processes",
            Errno::NotConn => "not connected",
            Errno::ConnRefused => "connection refused",
        };
        f.write_str(s)
    }
}

impl std::error::Error for Errno {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ret_encoding_round_trips() {
        for e in [
            Errno::Badf,
            Errno::ConnReset,
            Errno::NoSys,
            Errno::ConnRefused,
        ] {
            assert_eq!(Errno::decode(e.to_ret()), Err(e));
        }
        assert_eq!(Errno::decode(42), Ok(42));
        assert_eq!(Errno::decode(0), Ok(0));
    }
}
