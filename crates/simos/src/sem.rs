//! System-V-style semaphore sets.

use std::collections::BTreeMap;

/// A semaphore set identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SemId(pub u64);

/// The kernel semaphore table.
#[derive(Debug, Clone, Default)]
pub struct SemTable {
    sets: BTreeMap<SemId, Vec<i64>>,
    by_key: BTreeMap<u64, SemId>,
    next: u64,
}

impl SemTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets or creates the set for `key` with `n` semaphores (all zero).
    pub fn get_or_create(&mut self, key: u64, n: u32) -> SemId {
        if let Some(&id) = self.by_key.get(&key) {
            return id;
        }
        let id = SemId(self.next);
        self.next += 1;
        self.sets.insert(id, vec![0; n as usize]);
        self.by_key.insert(key, id);
        id
    }

    /// Restores a set with explicit values (restore path). The key is
    /// re-registered so `semget` after restart finds the same set.
    pub fn restore(&mut self, key: u64, values: Vec<i64>) -> SemId {
        let id = SemId(self.next);
        self.next += 1;
        self.sets.insert(id, values);
        self.by_key.insert(key, id);
        id
    }

    /// Current value of one semaphore.
    pub fn value(&self, id: SemId, idx: u32) -> Option<i64> {
        self.sets.get(&id)?.get(idx as usize).copied()
    }

    /// All values of a set (for checkpointing).
    pub fn values(&self, id: SemId) -> Option<&[i64]> {
        self.sets.get(&id).map(|v| &v[..])
    }

    /// The key a set was created under, if any (for checkpointing).
    pub fn key_of(&self, id: SemId) -> Option<u64> {
        self.by_key
            .iter()
            .find_map(|(&k, &v)| (v == id).then_some(k))
    }

    /// Applies `delta` if it would not drive the value negative.
    /// Returns `Some(new_value)` on success, `None` when the caller must
    /// block (decrement of a zero semaphore).
    pub fn try_op(&mut self, id: SemId, idx: u32, delta: i64) -> Option<i64> {
        let v = self.sets.get_mut(&id)?.get_mut(idx as usize)?;
        let next = *v + delta;
        if next < 0 {
            return None;
        }
        *v = next;
        Some(next)
    }

    /// Removes a set.
    pub fn remove(&mut self, id: SemId) {
        self.sets.remove(&id);
        self.by_key.retain(|_, &mut v| v != id);
    }

    /// Iterates over the sets (for checkpointing).
    pub fn iter(&self) -> impl Iterator<Item = (SemId, &[i64])> {
        self.sets.iter().map(|(&id, v)| (id, &v[..]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_identity() {
        let mut t = SemTable::new();
        let a = t.get_or_create(42, 2);
        let b = t.get_or_create(42, 5);
        assert_eq!(a, b, "same key, same set");
        assert_eq!(t.values(a).unwrap().len(), 2, "first creation wins");
        let c = t.get_or_create(43, 1);
        assert_ne!(a, c);
    }

    #[test]
    fn ops_block_at_zero() {
        let mut t = SemTable::new();
        let id = t.get_or_create(1, 1);
        assert_eq!(t.try_op(id, 0, -1), None, "P on zero blocks");
        assert_eq!(t.try_op(id, 0, 1), Some(1));
        assert_eq!(t.try_op(id, 0, -1), Some(0));
    }

    #[test]
    fn restore_reinstates_key_and_values() {
        let mut t = SemTable::new();
        let id = t.restore(99, vec![3, 1]);
        assert_eq!(t.get_or_create(99, 7), id);
        assert_eq!(t.values(id).unwrap(), &[3, 1]);
        assert_eq!(t.key_of(id), Some(99));
    }

    #[test]
    fn remove_clears_key() {
        let mut t = SemTable::new();
        let id = t.get_or_create(5, 1);
        t.remove(id);
        assert_eq!(t.value(id, 0), None);
        let id2 = t.get_or_create(5, 1);
        assert_ne!(id, id2);
    }
}
