//! Helpers for writing guest programs against the syscall ABI.
//!
//! These are assembler conveniences used by the workload generators and
//! tests; they emit the `r0 = number; syscall` sequence and small argument
//! set-up idioms.

use simcpu::asm::Asm;
use simcpu::isa::{Reg, R0, R1, R2, R3, R4, R5};

/// Assembler extensions for invoking system calls.
///
/// # Examples
///
/// ```
/// use simcpu::asm::Asm;
/// use simos::guest::AsmOs;
/// use simos::syscall::nr;
///
/// let mut asm = Asm::new(0x1_0000);
/// asm.sys1(nr::EXIT, 0); // exit(0)
/// assert!(asm.assemble().is_ok());
/// ```
pub trait AsmOs {
    /// Emits `r0 = num; syscall` with whatever is already in `r1..=r5`.
    fn sys(&mut self, num: u64);
    /// Emits a syscall with one immediate argument.
    fn sys1(&mut self, num: u64, a1: i64);
    /// Emits a syscall with two immediate arguments.
    fn sys2(&mut self, num: u64, a1: i64, a2: i64);
    /// Emits a syscall with three immediate arguments.
    fn sys3(&mut self, num: u64, a1: i64, a2: i64, a3: i64);
    /// Emits a syscall whose arguments are copied from registers.
    fn sys_r(&mut self, num: u64, args: &[Reg]);
}

impl AsmOs for Asm {
    fn sys(&mut self, num: u64) {
        self.movi(R0, num as i64);
        self.syscall();
    }

    fn sys1(&mut self, num: u64, a1: i64) {
        self.movi(R1, a1);
        self.sys(num);
    }

    fn sys2(&mut self, num: u64, a1: i64, a2: i64) {
        self.movi(R1, a1);
        self.movi(R2, a2);
        self.sys(num);
    }

    fn sys3(&mut self, num: u64, a1: i64, a2: i64, a3: i64) {
        self.movi(R1, a1);
        self.movi(R2, a2);
        self.movi(R3, a3);
        self.sys(num);
    }

    fn sys_r(&mut self, num: u64, args: &[Reg]) {
        let dst = [R1, R2, R3, R4, R5];
        assert!(args.len() <= dst.len(), "at most five syscall arguments");
        // Copy via scratch-free pairwise moves; callers must not pass
        // destination registers that would be clobbered before being read
        // (keep sources in r6+ by convention).
        for (i, &src) in args.iter().enumerate() {
            if src != dst[i] {
                self.mov(dst[i], src);
            }
        }
        self.sys(num);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcpu::isa::{Inst, R6, R7};

    #[test]
    fn sys_emits_number_then_trap() {
        let mut a = Asm::new(0);
        a.sys(9);
        let bytes = a.assemble().unwrap();
        let i0 = Inst::decode(bytes[0..16].try_into().unwrap()).unwrap();
        let i1 = Inst::decode(bytes[16..32].try_into().unwrap()).unwrap();
        assert_eq!(i0, Inst::Movi { rd: R0, imm: 9 });
        assert_eq!(i1, Inst::Syscall);
    }

    #[test]
    fn sys_r_skips_noop_moves() {
        let mut a = Asm::new(0);
        a.sys_r(3, &[R1, R6, R7]);
        // r1 is already in place: expect 2 movs + movi + syscall = 4 insts.
        assert_eq!(a.len(), 4);
    }
}
