//! Guest-visible error semantics: every failure path returns the right
//! errno instead of wedging or killing the process.

use des::SimTime;
use simcpu::asm::Asm;
use simcpu::isa::{R1, R2, R3, R6, R7};
use simnet::addr::{IpAddr, MacAddr};
use simnet::tcp::TcpConfig;
use simnet::NetStack;
use simos::guest::AsmOs;
use simos::program::{Program, CODE_BASE, DATA_BASE};
use simos::syscall::nr;
use simos::{Disk, DiskParams, Kernel, KernelParams, NetFs, ProcState};

fn kernel() -> Kernel {
    let net = NetStack::new(
        MacAddr::from_index(1),
        IpAddr::from_octets([10, 0, 0, 1]),
        24,
        TcpConfig::default(),
    );
    Kernel::new(
        net,
        NetFs::new(),
        Disk::new(DiskParams::default()),
        KernelParams::default(),
    )
}

/// Runs `prog` to completion and returns its exit code.
fn run_exit(prog: &Program) -> u64 {
    let mut k = kernel();
    let pid = k.spawn(prog).unwrap();
    k.run_to_quiescence(SimTime::ZERO, 2_000_000);
    match k.process(pid).unwrap().state {
        ProcState::Zombie(code) => code,
        ref other => panic!("program did not exit: {other:?}"),
    }
}

/// Builds a program that runs `body` and exits with `-r0` (the errno) of
/// the last syscall.
fn exit_with_negated_r0(mut a: Asm) -> Program {
    a.mov(R6, simcpu::isa::R0);
    a.movi(R7, 0);
    a.sub(R1, R7, R6);
    a.sys(nr::EXIT);
    Program::from_asm(&a)
        .unwrap()
        .with_data(DATA_BASE, vec![0u8; 4096])
}

#[test]
fn read_from_bad_fd_is_ebadf() {
    let mut a = Asm::new(CODE_BASE);
    a.sys3(nr::READ, 42, DATA_BASE as i64, 8);
    assert_eq!(run_exit(&exit_with_negated_r0(a)), 1); // Errno::Badf
}

#[test]
fn open_missing_file_is_enoent() {
    let mut a = Asm::new(CODE_BASE);
    a.movi(R1, DATA_BASE as i64);
    a.movi(R2, 2);
    a.movi(R3, 0); // no create
    a.sys(nr::OPEN);
    let p = exit_with_negated_r0(a);
    let p = Program {
        data: {
            let mut d = p.data.clone();
            d[0].1[..2].copy_from_slice(b"/x");
            d
        },
        ..p
    };
    assert_eq!(run_exit(&p), 6); // Errno::NoEnt
}

#[test]
fn connect_refused_when_nobody_listens() {
    let mut a = Asm::new(CODE_BASE);
    a.sys1(nr::SOCKET, 0);
    a.mov(R6, simcpu::isa::R0);
    a.mov(R1, R6);
    a.movi(R2, IpAddr::from_octets([10, 0, 0, 1]).to_bits() as i64);
    a.movi(R3, 9999);
    a.sys(nr::CONNECT);
    assert_eq!(run_exit(&exit_with_negated_r0(a)), 15); // Errno::ConnRefused
}

#[test]
fn write_to_pipe_with_closed_reader_is_epipe() {
    let fds = DATA_BASE as i64;
    let mut a = Asm::new(CODE_BASE);
    a.sys1(nr::PIPE, fds);
    a.movi(R6, fds);
    a.ld(R7, R6, 0); // read end
    a.sys_r(nr::CLOSE, &[R7]);
    a.ld(R7, R6, 8); // write end
    a.mov(R1, R7);
    a.movi(R2, fds);
    a.movi(R3, 4);
    a.sys(nr::WRITE);
    assert_eq!(run_exit(&exit_with_negated_r0(a)), 10); // Errno::Pipe
}

#[test]
fn kill_unknown_pid_is_esrch() {
    let mut a = Asm::new(CODE_BASE);
    a.sys2(nr::KILL, 4096, 9);
    assert_eq!(run_exit(&exit_with_negated_r0(a)), 8); // Errno::Srch
}

#[test]
fn waitpid_on_nonexistent_child_is_echild() {
    let mut a = Asm::new(CODE_BASE);
    a.sys1(nr::WAITPID, 4096);
    assert_eq!(run_exit(&exit_with_negated_r0(a)), 13); // Errno::Child
}

#[test]
fn listen_without_bind_is_einval() {
    let mut a = Asm::new(CODE_BASE);
    a.sys1(nr::SOCKET, 0);
    a.mov(R6, simcpu::isa::R0);
    a.mov(R1, R6);
    a.movi(R2, 1);
    a.sys(nr::LISTEN);
    assert_eq!(run_exit(&exit_with_negated_r0(a)), 2); // Errno::Inval
}

#[test]
fn send_on_non_socket_is_enotsup() {
    let mut a = Asm::new(CODE_BASE);
    a.sys3(nr::SEND, 0 /* console */, DATA_BASE as i64, 4);
    assert_eq!(run_exit(&exit_with_negated_r0(a)), 9); // Errno::NotSup
}

#[test]
fn guest_buffer_fault_is_efault_not_a_crash() {
    // A recv into unmapped memory must fail with EFAULT, not kill the
    // process or corrupt the kernel.
    let mut a = Asm::new(CODE_BASE);
    a.sys2(nr::LOG, 0x7000_0000, 16); // unmapped buffer
    assert_eq!(run_exit(&exit_with_negated_r0(a)), 7); // Errno::Fault
}

#[test]
fn double_close_is_ebadf() {
    let path = DATA_BASE as i64;
    let mut a = Asm::new(CODE_BASE);
    a.sys3(nr::OPEN, path, 2, 1);
    a.mov(R6, simcpu::isa::R0);
    a.sys_r(nr::CLOSE, &[R6]);
    a.sys_r(nr::CLOSE, &[R6]);
    let mut p = exit_with_negated_r0(a);
    p.data[0].1[..2].copy_from_slice(b"/f");
    assert_eq!(run_exit(&p), 1); // Errno::Badf
}

#[test]
fn recv_on_fresh_socket_is_einval() {
    // A TCP socket that never connected has no connection to read.
    let mut a = Asm::new(CODE_BASE);
    a.sys1(nr::SOCKET, 0);
    a.mov(R6, simcpu::isa::R0);
    a.mov(R1, R6);
    a.movi(R2, DATA_BASE as i64);
    a.movi(R3, 8);
    a.sys(nr::RECV);
    assert_eq!(run_exit(&exit_with_negated_r0(a)), 2); // Errno::Inval
}
