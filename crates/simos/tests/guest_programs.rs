//! End-to-end kernel tests: real guest programs exercising the syscall ABI.

use des::{SimDuration, SimTime};
use simcpu::asm::Asm;
use simcpu::isa::{R1, R10, R2, R3, R6, R7, R8, R9};
use simnet::addr::{IpAddr, MacAddr};
use simnet::tcp::TcpConfig;
use simnet::NetStack;
use simos::guest::AsmOs;
use simos::program::{Program, CODE_BASE, DATA_BASE};
use simos::syscall::{nr, sig};
use simos::{Disk, DiskParams, Kernel, KernelParams, NetFs, ProcState};

const NODE_IP: [u8; 4] = [10, 0, 0, 1];

fn kernel() -> Kernel {
    let net = NetStack::new(
        MacAddr::from_index(1),
        IpAddr::from_octets(NODE_IP),
        24,
        TcpConfig::default(),
    );
    Kernel::new(
        net,
        NetFs::new(),
        Disk::new(DiskParams::default()),
        KernelParams::default(),
    )
}

fn run(k: &mut Kernel) -> SimTime {
    k.run_to_quiescence(SimTime::ZERO, 2_000_000)
}

fn exit_code(k: &Kernel, pid: simos::Pid) -> Option<u64> {
    match k.process(pid)?.state {
        ProcState::Zombie(code) => Some(code),
        _ => None,
    }
}

#[test]
fn hello_world_logs_and_exits() {
    let mut a = Asm::new(CODE_BASE);
    a.sys2(nr::LOG, DATA_BASE as i64, 5);
    a.sys1(nr::EXIT, 7);
    let prog = Program::from_asm(&a)
        .unwrap()
        .with_data(DATA_BASE, b"hello".to_vec());
    let mut k = kernel();
    let pid = k.spawn(&prog).unwrap();
    run(&mut k);
    assert_eq!(exit_code(&k, pid), Some(7));
    assert_eq!(k.process(pid).unwrap().console, vec!["hello".to_string()]);
}

#[test]
fn halt_is_clean_exit() {
    let mut a = Asm::new(CODE_BASE);
    a.halt();
    let prog = Program::from_asm(&a).unwrap();
    let mut k = kernel();
    let pid = k.spawn(&prog).unwrap();
    run(&mut k);
    assert_eq!(exit_code(&k, pid), Some(0));
}

#[test]
fn memory_fault_kills_process() {
    let mut a = Asm::new(CODE_BASE);
    a.movi(R6, 0x7777_0000);
    a.ld(R1, R6, 0); // unmapped
    a.halt();
    let prog = Program::from_asm(&a).unwrap();
    let mut k = kernel();
    let pid = k.spawn(&prog).unwrap();
    run(&mut k);
    assert_eq!(exit_code(&k, pid), Some(139));
    assert!(k.process(pid).unwrap().console[0].starts_with("FAULT"));
}

#[test]
fn file_write_then_read_back() {
    // open("/f", create); write "data!"; close; open; read into buf; log.
    let path = DATA_BASE as i64;
    let msg = DATA_BASE as i64 + 16;
    let buf = DATA_BASE as i64 + 64;
    let mut a = Asm::new(CODE_BASE);
    a.sys3(nr::OPEN, path, 2, 1); // fd in r0
    a.mov(R6, simcpu::isa::R0);
    a.mov(R1, R6);
    a.movi(R2, msg);
    a.movi(R3, 5);
    a.sys(nr::WRITE);
    a.sys_r(nr::CLOSE, &[R6]);
    a.sys3(nr::OPEN, path, 2, 0);
    a.mov(R6, simcpu::isa::R0);
    a.mov(R1, R6);
    a.movi(R2, buf);
    a.movi(R3, 100);
    a.sys(nr::READ); // n in r0
    a.mov(R7, simcpu::isa::R0);
    a.movi(R1, buf);
    a.mov(R2, R7);
    a.sys(nr::LOG);
    a.sys1(nr::EXIT, 0);
    let prog = Program::from_asm(&a)
        .unwrap()
        .with_data(DATA_BASE, b"/f".to_vec())
        .with_data(DATA_BASE + 16, b"data!".to_vec());
    let mut k = kernel();
    let pid = k.spawn(&prog).unwrap();
    run(&mut k);
    assert_eq!(exit_code(&k, pid), Some(0));
    assert_eq!(k.process(pid).unwrap().console, vec!["data!".to_string()]);
    assert_eq!(k.fs.read_file("/f").unwrap(), b"data!");
}

#[test]
fn sleep_advances_time() {
    let mut a = Asm::new(CODE_BASE);
    a.sys(nr::TIME);
    a.mov(R6, simcpu::isa::R0);
    a.sys1(nr::SLEEP, 5_000_000); // 5 ms
    a.sys(nr::TIME);
    a.sub(R7, simcpu::isa::R0, R6);
    // exit(elapsed >= 5ms ? 1 : 0)
    a.movi(R8, 5_000_000);
    a.cleu(R9, R8, R7);
    a.mov(R1, R9);
    a.sys(nr::EXIT);
    let prog = Program::from_asm(&a).unwrap();
    let mut k = kernel();
    let pid = k.spawn(&prog).unwrap();
    let end = run(&mut k);
    assert_eq!(exit_code(&k, pid), Some(1));
    assert!(end >= SimTime::ZERO + SimDuration::from_millis(5));
}

#[test]
fn pipe_between_threads() {
    // Main: pipe(); spawn(reader, stack2, rfd); write "ping"; waitpid; exit.
    // Reader thread: recv from pipe, log, exit.
    let fds_ptr = DATA_BASE as i64; // two u64s: rfd, wfd
    let msg = DATA_BASE as i64 + 32;
    let rbuf = DATA_BASE as i64 + 64;
    let stack2 = 0x3000_0000u64; // inside an extra map

    let mut a = Asm::new(CODE_BASE);
    let reader = a.label();
    // main
    a.sys1(nr::PIPE, fds_ptr);
    a.movi(R6, fds_ptr);
    a.ld(R7, R6, 0); // rfd
    a.ld(R8, R6, 8); // wfd
                     // spawn(reader_entry, stack2 top, rfd)
    a.movi_label(R1, reader);
    a.movi(R2, (stack2 + 0x4000) as i64);
    a.mov(R3, R7);
    a.sys(nr::SPAWN);
    a.mov(R9, simcpu::isa::R0); // child pid
                                // write(wfd, msg, 4)
    a.mov(R1, R8);
    a.movi(R2, msg);
    a.movi(R3, 4);
    a.sys(nr::WRITE);
    // waitpid(child)
    a.sys_r(nr::WAITPID, &[R9]);
    a.sys1(nr::EXIT, 0);
    // reader thread: arg (rfd) arrives in r1
    a.bind(reader);
    a.mov(R6, R1);
    a.mov(R1, R6);
    a.movi(R2, rbuf);
    a.movi(R3, 16);
    a.sys(nr::READ);
    a.mov(R7, simcpu::isa::R0);
    a.movi(R1, rbuf);
    a.mov(R2, R7);
    a.sys(nr::LOG);
    a.sys1(nr::EXIT, 3);

    let prog = Program::from_asm(&a)
        .unwrap()
        .with_data(DATA_BASE + 32, b"ping".to_vec())
        .with_map(stack2, 0x4000, "stack2");
    let mut k = kernel();
    let pid = k.spawn(&prog).unwrap();
    run(&mut k);
    assert_eq!(exit_code(&k, pid), Some(0));
    // The reader was reaped by waitpid; its console went with it, so verify
    // through the pipe side effects: the main exit proves waitpid returned.
    assert_eq!(k.live_processes(), 0);
}

#[test]
fn semaphores_synchronize_threads() {
    // Two threads alternate using two semaphores; the main waits for both.
    let stack2 = 0x3000_0000u64;
    let counter = DATA_BASE as i64 + 256;

    let mut a = Asm::new(CODE_BASE);
    let worker = a.label();
    // main: semget(1,1) -> s0 ; semget(2,1) -> s1
    a.sys2(nr::SEMGET, 1, 1);
    a.mov(R6, simcpu::isa::R0); // s0
    a.sys2(nr::SEMGET, 2, 1);
    a.mov(R7, simcpu::isa::R0); // s1
                                // spawn worker
    a.movi_label(R1, worker);
    a.movi(R2, (stack2 + 0x4000) as i64);
    a.mov(R3, R6);
    a.sys(nr::SPAWN);
    a.mov(R9, simcpu::isa::R0);
    // V(s0): allow worker to proceed
    a.mov(R1, R6);
    a.movi(R2, 0);
    a.movi(R3, 1);
    a.sys(nr::SEMOP);
    // P(s1): wait for worker's signal
    a.mov(R1, R7);
    a.movi(R2, 0);
    a.movi(R3, -1);
    a.sys(nr::SEMOP);
    a.sys_r(nr::WAITPID, &[R9]);
    // exit(counter value)
    a.movi(R6, counter);
    a.ld(R1, R6, 0);
    a.sys(nr::EXIT);
    // worker(arg = s0): P(s0); counter = 41+1; semget(2)->s1; V(s1); exit
    a.bind(worker);
    a.mov(R8, R1); // s0
    a.mov(R1, R8);
    a.movi(R2, 0);
    a.movi(R3, -1);
    a.sys(nr::SEMOP); // P(s0)
    a.movi(R6, counter);
    a.movi(R7, 42);
    a.st(R6, R7, 0);
    a.sys2(nr::SEMGET, 2, 1);
    a.mov(R8, simcpu::isa::R0); // s1
    a.mov(R1, R8);
    a.movi(R2, 0);
    a.movi(R3, 1);
    a.sys(nr::SEMOP); // V(s1)
    a.sys1(nr::EXIT, 0);

    let prog = Program::from_asm(&a)
        .unwrap()
        .with_data(DATA_BASE, vec![0u8; 512])
        .with_map(stack2, 0x4000, "stack2");
    let mut k = kernel();
    let pid = k.spawn(&prog).unwrap();
    run(&mut k);
    assert_eq!(exit_code(&k, pid), Some(42));
}

#[test]
fn shared_memory_between_processes() {
    // Process A: shmget(7, 4096); shmat at 0x3800_0000; store 99; exit.
    // Process B: sleeps briefly, attaches the same key, reads, exits value.
    let shm_addr = 0x3800_0000u64;

    let mut a = Asm::new(CODE_BASE);
    a.sys2(nr::SHMGET, 7, 4096);
    a.mov(R6, simcpu::isa::R0);
    a.mov(R1, R6);
    a.movi(R2, shm_addr as i64);
    a.sys(nr::SHMAT);
    a.movi(R7, shm_addr as i64);
    a.movi(R8, 99);
    a.st(R7, R8, 0);
    a.sys1(nr::EXIT, 0);
    let prog_a = Program::from_asm(&a).unwrap();

    let mut b = Asm::new(CODE_BASE);
    b.sys1(nr::SLEEP, 1_000_000); // let A create the segment first
    b.sys2(nr::SHMGET, 7, 4096);
    b.mov(R6, simcpu::isa::R0);
    b.mov(R1, R6);
    b.movi(R2, shm_addr as i64);
    b.sys(nr::SHMAT);
    b.movi(R7, shm_addr as i64);
    b.ld(R1, R7, 0);
    b.sys(nr::EXIT);
    let prog_b = Program::from_asm(&b).unwrap();

    let mut k = kernel();
    let pa = k.spawn(&prog_a).unwrap();
    let pb = k.spawn(&prog_b).unwrap();
    run(&mut k);
    assert_eq!(exit_code(&k, pa), Some(0));
    assert_eq!(exit_code(&k, pb), Some(99));
}

/// Builds the echo-server program: accept one connection, echo one message.
fn echo_server(port: i64) -> Program {
    let buf = DATA_BASE as i64;
    let mut a = Asm::new(CODE_BASE);
    a.sys1(nr::SOCKET, 0);
    a.mov(R6, simcpu::isa::R0); // listen fd
    a.mov(R1, R6);
    a.movi(R2, 0); // ANY
    a.movi(R3, port);
    a.sys(nr::BIND);
    a.mov(R1, R6);
    a.movi(R2, 4);
    a.sys(nr::LISTEN);
    a.sys_r(nr::ACCEPT, &[R6]);
    a.mov(R7, simcpu::isa::R0); // conn fd
    a.mov(R1, R7);
    a.movi(R2, buf);
    a.movi(R3, 64);
    a.sys(nr::RECV);
    a.mov(R8, simcpu::isa::R0); // n
    a.mov(R1, R7);
    a.movi(R2, buf);
    a.mov(R3, R8);
    a.sys(nr::SEND);
    a.sys_r(nr::CLOSE, &[R7]);
    a.sys1(nr::EXIT, 0);
    Program::from_asm(&a)
        .unwrap()
        .with_data(DATA_BASE, vec![0u8; 128])
}

/// Builds the client program: connect, send `msg`, receive the echo, log it.
fn echo_client(server_ip: IpAddr, port: i64, msg: &[u8]) -> Program {
    let msg_addr = DATA_BASE as i64 + 512;
    let buf = DATA_BASE as i64 + 1024;
    let mut a = Asm::new(CODE_BASE);
    a.sys1(nr::SLEEP, 500_000); // let the server reach accept()
    a.sys1(nr::SOCKET, 0);
    a.mov(R6, simcpu::isa::R0);
    a.mov(R1, R6);
    a.movi(R2, server_ip.to_bits() as i64);
    a.movi(R3, port);
    a.sys(nr::CONNECT);
    a.mov(R1, R6);
    a.movi(R2, msg_addr);
    a.movi(R3, msg.len() as i64);
    a.sys(nr::SEND);
    a.mov(R1, R6);
    a.movi(R2, buf);
    a.movi(R3, 64);
    a.sys(nr::RECV);
    a.mov(R10, simcpu::isa::R0);
    a.movi(R1, buf);
    a.mov(R2, R10);
    a.sys(nr::LOG);
    a.sys1(nr::EXIT, 0);
    Program::from_asm(&a)
        .unwrap()
        .with_data(DATA_BASE, vec![0u8; 256])
        .with_data(DATA_BASE + 512, msg.to_vec())
}

#[test]
fn tcp_echo_over_loopback() {
    let ip = IpAddr::from_octets(NODE_IP);
    let mut k = kernel();
    let server = k.spawn(&echo_server(7000)).unwrap();
    let client = k.spawn(&echo_client(ip, 7000, b"echo me")).unwrap();
    run(&mut k);
    assert_eq!(exit_code(&k, server), Some(0));
    assert_eq!(exit_code(&k, client), Some(0));
    assert_eq!(
        k.process(client).unwrap().console,
        vec!["echo me".to_string()]
    );
}

#[test]
fn udp_round_trip_over_loopback() {
    let ip = IpAddr::from_octets(NODE_IP).to_bits() as i64;
    // Receiver: bind :5353, recvfrom, log, exit.
    let buf = DATA_BASE as i64;
    let src = DATA_BASE as i64 + 128;
    let mut r = Asm::new(CODE_BASE);
    r.sys1(nr::SOCKET, 1);
    r.mov(R6, simcpu::isa::R0);
    r.mov(R1, R6);
    r.movi(R2, 0);
    r.movi(R3, 5353);
    r.sys(nr::BIND);
    r.mov(R1, R6);
    r.movi(R2, buf);
    r.movi(R3, 64);
    r.movi(simcpu::isa::R4, src);
    r.sys(nr::RECVFROM);
    r.mov(R7, simcpu::isa::R0);
    r.movi(R1, buf);
    r.mov(R2, R7);
    r.sys(nr::LOG);
    r.sys1(nr::EXIT, 0);
    let recv_prog = Program::from_asm(&r)
        .unwrap()
        .with_data(DATA_BASE, vec![0u8; 256]);

    // Sender: sendto(ip:5353, "dgram").
    let msg_addr = DATA_BASE as i64;
    let mut s = Asm::new(CODE_BASE);
    s.sys1(nr::SLEEP, 200_000);
    s.sys1(nr::SOCKET, 1);
    s.mov(R6, simcpu::isa::R0);
    s.mov(R1, R6);
    s.movi(R2, ip);
    s.movi(R3, 5353);
    s.movi(simcpu::isa::R4, msg_addr);
    s.movi(simcpu::isa::R5, 5);
    s.sys(nr::SENDTO);
    s.sys1(nr::EXIT, 0);
    let send_prog = Program::from_asm(&s)
        .unwrap()
        .with_data(DATA_BASE, b"dgram".to_vec());

    let mut k = kernel();
    let receiver = k.spawn(&recv_prog).unwrap();
    let sender = k.spawn(&send_prog).unwrap();
    run(&mut k);
    assert_eq!(exit_code(&k, sender), Some(0));
    assert_eq!(exit_code(&k, receiver), Some(0));
    assert_eq!(
        k.process(receiver).unwrap().console,
        vec!["dgram".to_string()]
    );
}

#[test]
fn sigstop_freezes_and_sigcont_resumes() {
    // A busy-looping program that exits once a shared flag flips; we stop
    // it, verify no progress, resume and let it finish via kill.
    let mut a = Asm::new(CODE_BASE);
    let top = a.label();
    a.bind(top);
    a.sys(nr::YIELD);
    a.jmp(top);
    let prog = Program::from_asm(&a).unwrap();
    let mut k = kernel();
    let pid = k.spawn(&prog).unwrap();

    // Run a few slices.
    let mut now = SimTime::ZERO;
    for _ in 0..10 {
        now += k.run_slice(now).elapsed;
    }
    assert!(k.process(pid).unwrap().state.is_ready());

    k.signal(pid, sig::SIGSTOP, now).unwrap();
    assert!(k.process(pid).unwrap().state.is_stopped());
    // No slices run while stopped.
    let out = k.run_slice(now);
    assert!(!out.ran);

    k.signal(pid, sig::SIGCONT, now).unwrap();
    assert!(k.process(pid).unwrap().state.is_ready());
    let out = k.run_slice(now);
    assert!(out.ran);

    k.signal(pid, sig::SIGKILL, now).unwrap();
    assert_eq!(exit_code(&k, pid), Some(128 + sig::SIGKILL));
}

#[test]
fn waitpid_blocks_until_child_exits() {
    let stack2 = 0x3000_0000u64;
    let mut a = Asm::new(CODE_BASE);
    let child = a.label();
    a.movi_label(R1, child);
    a.movi(R2, (stack2 + 0x4000) as i64);
    a.movi(R3, 0);
    a.sys(nr::SPAWN);
    a.mov(R6, simcpu::isa::R0);
    a.sys_r(nr::WAITPID, &[R6]);
    a.mov(R1, simcpu::isa::R0);
    a.sys(nr::EXIT); // exit with the child's code
    a.bind(child);
    a.sys1(nr::SLEEP, 2_000_000);
    a.sys1(nr::EXIT, 55);
    let prog = Program::from_asm(&a)
        .unwrap()
        .with_map(stack2, 0x4000, "stack2");
    let mut k = kernel();
    let pid = k.spawn(&prog).unwrap();
    run(&mut k);
    assert_eq!(exit_code(&k, pid), Some(55));
}

#[test]
fn getpid_and_time_work() {
    let mut a = Asm::new(CODE_BASE);
    a.sys(nr::GETPID);
    a.mov(R1, simcpu::isa::R0);
    a.sys(nr::EXIT);
    let prog = Program::from_asm(&a).unwrap();
    let mut k = kernel();
    let pid = k.spawn(&prog).unwrap();
    run(&mut k);
    assert_eq!(exit_code(&k, pid), Some(pid as u64));
}

#[test]
fn bad_syscall_returns_enosys() {
    let mut a = Asm::new(CODE_BASE);
    a.sys(9999);
    a.mov(R6, simcpu::isa::R0);
    a.movi(R7, 0);
    a.sub(R1, R7, R6); // negate to recover errno
    a.sys(nr::EXIT);
    let prog = Program::from_asm(&a).unwrap();
    let mut k = kernel();
    let pid = k.spawn(&prog).unwrap();
    run(&mut k);
    assert_eq!(exit_code(&k, pid), Some(11)); // Errno::NoSys
}

#[test]
fn fork_returns_zero_in_child_and_pid_in_parent() {
    let mut a = Asm::new(CODE_BASE);
    let child = a.label();
    a.sys(nr::FORK);
    a.jz(simcpu::isa::R0, child);
    // parent: wait for the child and exit with its code + 1.
    a.mov(R6, simcpu::isa::R0);
    a.sys_r(nr::WAITPID, &[R6]);
    a.mov(R1, simcpu::isa::R0);
    a.addi(R1, R1, 1);
    a.sys(nr::EXIT);
    // child: exits 42.
    a.bind(child);
    a.sys1(nr::EXIT, 42);
    let prog = Program::from_asm(&a).unwrap();
    let mut k = kernel();
    let pid = k.spawn(&prog).unwrap();
    run(&mut k);
    assert_eq!(exit_code(&k, pid), Some(43));
}

#[test]
fn fork_copies_memory_but_does_not_share_it() {
    // Parent writes 1 to a cell, forks; child writes 2 and exits with its
    // view; parent waits, then exits with ITS view — still 1.
    let cell = DATA_BASE as i64;
    let mut a = Asm::new(CODE_BASE);
    let child = a.label();
    a.movi(R6, cell);
    a.movi(R7, 1);
    a.st(R6, R7, 0);
    a.sys(nr::FORK);
    a.jz(simcpu::isa::R0, child);
    a.mov(R6, simcpu::isa::R0);
    a.sys_r(nr::WAITPID, &[R6]);
    a.mov(R8, simcpu::isa::R0); // child's exit code (its view: 2)
    a.movi(R6, cell);
    a.ld(R7, R6, 0); // parent's view
                     // exit(child_view * 10 + parent_view) => 21
    a.muli(R8, R8, 10);
    a.add(R1, R8, R7);
    a.sys(nr::EXIT);
    a.bind(child);
    a.movi(R6, cell);
    a.movi(R7, 2);
    a.st(R6, R7, 0);
    a.ld(R1, R6, 0);
    a.sys(nr::EXIT);
    let prog = Program::from_asm(&a)
        .unwrap()
        .with_data(DATA_BASE, vec![0u8; 16]);
    let mut k = kernel();
    let pid = k.spawn(&prog).unwrap();
    run(&mut k);
    assert_eq!(exit_code(&k, pid), Some(21), "copy-on-fork, not shared");
}

#[test]
fn forked_child_shares_sockets_until_last_close() {
    // Parent connects to its own echo listener over loopback, forks; the
    // CHILD sends through the inherited descriptor and exits (its exit
    // closes its copy); the PARENT then receives — the connection must
    // survive the child's death because the parent still references it.
    let ip = IpAddr::from_octets(NODE_IP);
    let buf = DATA_BASE as i64;
    let msg = DATA_BASE as i64 + 64;

    let mut a = Asm::new(CODE_BASE);
    let child = a.label();
    // listener
    a.sys1(nr::SOCKET, 0);
    a.mov(R6, simcpu::isa::R0);
    a.mov(R1, R6);
    a.movi(R2, 0);
    a.movi(R3, 7600);
    a.sys(nr::BIND);
    a.mov(R1, R6);
    a.movi(R2, 2);
    a.sys(nr::LISTEN);
    // connect to self
    a.sys1(nr::SOCKET, 0);
    a.mov(R7, simcpu::isa::R0);
    a.mov(R1, R7);
    a.movi(R2, ip.to_bits() as i64);
    a.movi(R3, 7600);
    a.sys(nr::CONNECT);
    // accept the server side
    a.sys_r(nr::ACCEPT, &[R6]);
    a.mov(R8, simcpu::isa::R0);
    // fork: child sends on the CLIENT fd and dies; parent reads SERVER fd.
    a.sys(nr::FORK);
    a.jz(simcpu::isa::R0, child);
    a.mov(R9, simcpu::isa::R0);
    a.sys_r(nr::WAITPID, &[R9]); // child has exited (fds closed)
    a.mov(R1, R8);
    a.movi(R2, buf);
    a.movi(R3, 64);
    a.sys(nr::RECV); // must deliver, not reset
    a.mov(R10, simcpu::isa::R0);
    a.movi(R1, buf);
    a.mov(R2, R10);
    a.sys(nr::LOG);
    a.sys1(nr::EXIT, 0);
    a.bind(child);
    a.mov(R1, R7);
    a.movi(R2, msg);
    a.movi(R3, 9);
    a.sys(nr::SEND);
    a.sys1(nr::EXIT, 0);
    let prog = Program::from_asm(&a)
        .unwrap()
        .with_data(DATA_BASE, vec![0u8; 64])
        .with_data(DATA_BASE as u64 + 64, b"from fork".to_vec());
    let mut k = kernel();
    let pid = k.spawn(&prog).unwrap();
    run(&mut k);
    assert_eq!(exit_code(&k, pid), Some(0));
    assert_eq!(
        k.process(pid).unwrap().console,
        vec!["from fork".to_string()]
    );
}
