//! `cruz-lint` self-check: the real workspace must be clean, each new
//! rule must demonstrably fire on an injected violation (the acceptance
//! fixtures), and the source blanker must uphold its invariants under
//! generated inputs.

use std::path::Path;

use cruz_lint::rules::Rule;
use cruz_lint::source::strip_source;
use cruz_lint::{analyze_file, registry, run_workspace};
use proptest::prelude::*;

fn repo_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// The gate CI relies on: all three passes over the actual tree, with the
/// checked-in baseline and wire registry, report nothing.
#[test]
fn workspace_is_clean() {
    let outcome = run_workspace(&repo_root()).expect("workspace run");
    assert!(
        outcome.kept.is_empty(),
        "unexpected findings:\n{}",
        outcome
            .kept
            .iter()
            .map(|f| format!("{}:{}: {}: {}\n", f.path, f.line, f.rule.name(), f.message))
            .collect::<String>()
    );
    assert!(
        outcome.stale.is_empty(),
        "stale baseline: {:?}",
        outcome.stale
    );
    assert!(outcome.scanned > 100, "workspace walk looks broken");
}

fn rules_at(rel: &str, src: &str) -> Vec<(usize, Rule)> {
    analyze_file(rel, src)
        .into_iter()
        .map(|f| (f.line, f.rule))
        .collect()
}

/// Acceptance: an up-stack `use` injected into the transport seam fails.
#[test]
fn injected_up_stack_use_in_transport_is_flagged() {
    let src = "use crate::node::Node;\nuse crate::world::World;\n";
    assert_eq!(
        rules_at("crates/cluster/src/transport.rs", src),
        vec![(2, Rule::LayerViolation)]
    );
}

/// Acceptance: renumbering a `CtlMsg` tag fails against the checked-in
/// registry, end to end through the real pin file.
#[test]
fn renumbered_ctlmsg_tag_fails_against_checked_in_registry() {
    let root = repo_root();
    let reg_text = std::fs::read_to_string(root.join("wire-registry.txt")).expect("registry file");
    let reg = registry::parse(&reg_text).expect("registry parses");
    let proto = std::fs::read_to_string(root.join("crates/core/src/proto.rs")).expect("proto.rs");
    // Renumber Done's encoder and decoder consistently, so only the
    // registry comparison can catch it.
    let drifted = proto.replace("v.push(2);", "v.push(12);").replace(
        "2 => CtlMsg::Done { epoch },",
        "12 => CtlMsg::Done { epoch },",
    );
    assert_ne!(proto, drifted, "fixture edit must apply");
    let sf = cruz_lint::SourceFile::new("crates/core/src/proto.rs", &drifted);
    let findings = registry::check(&registry::extract(&sf), &reg, "wire-registry.txt");
    assert!(
        findings.iter().any(|f| f.rule == Rule::WireDrift
            && f.message.contains("Done")
            && f.message.contains("code says 12")),
        "expected drift on Done, got {findings:?}"
    );
    // And the unmodified codec passes against the same registry (the
    // events/store/fault entries are exercised by workspace_is_clean).
    let sf = cruz_lint::SourceFile::new("crates/core/src/proto.rs", &proto);
    let clean: Vec<_> = registry::check(&registry::extract(&sf), &reg, "wire-registry.txt")
        .into_iter()
        .filter(|f| f.path != "wire-registry.txt") // other files' pins unmatched here
        .collect();
    assert!(clean.is_empty(), "clean proto.rs must pass: {clean:?}");
}

#[test]
fn injected_swallowed_error_on_protocol_path_is_flagged() {
    let src = "fn f() {\n    let _ = sock.send(buf);\n    sock.flush().ok();\n}\n";
    assert_eq!(
        rules_at("crates/cluster/src/ops.rs", src),
        vec![(2, Rule::SwallowedError), (3, Rule::SwallowedError)]
    );
    // Outside the protocol prefixes the same code is fine.
    assert!(rules_at("crates/simnet/src/stack.rs", src).is_empty());
}

#[test]
fn injected_float_in_sim_is_flagged() {
    let src = "pub struct S {\n    pub drift: f64,\n}\n";
    assert_eq!(
        rules_at("crates/simnet/src/clock.rs", src),
        vec![(2, Rule::FloatInSim)]
    );
    assert!(rules_at("crates/bench/src/lib.rs", src).is_empty());
}

// ---- strip_source properties ------------------------------------------------

/// Self-contained source fragments. The sentinel `ZXQ` appears only
/// inside string/comment/char wrappers, so it must never survive
/// blanking; every fragment is balanced, so concatenations are valid
/// token streams.
fn arb_fragment() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("let x = 1;\n"),
        Just("fn f() { g(); }\n"),
        Just("ident"),
        Just("b"),
        Just(" "),
        Just("\n"),
        Just("+ 2"),
        Just("\"ZXQ\""),
        Just("\"Z\\\"XQ \\\\ZXQ\""),
        Just("// ZXQ\n"),
        Just("/* ZXQ */"),
        Just("/* nested /* ZXQ */ still comment */"),
        Just("r\"ZXQ\""),
        Just("r#\"Z \"XQ\"#"),
        Just("br#\"ZXQ\"#"),
        Just("b\"ZXQ\""),
        Just("'Z'"),
        Just("'\\n'"),
        Just("<'a>"),
    ]
}

fn arb_source() -> impl Strategy<Value = String> {
    // Space-joined: raw concatenation could fuse fragments into tokens no
    // Rust lexer would produce (`2r#"..."#` reads as a numeric suffix, not
    // a raw string), and the blanker is only specified over valid streams.
    proptest::collection::vec(arb_fragment(), 0..40).prop_map(|v| v.join(" "))
}

proptest! {
    /// The blanker is a byte-preserving transform: same length, newlines
    /// in the same positions (line/column attribution depends on it).
    #[test]
    fn strip_source_preserves_geometry(src in arb_source()) {
        let clean = strip_source(&src);
        prop_assert_eq!(clean.len(), src.len(), "byte length preserved");
        let nl = |s: &str| s.bytes().enumerate().filter(|(_, b)| *b == b'\n').map(|(i, _)| i).collect::<Vec<_>>();
        prop_assert_eq!(nl(&clean), nl(&src), "newline positions preserved");
    }

    /// Nothing inside a string, char or comment survives: the sentinel
    /// only ever occurs inside wrappers, so it must be gone.
    #[test]
    fn strip_source_erases_wrapped_content(src in arb_source()) {
        let clean = strip_source(&src);
        prop_assert!(!clean.contains("ZXQ"), "sentinel leaked through: {}", clean);
        prop_assert!(!clean.contains('"'), "unblanked quote: {}", clean);
    }

    /// Idempotence: blanking already-blanked text changes nothing.
    #[test]
    fn strip_source_is_idempotent(src in arb_source()) {
        let once = strip_source(&src);
        prop_assert_eq!(strip_source(&once), once);
    }
}
