//! The wire-format registry pass.
//!
//! Every persistent artifact in the reproduction — checkpoint stores,
//! fault plans, golden traces — embeds small integers the source code
//! chooses: `CtlMsg` codec tags, `Event` fingerprint tags, on-disk
//! magics and versions, well-known ports. Renumbering any of them
//! compiles cleanly and silently strands every stored image and golden
//! digest. This pass extracts those numbers from the source and
//! cross-checks them three ways:
//!
//! * the `CtlMsg` encoder against its own decoder (a tag encoded but not
//!   decoded, or decoded differently, is a protocol bug today);
//! * the extracted set against `wire-registry.txt` at the workspace root
//!   (drift from the pinned value, or an unpinned tag, is an error);
//! * the registry against the code (a pinned entry the code no longer
//!   has is an error at the registry line — the registry never rots).
//!
//! Changing a tag on purpose therefore takes two edits — code and
//! registry — which is exactly the review speed bump the pass exists to
//! create. Extraction is heuristic (no rustc), tuned to the codec shapes
//! actually used in `proto.rs`/`events.rs`; the self-check test keeps it
//! honest against the real tree.

use crate::rules::Rule;
use crate::source::SourceFile;
use crate::Finding;

/// Where in the code a wire number was extracted from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Origin {
    /// `CtlMsg::encode` arm.
    Encode,
    /// `CtlMsg::decode` arm.
    Decode,
    /// `Event::fingerprint` mix tag.
    Fingerprint,
    /// A `MAGIC`/`VERSION`/`PORT` const.
    Const,
}

/// One wire number extracted from the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireEntry {
    /// Registry family: `ctlmsg`, `event`, `magic`, `version`, `port`.
    pub family: &'static str,
    /// Variant or qualified const name (`Done`, `store.MANIFEST_MAGIC`).
    pub name: String,
    /// Canonical value (decimal, or the literal bytes for magics).
    pub value: String,
    /// File the entry came from.
    pub path: String,
    /// 1-based line of the defining site.
    pub line: usize,
    /// Which extractor produced it.
    pub origin: Origin,
}

/// One `family name value` line from `wire-registry.txt`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegEntry {
    /// Family keyword.
    pub family: String,
    /// Variant or qualified const name.
    pub name: String,
    /// Canonical value.
    pub value: String,
    /// 1-based line in the registry file.
    pub line: usize,
}

/// The parsed pin file.
#[derive(Debug, Default)]
pub struct Registry {
    /// All pins, in file order.
    pub entries: Vec<RegEntry>,
}

const FAMILIES: &[&str] = &["ctlmsg", "event", "magic", "version", "port"];

/// Parses `wire-registry.txt`: one `family name value` triple per line,
/// `#` comments and blank lines ignored, values canonicalized.
///
/// # Errors
///
/// Malformed lines (wrong field count, unknown family), naming the line.
pub fn parse(text: &str) -> Result<Registry, String> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 3 {
            return Err(format!(
                "line {}: expected `family name value`, got {} field(s)",
                idx + 1,
                fields.len()
            ));
        }
        if !FAMILIES.contains(&fields[0]) {
            return Err(format!(
                "line {}: unknown family `{}` (one of {})",
                idx + 1,
                fields[0],
                FAMILIES.join("/")
            ));
        }
        entries.push(RegEntry {
            family: fields[0].to_string(),
            name: fields[1].to_string(),
            value: canon(fields[2]),
            line: idx + 1,
        });
    }
    Ok(Registry { entries })
}

/// Canonical form of a wire value: hex and decimal integer literals
/// (underscores allowed) normalize to decimal; `b"..."`/`"..."` literals
/// to their inner bytes; anything else passes through trimmed.
pub fn canon(v: &str) -> String {
    let t = v.trim();
    if let Some(inner) = t
        .strip_prefix("b\"")
        .or_else(|| t.strip_prefix('"'))
        .and_then(|s| s.strip_suffix('"'))
    {
        return inner.to_string();
    }
    let digits: String = t.chars().filter(|&c| c != '_').collect();
    if let Some(hex) = digits
        .strip_prefix("0x")
        .or_else(|| digits.strip_prefix("0X"))
    {
        if let Ok(n) = u64::from_str_radix(hex, 16) {
            return n.to_string();
        }
    }
    if let Ok(n) = digits.parse::<u64>() {
        return n.to_string();
    }
    t.to_string()
}

/// Extracts the wire numbers a file defines. Dispatches on the path, so
/// only the four wire-bearing files cost anything.
pub fn extract(sf: &SourceFile) -> Vec<WireEntry> {
    let mut out = Vec::new();
    match sf.rel.as_str() {
        "crates/core/src/proto.rs" => {
            extract_ctlmsg(sf, &mut out);
            extract_consts(sf, &mut out);
        }
        "crates/cluster/src/events.rs" => extract_events(sf, &mut out),
        "crates/core/src/store.rs"
        | "crates/core/src/replog.rs"
        | "crates/cluster/src/fault.rs" => extract_consts(sf, &mut out),
        _ => {}
    }
    out
}

/// First integer literal in `s` after skipping whitespace, as canonical
/// decimal.
fn leading_int(s: &str) -> Option<String> {
    let t = s.trim_start();
    let end = t
        .char_indices()
        .find(|(_, c)| !(c.is_ascii_digit() || *c == '_'))
        .map_or(t.len(), |(i, _)| i);
    let run = &t[..end];
    if run.chars().any(|c| c.is_ascii_digit()) {
        Some(canon(run))
    } else {
        None
    }
}

/// The variant name of the first `CtlMsg::Ident` token in `line`.
fn ctl_ident(line: &str) -> Option<&str> {
    let at = line.find("CtlMsg::")?;
    if at > 0 {
        let p = line.as_bytes()[at - 1];
        if p.is_ascii_alphanumeric() || p == b'_' {
            return None;
        }
    }
    let rest = &line[at + "CtlMsg::".len()..];
    let end = rest
        .char_indices()
        .find(|(_, c)| !(c.is_ascii_alphanumeric() || *c == '_'))
        .map_or(rest.len(), |(i, _)| i);
    if end == 0 {
        None
    } else {
        Some(&rest[..end])
    }
}

/// Extracts encoder and decoder tags from the `CtlMsg` codec.
///
/// Encoder: within `fn encode`..`fn decode`, each `CtlMsg::Ident` match
/// arm is paired with the first `push(<int>)` before the next arm.
/// Decoder: within `fn decode` to the closing `}` at column 0, arms of
/// the form `<int> => ...` count when the right-hand side mentions
/// `CtlMsg::` (same-line) or opens a block (paired with the first
/// `CtlMsg::Ident` before the next such arm) — this rejects the nested
/// field-decoding matches (`0 => OpKind::Checkpoint`).
fn extract_ctlmsg(sf: &SourceFile, out: &mut Vec<WireEntry>) {
    let lines: Vec<&str> = sf.clean.lines().collect();
    let enc_start = lines.iter().position(|l| l.contains("fn encode"));
    let dec_start = lines.iter().position(|l| l.contains("fn decode"));

    if let (Some(es), Some(ds)) = (enc_start, dec_start) {
        // Encoder arms.
        let arm_lines: Vec<usize> = (es + 1..ds)
            .filter(|&i| ctl_ident(lines[i]).is_some())
            .collect();
        for (k, &i) in arm_lines.iter().enumerate() {
            let window_end = arm_lines.get(k + 1).copied().unwrap_or(ds);
            let name = ctl_ident(lines[i]).unwrap();
            let tag = (i..window_end).find_map(|j| {
                let l = lines[j];
                let at = l.find("push(")?;
                leading_int(&l[at + "push(".len()..])
            });
            if let Some(tag) = tag {
                out.push(WireEntry {
                    family: "ctlmsg",
                    name: name.to_string(),
                    value: tag,
                    path: sf.rel.clone(),
                    line: i + 1,
                    origin: Origin::Encode,
                });
            }
        }
    }

    if let Some(ds) = dec_start {
        let dec_end = (ds + 1..lines.len())
            .find(|&i| lines[i].starts_with('}'))
            .unwrap_or(lines.len());
        // Accepted decoder arms: (line, tag, same-line variant if any).
        let mut arms: Vec<(usize, String, Option<String>)> = Vec::new();
        for i in ds + 1..dec_end {
            let t = lines[i].trim_start();
            let Some(tag) = leading_int(t) else { continue };
            let after_digits = t.trim_start_matches(|c: char| c.is_ascii_digit() || c == '_');
            let Some(rhs) = after_digits.trim_start().strip_prefix("=>") else {
                continue;
            };
            if let Some(name) = ctl_ident(rhs) {
                arms.push((i, tag, Some(name.to_string())));
            } else if rhs.trim_start().starts_with('{') {
                arms.push((i, tag, None));
            }
        }
        for k in 0..arms.len() {
            let (i, ref tag, ref same_line) = arms[k];
            let next = arms.get(k + 1).map_or(dec_end, |a| a.0);
            let name = same_line
                .clone()
                .or_else(|| (i + 1..next).find_map(|j| ctl_ident(lines[j]).map(str::to_string)));
            if let Some(name) = name {
                out.push(WireEntry {
                    family: "ctlmsg",
                    name,
                    value: tag.clone(),
                    path: sf.rel.clone(),
                    line: i + 1,
                    origin: Origin::Decode,
                });
            }
        }
    }
}

/// Extracts `Event` fingerprint tags: each non-test `Event::Ident` token
/// pairs with the first `mix(<int>` at or after it, before the next
/// candidate and within 8 lines. Unpaired candidates (uses of `Event`
/// outside the fingerprint match) are dropped.
fn extract_events(sf: &SourceFile, out: &mut Vec<WireEntry>) {
    let lines: Vec<&str> = sf.clean.lines().collect();
    let mut cands: Vec<(usize, String)> = Vec::new();
    for (i, l) in lines.iter().enumerate() {
        if sf.is_test_line(i + 1) {
            continue;
        }
        let Some(at) = l.find("Event::") else {
            continue;
        };
        if at > 0 {
            let p = l.as_bytes()[at - 1];
            if p.is_ascii_alphanumeric() || p == b'_' || p == b':' {
                continue;
            }
        }
        let rest = &l[at + "Event::".len()..];
        let end = rest
            .char_indices()
            .find(|(_, c)| !(c.is_ascii_alphanumeric() || *c == '_'))
            .map_or(rest.len(), |(i, _)| i);
        if end > 0 && rest.as_bytes()[0].is_ascii_uppercase() {
            cands.push((i, rest[..end].to_string()));
        }
    }
    for k in 0..cands.len() {
        let (i, ref name) = cands[k];
        let bound = cands
            .get(k + 1)
            .map_or(lines.len(), |c| c.0)
            .min(i + 9)
            .min(lines.len());
        let tag = (i..bound).find_map(|j| {
            let at = lines[j].find("mix(")?;
            leading_int(&lines[j][at + "mix(".len()..])
        });
        if let Some(tag) = tag {
            out.push(WireEntry {
                family: "event",
                name: name.clone(),
                value: tag,
                path: sf.rel.clone(),
                line: i + 1,
                origin: Origin::Fingerprint,
            });
        }
    }
}

/// Extracts `const` items whose names mention `MAGIC`/`VERSION`/`PORT`,
/// qualified as `<file stem>.<NAME>`. Reads the *raw* lines so byte-string
/// magics survive blanking; test code is skipped.
fn extract_consts(sf: &SourceFile, out: &mut Vec<WireEntry>) {
    let stem = sf
        .rel
        .rsplit('/')
        .next()
        .unwrap_or(&sf.rel)
        .trim_end_matches(".rs");
    for (idx, line) in sf.raw.lines().enumerate() {
        if sf.is_test_line(idx + 1) {
            continue;
        }
        let t = line.trim_start();
        let Some(rest) = t
            .strip_prefix("pub const ")
            .or_else(|| t.strip_prefix("const "))
        else {
            continue;
        };
        let Some((name, after)) = rest.split_once(':') else {
            continue;
        };
        let name = name.trim();
        let family = if name.contains("MAGIC") {
            "magic"
        } else if name.contains("VERSION") {
            "version"
        } else if name.contains("PORT") {
            "port"
        } else {
            continue;
        };
        let Some((_, value)) = after.split_once('=') else {
            continue;
        };
        let value = value.trim().trim_end_matches(';').trim();
        out.push(WireEntry {
            family,
            name: format!("{stem}.{name}"),
            value: canon(value),
            path: sf.rel.clone(),
            line: idx + 1,
            origin: Origin::Const,
        });
    }
}

/// Cross-checks the extracted entries against each other and against the
/// registry. `reg_rel` is the path findings against the registry file
/// itself are attributed to.
pub fn check(entries: &[WireEntry], reg: &Registry, reg_rel: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut push = |path: &str, line: usize, message: String| {
        out.push(Finding {
            path: path.to_string(),
            line,
            rule: Rule::WireDrift,
            message,
        });
    };

    // 1. Encoder vs decoder.
    let enc: Vec<&WireEntry> = entries
        .iter()
        .filter(|e| e.origin == Origin::Encode)
        .collect();
    let dec: Vec<&WireEntry> = entries
        .iter()
        .filter(|e| e.origin == Origin::Decode)
        .collect();
    for e in &enc {
        match dec.iter().find(|d| d.name == e.name) {
            None => push(
                &e.path,
                e.line,
                format!(
                    "CtlMsg::{} is encoded with tag {} but has no decode arm",
                    e.name, e.value
                ),
            ),
            Some(d) if d.value != e.value => push(
                &e.path,
                e.line,
                format!(
                    "CtlMsg::{} encodes as tag {} but decodes from tag {} (line {})",
                    e.name, e.value, d.value, d.line
                ),
            ),
            _ => {}
        }
    }
    for d in &dec {
        if !enc.iter().any(|e| e.name == d.name) {
            push(
                &d.path,
                d.line,
                format!(
                    "CtlMsg::{} is decoded from tag {} but never encoded",
                    d.name, d.value
                ),
            );
        }
    }

    // 2. Duplicate tags within a family (two variants sharing a wire
    // number collide on the wire / in fingerprints).
    for (family, origin) in [("ctlmsg", Origin::Encode), ("event", Origin::Fingerprint)] {
        let list: Vec<&WireEntry> = entries.iter().filter(|e| e.origin == origin).collect();
        for (k, e) in list.iter().enumerate() {
            if let Some(first) = list[..k].iter().find(|p| p.value == e.value) {
                push(
                    &e.path,
                    e.line,
                    format!(
                        "{family} tag {} is used by both {} and {}",
                        e.value, first.name, e.name
                    ),
                );
            }
        }
    }

    // 3. Code vs registry. The encoder is the canonical ctlmsg site (the
    // decoder was reconciled against it above).
    let code: Vec<&WireEntry> = entries
        .iter()
        .filter(|e| e.origin != Origin::Decode)
        .collect();
    for e in &code {
        match reg
            .entries
            .iter()
            .find(|r| r.family == e.family && r.name == e.name)
        {
            None => push(
                &e.path,
                e.line,
                format!(
                    "{} {} (value {}) is not pinned in {reg_rel}; add `{} {} {}`",
                    e.family, e.name, e.value, e.family, e.name, e.value
                ),
            ),
            Some(r) if r.value != e.value => push(
                &e.path,
                e.line,
                format!(
                    "{} {} drifted: code says {} but {reg_rel}:{} pins {} — \
                     renumbering strands stored checkpoints and golden traces; \
                     if intentional, update the registry in the same change",
                    e.family, e.name, e.value, r.line, r.value
                ),
            ),
            _ => {}
        }
    }
    for r in &reg.entries {
        if !code
            .iter()
            .any(|e| e.family == r.family && e.name == r.name)
        {
            push(
                reg_rel,
                r.line,
                format!(
                    "registry pins {} {} = {} but the code defines no such entry \
                     (remove the pin or restore the tag)",
                    r.family, r.name, r.value
                ),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // A miniature of the real proto.rs codec shape, including the nested
    // field matches that must NOT be mistaken for decoder arms.
    const PROTO: &str = "\
pub const AGENT_PORT: u16 = 7770;
impl CtlMsg {
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::new();
        match self {
            CtlMsg::Start { kind, epoch } => {
                v.push(0);
                v.push(match kind {
                    OpKind::Checkpoint => 0,
                    OpKind::Restart => 1,
                });
            }
            CtlMsg::Done { epoch } => {
                v.push(2);
            }
        }
        v
    }
    pub fn decode(bytes: &[u8]) -> Option<CtlMsg> {
        Some(match bytes[0] {
            0 => {
                let kind = match bytes[9] {
                    0 => OpKind::Checkpoint,
                    1 => OpKind::Restart,
                    _ => return None,
                };
                CtlMsg::Start { kind, epoch }
            }
            2 => CtlMsg::Done { epoch },
            _ => return None,
        })
    }
}
";

    fn proto_entries(src: &str) -> Vec<WireEntry> {
        extract(&SourceFile::new("crates/core/src/proto.rs", src))
    }

    #[test]
    fn ctlmsg_extraction_sees_both_sides_and_skips_nested_matches() {
        let e = proto_entries(PROTO);
        let triple = |w: &WireEntry| (w.origin, w.name.clone(), w.value.clone());
        assert_eq!(
            e.iter().map(triple).collect::<Vec<_>>(),
            vec![
                (Origin::Encode, "Start".into(), "0".into()),
                (Origin::Encode, "Done".into(), "2".into()),
                (Origin::Decode, "Start".into(), "0".into()),
                (Origin::Decode, "Done".into(), "2".into()),
                (Origin::Const, "proto.AGENT_PORT".into(), "7770".into()),
            ]
        );
    }

    // The acceptance criterion: renumber one decode arm and the pass
    // must fail even with no registry file present.
    #[test]
    fn renumbered_decode_arm_is_flagged() {
        let drifted = PROTO.replace("2 => CtlMsg::Done", "3 => CtlMsg::Done");
        let findings = check(
            &proto_entries(&drifted),
            &Registry::default(),
            "wire-registry.txt",
        );
        assert!(
            findings.iter().any(|f| f.rule == Rule::WireDrift
                && f.message.contains("Done")
                && f.message.contains("encodes as tag 2")
                && f.message.contains("decodes from tag 3")),
            "expected encode/decode mismatch, got {findings:?}"
        );
    }

    #[test]
    fn registry_drift_and_rot_are_flagged() {
        let reg =
            parse("ctlmsg Start 0\nctlmsg Done 3\nport proto.AGENT_PORT 7770\nevent Gone 9\n")
                .unwrap();
        let findings = check(&proto_entries(PROTO), &reg, "wire-registry.txt");
        assert!(
            findings.iter().any(|f| f.path == "crates/core/src/proto.rs"
                && f.message.contains("Done drifted")
                && f.message.contains("code says 2")
                && f.message.contains("pins 3")),
            "expected drift, got {findings:?}"
        );
        assert!(
            findings.iter().any(|f| f.path == "wire-registry.txt"
                && f.line == 4
                && f.message.contains("event Gone")),
            "expected stale pin at registry line 4, got {findings:?}"
        );
    }

    #[test]
    fn unpinned_tag_is_flagged() {
        let reg = parse("ctlmsg Start 0\nport proto.AGENT_PORT 7770\n").unwrap();
        let findings = check(&proto_entries(PROTO), &reg, "wire-registry.txt");
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("ctlmsg Done (value 2) is not pinned")),
            "got {findings:?}"
        );
    }

    #[test]
    fn matching_registry_is_clean() {
        let reg =
            parse("# pins\nctlmsg Start 0\nctlmsg Done 2\nport proto.AGENT_PORT 7770\n").unwrap();
        let findings = check(&proto_entries(PROTO), &reg, "wire-registry.txt");
        assert!(findings.is_empty(), "got {findings:?}");
    }

    #[test]
    fn duplicate_tags_are_flagged() {
        let dup = PROTO.replace("v.push(2);", "v.push(0);");
        let findings = check(
            &proto_entries(&dup),
            &Registry::default(),
            "wire-registry.txt",
        );
        assert!(
            findings.iter().any(|f| f
                .message
                .contains("ctlmsg tag 0 is used by both Start and Done")),
            "got {findings:?}"
        );
    }

    #[test]
    fn event_fingerprint_tags_are_extracted() {
        let src = "\
impl Event {
    pub fn fingerprint(&self) -> u64 {
        match self {
            Event::NodeRun(n) => mix(1, *n as u64, 0),
            Event::HeartbeatTimeout {
                job,
                sent_at,
            } => {
                let mut h = mix(16, sent_at.as_nanos(), 0);
                h
            }
            Event::Quiet { .. } => 0,
        }
    }
}
";
        let e = extract(&SourceFile::new("crates/cluster/src/events.rs", src));
        assert_eq!(
            e.iter()
                .map(|w| (w.name.clone(), w.value.clone()))
                .collect::<Vec<_>>(),
            vec![
                ("NodeRun".to_string(), "1".to_string()),
                ("HeartbeatTimeout".to_string(), "16".to_string()),
            ],
            "unpaired Quiet candidate dropped"
        );
    }

    #[test]
    fn byte_string_and_hex_consts_are_extracted() {
        let src = "\
pub const MANIFEST_MAGIC: u32 = 0x4352_5a4d;
const MAGIC: &[u8; 4] = b\"CRZF\";
pub const STORE_VERSION: u16 = 1;
const OTHER: usize = 9;
";
        let e = extract(&SourceFile::new("crates/core/src/store.rs", src));
        assert_eq!(
            e.iter()
                .map(|w| (w.family, w.name.clone(), w.value.clone()))
                .collect::<Vec<_>>(),
            vec![
                (
                    "magic",
                    "store.MANIFEST_MAGIC".to_string(),
                    0x4352_5a4du32.to_string()
                ),
                ("magic", "store.MAGIC".to_string(), "CRZF".to_string()),
                (
                    "version",
                    "store.STORE_VERSION".to_string(),
                    "1".to_string()
                ),
            ]
        );
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse("ctlmsg Done\n").unwrap_err().contains("line 1"));
        assert!(parse("bogus X 1\n").unwrap_err().contains("unknown family"));
        let reg = parse("magic store.M 0x10 # trailing comment\n").unwrap();
        assert_eq!(reg.entries[0].value, "16");
    }

    #[test]
    fn canon_normalizes() {
        assert_eq!(canon("0x4352_5a4d"), canon("1129470541"));
        assert_eq!(canon("b\"CRZF\""), "CRZF");
        assert_eq!(canon(" 7_770 "), "7770");
    }
}
