//! The layer-violation pass: extracts the module-dependency graph from
//! `use`/path tokens in the blanked source and checks every edge against
//! the declared layer maps.
//!
//! Two maps are enforced:
//!
//! * **Crate stack** — `des` at the base, then the hardware models
//!   (`simcpu`/`simnet`/`simos`), then `zap`, then the protocol core
//!   (`cruz`), then `cluster` on top. A crate may reference same-level
//!   siblings and anything below it; an up-stack reference (e.g. `cruz`
//!   importing `cluster`) inverts the architecture and fails.
//! * **Cluster modules** — within `crates/cluster/src/`, layering is
//!   `runtime`/`node`/`fault`/`params`/`recovery` (base) → `transport` →
//!   `events` → `state`/`ops`/`ops_agent`/`drain`/`heartbeat`/`jobs` →
//!   `world` → `simrt`/`netrt`. `lib.rs` is the assembly root and exempt.
//!   Modules not in the map sit at the base, so a new module that needs
//!   to import up-stack must be added to [`CLUSTER_LAYERS`] deliberately.
//!
//! Only *type* imports create edges: the cluster's `impl World` extension
//! modules define inherent methods callable crate-wide without importing
//! the defining module, which is exactly what lets the operation layers
//! sit below the `world` driver that dispatches to them.

use crate::rules::Rule;
use crate::source::{find_token, SourceFile};
use crate::Finding;

/// The crate stack, bottom-up. Names are *import path* tokens (the `core`
/// directory builds the `cruz` package). Crates absent from the map
/// (workloads, baseline, bench, the lint itself, vendored stand-ins) are
/// unconstrained.
pub const CRATE_LEVELS: &[(&str, u32)] = &[
    ("des", 0),
    ("simcpu", 1),
    ("simnet", 1),
    ("simos", 1),
    ("zap", 2),
    ("cruz", 3),
    ("cluster", 4),
];

/// The cluster engine's internal layering. Modules not listed sit at
/// level 0 (importable by everyone, importing no one above the base).
pub const CLUSTER_LAYERS: &[(&str, u32)] = &[
    ("runtime", 0),
    ("node", 0),
    ("fault", 0),
    ("params", 0),
    ("recovery", 0),
    ("transport", 1),
    ("events", 2),
    ("state", 3),
    ("ops", 3),
    ("ops_agent", 3),
    ("drain", 3),
    ("heartbeat", 3),
    ("jobs", 3),
    ("world", 4),
    ("simrt", 5),
    ("netrt", 5),
];

fn crate_level(tok: &str) -> Option<u32> {
    CRATE_LEVELS
        .iter()
        .find(|(n, _)| *n == tok)
        .map(|(_, l)| *l)
}

fn module_level(name: &str) -> u32 {
    CLUSTER_LAYERS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, l)| *l)
        .unwrap_or(0)
}

/// Runs the layer checks over one prepared file, appending findings.
pub fn scan(sf: &SourceFile, out: &mut Vec<Finding>) {
    if sf.kind.is_test_code {
        return;
    }
    let Some(dir) = sf.kind.crate_dir.as_deref() else {
        return; // root-level drivers and examples are unconstrained
    };
    let own_tok = if dir == "core" { "cruz" } else { dir };
    let Some(own_level) = crate_level(own_tok) else {
        return; // unleveled crate
    };
    let mut push = |line: usize, message: String| {
        if !sf.allow.contains(&(line, Rule::LayerViolation)) {
            out.push(Finding {
                path: sf.rel.clone(),
                line,
                rule: Rule::LayerViolation,
                message,
            });
        }
    };

    // Cross-crate edges: any `name::` path token referencing a crate above
    // this one.
    for (idx, line) in sf.clean.lines().enumerate() {
        let ln = idx + 1;
        if sf.is_test_line(ln) {
            continue;
        }
        for &(name, level) in CRATE_LEVELS {
            if name == own_tok || level <= own_level {
                continue;
            }
            if has_path_token(line, name) {
                push(
                    ln,
                    format!(
                        "`{own_tok}` (layer {own_level}) references `{name}::` (layer {level}); \
                         crate dependencies must point down-stack \
                         (des → simcpu/simnet/simos → zap → cruz → cluster)"
                    ),
                );
            }
        }
    }

    // Intra-cluster edges: `crate::<module>` references checked against
    // the module layer map. lib.rs assembles every layer and is exempt.
    if own_tok == "cluster" {
        let stem = file_stem(&sf.rel);
        if stem == "lib" {
            return;
        }
        let own_mod_level = module_level(stem);
        for (line, target) in cluster_targets(&sf.clean) {
            if sf.is_test_line(line) || target == stem {
                continue;
            }
            let target_level = module_level(&target);
            if target_level > own_mod_level {
                push(
                    line,
                    format!(
                        "cluster module `{stem}` (layer {own_mod_level}) imports \
                         `crate::{target}` (layer {target_level}); layering is \
                         transport → events → state/ops/ops_agent/drain/heartbeat/jobs \
                         → world → simrt/netrt (move the shared type down, or add the \
                         module to CLUSTER_LAYERS in crates/lint/src/graph.rs at its \
                         true level)"
                    ),
                );
            }
        }
    }
}

/// True when `line` contains `name::` with an identifier boundary on the
/// left (so `my_cluster::` never matches `cluster`).
fn has_path_token(line: &str, name: &str) -> bool {
    let b = line.as_bytes();
    let mut from = 0;
    while let Some(at) = find_token(&line[from..], name) {
        let abs = from + at;
        let after = abs + name.len();
        if b.get(after) == Some(&b':') && b.get(after + 1) == Some(&b':') {
            return true;
        }
        from = after;
        if from >= line.len() {
            break;
        }
    }
    false
}

fn file_stem(rel: &str) -> &str {
    rel.rsplit('/')
        .next()
        .unwrap_or(rel)
        .strip_suffix(".rs")
        .unwrap_or(rel)
}

/// Every `crate::<module>` reference in the blanked text, with its
/// 1-based line. Handles both plain paths (`crate::node::node_ip`) and
/// brace groups (`use crate::{events::Event, state::World};`), including
/// groups rustfmt breaks across lines; group members are attributed to
/// the line the member's leading identifier sits on.
pub fn cluster_targets(clean: &str) -> Vec<(usize, String)> {
    let b = clean.as_bytes();
    let mut out = Vec::new();
    let line_of = |pos: usize| 1 + clean[..pos].bytes().filter(|&c| c == b'\n').count();
    let mut from = 0;
    while let Some(rel) = clean[from..].find("crate::") {
        let at = from + rel;
        from = at + "crate::".len();
        // Token boundary on the left (`$crate::` in macros counts too; the
        // leading `$` is not an identifier char, which is what we want).
        if at > 0 {
            let p = b[at - 1];
            if p.is_ascii_alphanumeric() || p == b'_' {
                continue;
            }
        }
        let mut i = at + "crate::".len();
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        if i < b.len() && b[i] == b'{' {
            // Brace group: collect the leading identifier of every
            // depth-1 member.
            let mut depth = 1usize;
            i += 1;
            let mut expect_ident = true;
            while i < b.len() && depth > 0 {
                let c = b[i];
                match c {
                    b'{' => {
                        depth += 1;
                        i += 1;
                    }
                    b'}' => {
                        depth -= 1;
                        i += 1;
                    }
                    b',' => {
                        if depth == 1 {
                            expect_ident = true;
                        }
                        i += 1;
                    }
                    _ if c.is_ascii_whitespace() => i += 1,
                    _ => {
                        if expect_ident && depth == 1 && (c.is_ascii_alphabetic() || c == b'_') {
                            let start = i;
                            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                                i += 1;
                            }
                            out.push((line_of(start), clean[start..i].to_string()));
                        } else {
                            i += 1;
                        }
                        expect_ident = false;
                    }
                }
            }
        } else if i < b.len() && (b[i].is_ascii_alphabetic() || b[i] == b'_') {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            out.push((line_of(start), clean[start..i].to_string()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_file;

    fn layer_hits(rel: &str, src: &str) -> Vec<(usize, Rule)> {
        analyze_file(rel, src)
            .into_iter()
            .filter(|f| f.rule == Rule::LayerViolation)
            .map(|f| (f.line, f.rule))
            .collect()
    }

    // The acceptance criterion: an injected up-stack `use` in the
    // transport seam must fail.
    #[test]
    fn transport_importing_world_is_flagged() {
        let src = "use crate::node::Node;\nuse crate::world::World;\n";
        assert_eq!(
            layer_hits("crates/cluster/src/transport.rs", src),
            vec![(2, Rule::LayerViolation)]
        );
    }

    #[test]
    fn downward_and_same_level_imports_are_clean() {
        let src = "use crate::events::Event;\nuse crate::state::World;\nuse crate::jobs::PodSpec;\nuse crate::transport::CtlSock;\n";
        assert!(layer_hits("crates/cluster/src/ops.rs", src).is_empty());
        // world (top) may import everything.
        assert!(layer_hits("crates/cluster/src/world.rs", src).is_empty());
    }

    #[test]
    fn base_module_importing_ops_is_flagged() {
        let src = "use crate::ops::OpRuntime;\n";
        assert_eq!(
            layer_hits("crates/cluster/src/params.rs", src),
            vec![(1, Rule::LayerViolation)]
        );
        // Unlisted modules sit at the base and get the same treatment.
        assert_eq!(
            layer_hits("crates/cluster/src/newmod.rs", src),
            vec![(1, Rule::LayerViolation)]
        );
    }

    #[test]
    fn brace_groups_and_inline_paths_are_seen() {
        let grouped = "use crate::{node::Node, world::World};\n";
        assert_eq!(
            layer_hits("crates/cluster/src/transport.rs", grouped),
            vec![(1, Rule::LayerViolation)]
        );
        let multiline = "use crate::{\n    node::Node,\n    world::World,\n};\n";
        assert_eq!(
            layer_hits("crates/cluster/src/transport.rs", multiline),
            vec![(3, Rule::LayerViolation)],
            "member attributed to its own line"
        );
        let inline = "fn f() { crate::world::tick(); }\n";
        assert_eq!(
            layer_hits("crates/cluster/src/events.rs", inline),
            vec![(1, Rule::LayerViolation)]
        );
    }

    #[test]
    fn lib_rs_and_tests_are_exempt() {
        let src = "pub use crate::world::World;\n";
        assert!(layer_hits("crates/cluster/src/lib.rs", src).is_empty());
        assert!(layer_hits("crates/cluster/tests/x.rs", src).is_empty());
        let in_tests = "fn real() {}\n#[cfg(test)]\nmod tests {\n    use crate::world::World;\n}\n";
        assert!(layer_hits("crates/cluster/src/transport.rs", in_tests).is_empty());
    }

    #[test]
    fn cross_crate_up_stack_reference_is_flagged() {
        let src = "use cluster::World;\n";
        assert_eq!(
            layer_hits("crates/core/src/proto.rs", src),
            vec![(1, Rule::LayerViolation)]
        );
        let zap_up = "fn f() { let w = cruz::store::StoreConfig::default(); }\n";
        assert_eq!(
            layer_hits("crates/zap/src/pod.rs", zap_up),
            vec![(1, Rule::LayerViolation)]
        );
    }

    #[test]
    fn cross_crate_down_stack_and_sibling_references_are_clean() {
        let down = "use des::SimTime;\nuse simnet::addr::SockAddr;\nuse zap::Zap;\nuse cruz::proto::CtlMsg;\n";
        assert!(layer_hits("crates/cluster/src/node.rs", down).is_empty());
        let sibling = "use simcpu::Cpu;\n";
        assert!(layer_hits("crates/simos/src/kernel.rs", sibling).is_empty());
        // Unleveled crates may import anything.
        let any = "use cluster::World;\nuse cruz::proto::CtlMsg;\n";
        assert!(layer_hits("crates/bench/src/lib.rs", any).is_empty());
        assert!(layer_hits("src/main.rs", any).is_empty());
    }

    #[test]
    fn comments_and_doc_links_do_not_create_edges() {
        let src =
            "//! See [`crate::world`] for the driver.\n// cluster::World is above us\nfn f() {}\n";
        assert!(layer_hits("crates/cluster/src/state.rs", src).is_empty());
        assert!(layer_hits("crates/core/src/proto.rs", src).is_empty());
    }

    #[test]
    fn layer_violation_is_suppressable() {
        let src = "use crate::world::World; // bootstrap shim: cruz-lint: allow(layer-violation)\n";
        assert!(layer_hits("crates/cluster/src/transport.rs", src).is_empty());
    }

    #[test]
    fn cluster_targets_parses_groups() {
        let t = cluster_targets("use crate::{a::X, b::{Y, Z}, c};\ncrate::d::f();\n");
        let names: Vec<&str> = t.iter().map(|(_, n)| n.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c", "d"]);
        assert_eq!(t[3].0, 2, "inline path attributed to line 2");
    }
}
