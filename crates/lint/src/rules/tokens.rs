//! Token-level scans over the blanked source view: the original seven
//! determinism rules plus `swallowed-error` and `float-in-sim`.

use std::collections::BTreeSet;

use crate::rules::Rule;
use crate::source::{find_token, SourceFile};
use crate::Finding;

/// Line budget for one module file. A file past this size has stopped
/// being one layer of the design and resists review; the `god-file` rule
/// fails it until it is split (or grandfathered in the baseline — with a
/// `max=` ceiling, so a grandfathered file may shrink but never grow).
pub const GOD_FILE_MAX_LINES: usize = 1200;

/// Methods that iterate a collection in storage order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Runs every token rule over one prepared file, appending findings.
pub fn scan(sf: &SourceFile, out: &mut Vec<Finding>) {
    let clean_lines: Vec<&str> = sf.clean.lines().collect();
    let mut push = |line: usize, rule: Rule, message: String| {
        if !sf.allow.contains(&(line, rule)) {
            out.push(Finding {
                path: sf.rel.clone(),
                line,
                rule,
                message,
            });
        }
    };

    let in_sim_crate = sf.kind.in_sim_crate();
    let in_bench_crate = sf.kind.crate_dir.as_deref() == Some("bench");

    // Whole-file size budget for crate sources. The finding sits on the
    // file's last line so the count is visible in the report, and so a
    // baseline ceiling fails the build the moment the file grows past it.
    if sf.kind.crate_dir.is_some() && sf.rel.contains("/src/") && !sf.kind.is_test_code {
        let lines = sf.raw.lines().count();
        if lines > GOD_FILE_MAX_LINES {
            push(
                lines,
                Rule::GodFile,
                format!(
                    "{lines} lines exceeds the {GOD_FILE_MAX_LINES}-line module budget; \
                     split it along a protocol seam"
                ),
            );
        }
    }

    if in_sim_crate {
        let idents = hash_idents(&sf.clean);
        let mut hits: Vec<(usize, String)> = Vec::new();
        scan_unordered_iteration(&clean_lines, &idents, &mut |line, msg| {
            hits.push((line, msg))
        });
        for (line, msg) in hits {
            if !sf.is_test_line(line) {
                push(line, Rule::UnorderedIteration, msg);
            }
        }
    }

    for (idx, line) in clean_lines.iter().enumerate() {
        let ln = idx + 1;
        if sf.is_test_line(ln) {
            continue;
        }
        if !in_bench_crate {
            for pat in ["Instant::now", "SystemTime", "thread::sleep"] {
                if line.contains(pat) {
                    push(
                        ln,
                        Rule::WallClock,
                        format!("`{pat}` reads the host clock; simulated time is the only clock"),
                    );
                }
            }
        }
        for pat in ["thread_rng", "from_entropy", "rand::random"] {
            if line.contains(pat) {
                push(
                    ln,
                    Rule::AmbientEntropy,
                    format!(
                        "`{pat}` draws ambient entropy; all randomness must flow from the run seed"
                    ),
                );
            }
        }
        if sf.kind.is_protocol {
            for pat in [".unwrap()", ".expect("] {
                if line.contains(pat) {
                    push(
                        ln,
                        Rule::SilentUnwrap,
                        format!(
                            "`{pat}..` on a protocol path panics the whole cluster; return a CruzError instead"
                        ),
                    );
                }
            }
            if line.contains("panic!") {
                push(
                    ln,
                    Rule::ProtocolPanic,
                    "`panic!` on a protocol path kills the whole cluster; surface a CruzError so \
                     the recovery manager can heal the operation"
                        .to_string(),
                );
            }
            if discards_with_let_underscore(line) {
                push(
                    ln,
                    Rule::SwallowedError,
                    "`let _ = ...` on a protocol path swallows a value (and any error in it) \
                     silently; propagate it, record it in `World::soft_faults`, or justify the \
                     drop with `// cruz-lint: allow(swallowed-error)`"
                        .to_string(),
                );
            }
            if line.contains(".ok();") {
                push(
                    ln,
                    Rule::SwallowedError,
                    "`.ok();` on a protocol path discards a `Result`; propagate it, record it \
                     in `World::soft_faults`, or justify the drop with \
                     `// cruz-lint: allow(swallowed-error)`"
                        .to_string(),
                );
            }
        }
        if in_sim_crate {
            for pat in ["f32", "f64"] {
                if find_token(line, pat).is_some() {
                    push(
                        ln,
                        Rule::FloatInSim,
                        format!(
                            "`{pat}` in simulation code risks cross-platform rounding divergence \
                             in checkpoint state; keep state in integer units (nanos, bytes, \
                             bits) or mark parameters/reporting with \
                             `// cruz-lint: allow(float-in-sim)`"
                        ),
                    );
                }
            }
        }
        for pat in ["todo!", "unimplemented!"] {
            if line.contains(pat) {
                push(
                    ln,
                    Rule::UnsuppressedTodo,
                    format!("`{pat}` in non-test code"),
                );
            }
        }
        if sf.rel.starts_with("crates/core/src") {
            for pat in ["Rc<", "RefCell<"] {
                if contains_type_token(line, pat) {
                    push(
                        ln,
                        Rule::NonsendShared,
                        format!(
                            "`{pat}..>` in the checkpoint core is not `Send`; the capture/restore \
                             hot paths shard across the worker pool, so shared state here must be \
                             `Arc` (or justified with `// cruz-lint: allow(nonsend-shared)`)"
                        ),
                    );
                }
            }
        }
    }
}

/// True when `line` contains `pat` (a `Type<` prefix) at an identifier
/// boundary on the left: `Rc<u8>` and `rc::Rc<u8>` match, `Arc<u8>` and
/// `MyRefCell<..>` do not. (The pattern ends in `<`, so the right side
/// needs no check.)
fn contains_type_token(line: &str, pat: &str) -> bool {
    let b = line.as_bytes();
    let mut from = 0;
    while let Some(rel) = line[from..].find(pat) {
        let at = from + rel;
        from = at + pat.len();
        if at > 0 {
            let p = b[at - 1];
            if p.is_ascii_alphanumeric() || p == b'_' {
                continue;
            }
        }
        return true;
    }
    false
}

/// True when `line` contains a `let _ = ...` discard (token-bounded:
/// `let _x = ...` names its discard and is visible in review, so only the
/// bare wildcard counts).
fn discards_with_let_underscore(line: &str) -> bool {
    let b = line.as_bytes();
    let mut from = 0;
    while let Some(at) = find_token(&line[from..], "let") {
        let mut i = from + at + 3;
        from = i;
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= b.len() || b[i] != b'_' {
            continue;
        }
        i += 1;
        if i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            continue; // `let _named = ...`
        }
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        if i < b.len() && b[i] == b'=' && b.get(i + 1) != Some(&b'=') {
            return true;
        }
    }
    false
}

// ---- unordered-iteration ----------------------------------------------------

/// Identifiers declared as `HashMap`/`HashSet` in this file: struct fields
/// and bindings (`x: HashMap<..>`, `let mut x = HashMap::new()`).
fn hash_idents(clean: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for line in clean.lines() {
        let b = line.as_bytes();
        for tok in ["HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(rel) = line[from..].find(tok) {
                let at = from + rel;
                from = at + tok.len();
                // Token boundary on the left.
                if at > 0 {
                    let p = b[at - 1];
                    if p.is_ascii_alphanumeric() || p == b'_' {
                        continue;
                    }
                }
                if let Some(name) = binder_before(line, at) {
                    out.insert(name);
                }
            }
        }
    }
    out
}

/// The identifier being bound when `line[at..]` starts a hash-collection
/// type or constructor: handles `name: HashMap<..>` (field, param, let
/// ascription) and `name = HashMap::new()`.
fn binder_before(line: &str, at: usize) -> Option<String> {
    let b = line.as_bytes();
    let mut i = at;
    // Look through reference sigils and `mut`: `x: &mut HashMap<..>` still
    // binds `x` to a hash collection.
    loop {
        while i > 0 && b[i - 1].is_ascii_whitespace() {
            i -= 1;
        }
        if i > 0 && b[i - 1] == b'&' {
            i -= 1;
            continue;
        }
        if i >= 3
            && &b[i - 3..i] == b"mut"
            && (i == 3 || !(b[i - 4].is_ascii_alphanumeric() || b[i - 4] == b'_'))
        {
            i -= 3;
            continue;
        }
        break;
    }
    if i == 0 {
        return None;
    }
    match b[i - 1] {
        b':' => {
            // Must be a single colon (`x: HashMap`), not a path (`::`).
            if i >= 2 && b[i - 2] == b':' {
                return None;
            }
            ident_ending_at(line, i - 1)
        }
        b'=' => {
            // Plain assignment, not `==`, `<=`, `>=`, `!=`, `=>`.
            if i >= 2 && matches!(b[i - 2], b'=' | b'<' | b'>' | b'!') {
                return None;
            }
            ident_ending_at(line, i - 1)
        }
        _ => None,
    }
}

/// The identifier whose last char sits just before byte `end` (skipping
/// whitespace): `"let mut ops "` with `end` at the tail gives `ops`.
fn ident_ending_at(line: &str, end: usize) -> Option<String> {
    let b = line.as_bytes();
    let mut i = end;
    while i > 0 && b[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    let stop = i;
    while i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        i -= 1;
    }
    if i == stop {
        return None;
    }
    let name = &line[i..stop];
    if name.as_bytes()[0].is_ascii_digit() {
        return None;
    }
    Some(name.to_string())
}

/// The receiver identifier of a `.method(` call whose dot is at `dot`:
/// `self.ops.values()` gives `ops`.
fn receiver_before(line: &str, dot: usize) -> Option<String> {
    ident_ending_at(line, dot)
}

/// Flags iteration over identifiers known to be hash collections, plus
/// `for` loops whose iterated expression is such an identifier.
fn scan_unordered_iteration(
    clean_lines: &[&str],
    idents: &BTreeSet<String>,
    emit: &mut dyn FnMut(usize, String),
) {
    for (idx, line) in clean_lines.iter().enumerate() {
        for m in ITER_METHODS {
            let pat = format!(".{m}(");
            let mut from = 0;
            while let Some(rel) = line[from..].find(&pat) {
                let dot = from + rel;
                from = dot + pat.len();
                if let Some(recv) = receiver_before(line, dot) {
                    if idents.contains(&recv) {
                        emit(
                            idx + 1,
                            format!("`{recv}` is a hash collection; `.{m}()` iterates it in nondeterministic order"),
                        );
                    }
                }
            }
        }
        // `for x in [&mut] path.to.ident {`
        if let Some(for_at) = find_token(line, "for") {
            if let Some(in_rel) = line[for_at..].find(" in ") {
                let expr_start = for_at + in_rel + 4;
                let expr_end = line[expr_start..]
                    .find('{')
                    .map(|p| expr_start + p)
                    .unwrap_or(line.len());
                let mut expr = line[expr_start..expr_end].trim();
                expr = expr.trim_start_matches('&');
                expr = expr.strip_prefix("mut ").unwrap_or(expr).trim();
                if !expr.is_empty()
                    && expr
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
                {
                    if let Some(last) = expr.rsplit('.').next() {
                        if idents.contains(last) {
                            emit(
                                idx + 1,
                                format!("`for` loop over hash collection `{expr}` visits entries in nondeterministic order"),
                            );
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_file;

    fn rules_hit(rel: &str, src: &str) -> Vec<(usize, Rule)> {
        analyze_file(rel, src)
            .into_iter()
            .map(|f| (f.line, f.rule))
            .collect()
    }

    // The acceptance criterion: a deliberately injected HashMap iteration
    // in a sim crate must be flagged.
    #[test]
    fn injected_hashmap_iteration_is_flagged() {
        let src = "use std::collections::HashMap;\n\
                   fn f() {\n\
                       let mut m: HashMap<u32, u32> = HashMap::new();\n\
                       m.insert(1, 2);\n\
                       for (k, v) in &m {\n\
                           let x = (k, v);\n\
                       }\n\
                   }\n";
        let hits = rules_hit("crates/zap/src/injected.rs", src);
        assert!(
            hits.contains(&(5, Rule::UnorderedIteration)),
            "for-loop over HashMap must be flagged, got {hits:?}"
        );
    }

    #[test]
    fn hash_field_method_iteration_is_flagged() {
        let src = "use std::collections::HashMap;\n\
                   struct S { ops: HashMap<u64, u32> }\n\
                   impl S {\n\
                       fn busy(&self) -> bool { self.ops.values().any(|v| *v > 0) }\n\
                       fn look(&self) -> Option<&u32> { self.ops.get(&1) }\n\
                   }\n";
        let hits = rules_hit("crates/simnet/src/injected.rs", src);
        assert_eq!(
            hits,
            vec![(4, Rule::UnorderedIteration)],
            "values() flagged, plain get() is fine"
        );
    }

    #[test]
    fn hash_reference_params_are_tracked() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &mut HashMap<u32, u32>) { m.drain(); }\n";
        assert_eq!(
            rules_hit("crates/simnet/src/x.rs", src),
            vec![(2, Rule::UnorderedIteration)]
        );
    }

    #[test]
    fn btreemap_iteration_is_clean() {
        let src = "use std::collections::BTreeMap;\n\
                   fn f(m: &BTreeMap<u32, u32>) -> usize { m.values().count() }\n";
        assert!(rules_hit("crates/des/src/x.rs", src).is_empty());
    }

    #[test]
    fn hashmap_outside_sim_crates_is_not_flagged() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, u32>) -> usize { m.values().count() }\n";
        assert!(rules_hit("crates/workloads/src/x.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_banned_outside_bench() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(
            rules_hit("crates/des/src/x.rs", src),
            vec![(1, Rule::WallClock)]
        );
        assert!(rules_hit("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn ambient_entropy_banned_everywhere() {
        let src = "fn f() -> u64 { rand::random() }\n";
        assert_eq!(
            rules_hit("crates/workloads/src/x.rs", src),
            vec![(1, Rule::AmbientEntropy)]
        );
    }

    #[test]
    fn silent_unwrap_only_on_protocol_paths() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(
            rules_hit("crates/core/src/agent.rs", src),
            vec![(1, Rule::SilentUnwrap)]
        );
        // Every non-test file under the protocol prefixes is covered...
        assert_eq!(
            rules_hit("crates/core/src/proto.rs", src),
            vec![(1, Rule::SilentUnwrap)]
        );
        assert_eq!(
            rules_hit("crates/cluster/src/recovery.rs", src),
            vec![(1, Rule::SilentUnwrap)]
        );
        // ...but crates outside them are not.
        assert!(rules_hit("crates/des/src/queue.rs", src).is_empty());
    }

    #[test]
    fn panic_banned_on_protocol_paths() {
        let src = "fn f() { panic!(\"boom\") }\n";
        assert_eq!(
            rules_hit("crates/cluster/src/world.rs", src),
            vec![(1, Rule::ProtocolPanic)]
        );
        assert!(rules_hit("crates/des/src/queue.rs", src).is_empty());
        let allowed = "fn f() { panic!(\"boom\") } // cruz-lint: allow(protocol-panic)\n";
        assert!(rules_hit("crates/cluster/src/world.rs", allowed).is_empty());
        // `#[cfg(test)]` modules inside protocol files stay exempt.
        let test_mod =
            "#[cfg(test)]\nmod tests {\n    fn t() { panic!(\"x\"); None::<u32>.unwrap(); }\n}\n";
        assert!(rules_hit("crates/core/src/store.rs", test_mod).is_empty());
    }

    #[test]
    fn todo_flagged_and_suppressable() {
        let flagged = "fn f() { todo!() }\n";
        assert_eq!(
            rules_hit("crates/simos/src/x.rs", flagged),
            vec![(1, Rule::UnsuppressedTodo)]
        );
        let allowed = "// cruz-lint: allow(unsuppressed-todo)\nfn f() { todo!() }\n";
        assert!(rules_hit("crates/simos/src/x.rs", allowed).is_empty());
        let trailing = "fn f() { todo!() } // cruz-lint: allow(unsuppressed-todo)\n";
        assert!(rules_hit("crates/simos/src/x.rs", trailing).is_empty());
    }

    #[test]
    fn swallowed_error_flags_discards_on_protocol_paths() {
        let src = "fn f() -> Result<(), ()> { Ok(()) }\n\
                   fn g() { let _ = f(); }\n";
        assert_eq!(
            rules_hit("crates/cluster/src/ops.rs", src),
            vec![(2, Rule::SwallowedError)]
        );
        // `.ok();` is the same silent drop spelled differently.
        let ok = "fn g() { f().ok(); }\n";
        assert_eq!(
            rules_hit("crates/core/src/agent.rs", ok),
            vec![(1, Rule::SwallowedError)]
        );
        // Outside the protocol prefixes a discard is fine.
        assert!(rules_hit("crates/des/src/rng.rs", src).is_empty());
    }

    #[test]
    fn swallowed_error_ignores_named_discards_and_allows() {
        // A named `_hint` discard documents itself; only the bare `_` fires.
        let named = "fn g() { let _keep = f(); }\n";
        assert!(rules_hit("crates/cluster/src/ops.rs", named).is_empty());
        let allowed =
            "fn g() { let _ = f(); } // fire-and-forget: cruz-lint: allow(swallowed-error)\n";
        assert!(rules_hit("crates/cluster/src/ops.rs", allowed).is_empty());
        // Pattern destructuring is not a bare discard.
        let tuple = "fn g() { let (_, b) = f(); use_it(b); }\n";
        assert!(rules_hit("crates/cluster/src/ops.rs", tuple).is_empty());
    }

    #[test]
    fn float_in_sim_flags_bare_float_tokens() {
        let src = "pub struct S { pub drift: f64 }\n";
        assert_eq!(
            rules_hit("crates/simnet/src/x.rs", src),
            vec![(1, Rule::FloatInSim)]
        );
        // Outside sim crates floats are fine (bench reports percentiles).
        assert!(rules_hit("crates/bench/src/x.rs", src).is_empty());
        let allowed = "pub struct S { pub drift: f64 } // cruz-lint: allow(float-in-sim)\n";
        assert!(rules_hit("crates/simnet/src/x.rs", allowed).is_empty());
    }

    #[test]
    fn float_in_sim_requires_token_boundaries() {
        // `unit_f64` / `as_secs_f64` are identifiers, not float types.
        let src = "fn f(r: &mut SimRng) -> u64 { r.unit_f64_bits() }\n\
                   fn g(d: D) -> u64 { d.as_secs_f64_nanos() }\n\
                   // f64 in a comment is fine\n\
                   fn h() -> &'static str { \"f64\" }\n";
        assert!(rules_hit("crates/des/src/x.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_region_is_exempt() {
        let src = "fn real() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       use std::collections::HashMap;\n\
                       #[test]\n\
                       fn t() {\n\
                           let m: HashMap<u32, u32> = HashMap::new();\n\
                           for k in m.keys() { let _ = k; }\n\
                           todo!();\n\
                       }\n\
                   }\n";
        assert!(rules_hit("crates/zap/src/x.rs", src).is_empty());
    }

    #[test]
    fn tests_dir_is_exempt() {
        let src = "fn t() { let m: std::collections::HashMap<u32,u32> = Default::default(); for k in m.keys() {} }\n";
        assert!(rules_hit("crates/zap/tests/x.rs", src).is_empty());
    }

    #[test]
    fn mentions_in_comments_and_strings_are_clean() {
        let src = "// HashMap iteration would be bad: m.values()\n\
                   fn f() -> &'static str { \"Instant::now() todo!()\" }\n";
        assert!(rules_hit("crates/des/src/x.rs", src).is_empty());
    }

    #[test]
    fn nonsend_shared_flags_rc_and_refcell_in_core() {
        let src = "use std::rc::Rc;\n\
                   pub struct S { stored: Rc<[u8]> }\n\
                   pub struct T { cell: std::cell::RefCell<u32> }\n";
        assert_eq!(
            rules_hit("crates/core/src/store.rs", src),
            vec![(2, Rule::NonsendShared), (3, Rule::NonsendShared)],
            "field types flagged; the bare `use` line carries no `Rc<`"
        );
        // Outside the checkpoint core, non-Send sharing is fine (the sim
        // crates are single-threaded by design).
        assert!(rules_hit("crates/simos/src/fs.rs", src).is_empty());
        assert!(rules_hit("crates/cluster/src/world.rs", src).is_empty());
    }

    #[test]
    fn nonsend_shared_needs_token_boundaries_and_respects_allows() {
        // `Arc<` must not match, nor must identifiers ending in Rc/RefCell.
        let clean = "use std::sync::Arc;\n\
                     pub struct S { stored: Arc<[u8]>, w: WeakRc<u8>, c: MyRefCell<u8> }\n";
        assert!(rules_hit("crates/core/src/chunk.rs", clean).is_empty());
        // Qualified paths still hit; an allow comment suppresses.
        let qualified = "fn f() -> std::rc::Rc<u8> { std::rc::Rc::new(0) }\n";
        assert_eq!(
            rules_hit("crates/core/src/agent.rs", qualified),
            vec![(1, Rule::NonsendShared)]
        );
        let allowed =
            "fn f() -> std::rc::Rc<u8> { std::rc::Rc::new(0) } // cruz-lint: allow(nonsend-shared)\n";
        assert!(rules_hit("crates/core/src/agent.rs", allowed).is_empty());
        // Test code inside core files stays exempt.
        let test_mod = "#[cfg(test)]\nmod tests {\n    fn t() { let r: std::rc::Rc<u8> = std::rc::Rc::new(0); drop(r); }\n}\n";
        assert!(rules_hit("crates/core/src/store.rs", test_mod).is_empty());
    }

    #[test]
    fn god_file_flags_oversized_crate_sources() {
        let big = "// filler\n".repeat(GOD_FILE_MAX_LINES + 1);
        assert_eq!(
            rules_hit("crates/cluster/src/ops.rs", &big),
            vec![(GOD_FILE_MAX_LINES + 1, Rule::GodFile)],
            "finding line is the file's line count"
        );
        let at_budget = "// filler\n".repeat(GOD_FILE_MAX_LINES);
        assert!(
            rules_hit("crates/cluster/src/ops.rs", &at_budget).is_empty(),
            "exactly at budget is fine"
        );
    }

    #[test]
    fn god_file_only_covers_crate_src_dirs() {
        let big = "// filler\n".repeat(GOD_FILE_MAX_LINES + 1);
        assert!(rules_hit("tests/determinism.rs", &big).is_empty());
        assert!(rules_hit("crates/zap/tests/huge.rs", &big).is_empty());
        assert!(rules_hit("crates/bench/benches/huge.rs", &big).is_empty());
        assert!(rules_hit("examples/demo/src/main.rs", &big).is_empty());
    }

    #[test]
    fn vendor_and_target_are_skipped() {
        let src = "fn f() { let t = std::time::Instant::now(); todo!() }\n";
        assert!(analyze_file("vendor/criterion/src/lib.rs", src).is_empty());
        assert!(analyze_file("target/debug/build/x.rs", src).is_empty());
    }
}
