//! The rule catalogue. Token-level scans live in [`tokens`]; the
//! layer-graph and wire-registry passes ([`crate::graph`],
//! [`crate::registry`]) attribute their findings to rules declared here
//! so suppression and baselining work uniformly across passes.

pub mod tokens;

/// Every rule `cruz-lint` can report, in severity-agnostic declaration
/// order. `DESIGN.md` §14 is the prose catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Iteration over `HashMap`/`HashSet` in a simulation crate.
    UnorderedIteration,
    /// `Instant::now` / `SystemTime` / `thread::sleep` outside `bench`.
    WallClock,
    /// `thread_rng` / `from_entropy` / `rand::random` anywhere.
    AmbientEntropy,
    /// `.unwrap()` / `.expect(` on a protocol path.
    SilentUnwrap,
    /// `panic!` on a protocol path.
    ProtocolPanic,
    /// `todo!` / `unimplemented!` in non-test code.
    UnsuppressedTodo,
    /// A crate source file over the module line budget.
    GodFile,
    /// An import pointing up the declared layer map.
    LayerViolation,
    /// A wire-format tag diverging from `wire-registry.txt` (or the
    /// codec disagreeing with itself).
    WireDrift,
    /// `let _ = ...` / `.ok();` discarding a value on a protocol path.
    SwallowedError,
    /// `f32`/`f64` tokens in simulation-crate code.
    FloatInSim,
    /// `Rc<`/`RefCell<` in the checkpoint core (`crates/core/src`): the
    /// capture/restore hot paths shard across threads, and non-`Send`
    /// shared ownership quietly fences data out of the worker pool.
    NonsendShared,
}

/// All rules, for exhaustive listings (usage text, docs).
pub const ALL_RULES: &[Rule] = &[
    Rule::UnorderedIteration,
    Rule::WallClock,
    Rule::AmbientEntropy,
    Rule::SilentUnwrap,
    Rule::ProtocolPanic,
    Rule::UnsuppressedTodo,
    Rule::GodFile,
    Rule::LayerViolation,
    Rule::WireDrift,
    Rule::SwallowedError,
    Rule::FloatInSim,
    Rule::NonsendShared,
];

impl Rule {
    /// The kebab-case name used in reports, allow comments and baselines.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnorderedIteration => "unordered-iteration",
            Rule::WallClock => "wall-clock",
            Rule::AmbientEntropy => "ambient-entropy",
            Rule::SilentUnwrap => "silent-unwrap",
            Rule::ProtocolPanic => "protocol-panic",
            Rule::UnsuppressedTodo => "unsuppressed-todo",
            Rule::GodFile => "god-file",
            Rule::LayerViolation => "layer-violation",
            Rule::WireDrift => "wire-drift",
            Rule::SwallowedError => "swallowed-error",
            Rule::FloatInSim => "float-in-sim",
            Rule::NonsendShared => "nonsend-shared",
        }
    }

    /// Inverse of [`Rule::name`].
    pub fn from_name(s: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.name() == s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for &r in ALL_RULES {
            assert_eq!(Rule::from_name(r.name()), Some(r));
        }
        assert_eq!(Rule::from_name("not-a-rule"), None);
    }
}
