//! Source preparation shared by every pass: comment/string blanking,
//! `#[cfg(test)]` masking, and `cruz-lint: allow(...)` suppressions.

use std::collections::BTreeSet;

use crate::rules::Rule;
use crate::{classify, FileKind};

/// One file, prepared once and shared by the token, graph and registry
/// passes so each sees the same blanked view and suppression set.
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub rel: String,
    /// The raw text as read from disk.
    pub raw: String,
    /// [`strip_source`] view: comments, strings and chars blanked.
    pub clean: String,
    /// Per-line test mask (true = `#[cfg(test)]`/`#[test]` code).
    pub mask: Vec<bool>,
    /// `(line, rule)` pairs suppressed by allow comments.
    pub allow: BTreeSet<(usize, Rule)>,
    /// Path-derived classification.
    pub kind: FileKind,
}

impl SourceFile {
    /// Prepares `src` (raw file text) at workspace-relative path `rel`.
    pub fn new(rel: &str, src: &str) -> SourceFile {
        let kind = classify(rel);
        let clean = strip_source(src);
        let mask = test_mask(&clean, kind.is_test_code);
        let allow = suppressions(src);
        SourceFile {
            rel: rel.to_string(),
            raw: src.to_string(),
            clean,
            mask,
            allow,
            kind,
        }
    }

    /// True when 1-based `line` is test code.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.mask
            .get(line.wrapping_sub(1))
            .copied()
            .unwrap_or(false)
    }
}

/// Blanks string literals, char literals and — unless `keep_comments` —
/// comments, preserving line structure byte-for-byte, so scans see only
/// the token class they care about. `keep_comments` yields the view the
/// suppression scanner uses: comments intact, strings blanked, so an
/// allow marker inside a string literal cannot suppress anything.
fn scrub(src: &str, keep_comments: bool) -> String {
    let b = src.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(b.len());
    let mut i = 0;
    let blank = |c: u8| if c == b'\n' { b'\n' } else { b' ' };
    while i < b.len() {
        let c = b[i];
        // Line comment.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            while i < b.len() && b[i] != b'\n' {
                out.push(if keep_comments { b[i] } else { b' ' });
                i += 1;
            }
            continue;
        }
        // Block comment (Rust block comments nest).
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let keep = |out: &mut Vec<u8>, bytes: &[u8]| {
                if keep_comments {
                    out.extend_from_slice(bytes);
                } else {
                    for &byte in bytes {
                        out.push(blank(byte));
                    }
                }
            };
            let mut depth = 1;
            keep(&mut out, &b[i..i + 2]);
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    keep(&mut out, &b[i..i + 2]);
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    keep(&mut out, &b[i..i + 2]);
                    i += 2;
                } else {
                    keep(&mut out, &b[i..i + 1]);
                    i += 1;
                }
            }
            continue;
        }
        // Raw string (r"..", r#".."#, br#".."#).
        if (c == b'r' || c == b'b') && !prev_is_ident(&out) {
            if let Some(len) = raw_string_len(&b[i..]) {
                for k in 0..len {
                    out.push(blank(b[i + k]));
                }
                i += len;
                continue;
            }
        }
        // Ordinary (or byte) string.
        if c == b'"' {
            out.push(b' ');
            i += 1;
            while i < b.len() {
                if b[i] == b'\\' && i + 1 < b.len() {
                    out.push(b' ');
                    out.push(blank(b[i + 1]));
                    i += 2;
                } else if b[i] == b'"' {
                    out.push(b' ');
                    i += 1;
                    break;
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            if i + 1 < b.len() && b[i + 1] == b'\\' {
                out.push(b' ');
                i += 1;
                while i < b.len() && b[i] != b'\'' {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else {
                        out.push(blank(b[i]));
                        i += 1;
                    }
                }
                if i < b.len() {
                    out.push(b' ');
                    i += 1;
                }
                continue;
            }
            if i + 2 < b.len() && b[i + 2] == b'\'' && b[i + 1] != b'\'' {
                out.extend_from_slice(b"   ");
                i += 3;
                continue;
            }
            // A lifetime; keep the tick, it cannot confuse the scans.
            out.push(c);
            i += 1;
            continue;
        }
        out.push(c);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Blanks comments, string literals, and char literals, preserving line
/// structure, so the rule scans see only code tokens.
pub fn strip_source(src: &str) -> String {
    scrub(src, false)
}

fn prev_is_ident(out: &[u8]) -> bool {
    out.last()
        .is_some_and(|&c| c.is_ascii_alphanumeric() || c == b'_')
}

/// Length of the raw-string literal starting at `b[0]`, if one starts
/// there (`r`, `br`, any number of `#`s).
fn raw_string_len(b: &[u8]) -> Option<usize> {
    let mut i = 0;
    if b.get(i) == Some(&b'b') {
        i += 1;
    }
    if b.get(i) != Some(&b'r') {
        return None;
    }
    i += 1;
    let mut hashes = 0;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if b.get(i) != Some(&b'"') {
        return None;
    }
    i += 1;
    while i < b.len() {
        if b[i] == b'"'
            && b[i + 1..].len() >= hashes
            && b[i + 1..i + 1 + hashes].iter().all(|&h| h == b'#')
        {
            return Some(i + 1 + hashes);
        }
        i += 1;
    }
    Some(b.len()) // unterminated; swallow the rest
}

/// Per-line suppressions from `// cruz-lint: allow(rule, ...)` comments.
/// A suppression covers its own line and the line after it (so it can sit
/// either trailing the offending line or on its own line above). Markers
/// are located in a string-blanked view of the source, so an allow
/// marker *inside a string literal* never suppresses anything, and a
/// `//` inside a string never starts a comment.
pub fn suppressions(raw: &str) -> BTreeSet<(usize, Rule)> {
    const MARKER: &str = "cruz-lint: allow(";
    let commented = scrub(raw, true);
    let mut out = BTreeSet::new();
    for (idx, line) in commented.lines().enumerate() {
        let Some(comment_at) = line.find("//") else {
            continue;
        };
        let comment = &line[comment_at..];
        let Some(open) = comment.find(MARKER) else {
            continue;
        };
        let rest = &comment[open + MARKER.len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        for name in rest[..close].split(',') {
            if let Some(rule) = Rule::from_name(name.trim()) {
                let ln = idx + 1;
                out.insert((ln, rule));
                out.insert((ln + 1, rule));
            }
        }
    }
    out
}

/// Marks the lines belonging to `#[cfg(test)]` / `#[test]` items by brace
/// matching from the attribute to the close of the item it decorates.
pub fn test_mask(clean: &str, whole_file_is_test: bool) -> Vec<bool> {
    let lines: Vec<&str> = clean.lines().collect();
    let mut mask = vec![whole_file_is_test; lines.len()];
    if whole_file_is_test {
        return mask;
    }
    let mut i = 0;
    while i < lines.len() {
        let l = lines[i];
        if !(l.contains("#[cfg(test)]") || l.trim_start().starts_with("#[test]")) {
            i += 1;
            continue;
        }
        // Walk forward to the first `{` of the decorated item, then to its
        // matching `}`; everything in between is test code.
        let mut depth: i64 = 0;
        let mut seen_open = false;
        let mut j = i;
        'outer: while j < lines.len() {
            for ch in lines[j].chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        seen_open = true;
                    }
                    '}' => depth -= 1,
                    // An attribute on a braceless item (e.g. `#[cfg(test)]
                    // use ...;`) ends at the semicolon.
                    ';' if !seen_open && depth == 0 => break 'outer,
                    _ => {}
                }
                if seen_open && depth == 0 {
                    break 'outer;
                }
            }
            j += 1;
        }
        let end = j.min(lines.len().saturating_sub(1));
        for m in mask.iter_mut().take(end + 1).skip(i) {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// Position of `tok` in `line` with identifier boundaries on both sides.
pub fn find_token(line: &str, tok: &str) -> Option<usize> {
    let b = line.as_bytes();
    let mut from = 0;
    while let Some(rel) = line[from..].find(tok) {
        let at = from + rel;
        from = at + tok.len();
        let left_ok = at == 0 || !(b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_');
        let right = at + tok.len();
        let right_ok = right >= b.len() || !(b[right].is_ascii_alphanumeric() || b[right] == b'_');
        if left_ok && right_ok {
            return Some(at);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_blanks_comments_and_strings() {
        let src = "let a = \"HashMap::new()\"; // HashMap comment\nlet b = 1; /* todo!()\n spans */ let c = 'x';\n";
        let clean = strip_source(src);
        assert!(!clean.contains("HashMap"));
        assert!(!clean.contains("todo!"));
        assert!(!clean.contains('\''), "char literal blanked: {clean}");
        assert_eq!(
            clean.lines().count(),
            src.lines().count(),
            "line structure preserved"
        );
    }

    #[test]
    fn strip_handles_raw_strings_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let r = r#\"Instant::now()\"#; }";
        let clean = strip_source(src);
        assert!(!clean.contains("Instant"));
        assert!(clean.contains("'a"), "lifetimes survive: {clean}");
    }

    #[test]
    fn suppression_covers_own_and_next_line() {
        let s = suppressions("// cruz-lint: allow(wall-clock, silent-unwrap)\nx\n");
        assert!(s.contains(&(1, Rule::WallClock)));
        assert!(s.contains(&(2, Rule::WallClock)));
        assert!(s.contains(&(2, Rule::SilentUnwrap)));
        assert!(!s.contains(&(3, Rule::WallClock)));
    }

    #[test]
    fn allow_marker_inside_string_literal_is_inert() {
        // The marker text is data here, not a directive; it must not
        // suppress anything on this or the next line.
        let s = suppressions("let m = \"// cruz-lint: allow(wall-clock)\";\nInstant::now();\n");
        assert!(s.is_empty(), "string content must not suppress: {s:?}");
    }

    #[test]
    fn slashes_inside_strings_do_not_start_comments() {
        // `"http://x"` then a real trailing allow comment: the directive
        // after the string must still be honored.
        let s = suppressions("let u = \"http://x\"; // cruz-lint: allow(wall-clock)\n");
        assert!(s.contains(&(1, Rule::WallClock)));
    }

    #[test]
    fn scrub_keep_comments_blanks_only_strings() {
        let v = scrub("let a = \"sec//ret\"; // note\n", true);
        assert!(!v.contains("sec"), "string blanked: {v}");
        assert!(v.contains("// note"), "comment kept: {v}");
    }
}
