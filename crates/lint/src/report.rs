//! Rendering: the human text report and the machine `--json` report.

use std::io::Write;

use crate::{Finding, WorkspaceOutcome};

/// Writes `s` to stdout, swallowing broken pipes (`cruz-lint ... | head`
/// must not panic).
pub fn out(s: &str) {
    let _ = std::io::stdout().write_all(s.as_bytes()); // cruz-lint: allow(swallowed-error)
}

/// One finding in `path:line: rule: message` form (clickable in editors).
pub fn render_finding(f: &Finding) -> String {
    format!("{}:{}: {}: {}", f.path, f.line, f.rule.name(), f.message)
}

/// The human report: findings, stale baseline entries, one summary line.
pub fn render_text(o: &WorkspaceOutcome) -> String {
    let mut s = String::new();
    for f in &o.kept {
        s.push_str(&render_finding(f));
        s.push('\n');
    }
    for e in &o.stale {
        s.push_str(&format!(
            "lint-baseline.txt: stale entry `{e}` matches no finding — remove it\n"
        ));
    }
    s.push_str(&format!(
        "cruz-lint: {} finding(s), {} baselined, {} stale, {} file(s) scanned\n",
        o.kept.len(),
        o.baselined,
        o.stale.len(),
        o.scanned
    ));
    s
}

/// The machine report consumed by CI (`lint-report.json`):
/// `{"findings": [...], "stale": [...], "summary": {...}}`.
pub fn to_json(o: &WorkspaceOutcome) -> String {
    let mut s = String::from("{\n  \"findings\": [");
    for (i, f) in o.kept.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"path\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
            json_str(&f.path),
            f.line,
            json_str(f.rule.name()),
            json_str(&f.message)
        ));
    }
    if !o.kept.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n  \"stale\": [");
    for (i, e) in o.stale.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\n    {}", json_str(e)));
    }
    if !o.stale.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str(&format!(
        "],\n  \"summary\": {{\"findings\": {}, \"baselined\": {}, \"stale\": {}, \"scanned\": {}}}\n}}\n",
        o.kept.len(),
        o.baselined,
        o.stale.len(),
        o.scanned
    ));
    s
}

/// JSON string literal with the escapes the report can actually contain
/// (quotes, backslashes, control characters from source excerpts).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn outcome() -> WorkspaceOutcome {
        WorkspaceOutcome {
            raw: Vec::new(),
            kept: vec![Finding {
                path: "crates/a/src/x.rs".to_string(),
                line: 3,
                rule: Rule::WallClock,
                message: "uses `Instant::now` — \"wall\" time\tbreaks replay".to_string(),
            }],
            baselined: 2,
            stale: vec!["b.rs:9:silent-unwrap".to_string()],
            scanned: 41,
        }
    }

    #[test]
    fn text_report_lists_findings_stale_and_summary() {
        let t = render_text(&outcome());
        assert!(t.contains("crates/a/src/x.rs:3: wall-clock: uses `Instant::now`"));
        assert!(t.contains("stale entry `b.rs:9:silent-unwrap`"));
        assert!(t.contains("cruz-lint: 1 finding(s), 2 baselined, 1 stale, 41 file(s) scanned"));
    }

    #[test]
    fn json_report_escapes_and_counts() {
        let j = to_json(&outcome());
        assert!(j.contains("\"rule\": \"wall-clock\""));
        assert!(j.contains("\\\"wall\\\" time\\tbreaks replay"));
        assert!(j.contains(
            "\"summary\": {\"findings\": 1, \"baselined\": 2, \"stale\": 1, \"scanned\": 41}"
        ));
        // No raw control characters or unescaped quotes inside strings.
        assert!(!j.contains('\t'));
    }
}
