//! The baseline ratchet.
//!
//! `lint-baseline.txt` grandfathers known findings so new rules can land
//! strict without a flag day. It only ever shrinks: an entry that no
//! longer matches any finding is itself an error (*stale*), so fixing a
//! grandfathered site forces deleting its entry in the same change, and
//! the file cannot accumulate dead weight. `--update-baseline` rewrites
//! it from the current findings.
//!
//! Syntax, one entry per line (`#` comments, blank lines ignored):
//!
//! ```text
//! <path>:<line>:<rule> [max=<N>]
//! ```
//!
//! `<line>` may be `*` to match the rule anywhere in the file. `max=<N>`
//! adds a ceiling on the finding's line number — useful for `god-file`,
//! whose finding line *is* the file's line count, so a grandfathered
//! giant that grows past its recorded size un-baselines itself and fails
//! the build.

use crate::rules::Rule;
use crate::Finding;

/// One parsed baseline entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// Specific line, or `None` for the `*` wildcard.
    pub line: Option<usize>,
    /// The grandfathered rule.
    pub rule: Rule,
    /// Ceiling on the finding's line number (`max=N`).
    pub max: Option<usize>,
}

impl BaselineEntry {
    /// Does this entry absorb `f`?
    pub fn matches(&self, f: &Finding) -> bool {
        self.path == f.path
            && self.rule == f.rule
            && self.line.is_none_or(|l| l == f.line)
            && self.max.is_none_or(|m| f.line <= m)
    }

    /// Renders back in file syntax (for stale reporting).
    pub fn render(&self) -> String {
        let line = self.line.map_or_else(|| "*".to_string(), |l| l.to_string());
        let mut s = format!("{}:{}:{}", self.path, line, self.rule.name());
        if let Some(m) = self.max {
            s.push_str(&format!(" max={m}"));
        }
        s
    }
}

/// Parses the baseline file.
///
/// # Errors
///
/// Malformed entries (bad field count, unknown rule, unparsable line or
/// ceiling), naming the offending line.
pub fn parse(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |what: &str| format!("line {}: {what} in `{line}`", idx + 1);
        let mut fields = line.split_whitespace();
        let head = fields.next().unwrap_or("");
        let mut max = None;
        for extra in fields {
            let Some(n) = extra.strip_prefix("max=") else {
                return Err(err("unexpected field (only `max=N` may follow the entry)"));
            };
            max = Some(
                n.parse::<usize>()
                    .map_err(|_| err("unparsable max= ceiling"))?,
            );
        }
        // path may itself contain no colons we care about splitting on the
        // right: rsplit keeps `crates/a/b.rs:12:rule` unambiguous.
        let mut parts = head.rsplitn(3, ':');
        let rule_name = parts.next().ok_or_else(|| err("missing rule"))?;
        let line_field = parts.next().ok_or_else(|| err("expected path:line:rule"))?;
        let path = parts
            .next()
            .filter(|p| !p.is_empty())
            .ok_or_else(|| err("expected path:line:rule"))?;
        let rule = Rule::from_name(rule_name).ok_or_else(|| err("unknown rule"))?;
        let line_no = if line_field == "*" {
            None
        } else {
            Some(
                line_field
                    .parse::<usize>()
                    .map_err(|_| err("unparsable line number (use a number or `*`)"))?,
            )
        };
        out.push(BaselineEntry {
            path: path.to_string(),
            line: line_no,
            rule,
            max,
        });
    }
    Ok(out)
}

/// Result of filtering findings through the baseline.
#[derive(Debug)]
pub struct Applied {
    /// Findings the baseline did not absorb.
    pub kept: Vec<Finding>,
    /// How many findings entries absorbed.
    pub baselined: usize,
    /// Entries that absorbed nothing, rendered back in file syntax.
    pub stale: Vec<String>,
}

/// Filters `findings` through `baseline`. Every entry must earn its keep:
/// unmatched entries come back in [`Applied::stale`].
pub fn apply(findings: Vec<Finding>, baseline: &[BaselineEntry]) -> Applied {
    let mut used = vec![false; baseline.len()];
    let mut kept = Vec::new();
    let mut baselined = 0usize;
    for f in findings {
        let mut absorbed = false;
        for (i, e) in baseline.iter().enumerate() {
            if e.matches(&f) {
                used[i] = true;
                absorbed = true;
                // keep scanning: every entry matching this finding is live
            }
        }
        if absorbed {
            baselined += 1;
        } else {
            kept.push(f);
        }
    }
    let stale = baseline
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(e, _)| e.render())
        .collect();
    Applied {
        kept,
        baselined,
        stale,
    }
}

/// Renders a fresh baseline from raw findings (`--update-baseline`).
/// `god-file` findings become wildcard entries with a `max=` ceiling at
/// the current size, so the grandfathered file may shrink but not grow.
pub fn render(raw: &[Finding]) -> String {
    let mut lines: Vec<String> = raw
        .iter()
        .map(|f| {
            if f.rule == Rule::GodFile {
                format!("{}:*:{} max={}", f.path, f.rule.name(), f.line)
            } else {
                format!("{}:{}:{}", f.path, f.line, f.rule.name())
            }
        })
        .collect();
    lines.sort();
    lines.dedup();
    let mut out = String::from(
        "# cruz-lint baseline: grandfathered findings, one `path:line:rule [max=N]`\n\
         # per line. Entries matching nothing are errors — this file only shrinks.\n\
         # Regenerate with `cruz-lint --workspace --update-baseline`.\n",
    );
    for l in &lines {
        out.push_str(l);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(path: &str, line: usize, rule: Rule) -> Finding {
        Finding {
            path: path.to_string(),
            line,
            rule,
            message: String::new(),
        }
    }

    #[test]
    fn parse_handles_wildcards_ceilings_and_comments() {
        let text =
            "# comment\n\ncrates/a/src/x.rs:12:wall-clock\ncrates/b/src/y.rs:*:god-file max=1300\n";
        let b = parse(text).unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].line, Some(12));
        assert_eq!(b[0].max, None);
        assert_eq!(b[1].line, None);
        assert_eq!(b[1].max, Some(1300));
        assert_eq!(b[1].render(), "crates/b/src/y.rs:*:god-file max=1300");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("x.rs:1:not-a-rule\n")
            .unwrap_err()
            .contains("unknown rule"));
        assert!(parse("x.rs:one:wall-clock\n")
            .unwrap_err()
            .contains("unparsable line"));
        assert!(parse("wall-clock\n")
            .unwrap_err()
            .contains("path:line:rule"));
        assert!(parse("x.rs:1:wall-clock max=soon\n")
            .unwrap_err()
            .contains("unparsable max="));
        assert!(parse("x.rs:1:wall-clock bonus\n")
            .unwrap_err()
            .contains("unexpected field"));
    }

    #[test]
    fn matching_entries_absorb_and_unmatched_go_stale() {
        let b = parse("a.rs:3:wall-clock\nb.rs:9:silent-unwrap\n").unwrap();
        let out = apply(vec![finding("a.rs", 3, Rule::WallClock)], &b);
        assert!(out.kept.is_empty());
        assert_eq!(out.baselined, 1);
        assert_eq!(out.stale, vec!["b.rs:9:silent-unwrap".to_string()]);
    }

    #[test]
    fn wildcard_matches_any_line_of_that_rule() {
        let b = parse("a.rs:*:float-in-sim\n").unwrap();
        let out = apply(
            vec![
                finding("a.rs", 5, Rule::FloatInSim),
                finding("a.rs", 80, Rule::FloatInSim),
                finding("a.rs", 5, Rule::WallClock),
            ],
            &b,
        );
        assert_eq!(out.baselined, 2);
        assert_eq!(out.kept.len(), 1, "other rules still reported");
        assert!(out.stale.is_empty());
    }

    #[test]
    fn god_file_ceiling_ratchets() {
        let b = parse("big.rs:*:god-file max=1300\n").unwrap();
        // At or under the ceiling: absorbed.
        let under = apply(vec![finding("big.rs", 1296, Rule::GodFile)], &b);
        assert!(under.kept.is_empty());
        assert!(under.stale.is_empty());
        // Grown past the ceiling: reported again.
        let over = apply(vec![finding("big.rs", 1301, Rule::GodFile)], &b);
        assert_eq!(over.kept.len(), 1);
        assert_eq!(
            over.stale.len(),
            1,
            "entry matched nothing, so it is also stale"
        );
        // Shrunk below the rule threshold entirely: entry is stale.
        let gone = apply(Vec::new(), &b);
        assert_eq!(gone.stale, vec!["big.rs:*:god-file max=1300".to_string()]);
    }

    #[test]
    fn render_emits_ceilinged_god_files_and_plain_lines() {
        let text = render(&[
            finding("big.rs", 1343, Rule::GodFile),
            finding("a.rs", 7, Rule::WallClock),
        ]);
        assert!(text.contains("big.rs:*:god-file max=1343\n"));
        assert!(text.contains("a.rs:7:wall-clock\n"));
        let reparsed = parse(&text).unwrap();
        assert_eq!(reparsed.len(), 2, "render output round-trips");
    }
}
