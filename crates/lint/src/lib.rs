//! `cruz-lint`: the determinism and architecture auditor.
//!
//! The whole reproduction rests on one invariant: the same seed must
//! produce the same event order, and therefore byte-identical checkpoint
//! images, in every process on every machine. The compiler cannot check
//! that; this tool does. It is pure std (no syn/quote — the build must
//! stay offline) and runs three passes over every workspace `.rs` file:
//!
//! 1. **Token rules** ([`rules::tokens`]) — scans a comment/string-blanked
//!    view of each file for banned constructs (hash-order iteration, wall
//!    clocks, ambient entropy, protocol panics, swallowed errors, floats
//!    in simulation state, oversized modules).
//! 2. **Layer graph** ([`graph`]) — extracts the module-dependency graph
//!    from `use`/path tokens and checks it against the declared layer
//!    maps: crates must only import down-stack, and the cluster engine's
//!    internal modules must respect `transport → events →
//!    state/ops/drain/heartbeat/jobs → world`.
//! 3. **Wire registry** ([`registry`]) — extracts the `CtlMsg` codec
//!    tags, `Event` fingerprint tags and on-disk magics/versions from the
//!    source and cross-checks them against the pinned `wire-registry.txt`,
//!    so a silent renumbering (which would strand every stored checkpoint
//!    and golden trace) fails the build.
//!
//! Suppress a finding with a trailing or preceding line comment:
//! `// cruz-lint: allow(<rule>)`. Known stragglers live in
//! `lint-baseline.txt` at the workspace root ([`baseline`]); entries that
//! no longer match any finding are themselves errors, so the baseline only
//! ever shrinks (`--update-baseline` rewrites it).

use std::fs;
use std::path::{Path, PathBuf};

pub mod baseline;
pub mod graph;
pub mod registry;
pub mod report;
pub mod rules;
pub mod source;

pub use rules::Rule;
pub use source::SourceFile;

/// Crates whose event order feeds the deterministic simulation. Iterating
/// a hash collection in any of these is a determinism bug, and `f32`/`f64`
/// in their state risks cross-platform rounding divergence.
pub const SIM_CRATES: &[&str] = &["cluster", "core", "des", "simcpu", "simnet", "simos", "zap"];

/// Directories hosting the checkpoint-restart control plane, where a
/// panic takes down the whole simulated cluster instead of one operation.
/// Every non-test `.rs` file under these prefixes is a protocol path.
pub const PROTOCOL_PREFIXES: &[&str] = &["crates/core/src/", "crates/cluster/src/"];

/// One reported lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

/// What part of the workspace a file belongs to, derived from its
/// workspace-relative path.
#[derive(Debug, Clone)]
pub struct FileKind {
    /// Directory name under `crates/`, if any (`core`, `zap`, ...).
    pub crate_dir: Option<String>,
    /// Test or bench source — exempt from every rule.
    pub is_test_code: bool,
    /// Under a protocol-path prefix (`silent-unwrap`, `protocol-panic`
    /// and `swallowed-error` apply).
    pub is_protocol: bool,
}

impl FileKind {
    /// True when the file sits in a crate whose event order feeds the
    /// deterministic simulation.
    pub fn in_sim_crate(&self) -> bool {
        self.crate_dir
            .as_deref()
            .is_some_and(|c| SIM_CRATES.contains(&c))
    }
}

/// Classifies a workspace-relative path.
pub fn classify(rel: &str) -> FileKind {
    let crate_dir = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .map(str::to_string);
    let is_test_code = rel.split('/').any(|seg| seg == "tests" || seg == "benches");
    let is_protocol = PROTOCOL_PREFIXES.iter().any(|p| rel.starts_with(p));
    FileKind {
        crate_dir,
        is_test_code,
        is_protocol,
    }
}

/// Runs the per-file passes (token rules and layer graph; the wire
/// registry needs whole-workspace context and runs separately) on one
/// already-prepared source file.
pub fn analyze_source(sf: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    rules::tokens::scan(sf, &mut findings);
    graph::scan(sf, &mut findings);
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Convenience: prepare and analyze one file from its raw text. Vendored
/// and generated trees are exempt wholesale.
pub fn analyze_file(rel: &str, src: &str) -> Vec<Finding> {
    if rel.starts_with("vendor/") || rel.starts_with("target/") {
        return Vec::new();
    }
    analyze_source(&SourceFile::new(rel, src))
}

/// Everything one workspace run produces, before and after the baseline.
#[derive(Debug)]
pub struct WorkspaceOutcome {
    /// All findings, pre-baseline (what `--update-baseline` records).
    pub raw: Vec<Finding>,
    /// Findings that survived the baseline filter.
    pub kept: Vec<Finding>,
    /// How many findings the baseline absorbed.
    pub baselined: usize,
    /// Baseline entries that matched nothing (rendered back in file
    /// syntax) — stale entries are errors so the baseline only shrinks.
    pub stale: Vec<String>,
    /// Files scanned.
    pub scanned: usize,
}

/// Runs all three passes over the workspace rooted at `root`, applying
/// `root/lint-baseline.txt` and `root/wire-registry.txt` when present.
///
/// # Errors
///
/// Unreadable files, or malformed baseline/registry syntax (message names
/// the offending line).
pub fn run_workspace(root: &Path) -> Result<WorkspaceOutcome, String> {
    run_workspace_with(root, None)
}

/// [`run_workspace`] with an explicit baseline file (`--baseline`).
///
/// # Errors
///
/// As [`run_workspace`].
pub fn run_workspace_with(
    root: &Path,
    baseline_override: Option<&Path>,
) -> Result<WorkspaceOutcome, String> {
    let baseline_file =
        baseline_override.map_or_else(|| root.join("lint-baseline.txt"), Path::to_path_buf);
    let baseline = match fs::read_to_string(&baseline_file) {
        Ok(text) => {
            baseline::parse(&text).map_err(|e| format!("{}: {e}", baseline_file.display()))?
        }
        Err(_) => Vec::new(), // no baseline is a clean baseline
    };
    let registry_file = root.join("wire-registry.txt");
    let reg = match fs::read_to_string(&registry_file) {
        Ok(text) => {
            Some(registry::parse(&text).map_err(|e| format!("{}: {e}", registry_file.display()))?)
        }
        Err(_) => None, // no registry pins nothing
    };

    let mut raw: Vec<Finding> = Vec::new();
    let mut wires: Vec<registry::WireEntry> = Vec::new();
    let mut scanned = 0usize;
    for path in collect_rs_files(root) {
        let rel = rel_to(root, &path);
        if rel.starts_with("vendor/") || rel.starts_with("target/") {
            continue;
        }
        let src = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        scanned += 1;
        let sf = SourceFile::new(&rel, &src);
        raw.extend(analyze_source(&sf));
        wires.extend(registry::extract(&sf));
    }
    if let Some(reg) = &reg {
        raw.extend(registry::check(&wires, reg, "wire-registry.txt"));
    }
    raw.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));

    let applied = baseline::apply(raw.clone(), &baseline);
    Ok(WorkspaceOutcome {
        raw,
        kept: applied.kept,
        baselined: applied.baselined,
        stale: applied.stale,
        scanned,
    })
}

/// Recursively collects `.rs` files under `root`, skipping vendored,
/// generated and VCS trees. Sorted for deterministic reports.
pub fn collect_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if matches!(name.as_ref(), "target" | ".git" | "vendor" | "node_modules") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Workspace-relative rendering of `path`, forward slashes.
pub fn rel_to(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}
