//! `cruz-lint` CLI: argument parsing and exit codes. All analysis lives
//! in the `cruz_lint` library (see its crate docs for the rule
//! catalogue); this binary only drives it.
//!
//! Exit status: 0 clean, 1 findings or stale baseline entries, 2 usage,
//! I/O or parse error.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use cruz_lint::{analyze_file, report, run_workspace_with, WorkspaceOutcome};

const USAGE: &str =
    "usage: cruz-lint --workspace [--root <dir>] [--baseline <file>] [--json] [--update-baseline]
       cruz-lint <file.rs>...

Passes: token rules, layer graph (vs the declared crate/module layer maps),
wire registry (codec tags and magics vs wire-registry.txt; workspace mode only).
Rules: unordered-iteration, wall-clock, ambient-entropy, silent-unwrap,
protocol-panic, unsuppressed-todo, god-file, layer-violation, wire-drift,
swallowed-error, float-in-sim, nonsend-shared. Suppress one line with `// cruz-lint: allow(<rule>)`;
record stragglers in lint-baseline.txt (`path:line:rule [max=N]`, `*` = any line;
stale entries are errors). --json emits the machine report on stdout;
--update-baseline rewrites the baseline from the current findings and exits 0.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut json = false;
    let mut update_baseline = false;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => workspace = true,
            "--json" => json = true,
            "--update-baseline" => update_baseline = true,
            "--root" => match it.next() {
                Some(d) => root = PathBuf::from(d),
                None => {
                    eprintln!("cruz-lint: --root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match it.next() {
                Some(f) => baseline_path = Some(PathBuf::from(f)),
                None => {
                    eprintln!("cruz-lint: --baseline needs a file\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                report::out(USAGE);
                report::out("\n");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("cruz-lint: unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
            file => files.push(PathBuf::from(file)),
        }
    }
    if workspace && !files.is_empty() {
        eprintln!("cruz-lint: --workspace takes no positional files\n{USAGE}");
        return ExitCode::from(2);
    }
    if update_baseline && !workspace {
        eprintln!("cruz-lint: --update-baseline requires --workspace\n{USAGE}");
        return ExitCode::from(2);
    }
    if !workspace && files.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    if workspace {
        let outcome = match run_workspace_with(&root, baseline_path.as_deref()) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("cruz-lint: {e}");
                return ExitCode::from(2);
            }
        };
        if update_baseline {
            let target = baseline_path.unwrap_or_else(|| root.join("lint-baseline.txt"));
            let text = cruz_lint::baseline::render(&outcome.raw);
            if let Err(e) = fs::write(&target, text) {
                eprintln!("cruz-lint: {}: {e}", target.display());
                return ExitCode::from(2);
            }
            report::out(&format!(
                "cruz-lint: wrote {} entr(ies) to {}\n",
                outcome.raw.len(),
                target.display()
            ));
            return ExitCode::SUCCESS;
        }
        if json {
            report::out(&report::to_json(&outcome));
        } else {
            report::out(&report::render_text(&outcome));
        }
        return if outcome.kept.is_empty() && outcome.stale.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    // Single-file mode: token + graph passes only, no baseline, no
    // registry (both need whole-workspace context).
    let mut kept = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let rel = cruz_lint::rel_to(&root, path);
        let src = match fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cruz-lint: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        scanned += 1;
        kept.extend(analyze_file(&rel, &src));
    }
    let outcome = WorkspaceOutcome {
        raw: kept.clone(),
        kept,
        baselined: 0,
        stale: Vec::new(),
        scanned,
    };
    if json {
        report::out(&report::to_json(&outcome));
    } else {
        report::out(&report::render_text(&outcome));
    }
    if outcome.kept.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
