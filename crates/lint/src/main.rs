//! `cruz-lint`: the determinism auditor.
//!
//! The whole reproduction rests on one invariant: the same seed must
//! produce the same event order, and therefore byte-identical checkpoint
//! images, in every process on every machine. The compiler cannot check
//! that; this tool does. It tokenizes every workspace `.rs` file (pure
//! std, no syn/quote — the build must stay offline) and enforces:
//!
//! * `unordered-iteration` — no iteration over `HashMap`/`HashSet` in the
//!   simulation crates. `RandomState` reseeds per process, so iteration
//!   order silently diverges across runs and breaks image determinism.
//! * `wall-clock` — `Instant::now` / `SystemTime` / `thread::sleep` are
//!   banned outside the `bench` crate. Simulated time is the only clock.
//! * `ambient-entropy` — `thread_rng` / `from_entropy` / `rand::random`
//!   are banned everywhere. All randomness flows from the run's seed.
//! * `silent-unwrap` — `.unwrap()` / `.expect(` are flagged on the
//!   protocol paths (everything under `crates/core/src/` and
//!   `crates/cluster/src/`): a corrupt image must abort one operation,
//!   not panic the whole cluster.
//! * `protocol-panic` — `panic!` on those same protocol paths: the
//!   self-healing manager can only recover from failures that surface as
//!   errors, never from a process-wide panic.
//! * `unsuppressed-todo` — `todo!` / `unimplemented!` in non-test code.
//! * `god-file` — no file under `crates/*/src` may exceed 1,200 lines.
//!   Past that size a module has stopped being one layer; split it along
//!   a protocol seam (the cluster engine decomposition is the template).
//!
//! Suppress a finding with a trailing or preceding line comment:
//! `// cruz-lint: allow(<rule>)`. Known stragglers live in
//! `lint-baseline.txt` at the workspace root (`path:line:rule`, one per
//! line; `*` wildcards the line number).
//!
//! Exit status: 0 clean, 1 findings, 2 usage or I/O error.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates whose event order feeds the deterministic simulation. Iterating
/// a hash collection in any of these is a determinism bug.
const SIM_CRATES: &[&str] = &["cluster", "core", "des", "simcpu", "simnet", "simos", "zap"];

/// Directories hosting the checkpoint-restart control plane, where a
/// panic takes down the whole simulated cluster instead of one operation.
/// Every non-test `.rs` file under these prefixes is a protocol path.
const PROTOCOL_PREFIXES: &[&str] = &["crates/core/src/", "crates/cluster/src/"];

/// Line budget for one module file. A file past this size has stopped
/// being one layer of the design and resists review; the `god-file` rule
/// fails it until it is split (or grandfathered in the baseline).
const GOD_FILE_MAX_LINES: usize = 1200;

/// Methods that iterate a collection in storage order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Rule {
    UnorderedIteration,
    WallClock,
    AmbientEntropy,
    SilentUnwrap,
    ProtocolPanic,
    UnsuppressedTodo,
    GodFile,
}

impl Rule {
    fn name(self) -> &'static str {
        match self {
            Rule::UnorderedIteration => "unordered-iteration",
            Rule::WallClock => "wall-clock",
            Rule::AmbientEntropy => "ambient-entropy",
            Rule::SilentUnwrap => "silent-unwrap",
            Rule::ProtocolPanic => "protocol-panic",
            Rule::UnsuppressedTodo => "unsuppressed-todo",
            Rule::GodFile => "god-file",
        }
    }

    fn from_name(s: &str) -> Option<Rule> {
        match s {
            "unordered-iteration" => Some(Rule::UnorderedIteration),
            "wall-clock" => Some(Rule::WallClock),
            "ambient-entropy" => Some(Rule::AmbientEntropy),
            "silent-unwrap" => Some(Rule::SilentUnwrap),
            "protocol-panic" => Some(Rule::ProtocolPanic),
            "unsuppressed-todo" => Some(Rule::UnsuppressedTodo),
            "god-file" => Some(Rule::GodFile),
            _ => None,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Finding {
    /// Workspace-relative path, forward slashes.
    path: String,
    /// 1-based line number.
    line: usize,
    rule: Rule,
    message: String,
}

// ---- source preparation -----------------------------------------------------

/// Blanks comments, string literals, and char literals, preserving line
/// structure, so the rule scans see only code tokens.
fn strip_source(src: &str) -> String {
    let b = src.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(b.len());
    let mut i = 0;
    let blank = |c: u8| if c == b'\n' { b'\n' } else { b' ' };
    while i < b.len() {
        let c = b[i];
        // Line comment.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            while i < b.len() && b[i] != b'\n' {
                out.push(b' ');
                i += 1;
            }
            continue;
        }
        // Block comment (Rust block comments nest).
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let mut depth = 1;
            out.extend_from_slice(b"  ");
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Raw string (r"..", r#".."#, br#".."#).
        if (c == b'r' || c == b'b') && !prev_is_ident(&out) {
            if let Some(len) = raw_string_len(&b[i..]) {
                for k in 0..len {
                    out.push(blank(b[i + k]));
                }
                i += len;
                continue;
            }
        }
        // Ordinary (or byte) string.
        if c == b'"' {
            out.push(b' ');
            i += 1;
            while i < b.len() {
                if b[i] == b'\\' && i + 1 < b.len() {
                    out.push(b' ');
                    out.push(blank(b[i + 1]));
                    i += 2;
                } else if b[i] == b'"' {
                    out.push(b' ');
                    i += 1;
                    break;
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            if i + 1 < b.len() && b[i + 1] == b'\\' {
                out.push(b' ');
                i += 1;
                while i < b.len() && b[i] != b'\'' {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else {
                        out.push(blank(b[i]));
                        i += 1;
                    }
                }
                if i < b.len() {
                    out.push(b' ');
                    i += 1;
                }
                continue;
            }
            if i + 2 < b.len() && b[i + 2] == b'\'' && b[i + 1] != b'\'' {
                out.extend_from_slice(b"   ");
                i += 3;
                continue;
            }
            // A lifetime; keep the tick, it cannot confuse the scans.
            out.push(c);
            i += 1;
            continue;
        }
        out.push(c);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn prev_is_ident(out: &[u8]) -> bool {
    out.last()
        .is_some_and(|&c| c.is_ascii_alphanumeric() || c == b'_')
}

/// Length of the raw-string literal starting at `b[0]`, if one starts
/// there (`r`, `br`, any number of `#`s).
fn raw_string_len(b: &[u8]) -> Option<usize> {
    let mut i = 0;
    if b.get(i) == Some(&b'b') {
        i += 1;
    }
    if b.get(i) != Some(&b'r') {
        return None;
    }
    i += 1;
    let mut hashes = 0;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if b.get(i) != Some(&b'"') {
        return None;
    }
    i += 1;
    while i < b.len() {
        if b[i] == b'"'
            && b[i + 1..].len() >= hashes
            && b[i + 1..i + 1 + hashes].iter().all(|&h| h == b'#')
        {
            return Some(i + 1 + hashes);
        }
        i += 1;
    }
    Some(b.len()) // unterminated; swallow the rest
}

/// Per-line suppressions from `// cruz-lint: allow(rule, ...)` comments.
/// A suppression covers its own line and the line after it (so it can sit
/// either trailing the offending line or on its own line above).
fn suppressions(raw: &str) -> BTreeSet<(usize, Rule)> {
    const MARKER: &str = "cruz-lint: allow(";
    let mut out = BTreeSet::new();
    for (idx, line) in raw.lines().enumerate() {
        let Some(comment_at) = line.find("//") else {
            continue;
        };
        let comment = &line[comment_at..];
        let Some(open) = comment.find(MARKER) else {
            continue;
        };
        let rest = &comment[open + MARKER.len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        for name in rest[..close].split(',') {
            if let Some(rule) = Rule::from_name(name.trim()) {
                let ln = idx + 1;
                out.insert((ln, rule));
                out.insert((ln + 1, rule));
            }
        }
    }
    out
}

/// Marks the lines belonging to `#[cfg(test)]` / `#[test]` items by brace
/// matching from the attribute to the close of the item it decorates.
fn test_mask(clean: &str, whole_file_is_test: bool) -> Vec<bool> {
    let lines: Vec<&str> = clean.lines().collect();
    let mut mask = vec![whole_file_is_test; lines.len()];
    if whole_file_is_test {
        return mask;
    }
    let mut i = 0;
    while i < lines.len() {
        let l = lines[i];
        if !(l.contains("#[cfg(test)]") || l.trim_start().starts_with("#[test]")) {
            i += 1;
            continue;
        }
        // Walk forward to the first `{` of the decorated item, then to its
        // matching `}`; everything in between is test code.
        let mut depth: i64 = 0;
        let mut seen_open = false;
        let mut j = i;
        'outer: while j < lines.len() {
            for ch in lines[j].chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        seen_open = true;
                    }
                    '}' => depth -= 1,
                    // An attribute on a braceless item (e.g. `#[cfg(test)]
                    // use ...;`) ends at the semicolon.
                    ';' if !seen_open && depth == 0 => break 'outer,
                    _ => {}
                }
                if seen_open && depth == 0 {
                    break 'outer;
                }
            }
            j += 1;
        }
        let end = j.min(lines.len().saturating_sub(1));
        for m in mask.iter_mut().take(end + 1).skip(i) {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

// ---- unordered-iteration ----------------------------------------------------

/// Identifiers declared as `HashMap`/`HashSet` in this file: struct fields
/// and bindings (`x: HashMap<..>`, `let mut x = HashMap::new()`).
fn hash_idents(clean: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for line in clean.lines() {
        let b = line.as_bytes();
        for tok in ["HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(rel) = line[from..].find(tok) {
                let at = from + rel;
                from = at + tok.len();
                // Token boundary on the left.
                if at > 0 {
                    let p = b[at - 1];
                    if p.is_ascii_alphanumeric() || p == b'_' {
                        continue;
                    }
                }
                if let Some(name) = binder_before(line, at) {
                    out.insert(name);
                }
            }
        }
    }
    out
}

/// The identifier being bound when `line[at..]` starts a hash-collection
/// type or constructor: handles `name: HashMap<..>` (field, param, let
/// ascription) and `name = HashMap::new()`.
fn binder_before(line: &str, at: usize) -> Option<String> {
    let b = line.as_bytes();
    let mut i = at;
    // Look through reference sigils and `mut`: `x: &mut HashMap<..>` still
    // binds `x` to a hash collection.
    loop {
        while i > 0 && b[i - 1].is_ascii_whitespace() {
            i -= 1;
        }
        if i > 0 && b[i - 1] == b'&' {
            i -= 1;
            continue;
        }
        if i >= 3
            && &b[i - 3..i] == b"mut"
            && (i == 3 || !(b[i - 4].is_ascii_alphanumeric() || b[i - 4] == b'_'))
        {
            i -= 3;
            continue;
        }
        break;
    }
    if i == 0 {
        return None;
    }
    match b[i - 1] {
        b':' => {
            // Must be a single colon (`x: HashMap`), not a path (`::`).
            if i >= 2 && b[i - 2] == b':' {
                return None;
            }
            ident_ending_at(line, i - 1)
        }
        b'=' => {
            // Plain assignment, not `==`, `<=`, `>=`, `!=`, `=>`.
            if i >= 2 && matches!(b[i - 2], b'=' | b'<' | b'>' | b'!') {
                return None;
            }
            ident_ending_at(line, i - 1)
        }
        _ => None,
    }
}

/// The identifier whose last char sits just before byte `end` (skipping
/// whitespace): `"let mut ops "` with `end` at the tail gives `ops`.
fn ident_ending_at(line: &str, end: usize) -> Option<String> {
    let b = line.as_bytes();
    let mut i = end;
    while i > 0 && b[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    let stop = i;
    while i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        i -= 1;
    }
    if i == stop {
        return None;
    }
    let name = &line[i..stop];
    if name.as_bytes()[0].is_ascii_digit() {
        return None;
    }
    Some(name.to_string())
}

/// The receiver identifier of a `.method(` call whose dot is at `dot`:
/// `self.ops.values()` gives `ops`.
fn receiver_before(line: &str, dot: usize) -> Option<String> {
    ident_ending_at(line, dot)
}

/// Flags iteration over identifiers known to be hash collections, plus
/// `for` loops whose iterated expression is such an identifier.
fn scan_unordered_iteration(
    clean_lines: &[&str],
    idents: &BTreeSet<String>,
    emit: &mut dyn FnMut(usize, String),
) {
    for (idx, line) in clean_lines.iter().enumerate() {
        for m in ITER_METHODS {
            let pat = format!(".{m}(");
            let mut from = 0;
            while let Some(rel) = line[from..].find(&pat) {
                let dot = from + rel;
                from = dot + pat.len();
                if let Some(recv) = receiver_before(line, dot) {
                    if idents.contains(&recv) {
                        emit(
                            idx + 1,
                            format!("`{recv}` is a hash collection; `.{m}()` iterates it in nondeterministic order"),
                        );
                    }
                }
            }
        }
        // `for x in [&mut] path.to.ident {`
        if let Some(for_at) = find_token(line, "for") {
            if let Some(in_rel) = line[for_at..].find(" in ") {
                let expr_start = for_at + in_rel + 4;
                let expr_end = line[expr_start..]
                    .find('{')
                    .map(|p| expr_start + p)
                    .unwrap_or(line.len());
                let mut expr = line[expr_start..expr_end].trim();
                expr = expr.trim_start_matches('&');
                expr = expr.strip_prefix("mut ").unwrap_or(expr).trim();
                if !expr.is_empty()
                    && expr
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
                {
                    if let Some(last) = expr.rsplit('.').next() {
                        if idents.contains(last) {
                            emit(
                                idx + 1,
                                format!("`for` loop over hash collection `{expr}` visits entries in nondeterministic order"),
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Position of `tok` in `line` with identifier boundaries on both sides.
fn find_token(line: &str, tok: &str) -> Option<usize> {
    let b = line.as_bytes();
    let mut from = 0;
    while let Some(rel) = line[from..].find(tok) {
        let at = from + rel;
        from = at + tok.len();
        let left_ok = at == 0 || !(b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_');
        let right = at + tok.len();
        let right_ok = right >= b.len() || !(b[right].is_ascii_alphanumeric() || b[right] == b'_');
        if left_ok && right_ok {
            return Some(at);
        }
    }
    None
}

// ---- the file pass ----------------------------------------------------------

/// What part of the workspace a file belongss to, derived from its
/// workspace-relative path.
struct FileKind {
    /// Directory name under `crates/`, if any (`core`, `zap`, ...).
    crate_dir: Option<String>,
    /// Test or bench source — exempt from every rule.
    is_test_code: bool,
    /// Under a protocol-path prefix (`silent-unwrap` and `protocol-panic`
    /// apply).
    is_protocol: bool,
}

fn classify(rel: &str) -> FileKind {
    let crate_dir = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .map(str::to_string);
    let is_test_code = rel.split('/').any(|seg| seg == "tests" || seg == "benches");
    let is_protocol = PROTOCOL_PREFIXES.iter().any(|p| rel.starts_with(p));
    FileKind {
        crate_dir,
        is_test_code,
        is_protocol,
    }
}

fn analyze_file(rel: &str, src: &str) -> Vec<Finding> {
    let kind = classify(rel);
    if rel.starts_with("vendor/") || rel.starts_with("target/") {
        return Vec::new();
    }
    let clean = strip_source(src);
    let clean_lines: Vec<&str> = clean.lines().collect();
    let mask = test_mask(&clean, kind.is_test_code);
    let allow = suppressions(src);
    let mut findings: Vec<Finding> = Vec::new();
    let mut push = |line: usize, rule: Rule, message: String, allow: &BTreeSet<(usize, Rule)>| {
        if !allow.contains(&(line, rule)) {
            findings.push(Finding {
                path: rel.to_string(),
                line,
                rule,
                message,
            });
        }
    };

    let in_sim_crate = kind
        .crate_dir
        .as_deref()
        .is_some_and(|c| SIM_CRATES.contains(&c));
    let in_bench_crate = kind.crate_dir.as_deref() == Some("bench");

    // Whole-file size budget for crate sources. The finding sits on the
    // file's last line so the count is visible in the report, and so a
    // baseline pin goes stale (and gets revisited) when the file grows.
    if kind.crate_dir.is_some() && rel.contains("/src/") && !kind.is_test_code {
        let lines = src.lines().count();
        if lines > GOD_FILE_MAX_LINES {
            push(
                lines,
                Rule::GodFile,
                format!(
                    "{lines} lines exceeds the {GOD_FILE_MAX_LINES}-line module budget; \
                     split it along a protocol seam"
                ),
                &allow,
            );
        }
    }

    if in_sim_crate {
        let idents = hash_idents(&clean);
        let mut hits: Vec<(usize, String)> = Vec::new();
        scan_unordered_iteration(&clean_lines, &idents, &mut |line, msg| {
            hits.push((line, msg))
        });
        for (line, msg) in hits {
            if !mask.get(line - 1).copied().unwrap_or(false) {
                push(line, Rule::UnorderedIteration, msg, &allow);
            }
        }
    }

    for (idx, line) in clean_lines.iter().enumerate() {
        let ln = idx + 1;
        if mask.get(idx).copied().unwrap_or(false) {
            continue;
        }
        if !in_bench_crate {
            for pat in ["Instant::now", "SystemTime", "thread::sleep"] {
                if line.contains(pat) {
                    push(
                        ln,
                        Rule::WallClock,
                        format!("`{pat}` reads the host clock; simulated time is the only clock"),
                        &allow,
                    );
                }
            }
        }
        for pat in ["thread_rng", "from_entropy", "rand::random"] {
            if line.contains(pat) {
                push(
                    ln,
                    Rule::AmbientEntropy,
                    format!(
                        "`{pat}` draws ambient entropy; all randomness must flow from the run seed"
                    ),
                    &allow,
                );
            }
        }
        if kind.is_protocol {
            for pat in [".unwrap()", ".expect("] {
                if line.contains(pat) {
                    push(
                        ln,
                        Rule::SilentUnwrap,
                        format!(
                            "`{pat}..` on a protocol path panics the whole cluster; return a CruzError instead"
                        ),
                        &allow,
                    );
                }
            }
            if line.contains("panic!") {
                push(
                    ln,
                    Rule::ProtocolPanic,
                    "`panic!` on a protocol path kills the whole cluster; surface a CruzError so \
                     the recovery manager can heal the operation"
                        .to_string(),
                    &allow,
                );
            }
        }
        for pat in ["todo!", "unimplemented!"] {
            if line.contains(pat) {
                push(
                    ln,
                    Rule::UnsuppressedTodo,
                    format!("`{pat}` in non-test code"),
                    &allow,
                );
            }
        }
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

// ---- baseline ---------------------------------------------------------------

/// A baseline entry: `path:line:rule` (line may be `*`).
#[derive(Debug, PartialEq, Eq)]
struct BaselineEntry {
    path: String,
    line: Option<usize>,
    rule: Rule,
}

fn parse_baseline(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.rsplitn(3, ':');
        let rule_s = parts.next().unwrap_or_default().trim();
        let line_s = parts.next().unwrap_or_default().trim();
        let path = parts.next().unwrap_or_default().trim();
        let rule = Rule::from_name(rule_s)
            .ok_or_else(|| format!("baseline line {}: unknown rule `{rule_s}`", idx + 1))?;
        let line_no =
            if line_s == "*" {
                None
            } else {
                Some(line_s.parse::<usize>().map_err(|_| {
                    format!("baseline line {}: bad line number `{line_s}`", idx + 1)
                })?)
            };
        if path.is_empty() {
            return Err(format!("baseline line {}: missing path", idx + 1));
        }
        out.push(BaselineEntry {
            path: path.to_string(),
            line: line_no,
            rule,
        });
    }
    Ok(out)
}

fn baselined(f: &Finding, baseline: &[BaselineEntry]) -> bool {
    baseline
        .iter()
        .any(|b| b.path == f.path && b.rule == f.rule && b.line.is_none_or(|l| l == f.line))
}

// ---- driving ----------------------------------------------------------------

fn collect_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if matches!(name.as_ref(), "target" | ".git" | "vendor" | "node_modules") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

fn rel_to(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

const USAGE: &str = "usage: cruz-lint --workspace [--root <dir>] [--baseline <file>]
       cruz-lint <file.rs>...

Rules: unordered-iteration, wall-clock, ambient-entropy, silent-unwrap,
protocol-panic, unsuppressed-todo, god-file. Suppress one line with `// cruz-lint: allow(<rule>)`;
record stragglers in lint-baseline.txt (path:line:rule, `*` = any line).";

/// Prints to stdout, swallowing `EPIPE` so `cruz-lint ... | head` exits
/// quietly instead of panicking when the reader closes the pipe.
fn out(text: std::fmt::Arguments<'_>) {
    use std::io::Write;
    let _ = std::io::stdout().write_fmt(text);
    let _ = std::io::stdout().write_all(b"\n");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => workspace = true,
            "--root" => match it.next() {
                Some(d) => root = PathBuf::from(d),
                None => {
                    eprintln!("cruz-lint: --root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match it.next() {
                Some(f) => baseline_path = Some(PathBuf::from(f)),
                None => {
                    eprintln!("cruz-lint: --baseline needs a file\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                out(format_args!("{USAGE}"));
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("cruz-lint: unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
            file => files.push(PathBuf::from(file)),
        }
    }
    if !workspace && files.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    if workspace {
        files.extend(collect_rs_files(&root));
    }

    let baseline_file = baseline_path.unwrap_or_else(|| root.join("lint-baseline.txt"));
    let baseline = match fs::read_to_string(&baseline_file) {
        Ok(text) => match parse_baseline(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cruz-lint: {}: {e}", baseline_file.display());
                return ExitCode::from(2);
            }
        },
        Err(_) => Vec::new(), // no baseline is a clean baseline
    };

    let mut findings = 0usize;
    let mut suppressed = 0usize;
    let mut scanned = 0usize;
    for path in &files {
        let rel = rel_to(&root, path);
        let src = match fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cruz-lint: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        scanned += 1;
        for f in analyze_file(&rel, &src) {
            if baselined(&f, &baseline) {
                suppressed += 1;
                continue;
            }
            out(format_args!(
                "{}:{}: {}: {}",
                f.path,
                f.line,
                f.rule.name(),
                f.message
            ));
            findings += 1;
        }
    }
    out(format_args!(
        "cruz-lint: {findings} finding(s), {suppressed} baselined, {scanned} file(s) scanned"
    ));
    if findings > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

// ---- tests ------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(rel: &str, src: &str) -> Vec<(usize, Rule)> {
        analyze_file(rel, src)
            .into_iter()
            .map(|f| (f.line, f.rule))
            .collect()
    }

    #[test]
    fn strip_blanks_comments_and_strings() {
        let src = "let a = \"HashMap::new()\"; // HashMap comment\nlet b = 1; /* todo!()\n spans */ let c = 'x';\n";
        let clean = strip_source(src);
        assert!(!clean.contains("HashMap"));
        assert!(!clean.contains("todo!"));
        assert!(!clean.contains('\''), "char literal blanked: {clean}");
        assert_eq!(
            clean.lines().count(),
            src.lines().count(),
            "line structure preserved"
        );
    }

    #[test]
    fn strip_handles_raw_strings_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let r = r#\"Instant::now()\"#; }";
        let clean = strip_source(src);
        assert!(!clean.contains("Instant"));
        assert!(clean.contains("'a"), "lifetimes survive: {clean}");
    }

    // The acceptance criterion: a deliberately injected HashMap iteration
    // in a sim crate must be flagged.
    #[test]
    fn injected_hashmap_iteration_is_flagged() {
        let src = "use std::collections::HashMap;\n\
                   fn f() {\n\
                       let mut m: HashMap<u32, u32> = HashMap::new();\n\
                       m.insert(1, 2);\n\
                       for (k, v) in &m {\n\
                           let _ = (k, v);\n\
                       }\n\
                   }\n";
        let hits = rules_hit("crates/zap/src/injected.rs", src);
        assert!(
            hits.contains(&(5, Rule::UnorderedIteration)),
            "for-loop over HashMap must be flagged, got {hits:?}"
        );
    }

    #[test]
    fn hash_field_method_iteration_is_flagged() {
        let src = "use std::collections::HashMap;\n\
                   struct S { ops: HashMap<u64, u32> }\n\
                   impl S {\n\
                       fn busy(&self) -> bool { self.ops.values().any(|v| *v > 0) }\n\
                       fn look(&self) -> Option<&u32> { self.ops.get(&1) }\n\
                   }\n";
        let hits = rules_hit("crates/cluster/src/injected.rs", src);
        assert_eq!(
            hits,
            vec![(4, Rule::UnorderedIteration)],
            "values() flagged, plain get() is fine"
        );
    }

    #[test]
    fn hash_reference_params_are_tracked() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &mut HashMap<u32, u32>) { m.drain(); }\n";
        assert_eq!(
            rules_hit("crates/simnet/src/x.rs", src),
            vec![(2, Rule::UnorderedIteration)]
        );
    }

    #[test]
    fn btreemap_iteration_is_clean() {
        let src = "use std::collections::BTreeMap;\n\
                   fn f(m: &BTreeMap<u32, u32>) -> usize { m.values().count() }\n";
        assert!(rules_hit("crates/des/src/x.rs", src).is_empty());
    }

    #[test]
    fn hashmap_outside_sim_crates_is_not_flagged() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, u32>) -> usize { m.values().count() }\n";
        assert!(rules_hit("crates/workloads/src/x.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_banned_outside_bench() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(
            rules_hit("crates/des/src/x.rs", src),
            vec![(1, Rule::WallClock)]
        );
        assert!(rules_hit("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn ambient_entropy_banned_everywhere() {
        let src = "fn f() -> u64 { rand::random() }\n";
        assert_eq!(
            rules_hit("crates/workloads/src/x.rs", src),
            vec![(1, Rule::AmbientEntropy)]
        );
    }

    #[test]
    fn silent_unwrap_only_on_protocol_paths() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(
            rules_hit("crates/core/src/agent.rs", src),
            vec![(1, Rule::SilentUnwrap)]
        );
        // Every non-test file under the protocol prefixes is covered...
        assert_eq!(
            rules_hit("crates/core/src/proto.rs", src),
            vec![(1, Rule::SilentUnwrap)]
        );
        assert_eq!(
            rules_hit("crates/cluster/src/recovery.rs", src),
            vec![(1, Rule::SilentUnwrap)]
        );
        // ...but crates outside them are not.
        assert!(rules_hit("crates/des/src/queue.rs", src).is_empty());
    }

    #[test]
    fn panic_banned_on_protocol_paths() {
        let src = "fn f() { panic!(\"boom\") }\n";
        assert_eq!(
            rules_hit("crates/cluster/src/world.rs", src),
            vec![(1, Rule::ProtocolPanic)]
        );
        assert!(rules_hit("crates/des/src/queue.rs", src).is_empty());
        let allowed = "fn f() { panic!(\"boom\") } // cruz-lint: allow(protocol-panic)\n";
        assert!(rules_hit("crates/cluster/src/world.rs", allowed).is_empty());
        // `#[cfg(test)]` modules inside protocol files stay exempt.
        let test_mod =
            "#[cfg(test)]\nmod tests {\n    fn t() { panic!(\"x\"); None::<u32>.unwrap(); }\n}\n";
        assert!(rules_hit("crates/core/src/store.rs", test_mod).is_empty());
    }

    #[test]
    fn todo_flagged_and_suppressable() {
        let flagged = "fn f() { todo!() }\n";
        assert_eq!(
            rules_hit("crates/simos/src/x.rs", flagged),
            vec![(1, Rule::UnsuppressedTodo)]
        );
        let allowed = "// cruz-lint: allow(unsuppressed-todo)\nfn f() { todo!() }\n";
        assert!(rules_hit("crates/simos/src/x.rs", allowed).is_empty());
        let trailing = "fn f() { todo!() } // cruz-lint: allow(unsuppressed-todo)\n";
        assert!(rules_hit("crates/simos/src/x.rs", trailing).is_empty());
    }

    #[test]
    fn cfg_test_region_is_exempt() {
        let src = "fn real() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       use std::collections::HashMap;\n\
                       #[test]\n\
                       fn t() {\n\
                           let m: HashMap<u32, u32> = HashMap::new();\n\
                           for k in m.keys() { let _ = k; }\n\
                           todo!();\n\
                       }\n\
                   }\n";
        assert!(rules_hit("crates/zap/src/x.rs", src).is_empty());
    }

    #[test]
    fn tests_dir_is_exempt() {
        let src = "fn t() { let m: std::collections::HashMap<u32,u32> = Default::default(); for k in m.keys() {} }\n";
        assert!(rules_hit("crates/zap/tests/x.rs", src).is_empty());
    }

    #[test]
    fn mentions_in_comments_and_strings_are_clean() {
        let src = "// HashMap iteration would be bad: m.values()\n\
                   fn f() -> &'static str { \"Instant::now() todo!()\" }\n";
        assert!(rules_hit("crates/des/src/x.rs", src).is_empty());
    }

    #[test]
    fn god_file_flags_oversized_crate_sources() {
        let big = "// filler\n".repeat(GOD_FILE_MAX_LINES + 1);
        assert_eq!(
            rules_hit("crates/cluster/src/ops.rs", &big),
            vec![(GOD_FILE_MAX_LINES + 1, Rule::GodFile)],
            "finding line is the file's line count"
        );
        let at_budget = "// filler\n".repeat(GOD_FILE_MAX_LINES);
        assert!(
            rules_hit("crates/cluster/src/ops.rs", &at_budget).is_empty(),
            "exactly at budget is fine"
        );
    }

    #[test]
    fn god_file_only_covers_crate_src_dirs() {
        let big = "// filler\n".repeat(GOD_FILE_MAX_LINES + 1);
        assert!(rules_hit("tests/determinism.rs", &big).is_empty());
        assert!(rules_hit("crates/zap/tests/huge.rs", &big).is_empty());
        assert!(rules_hit("crates/bench/benches/huge.rs", &big).is_empty());
        assert!(rules_hit("examples/demo/src/main.rs", &big).is_empty());
    }

    #[test]
    fn god_file_is_baseline_suppressible() {
        let baseline = parse_baseline("crates/simnet/src/stack.rs:*:god-file\n").unwrap();
        let f = Finding {
            path: "crates/simnet/src/stack.rs".into(),
            line: 1343,
            rule: Rule::GodFile,
            message: String::new(),
        };
        assert!(baselined(&f, &baseline));
    }

    #[test]
    fn baseline_filters_findings() {
        let baseline = parse_baseline(
            "# stragglers\n\
             crates/des/src/x.rs:1:wall-clock\n\
             crates/des/src/y.rs:*:unsuppressed-todo\n",
        )
        .unwrap();
        let hit = Finding {
            path: "crates/des/src/x.rs".into(),
            line: 1,
            rule: Rule::WallClock,
            message: String::new(),
        };
        assert!(baselined(&hit, &baseline));
        let other_line = Finding {
            line: 2,
            ..hit.clone()
        };
        assert!(!baselined(&other_line, &baseline));
        let wild = Finding {
            path: "crates/des/src/y.rs".into(),
            line: 99,
            rule: Rule::UnsuppressedTodo,
            message: String::new(),
        };
        assert!(baselined(&wild, &baseline));
    }

    #[test]
    fn baseline_rejects_unknown_rules() {
        assert!(parse_baseline("a.rs:1:not-a-rule\n").is_err());
    }

    #[test]
    fn suppression_covers_own_and_next_line() {
        let s = suppressions("// cruz-lint: allow(wall-clock, silent-unwrap)\nx\n");
        assert!(s.contains(&(1, Rule::WallClock)));
        assert!(s.contains(&(2, Rule::WallClock)));
        assert!(s.contains(&(2, Rule::SilentUnwrap)));
        assert!(!s.contains(&(3, Rule::WallClock)));
    }

    #[test]
    fn vendor_and_target_are_skipped() {
        let src = "fn f() { let t = std::time::Instant::now(); todo!() }\n";
        assert!(analyze_file("vendor/criterion/src/lib.rs", src).is_empty());
        assert!(analyze_file("target/debug/build/x.rs", src).is_empty());
    }
}
