//! A learning Ethernet switch.

use std::collections::BTreeMap;
use std::fmt;

use crate::addr::MacAddr;
use crate::frame::EthFrame;

/// A switch port identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub usize);

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "port{}", self.0)
    }
}

/// A store-and-forward learning switch.
///
/// The switch learns source MACs per port, forwards unicast frames to the
/// learned port, and floods broadcasts and unknown destinations to every
/// other port. Pod migration moves a MAC between ports; the learning table
/// self-corrects on the first frame the migrated pod sends (and the
/// gratuitous ARP Cruz emits is exactly such a frame).
#[derive(Debug, Clone)]
pub struct Switch {
    ports: usize,
    table: BTreeMap<MacAddr, PortId>,
}

impl Switch {
    /// Creates a switch with `ports` ports.
    ///
    /// # Panics
    ///
    /// Panics if `ports == 0`.
    pub fn new(ports: usize) -> Self {
        assert!(ports > 0, "a switch needs at least one port");
        Switch {
            ports,
            table: BTreeMap::new(),
        }
    }

    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.ports
    }

    /// Processes a frame arriving on `in_port`; returns the output ports the
    /// frame is forwarded to.
    ///
    /// # Panics
    ///
    /// Panics if `in_port` is out of range.
    pub fn forward(&mut self, in_port: PortId, frame: &EthFrame) -> Vec<PortId> {
        assert!(in_port.0 < self.ports, "input port out of range");
        // Learn the source binding (moves override, handling migration).
        if !frame.src.is_broadcast() {
            self.table.insert(frame.src, in_port);
        }
        if frame.dst.is_broadcast() {
            return self.flood(in_port);
        }
        match self.table.get(&frame.dst) {
            Some(&p) if p == in_port => Vec::new(), // would hairpin; drop
            Some(&p) => vec![p],
            None => self.flood(in_port),
        }
    }

    /// The port a MAC was last learned on.
    pub fn learned_port(&self, mac: MacAddr) -> Option<PortId> {
        self.table.get(&mac).copied()
    }

    /// Clears the learning table.
    pub fn flush_table(&mut self) {
        self.table.clear();
    }

    fn flood(&self, in_port: PortId) -> Vec<PortId> {
        (0..self.ports)
            .filter(|&p| p != in_port.0)
            .map(PortId)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::IpAddr;
    use crate::arp::ArpPacket;
    use crate::frame::EthPayload;

    fn mac(i: u32) -> MacAddr {
        MacAddr::from_index(i)
    }

    fn frame(src: MacAddr, dst: MacAddr) -> EthFrame {
        EthFrame::new(
            src,
            dst,
            EthPayload::Arp(ArpPacket::request(
                src,
                IpAddr::from_octets([10, 0, 0, 1]),
                IpAddr::from_octets([10, 0, 0, 2]),
            )),
        )
    }

    #[test]
    fn floods_unknown_then_learns() {
        let mut sw = Switch::new(4);
        // Unknown destination: flood.
        let out = sw.forward(PortId(0), &frame(mac(1), mac(2)));
        assert_eq!(out, vec![PortId(1), PortId(2), PortId(3)]);
        // mac(2) answers from port 2.
        let out = sw.forward(PortId(2), &frame(mac(2), mac(1)));
        assert_eq!(out, vec![PortId(0)], "mac(1) was learned");
        // Now mac(2) is known too.
        let out = sw.forward(PortId(0), &frame(mac(1), mac(2)));
        assert_eq!(out, vec![PortId(2)]);
    }

    #[test]
    fn broadcast_floods_always() {
        let mut sw = Switch::new(3);
        let out = sw.forward(PortId(1), &frame(mac(1), MacAddr::BROADCAST));
        assert_eq!(out, vec![PortId(0), PortId(2)]);
    }

    #[test]
    fn migration_relearns_port() {
        let mut sw = Switch::new(3);
        sw.forward(PortId(0), &frame(mac(7), MacAddr::BROADCAST));
        assert_eq!(sw.learned_port(mac(7)), Some(PortId(0)));
        // Same MAC appears on port 2 (pod migrated): table updates.
        sw.forward(PortId(2), &frame(mac(7), MacAddr::BROADCAST));
        assert_eq!(sw.learned_port(mac(7)), Some(PortId(2)));
    }

    #[test]
    fn hairpin_frames_are_dropped() {
        let mut sw = Switch::new(2);
        sw.forward(PortId(0), &frame(mac(1), MacAddr::BROADCAST));
        sw.forward(PortId(0), &frame(mac(2), MacAddr::BROADCAST));
        // Destination known on the same port the frame came from.
        let out = sw.forward(PortId(0), &frame(mac(1), mac(2)));
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_ports_rejected() {
        let _ = Switch::new(0);
    }
}
