//! Address Resolution Protocol.
//!
//! Cruz's network-address migration (§4.2) relies on ARP in two ways: normal
//! resolution of pod VIF addresses, and gratuitous ARP announcements after a
//! migration to re-point an IP at a different host's MAC when the hardware
//! cannot carry the MAC along.

use std::collections::BTreeMap;
use std::fmt;

use crate::addr::{IpAddr, MacAddr};

/// ARP operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArpOp {
    /// Who-has request.
    Request,
    /// Is-at reply.
    Reply,
}

/// An ARP packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArpPacket {
    /// Operation.
    pub op: ArpOp,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Sender protocol address.
    pub sender_ip: IpAddr,
    /// Target hardware address (ignored in requests).
    pub target_mac: MacAddr,
    /// Target protocol address.
    pub target_ip: IpAddr,
}

impl ArpPacket {
    /// Builds a who-has request for `target_ip`.
    pub fn request(sender_mac: MacAddr, sender_ip: IpAddr, target_ip: IpAddr) -> Self {
        ArpPacket {
            op: ArpOp::Request,
            sender_mac,
            sender_ip,
            target_mac: MacAddr::default(),
            target_ip,
        }
    }

    /// Builds a reply to `request`.
    pub fn reply(request: &ArpPacket, sender_mac: MacAddr, sender_ip: IpAddr) -> Self {
        ArpPacket {
            op: ArpOp::Reply,
            sender_mac,
            sender_ip,
            target_mac: request.sender_mac,
            target_ip: request.sender_ip,
        }
    }

    /// Builds a gratuitous announcement binding `ip` to `mac`, used after pod
    /// migration to update every ARP cache on the subnet.
    pub fn gratuitous(mac: MacAddr, ip: IpAddr) -> Self {
        ArpPacket {
            op: ArpOp::Reply,
            sender_mac: mac,
            sender_ip: ip,
            target_mac: MacAddr::BROADCAST,
            target_ip: ip,
        }
    }

    /// Nominal wire size of an ARP frame payload.
    pub fn wire_len(&self) -> usize {
        28
    }
}

impl fmt::Display for ArpPacket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            ArpOp::Request => write!(f, "arp who-has {} tell {}", self.target_ip, self.sender_ip),
            ArpOp::Reply => write!(f, "arp {} is-at {}", self.sender_ip, self.sender_mac),
        }
    }
}

/// A host's IP-to-MAC resolution cache.
///
/// Entries do not age out (the simulated subnet is stable between explicit
/// updates); gratuitous ARP replies overwrite existing entries, which is the
/// mechanism pod migration uses.
#[derive(Debug, Clone, Default)]
pub struct ArpCache {
    entries: BTreeMap<IpAddr, MacAddr>,
}

impl ArpCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up the MAC for `ip`.
    pub fn lookup(&self, ip: IpAddr) -> Option<MacAddr> {
        self.entries.get(&ip).copied()
    }

    /// Learns (or overwrites) a binding.
    pub fn learn(&mut self, ip: IpAddr, mac: MacAddr) {
        self.entries.insert(ip, mac);
    }

    /// Removes a binding (e.g. when a VIF is torn down locally).
    pub fn forget(&mut self, ip: IpAddr) {
        self.entries.remove(&ip);
    }

    /// Processes a received ARP packet, learning the sender binding.
    pub fn observe(&mut self, pkt: &ArpPacket) {
        if !pkt.sender_ip.is_unspecified() {
            self.learn(pkt.sender_ip, pkt.sender_mac);
        }
    }

    /// Number of cached bindings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true if no bindings are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(i: u32) -> MacAddr {
        MacAddr::from_index(i)
    }

    fn ip(last: u8) -> IpAddr {
        IpAddr::from_octets([10, 0, 0, last])
    }

    #[test]
    fn request_reply_flow() {
        let req = ArpPacket::request(mac(1), ip(1), ip(2));
        assert_eq!(req.op, ArpOp::Request);
        let rep = ArpPacket::reply(&req, mac(2), ip(2));
        assert_eq!(rep.op, ArpOp::Reply);
        assert_eq!(rep.target_mac, mac(1));
        assert_eq!(rep.target_ip, ip(1));
    }

    #[test]
    fn cache_learns_from_observation() {
        let mut cache = ArpCache::new();
        assert!(cache.is_empty());
        let rep = ArpPacket::reply(&ArpPacket::request(mac(1), ip(1), ip(2)), mac(2), ip(2));
        cache.observe(&rep);
        assert_eq!(cache.lookup(ip(2)), Some(mac(2)));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn gratuitous_arp_overwrites_binding() {
        let mut cache = ArpCache::new();
        cache.learn(ip(7), mac(1));
        // Pod with IP .7 migrated to the host with MAC 9.
        let g = ArpPacket::gratuitous(mac(9), ip(7));
        cache.observe(&g);
        assert_eq!(cache.lookup(ip(7)), Some(mac(9)));
    }

    #[test]
    fn forget_removes_binding() {
        let mut cache = ArpCache::new();
        cache.learn(ip(3), mac(3));
        cache.forget(ip(3));
        assert_eq!(cache.lookup(ip(3)), None);
    }

    #[test]
    fn display_formats() {
        let req = ArpPacket::request(mac(1), ip(1), ip(2));
        assert_eq!(req.to_string(), "arp who-has 10.0.0.2 tell 10.0.0.1");
    }
}
