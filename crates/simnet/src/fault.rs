//! Control-frame fault injection: seeded drop / duplicate / reorder.
//!
//! The cluster world already supports uniform frame loss; the fault plane
//! extends that with duplication and reordering, the other two failure
//! modes a real switched fabric exhibits. Decisions are drawn from a
//! dedicated [`SimRng`] stream so arming faults never perturbs the rest of
//! a seeded run, and the same seed replays the same fates byte-for-byte.

use des::rng::SimRng;
use des::SimDuration;

/// Per-frame fault probabilities for the control plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameFaults {
    /// Probability a frame is silently dropped.
    pub drop: f64, // fault-plan parameter; cruz-lint: allow(float-in-sim)
    /// Probability a frame is delivered twice (the copy arrives later).
    pub duplicate: f64, // fault-plan parameter; cruz-lint: allow(float-in-sim)
    /// Probability a frame is delayed past its successors (reordering).
    pub reorder: f64, // fault-plan parameter; cruz-lint: allow(float-in-sim)
    /// Extra delay applied to duplicated/reordered copies.
    pub delay: SimDuration,
}

impl FrameFaults {
    /// No injected frame faults.
    pub fn none() -> Self {
        FrameFaults {
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            delay: SimDuration::from_micros(400),
        }
    }

    /// True when every probability is zero (deciding would be a no-op).
    pub fn is_none(&self) -> bool {
        self.drop <= 0.0 && self.duplicate <= 0.0 && self.reorder <= 0.0
    }

    /// Draws the fate of one frame. Exactly one of drop/duplicate/reorder
    /// can strike; probabilities are evaluated in that order against a
    /// single uniform draw, so `drop + duplicate + reorder` must be ≤ 1.
    pub fn decide(&self, rng: &mut SimRng) -> FrameFate {
        if self.is_none() {
            return FrameFate::Deliver;
        }
        let u = rng.unit_f64();
        if u < self.drop {
            FrameFate::Drop
        } else if u < self.drop + self.duplicate {
            FrameFate::Duplicate { delay: self.delay }
        } else if u < self.drop + self.duplicate + self.reorder {
            FrameFate::Reorder { delay: self.delay }
        } else {
            FrameFate::Deliver
        }
    }
}

impl Default for FrameFaults {
    fn default() -> Self {
        FrameFaults::none()
    }
}

/// What happens to one frame under fault injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFate {
    /// Delivered normally.
    Deliver,
    /// Silently discarded.
    Drop,
    /// Delivered now *and* again after `delay`.
    Duplicate {
        /// Extra delay before the duplicate copy arrives.
        delay: SimDuration,
    },
    /// Held back and delivered only after `delay` (later frames overtake).
    Reorder {
        /// Delay before the held frame is finally delivered.
        delay: SimDuration,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_consumes_entropy() {
        let faults = FrameFaults::none();
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(1);
        for _ in 0..8 {
            assert_eq!(faults.decide(&mut a), FrameFate::Deliver);
        }
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fates_are_seed_deterministic_and_cover_all_outcomes() {
        let faults = FrameFaults {
            drop: 0.2,
            duplicate: 0.2,
            reorder: 0.2,
            delay: SimDuration::from_micros(100),
        };
        let draw = |seed: u64| -> Vec<FrameFate> {
            let mut rng = SimRng::from_seed(seed);
            (0..256).map(|_| faults.decide(&mut rng)).collect()
        };
        let a = draw(9);
        assert_eq!(a, draw(9), "same seed must replay the same fates");
        assert!(a.contains(&FrameFate::Deliver));
        assert!(a.contains(&FrameFate::Drop));
        assert!(a.iter().any(|f| matches!(f, FrameFate::Duplicate { .. })));
        assert!(a.iter().any(|f| matches!(f, FrameFate::Reorder { .. })));
    }
}
