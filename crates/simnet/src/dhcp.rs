//! DHCP: dynamic address assignment keyed on the client hardware address.
//!
//! The Cruz paper's §4.2 migration story depends on one DHCP property: the
//! server identifies a client by the MAC address **in the DHCP payload**
//! (`chaddr`), not by the Ethernet source of the request. A migrated pod
//! keeps its IP lease by presenting the same (possibly *fake*) `chaddr` from
//! its new host, even though the frames now come from a different physical
//! MAC. This module implements both ends with exactly that keying.

use std::collections::BTreeMap;
use std::fmt;

use bytes::Bytes;
use des::{SimDuration, SimTime};

use crate::addr::{IpAddr, MacAddr};

/// The UDP port DHCP servers listen on.
pub const DHCP_SERVER_PORT: u16 = 67;
/// The UDP port DHCP clients listen on.
pub const DHCP_CLIENT_PORT: u16 = 68;

/// DHCP message type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DhcpOp {
    /// Client broadcast looking for servers.
    Discover,
    /// Server offer of an address.
    Offer,
    /// Client request for an offered/renewed address.
    Request,
    /// Server acknowledgement of a binding.
    Ack,
    /// Server refusal.
    Nak,
    /// Client releasing its binding.
    Release,
}

/// A DHCP message (the fields the simulation needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DhcpMessage {
    /// Message type.
    pub op: DhcpOp,
    /// Transaction id chosen by the client.
    pub xid: u32,
    /// Client hardware address *as claimed in the payload* — the identity
    /// the server keys leases on.
    pub chaddr: MacAddr,
    /// "Your address": the address being offered/assigned (server→client).
    pub yiaddr: IpAddr,
}

impl DhcpMessage {
    /// Serializes to a UDP payload (fixed 16-byte layout; real BOOTP pads
    /// to 300 bytes on the wire, which only affects link timing here).
    pub fn encode(&self) -> Bytes {
        let mut v = Vec::with_capacity(16);
        v.push(match self.op {
            DhcpOp::Discover => 1,
            DhcpOp::Offer => 2,
            DhcpOp::Request => 3,
            DhcpOp::Ack => 4,
            DhcpOp::Nak => 5,
            DhcpOp::Release => 6,
        });
        v.extend_from_slice(&self.xid.to_le_bytes());
        v.extend_from_slice(&self.chaddr.octets());
        v.extend_from_slice(&self.yiaddr.octets());
        v.push(0); // pad to 16
        Bytes::from(v)
    }

    /// Parses a UDP payload produced by [`DhcpMessage::encode`].
    pub fn decode(bytes: &[u8]) -> Option<DhcpMessage> {
        if bytes.len() < 15 {
            return None;
        }
        let op = match bytes[0] {
            1 => DhcpOp::Discover,
            2 => DhcpOp::Offer,
            3 => DhcpOp::Request,
            4 => DhcpOp::Ack,
            5 => DhcpOp::Nak,
            6 => DhcpOp::Release,
            _ => return None,
        };
        let xid = u32::from_le_bytes(bytes[1..5].try_into().ok()?);
        let chaddr = MacAddr::new(bytes[5..11].try_into().ok()?);
        let yiaddr = IpAddr::from_octets(bytes[11..15].try_into().ok()?);
        Some(DhcpMessage {
            op,
            xid,
            chaddr,
            yiaddr,
        })
    }
}

impl fmt::Display for DhcpMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dhcp {:?} xid={:#x} chaddr={} yiaddr={}",
            self.op, self.xid, self.chaddr, self.yiaddr
        )
    }
}

/// A DHCP server with a contiguous address pool.
#[derive(Debug, Clone)]
pub struct DhcpServer {
    pool_start: u32,
    pool_len: u32,
    lease_time: SimDuration,
    /// Lease table keyed by the payload `chaddr`.
    leases: BTreeMap<MacAddr, Lease>,
}

#[derive(Debug, Clone, Copy)]
struct Lease {
    ip: IpAddr,
    expires: SimTime,
}

impl DhcpServer {
    /// Creates a server handing out `pool_len` addresses starting at
    /// `pool_start`, each leased for `lease_time`.
    ///
    /// # Panics
    ///
    /// Panics if `pool_len == 0`.
    pub fn new(pool_start: IpAddr, pool_len: u32, lease_time: SimDuration) -> Self {
        assert!(pool_len > 0, "empty address pool");
        DhcpServer {
            pool_start: pool_start.to_bits(),
            pool_len,
            lease_time,
            leases: BTreeMap::new(),
        }
    }

    /// Handles a client message, returning the reply to send (broadcast on
    /// the client port), if any.
    pub fn handle(&mut self, msg: &DhcpMessage, now: SimTime) -> Option<DhcpMessage> {
        match msg.op {
            DhcpOp::Discover => {
                let ip = self.lease_for(msg.chaddr, now)?;
                Some(DhcpMessage {
                    op: DhcpOp::Offer,
                    xid: msg.xid,
                    chaddr: msg.chaddr,
                    yiaddr: ip,
                })
            }
            DhcpOp::Request => {
                let ip = self.lease_for(msg.chaddr, now)?;
                if msg.yiaddr == ip || msg.yiaddr.is_unspecified() {
                    // Commit / renew.
                    self.leases.insert(
                        msg.chaddr,
                        Lease {
                            ip,
                            expires: now + self.lease_time,
                        },
                    );
                    Some(DhcpMessage {
                        op: DhcpOp::Ack,
                        xid: msg.xid,
                        chaddr: msg.chaddr,
                        yiaddr: ip,
                    })
                } else {
                    Some(DhcpMessage {
                        op: DhcpOp::Nak,
                        xid: msg.xid,
                        chaddr: msg.chaddr,
                        yiaddr: IpAddr::UNSPECIFIED,
                    })
                }
            }
            DhcpOp::Release => {
                self.leases.remove(&msg.chaddr);
                None
            }
            _ => None,
        }
    }

    /// The lease duration handed to clients.
    pub fn lease_time(&self) -> SimDuration {
        self.lease_time
    }

    /// The address currently leased to `chaddr`, if any.
    pub fn leased_ip(&self, chaddr: MacAddr) -> Option<IpAddr> {
        self.leases.get(&chaddr).map(|l| l.ip)
    }

    /// Finds the existing lease for `chaddr` or allocates a fresh address.
    fn lease_for(&mut self, chaddr: MacAddr, now: SimTime) -> Option<IpAddr> {
        if let Some(l) = self.leases.get(&chaddr) {
            return Some(l.ip);
        }
        // Reclaim the first free (or expired) pool slot.
        let in_use: BTreeMap<u32, MacAddr> = self
            .leases
            .iter()
            .filter(|(_, l)| l.expires > now)
            .map(|(m, l)| (l.ip.to_bits(), *m))
            .collect();
        for i in 0..self.pool_len {
            let bits = self.pool_start + i;
            if !in_use.contains_key(&bits) {
                let ip = IpAddr::from_bits(bits);
                // Drop any expired lease that held this slot.
                self.leases.retain(|_, l| l.ip != ip || l.expires > now);
                self.leases.insert(
                    chaddr,
                    Lease {
                        ip,
                        expires: now + self.lease_time,
                    },
                );
                return Some(ip);
            }
        }
        None
    }
}

/// DHCP client engine state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DhcpClientState {
    /// Nothing sent yet.
    Init,
    /// DISCOVER sent, waiting for an OFFER.
    Selecting,
    /// REQUEST sent, waiting for an ACK.
    Requesting,
    /// Address bound.
    Bound,
}

/// A DHCP client state machine.
///
/// The client is configured with the `chaddr` it *claims* — for a Cruz pod
/// this is the VIF's fake MAC, preserved across migration so the lease
/// identity never changes (§4.2).
#[derive(Debug, Clone)]
pub struct DhcpClient {
    chaddr: MacAddr,
    xid: u32,
    state: DhcpClientState,
    ip: Option<IpAddr>,
    renew_at: Option<SimTime>,
    lease_time: SimDuration,
}

impl DhcpClient {
    /// Creates a client claiming `chaddr`, with `xid` seeding transaction
    /// ids.
    pub fn new(chaddr: MacAddr, xid: u32) -> Self {
        DhcpClient {
            chaddr,
            xid,
            state: DhcpClientState::Init,
            ip: None,
            renew_at: None,
            lease_time: SimDuration::ZERO,
        }
    }

    /// Current state.
    pub fn state(&self) -> DhcpClientState {
        self.state
    }

    /// The bound address, once in [`DhcpClientState::Bound`].
    pub fn ip(&self) -> Option<IpAddr> {
        self.ip
    }

    /// The claimed client hardware address.
    pub fn chaddr(&self) -> MacAddr {
        self.chaddr
    }

    /// Starts (or restarts) acquisition, returning the DISCOVER to broadcast.
    pub fn start(&mut self) -> DhcpMessage {
        self.state = DhcpClientState::Selecting;
        self.xid = self.xid.wrapping_add(1);
        DhcpMessage {
            op: DhcpOp::Discover,
            xid: self.xid,
            chaddr: self.chaddr,
            yiaddr: IpAddr::UNSPECIFIED,
        }
    }

    /// Handles a server message, optionally returning a message to send.
    pub fn on_message(
        &mut self,
        msg: &DhcpMessage,
        now: SimTime,
        lease_time: SimDuration,
    ) -> Option<DhcpMessage> {
        if msg.chaddr != self.chaddr || msg.xid != self.xid {
            return None;
        }
        match (self.state, msg.op) {
            (DhcpClientState::Selecting, DhcpOp::Offer) => {
                self.state = DhcpClientState::Requesting;
                Some(DhcpMessage {
                    op: DhcpOp::Request,
                    xid: self.xid,
                    chaddr: self.chaddr,
                    yiaddr: msg.yiaddr,
                })
            }
            (DhcpClientState::Requesting, DhcpOp::Ack) => {
                self.state = DhcpClientState::Bound;
                self.ip = Some(msg.yiaddr);
                self.lease_time = lease_time;
                self.renew_at = Some(now + lease_time / 2);
                None
            }
            (DhcpClientState::Requesting, DhcpOp::Nak) => {
                self.state = DhcpClientState::Init;
                self.ip = None;
                None
            }
            _ => None,
        }
    }

    /// When the client should renew, if bound.
    pub fn renew_deadline(&self) -> Option<SimTime> {
        self.renew_at
    }

    /// Emits the renewal REQUEST once `now` passes the renew deadline.
    pub fn on_timer(&mut self, now: SimTime) -> Option<DhcpMessage> {
        let deadline = self.renew_at?;
        if now < deadline || self.state != DhcpClientState::Bound {
            return None;
        }
        self.xid = self.xid.wrapping_add(1);
        self.state = DhcpClientState::Requesting;
        self.renew_at = None;
        Some(DhcpMessage {
            op: DhcpOp::Request,
            xid: self.xid,
            chaddr: self.chaddr,
            yiaddr: self.ip.unwrap_or(IpAddr::UNSPECIFIED),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: SimTime = SimTime::ZERO;

    fn server() -> DhcpServer {
        DhcpServer::new(
            IpAddr::from_octets([10, 0, 0, 100]),
            10,
            SimDuration::from_secs(3600),
        )
    }

    fn acquire(client: &mut DhcpClient, server: &mut DhcpServer, now: SimTime) -> IpAddr {
        let discover = client.start();
        let offer = server.handle(&discover, now).expect("offer");
        let request = client
            .on_message(&offer, now, server.lease_time())
            .expect("request");
        let ack = server.handle(&request, now).expect("ack");
        assert_eq!(ack.op, DhcpOp::Ack);
        let none = client.on_message(&ack, now, server.lease_time());
        assert!(none.is_none());
        client.ip().expect("bound")
    }

    #[test]
    fn full_acquisition_flow() {
        let mut s = server();
        let mut c = DhcpClient::new(MacAddr::from_index(1), 7);
        let ip = acquire(&mut c, &mut s, T0);
        assert_eq!(ip, IpAddr::from_octets([10, 0, 0, 100]));
        assert_eq!(c.state(), DhcpClientState::Bound);
    }

    #[test]
    fn same_chaddr_keeps_address_across_restart() {
        // The §4.2 property: identity is the payload chaddr, so a client
        // re-acquiring from a *different host* gets the same address.
        let mut s = server();
        let mut c1 = DhcpClient::new(MacAddr::from_index(42), 1);
        let ip1 = acquire(&mut c1, &mut s, T0);
        // Fresh client object (pod restarted elsewhere), same fake chaddr.
        let mut c2 = DhcpClient::new(MacAddr::from_index(42), 999);
        let ip2 = acquire(&mut c2, &mut s, T0 + SimDuration::from_secs(10));
        assert_eq!(ip1, ip2);
    }

    #[test]
    fn different_chaddr_gets_different_address() {
        let mut s = server();
        let mut c1 = DhcpClient::new(MacAddr::from_index(1), 1);
        let mut c2 = DhcpClient::new(MacAddr::from_index(2), 1);
        let ip1 = acquire(&mut c1, &mut s, T0);
        let ip2 = acquire(&mut c2, &mut s, T0);
        assert_ne!(ip1, ip2, "losing the chaddr loses the address");
    }

    #[test]
    fn renewal_keeps_binding() {
        let mut s = server();
        let mut c = DhcpClient::new(MacAddr::from_index(5), 3);
        let ip = acquire(&mut c, &mut s, T0);
        let renew_at = c.renew_deadline().unwrap();
        let req = c.on_timer(renew_at).expect("renew request");
        assert_eq!(req.op, DhcpOp::Request);
        let ack = s.handle(&req, renew_at).expect("ack");
        c.on_message(&ack, renew_at, s.lease_time());
        assert_eq!(c.ip(), Some(ip));
        assert_eq!(c.state(), DhcpClientState::Bound);
    }

    #[test]
    fn pool_exhaustion_yields_no_offer() {
        let mut s = DhcpServer::new(
            IpAddr::from_octets([10, 0, 0, 100]),
            1,
            SimDuration::from_secs(3600),
        );
        let mut c1 = DhcpClient::new(MacAddr::from_index(1), 1);
        let _ = acquire(&mut c1, &mut s, T0);
        let mut c2 = DhcpClient::new(MacAddr::from_index(2), 1);
        let discover = c2.start();
        assert!(s.handle(&discover, T0).is_none());
    }

    #[test]
    fn expired_lease_slot_is_reclaimed() {
        let mut s = DhcpServer::new(
            IpAddr::from_octets([10, 0, 0, 100]),
            1,
            SimDuration::from_secs(10),
        );
        let mut c1 = DhcpClient::new(MacAddr::from_index(1), 1);
        let ip1 = acquire(&mut c1, &mut s, T0);
        // Lease expires; a new client can take the slot.
        let later = T0 + SimDuration::from_secs(100);
        let mut c2 = DhcpClient::new(MacAddr::from_index(2), 1);
        let ip2 = acquire(&mut c2, &mut s, later);
        assert_eq!(ip1, ip2);
    }

    #[test]
    fn message_codec_round_trips() {
        let msg = DhcpMessage {
            op: DhcpOp::Offer,
            xid: 0xdeadbeef,
            chaddr: MacAddr::from_index(9),
            yiaddr: IpAddr::from_octets([10, 0, 0, 105]),
        };
        let bytes = msg.encode();
        assert_eq!(DhcpMessage::decode(&bytes), Some(msg));
        assert_eq!(DhcpMessage::decode(&bytes[..3]), None);
        let mut bad = bytes.to_vec();
        bad[0] = 0xff;
        assert_eq!(DhcpMessage::decode(&bad), None);
    }

    #[test]
    fn stray_messages_ignored() {
        let mut c = DhcpClient::new(MacAddr::from_index(1), 1);
        let _ = c.start();
        // Wrong chaddr.
        let msg = DhcpMessage {
            op: DhcpOp::Offer,
            xid: 2,
            chaddr: MacAddr::from_index(99),
            yiaddr: IpAddr::from_octets([10, 0, 0, 100]),
        };
        assert!(c.on_message(&msg, T0, SimDuration::from_secs(1)).is_none());
        assert_eq!(c.state(), DhcpClientState::Selecting);
    }
}
