//! UDP datagrams (used by DHCP and the control plane).

use std::fmt;

use bytes::Bytes;

/// Fixed UDP/IPv4 header overhead (IPv4 20 + UDP 8 bytes).
pub const UDP_IP_HEADER_LEN: usize = 28;

/// A UDP datagram carried inside an IPv4 packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload bytes.
    pub payload: Bytes,
}

impl UdpDatagram {
    /// Creates a datagram.
    pub fn new(src_port: u16, dst_port: u16, payload: Bytes) -> Self {
        UdpDatagram {
            src_port,
            dst_port,
            payload,
        }
    }

    /// Bytes this datagram occupies on the wire (headers included).
    pub fn wire_len(&self) -> usize {
        UDP_IP_HEADER_LEN + self.payload.len()
    }
}

impl fmt::Display for UdpDatagram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "udp {} -> {} len={}",
            self.src_port,
            self.dst_port,
            self.payload.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_len_includes_headers() {
        let d = UdpDatagram::new(68, 67, Bytes::from_static(b"dhcp"));
        assert_eq!(d.wire_len(), 32);
        assert_eq!(d.to_string(), "udp 68 -> 67 len=4");
    }
}
