//! 32-bit TCP sequence-number arithmetic.
//!
//! Sequence numbers wrap modulo 2³²; comparisons are defined on the signed
//! difference, exactly as in RFC 793 implementations.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A TCP sequence number.
///
/// # Examples
///
/// ```
/// use simnet::tcp::seq::SeqNum;
///
/// let a = SeqNum::new(u32::MAX);
/// let b = a + 10; // wraps
/// assert!(a < b);
/// assert_eq!(b - a, 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SeqNum(u32);

impl SeqNum {
    /// Creates a sequence number from its raw value.
    pub const fn new(v: u32) -> Self {
        SeqNum(v)
    }

    /// Returns the raw 32-bit value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Signed distance `self - other` accounting for wraparound.
    pub fn diff(self, other: SeqNum) -> i32 {
        self.0.wrapping_sub(other.0) as i32
    }

    /// Returns true if `self` lies in the half-open window `[start, end)`,
    /// honouring wraparound.
    pub fn in_window(self, start: SeqNum, end: SeqNum) -> bool {
        let len = end.0.wrapping_sub(start.0);
        let off = self.0.wrapping_sub(start.0);
        off < len
    }
}

impl PartialOrd for SeqNum {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SeqNum {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.diff(*other).cmp(&0)
    }
}

impl Add<u32> for SeqNum {
    type Output = SeqNum;
    fn add(self, rhs: u32) -> SeqNum {
        SeqNum(self.0.wrapping_add(rhs))
    }
}

impl AddAssign<u32> for SeqNum {
    fn add_assign(&mut self, rhs: u32) {
        self.0 = self.0.wrapping_add(rhs);
    }
}

impl Sub<SeqNum> for SeqNum {
    type Output = u32;
    fn sub(self, rhs: SeqNum) -> u32 {
        self.0.wrapping_sub(rhs.0)
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_handles_wrap() {
        let a = SeqNum::new(u32::MAX - 1);
        let b = a + 4;
        assert!(a < b);
        assert!(b > a);
        assert_eq!(b.raw(), 2);
    }

    #[test]
    fn diff_is_signed() {
        let a = SeqNum::new(100);
        assert_eq!((a + 5).diff(a), 5);
        assert_eq!(a.diff(a + 5), -5);
    }

    #[test]
    fn window_membership_wraps() {
        let start = SeqNum::new(u32::MAX - 2);
        let end = start + 10;
        assert!(start.in_window(start, end));
        assert!((start + 9).in_window(start, end));
        assert!(!(start + 10).in_window(start, end));
        assert!(!SeqNum::new(1000).in_window(start, end));
    }

    #[test]
    fn empty_window_contains_nothing() {
        let s = SeqNum::new(7);
        assert!(!s.in_window(s, s));
    }
}
