//! TCP send and receive buffers.
//!
//! The send buffer keeps the packet boundaries of transmitted-but-unacked
//! data, which the checkpoint mechanism must preserve across restore (the
//! paper's §4.1: "ACK sequence numbers correspond to packet boundaries").

use std::collections::BTreeMap;
use std::collections::VecDeque;

use bytes::Bytes;
use des::SimTime;

use crate::tcp::seq::SeqNum;

/// One transmitted, not-yet-acknowledged packet.
#[derive(Debug, Clone)]
pub struct SentSegment {
    /// Sequence number of the first byte.
    pub seq: SeqNum,
    /// Payload.
    pub data: Bytes,
    /// When the original transmission happened; `None` once retransmitted
    /// (Karn's rule: retransmitted segments yield no RTT samples).
    pub sent_at: Option<SimTime>,
}

/// Result of processing an acknowledgement in the send buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AckResult {
    /// Number of payload bytes newly acknowledged.
    pub acked_bytes: u32,
    /// RTT sample from the newest fully acked, never-retransmitted segment.
    pub rtt_sample_from: Option<SimTime>,
}

/// The sender-side byte queue: unacknowledged in-flight packets plus bytes
/// accepted from the application but not yet packetized.
#[derive(Debug, Clone, Default)]
pub struct SendBuffer {
    inflight: VecDeque<SentSegment>,
    unsent: VecDeque<u8>,
    capacity: usize,
}

impl SendBuffer {
    /// Creates a buffer that accepts at most `capacity` bytes in total
    /// (in-flight plus unsent).
    pub fn new(capacity: usize) -> Self {
        SendBuffer {
            inflight: VecDeque::new(),
            unsent: VecDeque::new(),
            capacity,
        }
    }

    /// Total buffered bytes (in-flight plus unsent).
    pub fn len(&self) -> usize {
        self.inflight_len() + self.unsent.len()
    }

    /// Returns true if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes transmitted but not yet acknowledged.
    pub fn inflight_len(&self) -> usize {
        self.inflight.iter().map(|s| s.data.len()).sum()
    }

    /// Bytes accepted from the application but not yet transmitted.
    pub fn unsent_len(&self) -> usize {
        self.unsent.len()
    }

    /// Free space for more application data.
    pub fn free(&self) -> usize {
        self.capacity.saturating_sub(self.len())
    }

    /// Accepts up to `free()` bytes from the application, returning how many
    /// were taken.
    pub fn push(&mut self, data: &[u8]) -> usize {
        let take = data.len().min(self.free());
        self.unsent.extend(&data[..take]);
        take
    }

    /// Removes up to `max` unsent bytes for transmission as one packet.
    /// Returns `None` if nothing is unsent or `max == 0`.
    pub fn take_packet(&mut self, max: usize) -> Option<Bytes> {
        if self.unsent.is_empty() || max == 0 {
            return None;
        }
        let n = self.unsent.len().min(max);
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.unsent.pop_front().expect("length checked"));
        }
        Some(Bytes::from(v))
    }

    /// Records a packet as transmitted (in flight) at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `seq` does not directly follow the previous in-flight
    /// packet — packets must be recorded in sequence order.
    pub fn record_sent(&mut self, seq: SeqNum, data: Bytes, now: SimTime) {
        if let Some(last) = self.inflight.back() {
            assert_eq!(
                last.seq + last.data.len() as u32,
                seq,
                "in-flight packets must be contiguous"
            );
        }
        self.inflight.push_back(SentSegment {
            seq,
            data,
            sent_at: Some(now),
        });
    }

    /// Processes a cumulative acknowledgement up to `ack`: drops fully acked
    /// packets and trims a partially acked head packet.
    pub fn ack_to(&mut self, ack: SeqNum) -> AckResult {
        let mut res = AckResult::default();
        while let Some(head) = self.inflight.front_mut() {
            let end = head.seq + head.data.len() as u32;
            if end <= ack {
                res.acked_bytes += head.data.len() as u32;
                if let Some(at) = head.sent_at {
                    res.rtt_sample_from = Some(at);
                }
                self.inflight.pop_front();
            } else if head.seq < ack {
                // Partial ack of the head packet.
                let n = ack - head.seq;
                res.acked_bytes += n;
                let rest = head.data.slice(n as usize..);
                head.data = rest;
                head.seq = ack;
                head.sent_at = None; // boundary changed; no RTT sample
                break;
            } else {
                break;
            }
        }
        res
    }

    /// Returns the earliest unacknowledged packet for retransmission and
    /// marks it retransmitted (suppressing its RTT sample).
    pub fn retransmit_head(&mut self) -> Option<(SeqNum, Bytes)> {
        let head = self.inflight.front_mut()?;
        head.sent_at = None;
        Some((head.seq, head.data.clone()))
    }

    /// The in-flight packets in order, for checkpointing with their packet
    /// boundaries preserved.
    pub fn inflight_packets(&self) -> impl Iterator<Item = &SentSegment> {
        self.inflight.iter()
    }

    /// The unsent byte queue, for checkpointing.
    pub fn unsent_bytes(&self) -> Vec<u8> {
        self.unsent.iter().copied().collect()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// The receiver-side reassembly queue and in-order byte stream.
#[derive(Debug, Clone, Default)]
pub struct RecvBuffer {
    /// Contiguous, undelivered stream data (ends at `rcv_nxt`).
    ordered: VecDeque<u8>,
    /// Out-of-order segments ahead of `rcv_nxt`, keyed by offset from
    /// `rcv_nxt` at insertion time (re-keyed as the stream advances).
    ooo: BTreeMap<u32, Bytes>,
    capacity: usize,
}

impl RecvBuffer {
    /// Creates a buffer advertising at most `capacity` bytes of window.
    pub fn new(capacity: usize) -> Self {
        RecvBuffer {
            ordered: VecDeque::new(),
            ooo: BTreeMap::new(),
            capacity,
        }
    }

    /// Bytes ready for the application.
    pub fn len(&self) -> usize {
        self.ordered.len()
    }

    /// Returns true if no in-order data is available.
    pub fn is_empty(&self) -> bool {
        self.ordered.is_empty()
    }

    /// The receive window to advertise.
    pub fn window(&self) -> u32 {
        let used = self.ordered.len() + self.ooo.values().map(|b| b.len()).sum::<usize>();
        self.capacity.saturating_sub(used) as u32
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts segment data whose first byte has sequence `seq`, given the
    /// current `rcv_nxt`. Returns the number of sequence positions `rcv_nxt`
    /// advances (in-order bytes made available).
    ///
    /// Data at or beyond `rcv_nxt + window-capacity` is dropped; duplicates
    /// and overlaps are trimmed.
    pub fn insert(&mut self, seq: SeqNum, data: &Bytes, rcv_nxt: SeqNum) -> u32 {
        if data.is_empty() {
            return 0;
        }
        let off = seq.diff(rcv_nxt);
        // Entirely old data: duplicate, ignore.
        if off < 0 && (-off) as usize >= data.len() {
            return 0;
        }
        // Trim the already-received prefix.
        let (start_off, data) = if off < 0 {
            (0u32, data.slice((-off) as usize..))
        } else {
            (off as u32, data.clone())
        };
        // Respect the advertised window: drop bytes beyond the free space
        // (accounting for data already buffered, in order or not).
        let room = self.window();
        if start_off >= room {
            return 0;
        }
        let data = if start_off as usize + data.len() > room as usize {
            data.slice(..(room - start_off) as usize)
        } else {
            data
        };
        if data.is_empty() {
            return 0;
        }
        // Stash into the out-of-order map (in-order data is offset 0).
        insert_trimmed(&mut self.ooo, start_off, data);
        // Pull contiguous data at offset 0 into the ordered stream.
        let mut advanced = 0u32;
        while let Some((&off, _)) = self.ooo.first_key_value() {
            if off != advanced {
                break;
            }
            let (_, seg) = self.ooo.pop_first().expect("checked non-empty");
            advanced += seg.len() as u32;
            self.ordered.extend(seg.iter());
        }
        // Re-key remaining out-of-order segments relative to the new rcv_nxt.
        if advanced > 0 && !self.ooo.is_empty() {
            let old = std::mem::take(&mut self.ooo);
            for (off, seg) in old {
                debug_assert!(off >= advanced);
                self.ooo.insert(off - advanced, seg);
            }
        }
        advanced
    }

    /// Reads up to `max` in-order bytes, removing them from the buffer.
    pub fn read(&mut self, max: usize) -> Vec<u8> {
        let n = self.ordered.len().min(max);
        self.ordered.drain(..n).collect()
    }

    /// Returns all in-order bytes without removing them (the `MSG_PEEK`
    /// analogue used at checkpoint).
    pub fn peek_all(&self) -> Vec<u8> {
        self.ordered.iter().copied().collect()
    }
}

/// Inserts `data` at `off` into the reassembly map, trimming overlap with
/// existing segments (existing data wins — it is identical stream data).
fn insert_trimmed(map: &mut BTreeMap<u32, Bytes>, off: u32, data: Bytes) {
    let mut off = off;
    let mut data = data;
    // Trim against the predecessor.
    if let Some((&pre_off, pre)) = map.range(..=off).next_back() {
        let pre_end = pre_off + pre.len() as u32;
        if pre_end > off {
            let overlap = (pre_end - off) as usize;
            if overlap >= data.len() {
                return;
            }
            data = data.slice(overlap..);
            off = pre_end;
        }
    }
    // Trim against successors.
    while !data.is_empty() {
        let next = map.range(off..).next().map(|(&o, b)| (o, b.len() as u32));
        match next {
            Some((n_off, n_len)) => {
                let end = off + data.len() as u32;
                if n_off >= end {
                    map.insert(off, data);
                    return;
                }
                if n_off > off {
                    map.insert(off, data.slice(..(n_off - off) as usize));
                }
                let n_end = n_off + n_len;
                if n_end >= end {
                    return;
                }
                data = data.slice((n_end - off) as usize..);
                off = n_end;
            }
            None => {
                map.insert(off, data);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }

    #[test]
    fn send_buffer_respects_capacity() {
        let mut sb = SendBuffer::new(8);
        assert_eq!(sb.push(b"0123456789".as_ref()), 8);
        assert_eq!(sb.push(b"x".as_ref()), 0);
        assert_eq!(sb.unsent_len(), 8);
    }

    #[test]
    fn send_packetize_and_ack() {
        let mut sb = SendBuffer::new(100);
        sb.push(b"hello world");
        let now = SimTime::ZERO;
        let p1 = sb.take_packet(5).unwrap();
        assert_eq!(&p1[..], b"hello");
        sb.record_sent(SeqNum::new(0), p1, now);
        let p2 = sb.take_packet(100).unwrap();
        assert_eq!(&p2[..], b" world");
        sb.record_sent(SeqNum::new(5), p2, now);
        assert_eq!(sb.inflight_len(), 11);

        let r = sb.ack_to(SeqNum::new(5));
        assert_eq!(r.acked_bytes, 5);
        assert_eq!(r.rtt_sample_from, Some(now));
        assert_eq!(sb.inflight_len(), 6);

        // Partial ack trims the head.
        let r = sb.ack_to(SeqNum::new(8));
        assert_eq!(r.acked_bytes, 3);
        assert_eq!(r.rtt_sample_from, None);
        assert_eq!(sb.inflight_len(), 3);
        let (seq, data) = sb.retransmit_head().unwrap();
        assert_eq!(seq, SeqNum::new(8));
        assert_eq!(&data[..], b"rld");
    }

    #[test]
    fn retransmit_suppresses_rtt_sample() {
        let mut sb = SendBuffer::new(100);
        sb.push(b"abc");
        let p = sb.take_packet(10).unwrap();
        sb.record_sent(SeqNum::new(0), p, SimTime::from_nanos(5));
        let _ = sb.retransmit_head().unwrap();
        let r = sb.ack_to(SeqNum::new(3));
        assert_eq!(r.acked_bytes, 3);
        assert_eq!(r.rtt_sample_from, None);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn record_sent_rejects_gaps() {
        let mut sb = SendBuffer::new(100);
        sb.push(b"abcdef");
        let p = sb.take_packet(3).unwrap();
        sb.record_sent(SeqNum::new(0), p, SimTime::ZERO);
        let p = sb.take_packet(3).unwrap();
        sb.record_sent(SeqNum::new(7), p, SimTime::ZERO); // gap!
    }

    #[test]
    fn recv_in_order_delivery() {
        let mut rb = RecvBuffer::new(100);
        let nxt = SeqNum::new(1000);
        assert_eq!(rb.insert(nxt, &b(b"abc"), nxt), 3);
        assert_eq!(rb.read(10), b"abc");
        assert_eq!(rb.read(10), b"");
    }

    #[test]
    fn recv_reorders_and_dedups() {
        let mut rb = RecvBuffer::new(100);
        let nxt = SeqNum::new(0);
        // Arrives out of order: [3..6) then [0..3)
        assert_eq!(rb.insert(SeqNum::new(3), &b(b"def"), nxt), 0);
        assert!(rb.is_empty());
        assert_eq!(rb.insert(SeqNum::new(0), &b(b"abc"), nxt), 6);
        assert_eq!(rb.read(10), b"abcdef");
        // Duplicate of old data ignored.
        assert_eq!(rb.insert(SeqNum::new(0), &b(b"abc"), SeqNum::new(6)), 0);
    }

    #[test]
    fn recv_trims_partial_duplicates() {
        let mut rb = RecvBuffer::new(100);
        let nxt = SeqNum::new(0);
        assert_eq!(rb.insert(SeqNum::new(0), &b(b"abcd"), nxt), 4);
        // Overlapping retransmission [2..8) — first 2 bytes already received.
        assert_eq!(rb.insert(SeqNum::new(2), &b(b"cdefgh"), SeqNum::new(4)), 4);
        assert_eq!(rb.read(10), b"abcdefgh");
    }

    #[test]
    fn recv_window_shrinks_and_caps() {
        let mut rb = RecvBuffer::new(8);
        let nxt = SeqNum::new(0);
        assert_eq!(rb.window(), 8);
        rb.insert(SeqNum::new(0), &b(b"abcd"), nxt);
        assert_eq!(rb.window(), 4);
        // Beyond capacity gets truncated.
        assert_eq!(
            rb.insert(SeqNum::new(4), &b(b"efghIJKL"), SeqNum::new(4)),
            4
        );
        assert_eq!(rb.window(), 0);
        assert_eq!(rb.read(100), b"abcdefgh");
        assert_eq!(rb.window(), 8);
    }

    #[test]
    fn recv_peek_is_nondestructive() {
        let mut rb = RecvBuffer::new(16);
        rb.insert(SeqNum::new(0), &b(b"xyz"), SeqNum::new(0));
        assert_eq!(rb.peek_all(), b"xyz");
        assert_eq!(rb.len(), 3);
        assert_eq!(rb.read(3), b"xyz");
    }

    #[test]
    fn overlapping_ooo_segments_merge() {
        let mut rb = RecvBuffer::new(100);
        let nxt = SeqNum::new(0);
        rb.insert(SeqNum::new(4), &b(b"efg"), nxt);
        rb.insert(SeqNum::new(2), &b(b"cdef"), nxt);
        rb.insert(SeqNum::new(8), &b(b"ij"), nxt);
        assert_eq!(rb.insert(SeqNum::new(0), &b(b"abcdefghij"), nxt), 10);
        assert_eq!(rb.read(100), b"abcdefghij");
    }
}
