//! The TCP connection state machine (transmission control block).
//!
//! The TCB is a pure, time-explicit state machine: segments and timer
//! expirations go in, segments to transmit come out. It implements the
//! pieces of TCP the Cruz paper's correctness argument (§5.1) relies on —
//! cumulative acknowledgements, sender-side buffering of unacked data with
//! stable packet boundaries, retransmission with exponential backoff — plus
//! the connection-management machinery (handshake, FIN teardown, RST,
//! TIME-WAIT) and the sender-side features checkpoint/restore must preserve
//! (Nagle, `TCP_CORK`).

use bytes::Bytes;
use des::{SimDuration, SimTime};

use crate::addr::SockAddr;
use crate::tcp::buffer::{RecvBuffer, SendBuffer};
use crate::tcp::rto::RtoEstimator;
use crate::tcp::segment::{TcpFlags, TcpSegment};
use crate::tcp::seq::SeqNum;

/// TCP connection states (RFC 793), less LISTEN which is handled by the
/// socket table rather than a TCB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TcpState {
    /// SYN sent, awaiting SYN-ACK.
    SynSent,
    /// SYN received, SYN-ACK sent, awaiting ACK.
    SynRcvd,
    /// Data transfer.
    Established,
    /// We closed first; FIN sent, not yet acknowledged.
    FinWait1,
    /// Our FIN acknowledged; awaiting the peer's FIN.
    FinWait2,
    /// Peer closed first; we may still send.
    CloseWait,
    /// Both sides closed simultaneously; awaiting ACK of our FIN.
    Closing,
    /// We closed after the peer; FIN sent, awaiting its ACK.
    LastAck,
    /// Connection done; lingering to absorb stray segments.
    TimeWait,
    /// Fully closed (or aborted).
    Closed,
}

impl TcpState {
    /// True for states in which the peer may still legally send us data.
    pub fn can_receive(self) -> bool {
        matches!(
            self,
            TcpState::Established | TcpState::FinWait1 | TcpState::FinWait2
        )
    }

    /// True for states in which the application may submit data to send.
    pub fn can_send(self) -> bool {
        matches!(self, TcpState::Established | TcpState::CloseWait)
    }

    /// True once the peer's FIN has been consumed (stream EOF reached).
    pub fn peer_closed(self) -> bool {
        matches!(
            self,
            TcpState::CloseWait
                | TcpState::Closing
                | TcpState::LastAck
                | TcpState::TimeWait
                | TcpState::Closed
        )
    }
}

/// Static configuration of a connection.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Maximum segment size (payload bytes per packet).
    pub mss: usize,
    /// Send buffer capacity in bytes.
    pub send_buf_capacity: usize,
    /// Receive buffer capacity in bytes (advertised window ceiling).
    pub recv_buf_capacity: usize,
    /// RTO before the first RTT sample.
    pub initial_rto: SimDuration,
    /// Lower bound on the RTO.
    pub min_rto: SimDuration,
    /// Upper bound on the RTO.
    pub max_rto: SimDuration,
    /// TIME-WAIT linger duration.
    pub time_wait: SimDuration,
    /// Retransmissions of the same segment before the connection aborts.
    pub max_retries: u32,
    /// Duplicate ACK threshold for fast retransmit.
    pub dup_ack_threshold: u32,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1460,
            send_buf_capacity: 64 * 1024,
            recv_buf_capacity: 64 * 1024,
            initial_rto: SimDuration::from_secs(1),
            min_rto: SimDuration::from_millis(200),
            max_rto: SimDuration::from_secs(60),
            time_wait: SimDuration::from_secs(60),
            max_retries: 15,
            dup_ack_threshold: 3,
        }
    }
}

/// Checkpointed state of one live connection, in the form the paper's §4.1
/// saves it: the TCB sequence numbers are rewritten so that the saved image
/// presents an **empty send buffer whose contents have "not yet been issued
/// by the application"** (`snd_nxt` rolled back to `snd_una`) and an **empty
/// receive buffer whose contents have been "successfully delivered"**
/// (`rcv_nxt` kept, bytes exported separately).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSnapshot {
    /// Local endpoint.
    pub local: SockAddr,
    /// Remote endpoint.
    pub remote: SockAddr,
    /// Connection state at checkpoint (a data-transfer state).
    pub state: TcpState,
    /// The rewritten send-side sequence number (`snd_una` at checkpoint);
    /// restore sets both `snd_una` and `snd_nxt` to this.
    pub snd_una: SeqNum,
    /// Next expected receive sequence number.
    pub rcv_nxt: SeqNum,
    /// Peer's advertised window at checkpoint.
    pub peer_window: u32,
    /// `TCP_NODELAY` option.
    pub nodelay: bool,
    /// `TCP_CORK` option.
    pub cork: bool,
    /// Unacknowledged in-flight data, one entry per packet (boundaries are
    /// preserved across restore by replaying one `send` per entry).
    pub inflight: Vec<Vec<u8>>,
    /// Buffered-but-untransmitted send data (no packet boundaries yet).
    pub unsent: Vec<u8>,
    /// Received, undelivered stream data (drained into the restore-side
    /// alternate buffer).
    pub recv_stream: Vec<u8>,
}

impl TcpSnapshot {
    /// Total bytes of send-side data carried by this snapshot.
    pub fn send_bytes(&self) -> usize {
        self.inflight.iter().map(Vec::len).sum::<usize>() + self.unsent.len()
    }
}

/// A transmission control block: one live TCP connection endpoint.
#[derive(Debug, Clone)]
pub struct Tcb {
    cfg: TcpConfig,
    state: TcpState,
    local: SockAddr,
    remote: SockAddr,

    iss: SeqNum,
    snd_una: SeqNum,
    snd_nxt: SeqNum,
    rcv_nxt: SeqNum,
    peer_window: u32,

    send_buf: SendBuffer,
    recv_buf: RecvBuffer,
    rto: RtoEstimator,

    rtx_deadline: Option<SimTime>,
    time_wait_deadline: Option<SimTime>,
    retries: u32,
    dup_acks: u32,

    nodelay: bool,
    cork: bool,

    /// Application asked to close; FIN goes out once the send buffer drains.
    close_pending: bool,
    /// Sequence number our FIN occupies, once sent.
    fin_seq: Option<SeqNum>,
    /// Connection failed (RST received or retry limit exceeded).
    reset: bool,
    /// Loss-recovery point (NewReno-style): set to `snd_nxt` when a
    /// retransmission fires (timeout or fast). Until `snd_una` passes it,
    /// each ACK that advances `snd_una` immediately retransmits the next
    /// unacknowledged segment, so a burst dropped by a checkpoint blackout
    /// recovers in round-trips, not in timeouts — without duplicating
    /// segments sent after the loss.
    recovery_point: Option<SeqNum>,
    /// Total stream bytes handed to the application by `read`.
    delivered: u64,
}

impl Tcb {
    /// Opens an active connection: returns the TCB in `SynSent` plus the SYN
    /// segment to transmit.
    pub fn connect(
        cfg: TcpConfig,
        local: SockAddr,
        remote: SockAddr,
        iss: SeqNum,
        now: SimTime,
    ) -> (Tcb, Vec<TcpSegment>) {
        let mut tcb = Tcb::raw(cfg, TcpState::SynSent, local, remote, iss);
        tcb.snd_una = iss;
        tcb.snd_nxt = iss + 1; // SYN occupies one sequence number
        let syn = tcb.make_segment(TcpFlags::SYN, iss, Bytes::new());
        tcb.arm_rtx(now);
        (tcb, vec![syn])
    }

    /// Creates the passive-side TCB for a SYN that arrived on a listening
    /// socket: returns the TCB in `SynRcvd` plus the SYN-ACK to transmit.
    pub fn accept_syn(
        cfg: TcpConfig,
        local: SockAddr,
        remote: SockAddr,
        iss: SeqNum,
        syn: &TcpSegment,
        now: SimTime,
    ) -> (Tcb, Vec<TcpSegment>) {
        let mut tcb = Tcb::raw(cfg, TcpState::SynRcvd, local, remote, iss);
        tcb.rcv_nxt = syn.seq + 1;
        tcb.peer_window = syn.window;
        tcb.snd_una = iss;
        tcb.snd_nxt = iss + 1;
        let synack = tcb.make_segment(TcpFlags::SYN_ACK, iss, Bytes::new());
        tcb.arm_rtx(now);
        (tcb, vec![synack])
    }

    /// Reconstructs a connection from a checkpoint snapshot.
    ///
    /// The TCB comes up with **empty buffers** at the snapshot's rewritten
    /// sequence numbers; the caller (the Zap layer) then replays the saved
    /// send data through ordinary [`Tcb::write`] calls, one per saved packet,
    /// with Nagle and CORK temporarily disabled — exactly the paper's restore
    /// procedure.
    pub fn restore(cfg: TcpConfig, snap: &TcpSnapshot) -> Tcb {
        let mut tcb = Tcb::raw(cfg, snap.state, snap.local, snap.remote, snap.snd_una);
        tcb.snd_una = snap.snd_una;
        tcb.snd_nxt = snap.snd_una;
        tcb.rcv_nxt = snap.rcv_nxt;
        tcb.peer_window = snap.peer_window;
        tcb.nodelay = snap.nodelay;
        tcb.cork = snap.cork;
        tcb
    }

    fn raw(cfg: TcpConfig, state: TcpState, local: SockAddr, remote: SockAddr, iss: SeqNum) -> Tcb {
        Tcb {
            send_buf: SendBuffer::new(cfg.send_buf_capacity),
            recv_buf: RecvBuffer::new(cfg.recv_buf_capacity),
            rto: RtoEstimator::new(cfg.initial_rto, cfg.min_rto, cfg.max_rto),
            cfg,
            state,
            local,
            remote,
            iss,
            snd_una: iss,
            snd_nxt: iss,
            rcv_nxt: SeqNum::new(0),
            peer_window: 0,
            rtx_deadline: None,
            time_wait_deadline: None,
            retries: 0,
            dup_acks: 0,
            nodelay: false,
            cork: false,
            close_pending: false,
            fin_seq: None,
            reset: false,
            recovery_point: None,
            delivered: 0,
        }
    }

    // ---- accessors -------------------------------------------------------

    /// Current connection state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// Local endpoint.
    pub fn local(&self) -> SockAddr {
        self.local
    }

    /// Remote endpoint.
    pub fn remote(&self) -> SockAddr {
        self.remote
    }

    /// Oldest unacknowledged sequence number (§5.1's `unack_nxt`).
    pub fn snd_una(&self) -> SeqNum {
        self.snd_una
    }

    /// Next send sequence number (§5.1's `snd_nxt`).
    pub fn snd_nxt(&self) -> SeqNum {
        self.snd_nxt
    }

    /// Next expected receive sequence number (§5.1's `rcv_nxt`).
    pub fn rcv_nxt(&self) -> SeqNum {
        self.rcv_nxt
    }

    /// The peer's most recently advertised window.
    pub fn peer_window(&self) -> u32 {
        self.peer_window
    }

    /// True if in-order data is available to read, or the stream has ended
    /// (EOF or reset), so a blocked reader should wake.
    pub fn is_readable(&self) -> bool {
        !self.recv_buf.is_empty() || self.state.peer_closed() || self.reset
    }

    /// True if the application could submit at least one byte.
    pub fn is_writable(&self) -> bool {
        (self.state.can_send() && self.send_buf.free() > 0) || self.reset
    }

    /// True once the three-way handshake has completed (or failed).
    pub fn is_connected(&self) -> bool {
        !matches!(self.state, TcpState::SynSent | TcpState::SynRcvd) || self.reset
    }

    /// True if the connection was reset or aborted.
    pub fn is_reset(&self) -> bool {
        self.reset
    }

    /// `TCP_NODELAY` state.
    pub fn nodelay(&self) -> bool {
        self.nodelay
    }

    /// `TCP_CORK` state.
    pub fn cork(&self) -> bool {
        self.cork
    }

    /// Earliest pending timer deadline, if any.
    pub fn next_timer(&self) -> Option<SimTime> {
        match (self.rtx_deadline, self.time_wait_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Number of in-order received bytes not yet read by the application.
    pub fn recv_len(&self) -> usize {
        self.recv_buf.len()
    }

    /// Number of buffered send bytes not yet acknowledged.
    pub fn send_len(&self) -> usize {
        self.send_buf.len()
    }

    /// Total stream bytes delivered to the application so far (a counter
    /// for rate measurements like the paper's Fig. 6).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    // ---- application-facing operations ----------------------------------

    /// Sets `TCP_NODELAY` (disables the Nagle algorithm). Enabling it flushes
    /// any data Nagle was holding back.
    pub fn set_nodelay(&mut self, on: bool, now: SimTime) -> Vec<TcpSegment> {
        self.nodelay = on;
        if on {
            self.pump(now)
        } else {
            Vec::new()
        }
    }

    /// Sets `TCP_CORK`. Clearing it flushes pending partial segments.
    pub fn set_cork(&mut self, on: bool, now: SimTime) -> Vec<TcpSegment> {
        self.cork = on;
        if on {
            Vec::new()
        } else {
            self.pump(now)
        }
    }

    /// Submits application data, returning how many bytes were accepted and
    /// any segments to transmit.
    pub fn write(&mut self, data: &[u8], now: SimTime) -> (usize, Vec<TcpSegment>) {
        if !self.state.can_send() || self.close_pending {
            return (0, Vec::new());
        }
        let n = self.send_buf.push(data);
        let segs = self.pump(now);
        (n, segs)
    }

    /// Reads up to `max` bytes of in-order data. May emit a window-update
    /// ACK when the read reopens a closed window.
    pub fn read(&mut self, max: usize, _now: SimTime) -> (Vec<u8>, Vec<TcpSegment>) {
        let window_was_zero = self.recv_buf.window() == 0;
        let data = self.recv_buf.read(max);
        self.delivered += data.len() as u64;
        let mut segs = Vec::new();
        if window_was_zero && !data.is_empty() && self.recv_buf.window() > 0 {
            segs.push(self.make_segment(TcpFlags::ACK, self.snd_nxt, Bytes::new()));
        }
        (data, segs)
    }

    /// Returns all undelivered in-order data without consuming it — the
    /// `MSG_PEEK` analogue the checkpoint procedure uses.
    pub fn peek(&self) -> Vec<u8> {
        self.recv_buf.peek_all()
    }

    /// Initiates a graceful close. The FIN is emitted once the send buffer
    /// has drained.
    pub fn close(&mut self, now: SimTime) -> Vec<TcpSegment> {
        match self.state {
            TcpState::SynSent | TcpState::Closed => {
                self.state = TcpState::Closed;
                self.clear_timers();
                Vec::new()
            }
            TcpState::Established | TcpState::SynRcvd | TcpState::CloseWait => {
                self.close_pending = true;
                self.pump(now)
            }
            _ => Vec::new(),
        }
    }

    /// Aborts the connection, emitting a RST.
    pub fn abort(&mut self) -> Vec<TcpSegment> {
        let rst = self.make_segment(TcpFlags::RST, self.snd_nxt, Bytes::new());
        self.state = TcpState::Closed;
        self.reset = true;
        self.clear_timers();
        vec![rst]
    }

    // ---- network-facing operations ---------------------------------------

    /// Processes an incoming segment addressed to this connection.
    pub fn on_segment(&mut self, seg: &TcpSegment, now: SimTime) -> Vec<TcpSegment> {
        let mut out = Vec::new();
        if self.state == TcpState::Closed {
            return out;
        }
        if seg.flags.rst {
            // Accept a RST only if it is plausibly in-window.
            if self.state == TcpState::SynSent || seg.seq == self.rcv_nxt {
                self.state = TcpState::Closed;
                self.reset = true;
                self.clear_timers();
            }
            return out;
        }
        match self.state {
            TcpState::SynSent => self.on_segment_syn_sent(seg, now, &mut out),
            TcpState::TimeWait => {
                // Re-ack anything that arrives (likely a retransmitted FIN).
                if seg.flags.fin {
                    out.push(self.make_segment(TcpFlags::ACK, self.snd_nxt, Bytes::new()));
                }
            }
            _ => self.on_segment_common(seg, now, &mut out),
        }
        out
    }

    fn on_segment_syn_sent(&mut self, seg: &TcpSegment, now: SimTime, out: &mut Vec<TcpSegment>) {
        if seg.flags.syn && seg.flags.ack {
            if seg.ack != self.iss + 1 {
                out.push(self.make_segment(TcpFlags::RST, seg.ack, Bytes::new()));
                return;
            }
            self.rcv_nxt = seg.seq + 1;
            self.snd_una = seg.ack;
            self.peer_window = seg.window;
            self.state = TcpState::Established;
            self.retries = 0;
            self.rtx_deadline = None;
            out.push(self.make_segment(TcpFlags::ACK, self.snd_nxt, Bytes::new()));
            out.extend(self.pump(now));
        } else if seg.flags.syn {
            // Simultaneous open.
            self.rcv_nxt = seg.seq + 1;
            self.peer_window = seg.window;
            self.state = TcpState::SynRcvd;
            out.push(self.make_segment(TcpFlags::SYN_ACK, self.iss, Bytes::new()));
            self.arm_rtx(now);
        }
    }

    fn on_segment_common(&mut self, seg: &TcpSegment, now: SimTime, out: &mut Vec<TcpSegment>) {
        // A retransmitted SYN (or SYN-ACK) reaching a synchronized state
        // means our handshake-completing ACK was lost: re-acknowledge instead
        // of staying silent (RFC 793's "unacceptable segment elicits an empty
        // acknowledgment"), otherwise the peer retries forever.
        if seg.flags.syn {
            let reply = if self.state == TcpState::SynRcvd {
                self.make_segment(TcpFlags::SYN_ACK, self.iss, Bytes::new())
            } else {
                self.make_segment(TcpFlags::ACK, self.snd_nxt, Bytes::new())
            };
            out.push(reply);
        }
        // --- ACK processing ---
        if seg.flags.ack {
            let ack = seg.ack;
            if ack > self.snd_una && ack <= self.snd_nxt {
                let res = self.send_buf.ack_to(ack);
                if let Some(sent_at) = res.rtt_sample_from {
                    self.rto.sample(now.duration_since(sent_at));
                }
                // Handshake / FIN sequence positions.
                self.snd_una = ack;
                self.retries = 0;
                self.dup_acks = 0;
                self.rto.reset_backoff();
                self.peer_window = seg.window;
                if self.state == TcpState::SynRcvd {
                    self.state = TcpState::Established;
                }
                if let Some(fin_seq) = self.fin_seq {
                    if ack > fin_seq {
                        self.on_fin_acked(now);
                    }
                }
                // Loss recovery: until the ACKs pass the recovery point,
                // push the next unacknowledged segment out right away rather
                // than waiting another timeout.
                if let Some(rp) = self.recovery_point {
                    if ack >= rp {
                        self.recovery_point = None;
                    } else if let Some((seq, data)) = self.send_buf.retransmit_head() {
                        out.push(self.make_segment(TcpFlags::ACK, seq, data));
                    }
                }
                // Re-arm or clear the retransmission timer.
                if self.outstanding() {
                    self.arm_rtx(now);
                } else {
                    self.rtx_deadline = None;
                    self.recovery_point = None;
                }
                out.extend(self.pump(now));
            } else if ack == self.snd_una {
                self.peer_window = self.peer_window.max(seg.window);
                if seg.payload.is_empty() && self.send_buf.inflight_len() > 0 {
                    self.dup_acks += 1;
                    if self.dup_acks == self.cfg.dup_ack_threshold {
                        // Fast retransmit.
                        if let Some((seq, data)) = self.send_buf.retransmit_head() {
                            out.push(self.make_segment(TcpFlags::ACK, seq, data));
                            self.arm_rtx(now);
                            self.recovery_point = Some(self.snd_nxt);
                        }
                    }
                } else if seg.payload.is_empty() {
                    // Window update while nothing is in flight.
                    self.peer_window = seg.window;
                    out.extend(self.pump(now));
                }
            }
        }

        // --- payload processing ---
        if !seg.payload.is_empty() && self.state.can_receive() {
            let advanced = self.recv_buf.insert(seg.seq, &seg.payload, self.rcv_nxt);
            self.rcv_nxt += advanced;
            // Ack every data segment; duplicates generate dup-acks for the
            // peer's fast retransmit.
            out.push(self.make_segment(TcpFlags::ACK, self.snd_nxt, Bytes::new()));
        } else if !seg.payload.is_empty() {
            // Data in a state where we cannot accept it: re-ack current state.
            out.push(self.make_segment(TcpFlags::ACK, self.snd_nxt, Bytes::new()));
        }

        // --- FIN processing (only once all preceding data has arrived) ---
        if seg.flags.fin {
            let fin_seq = seg.seq + seg.payload.len() as u32;
            if fin_seq == self.rcv_nxt && !self.state.peer_closed() {
                self.rcv_nxt += 1;
                match self.state {
                    TcpState::Established | TcpState::SynRcvd => {
                        self.state = TcpState::CloseWait;
                    }
                    TcpState::FinWait1 => {
                        self.state = TcpState::Closing;
                    }
                    TcpState::FinWait2 => {
                        self.enter_time_wait(now);
                    }
                    _ => {}
                }
                out.push(self.make_segment(TcpFlags::ACK, self.snd_nxt, Bytes::new()));
            } else if fin_seq != self.rcv_nxt {
                // Out-of-order FIN: ack what we have; peer will retransmit.
                out.push(self.make_segment(TcpFlags::ACK, self.snd_nxt, Bytes::new()));
            }
        }
    }

    fn on_fin_acked(&mut self, now: SimTime) {
        match self.state {
            TcpState::FinWait1 => self.state = TcpState::FinWait2,
            TcpState::Closing => self.enter_time_wait(now),
            TcpState::LastAck => {
                self.state = TcpState::Closed;
                self.clear_timers();
            }
            _ => {}
        }
    }

    fn enter_time_wait(&mut self, now: SimTime) {
        self.state = TcpState::TimeWait;
        self.rtx_deadline = None;
        self.time_wait_deadline = Some(now + self.cfg.time_wait);
    }

    /// Processes timer expirations at `now`. Drives retransmission (with
    /// exponential backoff), zero-window probing, connection-abort on retry
    /// exhaustion, and TIME-WAIT expiry.
    pub fn on_timer(&mut self, now: SimTime) -> Vec<TcpSegment> {
        let mut out = Vec::new();
        if let Some(tw) = self.time_wait_deadline {
            if now >= tw {
                self.state = TcpState::Closed;
                self.clear_timers();
                return out;
            }
        }
        let Some(deadline) = self.rtx_deadline else {
            return out;
        };
        if now < deadline {
            return out;
        }
        if !self.outstanding() {
            self.rtx_deadline = None;
            return out;
        }
        self.retries += 1;
        if self.retries > self.cfg.max_retries {
            self.state = TcpState::Closed;
            self.reset = true;
            self.clear_timers();
            return out;
        }
        self.rto.backoff();
        match self.state {
            TcpState::SynSent => {
                out.push(self.make_segment(TcpFlags::SYN, self.iss, Bytes::new()));
            }
            TcpState::SynRcvd => {
                out.push(self.make_segment(TcpFlags::SYN_ACK, self.iss, Bytes::new()));
            }
            _ => {
                if let Some((seq, data)) = self.send_buf.retransmit_head() {
                    out.push(self.make_segment(TcpFlags::ACK, seq, data));
                    self.recovery_point = Some(self.snd_nxt);
                } else if let Some(fin_seq) = self.fin_seq {
                    if self.snd_una <= fin_seq {
                        out.push(self.make_segment(TcpFlags::FIN_ACK, fin_seq, Bytes::new()));
                    }
                }
            }
        }
        self.arm_rtx(now);
        out
    }

    // ---- checkpoint support ----------------------------------------------

    /// Extracts the §4.1 checkpoint snapshot of this connection.
    ///
    /// The exported `snd_una` doubles as the rewritten `snd_nxt`; in-flight
    /// packet boundaries and the undelivered receive stream ride alongside.
    ///
    /// # Panics
    ///
    /// Panics if the connection is still mid-handshake (`SynSent`/`SynRcvd`)
    /// — callers checkpoint only established-family connections, matching
    /// the paper's implementation scope.
    pub fn snapshot(&self) -> TcpSnapshot {
        assert!(
            self.is_connected() && self.state != TcpState::Closed,
            "cannot snapshot a connection in state {:?}",
            self.state
        );
        TcpSnapshot {
            local: self.local,
            remote: self.remote,
            state: self.state,
            snd_una: self.snd_una,
            rcv_nxt: self.rcv_nxt,
            peer_window: self.peer_window,
            nodelay: self.nodelay,
            cork: self.cork,
            inflight: self
                .send_buf
                .inflight_packets()
                .map(|s| s.data.to_vec())
                .collect(),
            unsent: self.send_buf.unsent_bytes(),
            recv_stream: self.recv_buf.peek_all(),
        }
    }

    // ---- internals ---------------------------------------------------------

    fn outstanding(&self) -> bool {
        self.snd_una < self.snd_nxt
    }

    fn arm_rtx(&mut self, now: SimTime) {
        self.rtx_deadline = Some(now + self.rto.rto());
    }

    fn clear_timers(&mut self) {
        self.rtx_deadline = None;
        self.time_wait_deadline = None;
    }

    fn make_segment(&self, flags: TcpFlags, seq: SeqNum, payload: Bytes) -> TcpSegment {
        TcpSegment {
            src_port: self.local.port,
            dst_port: self.remote.port,
            seq,
            ack: self.rcv_nxt,
            flags,
            window: self.recv_buf.window(),
            payload,
        }
    }

    /// Transmits as much buffered data as MSS, the peer window, Nagle and
    /// CORK permit; then emits the FIN if a close is pending and the buffer
    /// has drained.
    fn pump(&mut self, now: SimTime) -> Vec<TcpSegment> {
        let mut out = Vec::new();
        if !matches!(
            self.state,
            TcpState::Established
                | TcpState::CloseWait
                | TcpState::FinWait1
                | TcpState::Closing
                | TcpState::LastAck
        ) {
            return out;
        }
        loop {
            if self.send_buf.unsent_len() == 0 {
                break;
            }
            let inflight = (self.snd_nxt - self.snd_una) as usize;
            let wnd_avail = (self.peer_window as usize).saturating_sub(inflight);
            if wnd_avail == 0 {
                // Zero-window: probe with one byte if nothing is in flight
                // (this doubles as the persist timer via normal RTO backoff).
                if inflight == 0 {
                    if let Some(data) = self.send_buf.take_packet(1) {
                        let seq = self.snd_nxt;
                        self.send_buf.record_sent(seq, data.clone(), now);
                        self.snd_nxt += data.len() as u32;
                        out.push(self.make_segment(TcpFlags::ACK, seq, data));
                        self.arm_rtx(now);
                    }
                }
                break;
            }
            let unsent = self.send_buf.unsent_len();
            if unsent < self.cfg.mss && unsent <= wnd_avail {
                // A partial segment: CORK always holds it back; Nagle holds
                // it back while data is in flight.
                if self.cork {
                    break;
                }
                if !self.nodelay && inflight > 0 {
                    break;
                }
            }
            let max = self.cfg.mss.min(wnd_avail);
            let Some(data) = self.send_buf.take_packet(max) else {
                break;
            };
            let seq = self.snd_nxt;
            self.send_buf.record_sent(seq, data.clone(), now);
            self.snd_nxt += data.len() as u32;
            out.push(self.make_segment(TcpFlags::ACK, seq, data));
            if self.rtx_deadline.is_none() {
                self.arm_rtx(now);
            }
        }
        // Pending close: emit FIN once everything has been transmitted.
        if self.close_pending && self.send_buf.is_empty() && self.fin_seq.is_none() {
            let fin_seq = self.snd_nxt;
            self.fin_seq = Some(fin_seq);
            self.snd_nxt += 1;
            self.state = match self.state {
                TcpState::Established | TcpState::SynRcvd => TcpState::FinWait1,
                TcpState::CloseWait => TcpState::LastAck,
                s => s,
            };
            out.push(self.make_segment(TcpFlags::FIN_ACK, fin_seq, Bytes::new()));
            self.arm_rtx(now);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: SimTime = SimTime::ZERO;

    fn addr(last: u8, port: u16) -> SockAddr {
        SockAddr::new(crate::addr::IpAddr::from_octets([10, 0, 0, last]), port)
    }

    /// Drives a full handshake and returns (client, server).
    fn established() -> (Tcb, Tcb) {
        let cfg = TcpConfig::default();
        let (mut c, syns) = Tcb::connect(
            cfg.clone(),
            addr(1, 4000),
            addr(2, 80),
            SeqNum::new(100),
            T0,
        );
        let (mut s, synacks) = Tcb::accept_syn(
            cfg,
            addr(2, 80),
            addr(1, 4000),
            SeqNum::new(900),
            &syns[0],
            T0,
        );
        let acks = c.on_segment(&synacks[0], T0);
        assert_eq!(c.state(), TcpState::Established);
        for a in &acks {
            let extra = s.on_segment(a, T0);
            assert!(extra.is_empty());
        }
        assert_eq!(s.state(), TcpState::Established);
        (c, s)
    }

    /// Delivers `segs` to `dst`, returning its responses.
    fn deliver(dst: &mut Tcb, segs: &[TcpSegment], now: SimTime) -> Vec<TcpSegment> {
        let mut out = Vec::new();
        for s in segs {
            out.extend(dst.on_segment(s, now));
        }
        out
    }

    /// Runs segments back and forth until both sides go quiet.
    fn settle(a: &mut Tcb, b: &mut Tcb, mut from_a: Vec<TcpSegment>, now: SimTime) {
        let mut from_b = Vec::new();
        for _ in 0..64 {
            if from_a.is_empty() && from_b.is_empty() {
                return;
            }
            from_b.extend(deliver(b, &from_a, now));
            from_a = deliver(a, &from_b, now);
            from_b.clear();
        }
        panic!("segment exchange did not settle");
    }

    #[test]
    fn handshake_establishes_both_sides() {
        let (c, s) = established();
        assert_eq!(c.snd_una(), SeqNum::new(101));
        assert_eq!(c.rcv_nxt(), SeqNum::new(901));
        assert_eq!(s.rcv_nxt(), SeqNum::new(101));
        assert!(c.is_writable());
        assert!(!c.is_readable());
    }

    #[test]
    fn data_flows_and_is_acked() {
        let (mut c, mut s) = established();
        let (n, segs) = c.write(b"hello world", T0);
        assert_eq!(n, 11);
        assert_eq!(segs.len(), 1);
        settle(&mut c, &mut s, segs, T0);
        let (data, _) = s.read(100, T0);
        assert_eq!(data, b"hello world");
        assert_eq!(c.send_len(), 0, "data fully acked");
        assert_eq!(c.snd_una(), SeqNum::new(112));
    }

    #[test]
    fn nagle_holds_small_second_write() {
        let (mut c, mut _s) = established();
        let (_, first) = c.write(b"a", T0);
        assert_eq!(first.len(), 1, "first small write goes out immediately");
        let (_, second) = c.write(b"b", T0);
        assert!(second.is_empty(), "Nagle holds while data is in flight");
        // With nodelay, it flushes.
        let flushed = c.set_nodelay(true, T0);
        assert_eq!(flushed.len(), 1);
        assert_eq!(&flushed[0].payload[..], b"b");
    }

    #[test]
    fn cork_holds_partial_segments_until_uncorked() {
        let (mut c, _s) = established();
        let none = c.set_cork(true, T0);
        assert!(none.is_empty());
        let (_, segs) = c.write(b"tiny", T0);
        assert!(segs.is_empty(), "cork holds partial segments");
        let flushed = c.set_cork(false, T0);
        assert_eq!(flushed.len(), 1);
        assert_eq!(&flushed[0].payload[..], b"tiny");
    }

    #[test]
    fn cork_still_emits_full_segments() {
        let (mut c, _s) = established();
        let _ = c.set_cork(true, T0);
        let big = vec![7u8; 3000];
        let (n, segs) = c.write(&big, T0);
        assert_eq!(n, 3000);
        // Two full MSS segments go out; the 80-byte tail is held.
        assert_eq!(segs.len(), 2);
        assert!(segs.iter().all(|s| s.payload.len() == 1460));
    }

    #[test]
    fn mss_packetization() {
        let (mut c, _s) = established();
        let data = vec![1u8; 4000];
        let (n, segs) = c.write(&data, T0);
        assert_eq!(n, 4000);
        // Two full segments go out; Nagle holds the 1080-byte tail while
        // data is in flight.
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].payload.len(), 1460);
        assert_eq!(segs[1].payload.len(), 1460);
        let tail = c.set_nodelay(true, T0);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].payload.len(), 1080);
    }

    #[test]
    fn retransmission_after_loss() {
        let (mut c, mut s) = established();
        let (_, segs) = c.write(b"important", T0);
        assert_eq!(segs.len(), 1);
        // Segment lost. Fire the retransmission timer.
        let deadline = c.next_timer().expect("rtx armed");
        let rtx = c.on_timer(deadline);
        assert_eq!(rtx.len(), 1);
        assert_eq!(&rtx[0].payload[..], b"important");
        // Deliver the retransmission; data arrives exactly once.
        settle(&mut c, &mut s, rtx, deadline);
        let (data, _) = s.read(100, deadline);
        assert_eq!(data, b"important");
        assert_eq!(c.send_len(), 0);
    }

    #[test]
    fn rto_backoff_grows_on_repeated_loss() {
        let (mut c, _s) = established();
        let (_, _segs) = c.write(b"x", T0);
        let d1 = c.next_timer().unwrap();
        let _ = c.on_timer(d1);
        let d2 = c.next_timer().unwrap();
        let _ = c.on_timer(d2);
        let d3 = c.next_timer().unwrap();
        let gap1 = d2.duration_since(d1);
        let gap2 = d3.duration_since(d2);
        assert_eq!(gap2, gap1 * 2, "exponential backoff");
    }

    #[test]
    fn retry_exhaustion_resets_connection() {
        let cfg = TcpConfig {
            max_retries: 3,
            ..TcpConfig::default()
        };
        let (mut c, _syn) = Tcb::connect(cfg, addr(1, 1), addr(2, 2), SeqNum::new(0), T0);
        for _ in 0..5 {
            let Some(d) = c.next_timer() else { break };
            let _ = c.on_timer(d);
        }
        assert_eq!(c.state(), TcpState::Closed);
        assert!(c.is_reset());
    }

    #[test]
    fn fast_retransmit_on_dup_acks() {
        let (mut c, mut s) = established();
        // Two segments; first is lost, second arrives -> dup acks.
        let (_, segs) = c.write(&vec![1u8; 1460], T0);
        let (_, segs2) = c.write(&vec![2u8; 1460], T0);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs2.len(), 1);
        // Lose segs[0]; deliver segs2 three times (dup-ack generator).
        let mut dups = Vec::new();
        for _ in 0..3 {
            dups.extend(deliver(&mut s, &segs2, T0));
        }
        assert_eq!(dups.len(), 3);
        let resp = deliver(&mut c, &dups, T0);
        // Fast retransmit of the first segment.
        assert_eq!(resp.len(), 1);
        assert_eq!(resp[0].seq, segs[0].seq);
        assert_eq!(resp[0].payload, segs[0].payload);
    }

    #[test]
    fn graceful_close_both_directions() {
        let (mut c, mut s) = established();
        let fins = c.close(T0);
        assert_eq!(c.state(), TcpState::FinWait1);
        settle(&mut c, &mut s, fins, T0);
        assert_eq!(c.state(), TcpState::FinWait2);
        assert_eq!(s.state(), TcpState::CloseWait);
        assert!(s.is_readable(), "EOF is readable");
        let fins = s.close(T0);
        assert_eq!(s.state(), TcpState::LastAck);
        settle(&mut s, &mut c, fins, T0);
        assert_eq!(s.state(), TcpState::Closed);
        assert_eq!(c.state(), TcpState::TimeWait);
        // TIME-WAIT expires.
        let d = c.next_timer().unwrap();
        let _ = c.on_timer(d);
        assert_eq!(c.state(), TcpState::Closed);
    }

    #[test]
    fn close_flushes_pending_data_before_fin() {
        let (mut c, mut s) = established();
        let (_, mut segs) = c.write(b"last words", T0);
        segs.extend(c.close(T0));
        settle(&mut c, &mut s, segs, T0);
        let (data, _) = s.read(100, T0);
        assert_eq!(data, b"last words");
        assert_eq!(s.state(), TcpState::CloseWait);
    }

    #[test]
    fn abort_sends_rst_and_peer_observes_reset() {
        let (mut c, mut s) = established();
        let rst = c.abort();
        assert_eq!(rst.len(), 1);
        assert!(rst[0].flags.rst);
        let _ = deliver(&mut s, &rst, T0);
        assert!(s.is_reset());
        assert_eq!(s.state(), TcpState::Closed);
    }

    #[test]
    fn zero_window_probe_and_reopen() {
        let cfg = TcpConfig {
            recv_buf_capacity: 1000, // tiny receiver
            ..TcpConfig::default()
        };
        let (mut c, syns) = Tcb::connect(cfg.clone(), addr(1, 1), addr(2, 2), SeqNum::new(0), T0);
        let (mut s, synacks) =
            Tcb::accept_syn(cfg, addr(2, 2), addr(1, 1), SeqNum::new(0), &syns[0], T0);
        let acks = c.on_segment(&synacks[0], T0);
        let _ = deliver(&mut s, &acks, T0);

        // Fill the receiver's window completely; receiver does not read.
        let (n, segs) = c.write(&vec![9u8; 2000], T0);
        assert_eq!(n, 2000);
        settle(&mut c, &mut s, segs, T0);
        assert_eq!(s.recv_len(), 1000);
        assert_eq!(c.peer_window(), 0);
        // Unsent data remains; a probe may already be in flight via pump.
        assert!(c.send_len() > 0);

        // Receiver reads -> window-update ACK -> sender resumes.
        let (data, updates) = s.read(1000, T0);
        assert_eq!(data.len(), 1000);
        assert!(!updates.is_empty(), "window reopen must be advertised");
        let resumed = deliver(&mut c, &updates, T0);
        settle(&mut c, &mut s, resumed, T0);
        // Eventually all 2000 bytes arrive.
        let mut total = data.len();
        loop {
            let (d, upd) = s.read(1000, T0);
            if d.is_empty() {
                // Drive retransmission timers if data is still owed.
                if total < 2000 {
                    if let Some(t) = c.next_timer() {
                        let rtx = c.on_timer(t);
                        settle(&mut c, &mut s, rtx, t);
                        continue;
                    }
                }
                break;
            }
            total += d.len();
            let resumed = deliver(&mut c, &upd, T0);
            settle(&mut c, &mut s, resumed, T0);
        }
        assert_eq!(total, 2000);
    }

    #[test]
    fn snapshot_rewrites_sequence_numbers() {
        let (mut c, mut s) = established();
        // Write data, deliver only half of the segments so some stay inflight.
        let (_, segs) = c.write(&vec![5u8; 2920], T0);
        assert_eq!(segs.len(), 2);
        let acks = deliver(&mut s, &segs[..1], T0);
        let _ = deliver(&mut c, &acks, T0);
        // Now: 1460 acked, 1460 inflight. Queue a little more (Nagle holds it).
        let (_, more) = c.write(b"tail", T0);
        assert!(more.is_empty());

        let snap = c.snapshot();
        assert_eq!(snap.snd_una, c.snd_una());
        assert_eq!(snap.inflight.len(), 1);
        assert_eq!(snap.inflight[0].len(), 1460);
        assert_eq!(snap.unsent, b"tail");
        assert_eq!(snap.send_bytes(), 1464);

        // Server side: received data not yet read shows up in recv_stream.
        let ssnap = s.snapshot();
        assert_eq!(ssnap.recv_stream.len(), 1460);
        // The §5.1 invariant holds between the two snapshots:
        // snd_una <= rcv_nxt <= snd_nxt(=snd_una + inflight)
        assert!(snap.snd_una <= ssnap.rcv_nxt);
        assert!(ssnap.rcv_nxt <= snap.snd_una + snap.send_bytes() as u32 + 1);
    }

    #[test]
    fn restore_resumes_transfer_via_retransmission() {
        let (mut c, s) = established();
        let (_, segs) = c.write(&vec![7u8; 2000], T0);
        // All segments dropped (like the Cruz netfilter rule).
        drop(segs);
        let csnap = c.snapshot();
        let ssnap = s.snapshot();

        // Restore both sides from their snapshots.
        let cfg = TcpConfig::default();
        let mut c2 = Tcb::restore(cfg.clone(), &csnap);
        let mut s2 = Tcb::restore(cfg, &ssnap);
        assert_eq!(c2.snd_nxt(), csnap.snd_una);

        // Replay the saved send data, packet by packet, nodelay on (§4.1).
        let _ = c2.set_nodelay(true, T0);
        let mut replayed = Vec::new();
        for pkt in &csnap.inflight {
            let (n, segs) = c2.write(pkt, T0);
            assert_eq!(n, pkt.len());
            replayed.extend(segs);
        }
        let (n, segs) = c2.write(&csnap.unsent, T0);
        assert_eq!(n, csnap.unsent.len());
        replayed.extend(segs);
        let _ = c2.set_nodelay(csnap.nodelay, T0);

        settle(&mut c2, &mut s2, replayed, T0);
        let (data, _) = s2.read(4000, T0);
        assert_eq!(data, vec![7u8; 2000]);
        assert_eq!(c2.send_len(), 0, "everything re-acked after restore");
    }

    #[test]
    #[should_panic(expected = "cannot snapshot")]
    fn snapshot_rejects_handshake_states() {
        let (c, _syn) = Tcb::connect(
            TcpConfig::default(),
            addr(1, 1),
            addr(2, 2),
            SeqNum::new(0),
            T0,
        );
        let _ = c.snapshot();
    }

    #[test]
    fn reads_generate_window_updates_only_when_window_was_zero() {
        let (mut c, mut s) = established();
        let (_, segs) = c.write(b"abc", T0);
        settle(&mut c, &mut s, segs, T0);
        let (_, updates) = s.read(10, T0);
        assert!(updates.is_empty(), "no update needed for an open window");
    }

    #[test]
    fn timer_is_quiet_when_nothing_outstanding() {
        let (mut c, _s) = established();
        assert_eq!(c.next_timer(), None);
        assert!(c.on_timer(SimTime::from_nanos(1)).is_empty());
    }
}
