//! Retransmission-timeout estimation (RFC 6298 style) with exponential
//! backoff.

use des::SimDuration;

/// RTT estimator and retransmission-timeout calculator.
///
/// Maintains the smoothed RTT and RTT variance, applies exponential backoff
/// while retransmissions are outstanding, and clamps the result between the
/// configured bounds.
#[derive(Debug, Clone)]
pub struct RtoEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    min_rto: SimDuration,
    max_rto: SimDuration,
    initial_rto: SimDuration,
    /// Current backoff multiplier exponent (0 = no backoff).
    backoff: u32,
}

impl RtoEstimator {
    /// Creates an estimator.
    ///
    /// `initial_rto` is used before any RTT sample exists; `min_rto` and
    /// `max_rto` bound the computed timeout.
    ///
    /// # Panics
    ///
    /// Panics if `min_rto > max_rto`.
    pub fn new(initial_rto: SimDuration, min_rto: SimDuration, max_rto: SimDuration) -> Self {
        assert!(min_rto <= max_rto, "min_rto must not exceed max_rto");
        RtoEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            min_rto,
            max_rto,
            initial_rto,
            backoff: 0,
        }
    }

    /// Feeds one RTT measurement (from a never-retransmitted segment) and
    /// clears any backoff.
    pub fn sample(&mut self, rtt: SimDuration) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                let err = if rtt > srtt { rtt - srtt } else { srtt - rtt };
                // rttvar = 3/4 rttvar + 1/4 |err|
                self.rttvar = (self.rttvar * 3 + err) / 4;
                // srtt = 7/8 srtt + 1/8 rtt
                self.srtt = Some((srtt * 7 + rtt) / 8);
            }
        }
        self.backoff = 0;
    }

    /// Doubles the timeout after a retransmission timer expiry.
    pub fn backoff(&mut self) {
        self.backoff = (self.backoff + 1).min(16);
    }

    /// Clears backoff (e.g. after new data is acknowledged).
    pub fn reset_backoff(&mut self) {
        self.backoff = 0;
    }

    /// The current retransmission timeout.
    pub fn rto(&self) -> SimDuration {
        let base = match self.srtt {
            None => self.initial_rto,
            Some(srtt) => srtt + self.rttvar * 4,
        };
        let base = base.max(self.min_rto);
        let shifted =
            SimDuration::from_nanos(base.as_nanos().saturating_mul(1u64 << self.backoff.min(32)));
        shifted.min(self.max_rto).max(self.min_rto)
    }

    /// The current backoff exponent (0 when no retransmissions outstanding).
    pub fn backoff_level(&self) -> u32 {
        self.backoff
    }

    /// The smoothed RTT estimate, if any sample has been taken.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> RtoEstimator {
        RtoEstimator::new(
            SimDuration::from_secs(1),
            SimDuration::from_millis(200),
            SimDuration::from_secs(60),
        )
    }

    #[test]
    fn initial_rto_used_before_samples() {
        assert_eq!(est().rto(), SimDuration::from_secs(1));
    }

    #[test]
    fn min_rto_clamps_fast_lans() {
        let mut e = est();
        e.sample(SimDuration::from_micros(100));
        assert_eq!(e.rto(), SimDuration::from_millis(200));
    }

    #[test]
    fn srtt_converges_toward_samples() {
        let mut e = est();
        for _ in 0..50 {
            e.sample(SimDuration::from_millis(300));
        }
        let srtt = e.srtt().unwrap();
        assert!(srtt >= SimDuration::from_millis(290) && srtt <= SimDuration::from_millis(310));
        // rto = srtt + 4*rttvar >= srtt
        assert!(e.rto() >= srtt);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut e = est();
        let r0 = e.rto();
        e.backoff();
        assert_eq!(e.rto(), r0 * 2);
        e.backoff();
        assert_eq!(e.rto(), r0 * 4);
        for _ in 0..20 {
            e.backoff();
        }
        assert_eq!(e.rto(), SimDuration::from_secs(60));
        e.reset_backoff();
        assert_eq!(e.rto(), r0);
    }

    #[test]
    fn sample_clears_backoff() {
        let mut e = est();
        e.backoff();
        e.backoff();
        e.sample(SimDuration::from_millis(250));
        assert_eq!(e.backoff_level(), 0);
    }

    #[test]
    #[should_panic(expected = "min_rto must not exceed max_rto")]
    fn bounds_validated() {
        let _ = RtoEstimator::new(
            SimDuration::from_secs(1),
            SimDuration::from_secs(2),
            SimDuration::from_secs(1),
        );
    }
}
