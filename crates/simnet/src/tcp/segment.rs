//! TCP segment representation.

use std::fmt;

use bytes::Bytes;

use crate::addr::{IpAddr, SockAddr};
use crate::tcp::seq::SeqNum;

/// Assumed fixed header overhead of a TCP/IPv4 packet on the wire (IPv4 20 +
/// TCP 20 bytes, no options modelled).
pub const TCP_IP_HEADER_LEN: usize = 40;

/// TCP header flags. Only the flags the simulation uses are modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct TcpFlags {
    /// Synchronize sequence numbers.
    pub syn: bool,
    /// Acknowledgement field is valid.
    pub ack: bool,
    /// No more data from sender.
    pub fin: bool,
    /// Reset the connection.
    pub rst: bool,
}

impl TcpFlags {
    /// Flags for a pure data or acknowledgement segment.
    pub const ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: false,
        rst: false,
    };
    /// Flags for an initial SYN.
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        ack: false,
        fin: false,
        rst: false,
    };
    /// Flags for a SYN-ACK.
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        ack: true,
        fin: false,
        rst: false,
    };
    /// Flags for a FIN-ACK.
    pub const FIN_ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: true,
        rst: false,
    };
    /// Flags for a RST.
    pub const RST: TcpFlags = TcpFlags {
        syn: false,
        ack: false,
        fin: false,
        rst: true,
    };
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut any = false;
        for (set, name) in [
            (self.syn, "SYN"),
            (self.ack, "ACK"),
            (self.fin, "FIN"),
            (self.rst, "RST"),
        ] {
            if set {
                if any {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                any = true;
            }
        }
        if !any {
            write!(f, "-")?;
        }
        Ok(())
    }
}

/// A TCP segment (header fields plus payload), carried inside an IPv4 packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte (or of the SYN/FIN).
    pub seq: SeqNum,
    /// Acknowledgement number (valid when `flags.ack`).
    pub ack: SeqNum,
    /// Header flags.
    pub flags: TcpFlags,
    /// Advertised receive window in bytes.
    pub window: u32,
    /// Payload bytes.
    pub payload: Bytes,
}

impl TcpSegment {
    /// The sequence-number length of the segment: payload bytes plus one for
    /// SYN and one for FIN.
    pub fn seq_len(&self) -> u32 {
        self.payload.len() as u32 + u32::from(self.flags.syn) + u32::from(self.flags.fin)
    }

    /// The sequence number just past this segment.
    pub fn seq_end(&self) -> SeqNum {
        self.seq + self.seq_len()
    }

    /// Bytes this segment occupies on the wire (headers included).
    pub fn wire_len(&self) -> usize {
        TCP_IP_HEADER_LEN + self.payload.len()
    }
}

impl fmt::Display for TcpSegment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tcp {} -> {} [{}] seq={} ack={} win={} len={}",
            self.src_port,
            self.dst_port,
            self.flags,
            self.seq,
            self.ack,
            self.window,
            self.payload.len()
        )
    }
}

/// The (source, destination) endpoints of a segment as seen inside an IPv4
/// packet, used to key connection lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegmentAddrs {
    /// Sender endpoint.
    pub src: SockAddr,
    /// Receiver endpoint.
    pub dst: SockAddr,
}

impl SegmentAddrs {
    /// Builds endpoint addresses from IP header addresses and the segment's
    /// ports.
    pub fn new(src_ip: IpAddr, dst_ip: IpAddr, seg: &TcpSegment) -> Self {
        SegmentAddrs {
            src: SockAddr::new(src_ip, seg.src_port),
            dst: SockAddr::new(dst_ip, seg.dst_port),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(flags: TcpFlags, payload: &[u8]) -> TcpSegment {
        TcpSegment {
            src_port: 10,
            dst_port: 20,
            seq: SeqNum::new(100),
            ack: SeqNum::new(0),
            flags,
            window: 65535,
            payload: Bytes::copy_from_slice(payload),
        }
    }

    #[test]
    fn seq_len_counts_syn_and_fin() {
        assert_eq!(seg(TcpFlags::SYN, b"").seq_len(), 1);
        assert_eq!(seg(TcpFlags::ACK, b"abc").seq_len(), 3);
        assert_eq!(seg(TcpFlags::FIN_ACK, b"ab").seq_len(), 3);
        assert_eq!(seg(TcpFlags::ACK, b"abc").seq_end(), SeqNum::new(103));
    }

    #[test]
    fn wire_len_includes_headers() {
        assert_eq!(seg(TcpFlags::ACK, b"hello").wire_len(), 45);
    }

    #[test]
    fn flags_display() {
        assert_eq!(TcpFlags::SYN_ACK.to_string(), "SYN|ACK");
        assert_eq!(TcpFlags::default().to_string(), "-");
    }
}
