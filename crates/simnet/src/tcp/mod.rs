//! A from-scratch TCP implementation.
//!
//! The module is layered:
//!
//! * [`seq`] — wrapping 32-bit sequence-number arithmetic;
//! * [`segment`] — the segment representation carried in IPv4 packets;
//! * [`buffer`] — send/receive buffers, including the packet-boundary
//!   tracking that checkpoint/restore preserves;
//! * [`rto`] — RTT estimation and retransmission timeout with backoff;
//! * [`tcb`] — the per-connection state machine.
//!
//! Everything is pure and time-explicit: the host stack (`simos`, via the
//! [`crate::stack::NetStack`]) feeds in segments and timer expirations and
//! transmits whatever comes out.

pub mod buffer;
pub mod rto;
pub mod segment;
pub mod seq;
pub mod tcb;

pub use segment::{TcpFlags, TcpSegment};
pub use seq::SeqNum;
pub use tcb::{Tcb, TcpConfig, TcpSnapshot, TcpState};
