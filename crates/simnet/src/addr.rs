//! Link- and network-layer addressing.

use std::fmt;

/// A 48-bit Ethernet MAC address.
///
/// # Examples
///
/// ```
/// use simnet::addr::MacAddr;
///
/// let mac = MacAddr::new([0x02, 0, 0, 0, 0, 0x1f]);
/// assert_eq!(mac.to_string(), "02:00:00:00:00:1f");
/// assert!(!mac.is_broadcast());
/// assert!(MacAddr::BROADCAST.is_broadcast());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MacAddr([u8; 6]);

impl MacAddr {
    /// The all-ones broadcast address.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Creates an address from raw octets.
    pub const fn new(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }

    /// A locally administered unicast address derived from a small integer,
    /// convenient for assigning distinct MACs to simulated NICs and VIFs.
    pub const fn from_index(index: u32) -> Self {
        let b = index.to_be_bytes();
        // 0x02 prefix: locally administered, unicast.
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// Returns the raw octets.
    pub const fn octets(self) -> [u8; 6] {
        self.0
    }

    /// Returns true for the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

/// A 32-bit IPv4 address.
///
/// # Examples
///
/// ```
/// use simnet::addr::IpAddr;
///
/// let ip = IpAddr::from_octets([10, 0, 0, 7]);
/// assert_eq!(ip.to_string(), "10.0.0.7");
/// assert_eq!(IpAddr::from_bits(ip.to_bits()), ip);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct IpAddr(u32);

impl IpAddr {
    /// The unspecified address `0.0.0.0`, used by `bind` to mean "any local
    /// address".
    pub const UNSPECIFIED: IpAddr = IpAddr(0);

    /// The limited broadcast address `255.255.255.255`.
    pub const BROADCAST: IpAddr = IpAddr(u32::MAX);

    /// Creates an address from its 32-bit big-endian value.
    pub const fn from_bits(bits: u32) -> Self {
        IpAddr(bits)
    }

    /// Creates an address from dotted-quad octets.
    pub const fn from_octets(o: [u8; 4]) -> Self {
        IpAddr(u32::from_be_bytes(o))
    }

    /// Returns the 32-bit big-endian value.
    pub const fn to_bits(self) -> u32 {
        self.0
    }

    /// Returns the dotted-quad octets.
    pub const fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// Returns true for `0.0.0.0`.
    pub const fn is_unspecified(self) -> bool {
        self.0 == 0
    }

    /// Returns true for `255.255.255.255`.
    pub const fn is_broadcast(self) -> bool {
        self.0 == u32::MAX
    }

    /// Returns true if both addresses fall in the same `/prefix_len` subnet.
    ///
    /// # Panics
    ///
    /// Panics if `prefix_len > 32`.
    pub fn same_subnet(self, other: IpAddr, prefix_len: u8) -> bool {
        assert!(prefix_len <= 32, "prefix length out of range");
        if prefix_len == 0 {
            return true;
        }
        let mask = u32::MAX << (32 - prefix_len as u32);
        (self.0 & mask) == (other.0 & mask)
    }
}

impl fmt::Display for IpAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

/// A transport endpoint: IPv4 address plus port.
///
/// # Examples
///
/// ```
/// use simnet::addr::{IpAddr, SockAddr};
///
/// let a = SockAddr::new(IpAddr::from_octets([10, 0, 0, 1]), 80);
/// assert_eq!(a.to_string(), "10.0.0.1:80");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SockAddr {
    /// The IPv4 address.
    pub ip: IpAddr,
    /// The port number.
    pub port: u16,
}

impl SockAddr {
    /// Creates an endpoint.
    pub const fn new(ip: IpAddr, port: u16) -> Self {
        SockAddr { ip, port }
    }
}

impl fmt::Display for SockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_from_index_is_unique_and_unicast() {
        let a = MacAddr::from_index(1);
        let b = MacAddr::from_index(2);
        assert_ne!(a, b);
        assert!(!a.is_broadcast());
        assert_eq!(a.octets()[0], 0x02);
    }

    #[test]
    fn ip_round_trip() {
        let ip = IpAddr::from_octets([192, 168, 1, 42]);
        assert_eq!(ip.octets(), [192, 168, 1, 42]);
        assert_eq!(IpAddr::from_bits(ip.to_bits()), ip);
    }

    #[test]
    fn subnet_membership() {
        let a = IpAddr::from_octets([10, 0, 0, 1]);
        let b = IpAddr::from_octets([10, 0, 0, 200]);
        let c = IpAddr::from_octets([10, 0, 1, 1]);
        assert!(a.same_subnet(b, 24));
        assert!(!a.same_subnet(c, 24));
        assert!(a.same_subnet(c, 16));
        assert!(a.same_subnet(c, 0));
    }

    #[test]
    fn special_addresses() {
        assert!(IpAddr::UNSPECIFIED.is_unspecified());
        assert!(IpAddr::BROADCAST.is_broadcast());
        assert_eq!(IpAddr::BROADCAST.to_string(), "255.255.255.255");
    }

    #[test]
    #[should_panic(expected = "prefix length out of range")]
    fn subnet_prefix_validated() {
        let a = IpAddr::UNSPECIFIED;
        let _ = a.same_subnet(a, 33);
    }
}
