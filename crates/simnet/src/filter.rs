//! Per-host packet filtering — the netfilter analogue.
//!
//! The Cruz coordinated checkpoint (§5) disables a pod's communication by
//! installing a rule that **silently drops** every packet to or from the
//! pod's IP addresses, at the lowest level of the stack. This module is that
//! hook: the host stack consults it at both ingress and egress.

use std::collections::BTreeSet;

use crate::addr::IpAddr;
use crate::frame::{EthFrame, EthPayload};

/// The filter's decision for a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Let the packet through.
    Accept,
    /// Silently drop the packet.
    Drop,
}

/// A set of drop rules keyed on IP addresses.
///
/// # Examples
///
/// ```
/// use simnet::addr::IpAddr;
/// use simnet::filter::{PacketFilter, Verdict};
///
/// let mut f = PacketFilter::new();
/// let pod_ip = IpAddr::from_octets([10, 0, 0, 50]);
/// f.add_drop_rule(pod_ip);
/// assert!(f.is_dropping(pod_ip));
/// f.remove_drop_rule(pod_ip);
/// assert!(!f.is_dropping(pod_ip));
/// ```
#[derive(Debug, Clone, Default)]
pub struct PacketFilter {
    drop_ips: BTreeSet<IpAddr>,
    dropped: u64,
}

impl PacketFilter {
    /// Creates a filter with no rules.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a rule dropping all traffic to or from `ip`.
    pub fn add_drop_rule(&mut self, ip: IpAddr) {
        self.drop_ips.insert(ip);
    }

    /// Removes the rule for `ip` (no-op if absent).
    pub fn remove_drop_rule(&mut self, ip: IpAddr) {
        self.drop_ips.remove(&ip);
    }

    /// Removes every rule.
    pub fn clear(&mut self) {
        self.drop_ips.clear();
    }

    /// Returns true if a drop rule for `ip` is installed.
    pub fn is_dropping(&self, ip: IpAddr) -> bool {
        self.drop_ips.contains(&ip)
    }

    /// Returns true if any rule is installed.
    pub fn has_rules(&self) -> bool {
        !self.drop_ips.is_empty()
    }

    /// Judges a frame. IPv4 packets are dropped when either endpoint matches
    /// a rule; ARP packets are dropped when the sender or target protocol
    /// address matches (a quiesced pod must not answer ARP either).
    pub fn check(&mut self, frame: &EthFrame) -> Verdict {
        if self.drop_ips.is_empty() {
            return Verdict::Accept;
        }
        let hit = match &frame.payload {
            EthPayload::Ipv4(p) => self.drop_ips.contains(&p.src) || self.drop_ips.contains(&p.dst),
            EthPayload::Arp(a) => {
                self.drop_ips.contains(&a.sender_ip) || self.drop_ips.contains(&a.target_ip)
            }
        };
        if hit {
            self.dropped += 1;
            Verdict::Drop
        } else {
            Verdict::Accept
        }
    }

    /// Number of packets dropped so far.
    pub fn dropped_count(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::MacAddr;
    use crate::arp::ArpPacket;
    use crate::frame::{Ipv4Packet, L4};
    use crate::udp::UdpDatagram;
    use bytes::Bytes;

    fn ip(last: u8) -> IpAddr {
        IpAddr::from_octets([10, 0, 0, last])
    }

    fn udp_frame(src: IpAddr, dst: IpAddr) -> EthFrame {
        EthFrame::new(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            EthPayload::Ipv4(Ipv4Packet {
                src,
                dst,
                payload: L4::Udp(UdpDatagram::new(1, 2, Bytes::new())),
            }),
        )
    }

    #[test]
    fn drops_both_directions() {
        let mut f = PacketFilter::new();
        f.add_drop_rule(ip(5));
        assert_eq!(f.check(&udp_frame(ip(5), ip(9))), Verdict::Drop);
        assert_eq!(f.check(&udp_frame(ip(9), ip(5))), Verdict::Drop);
        assert_eq!(f.check(&udp_frame(ip(8), ip(9))), Verdict::Accept);
        assert_eq!(f.dropped_count(), 2);
    }

    #[test]
    fn arp_for_filtered_ip_is_dropped() {
        let mut f = PacketFilter::new();
        f.add_drop_rule(ip(5));
        let arp = EthFrame::new(
            MacAddr::from_index(1),
            MacAddr::BROADCAST,
            EthPayload::Arp(ArpPacket::request(MacAddr::from_index(1), ip(9), ip(5))),
        );
        assert_eq!(f.check(&arp), Verdict::Drop);
    }

    #[test]
    fn rules_can_be_removed_and_cleared() {
        let mut f = PacketFilter::new();
        f.add_drop_rule(ip(1));
        f.add_drop_rule(ip(2));
        assert!(f.has_rules());
        f.remove_drop_rule(ip(1));
        assert_eq!(f.check(&udp_frame(ip(1), ip(9))), Verdict::Accept);
        assert_eq!(f.check(&udp_frame(ip(2), ip(9))), Verdict::Drop);
        f.clear();
        assert!(!f.has_rules());
        assert_eq!(f.check(&udp_frame(ip(2), ip(9))), Verdict::Accept);
    }

    #[test]
    fn empty_filter_is_cheap_accept() {
        let mut f = PacketFilter::new();
        assert_eq!(f.check(&udp_frame(ip(1), ip(2))), Verdict::Accept);
        assert_eq!(f.dropped_count(), 0);
    }
}
