//! The simulated network substrate of the Cruz reproduction.
//!
//! This crate is a from-scratch, deterministic implementation of the network
//! layers the paper's mechanisms touch:
//!
//! * [`addr`] — MAC / IPv4 / socket addressing;
//! * [`frame`] — Ethernet frames and the IPv4 packets they carry;
//! * [`switch`] + [`link`] — a learning switch and bandwidth/latency link
//!   timing (calibrated to the paper's gigabit testbed);
//! * [`arp`] — resolution and the gratuitous announcements migration uses;
//! * [`dhcp`] — leases keyed on the payload `chaddr`, the property the
//!   paper's fake-MAC trick (§4.2) exploits;
//! * [`tcp`] — a full TCP with sequence numbers, send/receive buffers,
//!   packet-boundary tracking, Nagle/`TCP_CORK`, retransmission with
//!   exponential backoff, and §4.1-style connection snapshot/restore;
//! * [`udp`] — datagrams for DHCP and the checkpoint control plane;
//! * [`filter`] — the netfilter-analogue drop rules the coordinated
//!   checkpoint protocol (§5) installs;
//! * [`stack`] — the per-host stack tying it all together, including VIF
//!   (virtual interface) management for pods.
//!
//! All protocol engines are pure, time-explicit state machines: the `cluster`
//! crate wires them to the discrete-event loop.

#![warn(missing_docs)]

pub mod addr;
pub mod arp;
pub mod dhcp;
pub mod fault;
pub mod filter;
pub mod frame;
pub mod link;
pub mod stack;
pub mod switch;
pub mod tcp;
pub mod udp;

pub use addr::{IpAddr, MacAddr, SockAddr};
pub use fault::{FrameFate, FrameFaults};
pub use frame::{EthFrame, EthPayload, Ipv4Packet, L4};
pub use stack::{NetError, NetStack, RecvOutcome, SockEvent, SocketId};
pub use tcp::{Tcb, TcpConfig, TcpSegment, TcpSnapshot, TcpState};
