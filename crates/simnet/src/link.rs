//! Link timing: bandwidth serialization and propagation delay.

use des::{SimDuration, SimTime};

/// Static parameters of a full-duplex point-to-point link (host NIC to
/// switch port).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkParams {
    /// Raw bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation plus fixed switching latency.
    pub latency: SimDuration,
}

impl LinkParams {
    /// A gigabit-Ethernet-class link, matching the paper's testbed.
    pub fn gigabit() -> Self {
        LinkParams {
            bandwidth_bps: 1_000_000_000,
            latency: SimDuration::from_micros(10),
        }
    }

    /// Serialization time of `bytes` on this link.
    pub fn tx_time(&self, bytes: usize) -> SimDuration {
        SimDuration::from_nanos(
            (bytes as u64 * 8).saturating_mul(1_000_000_000) / self.bandwidth_bps,
        )
    }
}

impl Default for LinkParams {
    fn default() -> Self {
        Self::gigabit()
    }
}

/// The dynamic state of one link direction: when its transmitter frees up.
///
/// Frames queue behind each other; a frame handed to a busy link starts
/// serializing when the previous one finishes.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkState {
    next_free: SimTime,
}

impl LinkState {
    /// Creates an idle link.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a frame of `bytes` submitted at `now`; returns its delivery
    /// time at the far end and records the transmitter busy until the end of
    /// serialization.
    pub fn schedule(&mut self, now: SimTime, bytes: usize, params: &LinkParams) -> SimTime {
        let start = if self.next_free > now {
            self.next_free
        } else {
            now
        };
        let end_of_tx = start + params.tx_time(bytes);
        self.next_free = end_of_tx;
        end_of_tx + params.latency
    }

    /// The instant this link direction becomes idle.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gigabit_serialization_time() {
        let p = LinkParams::gigabit();
        // 1500 bytes at 1 Gb/s = 12 microseconds.
        assert_eq!(p.tx_time(1500), SimDuration::from_micros(12));
    }

    #[test]
    fn frames_queue_behind_each_other() {
        let p = LinkParams {
            bandwidth_bps: 8_000_000, // 1 byte per microsecond
            latency: SimDuration::from_micros(5),
        };
        let mut l = LinkState::new();
        let t0 = SimTime::ZERO;
        let d1 = l.schedule(t0, 100, &p);
        assert_eq!(d1, t0 + SimDuration::from_micros(105));
        // Second frame submitted immediately: waits for the transmitter.
        let d2 = l.schedule(t0, 100, &p);
        assert_eq!(d2, t0 + SimDuration::from_micros(205));
        // After the link idles, a later frame starts immediately.
        let t1 = t0 + SimDuration::from_micros(1_000);
        let d3 = l.schedule(t1, 50, &p);
        assert_eq!(d3, t1 + SimDuration::from_micros(55));
    }
}
