//! The per-host network stack.
//!
//! `NetStack` is what a simulated node's kernel owns: network interfaces
//! (physical NIC plus any pod VIFs), the ARP cache, the packet filter, and
//! the TCP/UDP socket tables. It is time-explicit and side-effect free
//! except for its internal queues: incoming frames and application calls go
//! in; outgoing frames accumulate in [`NetStack::take_outgoing`] and
//! readiness transitions in [`NetStack::take_wakes`].

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use bytes::Bytes;
use des::{SimDuration, SimTime};

use crate::addr::{IpAddr, MacAddr, SockAddr};
use crate::arp::{ArpCache, ArpOp, ArpPacket};
use crate::filter::{PacketFilter, Verdict};
use crate::frame::{EthFrame, EthPayload, Ipv4Packet, L4};
use crate::tcp::seq::SeqNum;
use crate::tcp::{Tcb, TcpConfig, TcpSegment, TcpSnapshot, TcpState};
use crate::udp::UdpDatagram;

/// Identifier of a socket within one stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SocketId(pub u64);

impl fmt::Display for SocketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sock{}", self.0)
    }
}

/// Identifier of a network interface within one stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IfaceId(pub usize);

/// A network interface: the physical NIC or a pod VIF.
#[derive(Debug, Clone)]
pub struct Iface {
    /// Interface name (`eth0`, `vif3`, …).
    pub name: String,
    /// The MAC frames are sent from. VIFs may share the physical MAC.
    pub mac: MacAddr,
    /// IPs bound to this interface.
    pub ips: Vec<IpAddr>,
}

/// A readiness transition that should wake blocked processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SockEvent {
    /// Data (or EOF) became available to read.
    Readable(SocketId),
    /// Send-buffer space became available.
    Writable(SocketId),
    /// A listening socket has a connection to accept.
    Acceptable(SocketId),
    /// A connect completed (successfully or not).
    Connected(SocketId),
}

/// Errors from socket operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetError {
    /// The socket id does not exist.
    BadSocket,
    /// Operation not valid in the socket's current state.
    InvalidState,
    /// The requested local address/port is in use.
    AddrInUse,
    /// The requested local IP is not configured on any interface.
    AddrNotAvailable,
    /// No ephemeral ports left.
    PortsExhausted,
    /// The connection was reset by the peer (or aborted).
    ConnectionReset,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NetError::BadSocket => "bad socket id",
            NetError::InvalidState => "invalid socket state for operation",
            NetError::AddrInUse => "address already in use",
            NetError::AddrNotAvailable => "address not available on this host",
            NetError::PortsExhausted => "no free ephemeral ports",
            NetError::ConnectionReset => "connection reset",
        };
        f.write_str(s)
    }
}

impl std::error::Error for NetError {}

/// Result of a TCP receive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvOutcome {
    /// Bytes were read.
    Data(Vec<u8>),
    /// No data available yet; the caller should block.
    WouldBlock,
    /// Orderly end of stream.
    Eof,
}

#[derive(Debug, Clone)]
enum SockEntry {
    /// TCP socket created but neither listening nor connected.
    TcpFresh { bound: Option<SockAddr> },
    /// TCP listener.
    TcpListen {
        local: SockAddr,
        backlog: usize,
        pending: VecDeque<SocketId>,
    },
    /// TCP connection endpoint.
    TcpConn(Box<Tcb>),
    /// UDP socket.
    Udp {
        bound: Option<SockAddr>,
        queue: VecDeque<(SockAddr, Bytes)>,
    },
}

/// The per-host network stack.
pub struct NetStack {
    ifaces: Vec<Iface>,
    arp: ArpCache,
    filter: PacketFilter,
    tcp_cfg: TcpConfig,
    subnet_prefix: u8,

    socks: BTreeMap<SocketId, SockEntry>,
    conn_index: BTreeMap<(SockAddr, SockAddr), SocketId>,
    listen_index: BTreeMap<SockAddr, SocketId>,
    udp_index: BTreeMap<u16, Vec<SocketId>>,

    next_sock: u64,
    next_eph_port: u16,
    next_iss: u32,

    out: Vec<EthFrame>,
    wakes: Vec<SockEvent>,
    /// Unresolved destinations: last ARP request time and queued packets.
    pending_arp: BTreeMap<IpAddr, (SimTime, Vec<Ipv4Packet>)>,
    loopback: VecDeque<Ipv4Packet>,

    /// Frames dropped because the egress filter matched.
    pub egress_drops: u64,
}

impl fmt::Debug for NetStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetStack")
            .field("ifaces", &self.ifaces.len())
            .field("socks", &self.socks.len())
            .field("conns", &self.conn_index.len())
            .field("listeners", &self.listen_index.len())
            .finish()
    }
}

impl NetStack {
    /// Creates a stack whose physical NIC has the given MAC and IP, on a
    /// `/prefix` subnet.
    pub fn new(mac: MacAddr, ip: IpAddr, subnet_prefix: u8, tcp_cfg: TcpConfig) -> Self {
        NetStack {
            ifaces: vec![Iface {
                name: "eth0".to_owned(),
                mac,
                ips: vec![ip],
            }],
            arp: ArpCache::new(),
            filter: PacketFilter::new(),
            tcp_cfg,
            subnet_prefix,
            socks: BTreeMap::new(),
            conn_index: BTreeMap::new(),
            listen_index: BTreeMap::new(),
            udp_index: BTreeMap::new(),
            next_sock: 1,
            next_eph_port: 32768,
            next_iss: 1000,
            out: Vec::new(),
            wakes: Vec::new(),
            pending_arp: BTreeMap::new(),
            loopback: VecDeque::new(),
            egress_drops: 0,
        }
    }

    /// The host's primary IP (first address of the physical NIC).
    pub fn primary_ip(&self) -> IpAddr {
        self.ifaces[0].ips[0]
    }

    /// The physical NIC's MAC address.
    pub fn primary_mac(&self) -> MacAddr {
        self.ifaces[0].mac
    }

    /// The TCP configuration new connections use.
    pub fn tcp_config(&self) -> &TcpConfig {
        &self.tcp_cfg
    }

    /// The subnet prefix length this host considers local (the paper's
    /// migration scope: source and destination share a routing domain).
    pub fn subnet_prefix(&self) -> u8 {
        self.subnet_prefix
    }

    /// Mutable access to the packet filter (the Checkpoint Agent's hook).
    pub fn filter_mut(&mut self) -> &mut PacketFilter {
        &mut self.filter
    }

    /// Read access to the packet filter.
    pub fn filter(&self) -> &PacketFilter {
        &self.filter
    }

    /// Read access to the ARP cache.
    pub fn arp_cache(&self) -> &ArpCache {
        &self.arp
    }

    // ---- interface management (VIF support) ------------------------------

    /// Attaches a new interface (a pod VIF). Returns its id.
    pub fn add_iface(
        &mut self,
        name: impl Into<String>,
        mac: MacAddr,
        ips: Vec<IpAddr>,
    ) -> IfaceId {
        self.ifaces.push(Iface {
            name: name.into(),
            mac,
            ips,
        });
        IfaceId(self.ifaces.len() - 1)
    }

    /// Detaches an interface by name (the physical NIC cannot be removed).
    /// Returns true if an interface was removed.
    pub fn remove_iface(&mut self, name: &str) -> bool {
        if let Some(pos) = self.ifaces.iter().skip(1).position(|i| i.name == name) {
            self.ifaces.remove(pos + 1);
            true
        } else {
            false
        }
    }

    /// Looks up an interface by name.
    pub fn iface(&self, name: &str) -> Option<&Iface> {
        self.ifaces.iter().find(|i| i.name == name)
    }

    /// All local IPs across interfaces.
    pub fn local_ips(&self) -> Vec<IpAddr> {
        self.ifaces
            .iter()
            .flat_map(|i| i.ips.iter().copied())
            .collect()
    }

    /// True if `ip` is bound to any local interface.
    pub fn is_local_ip(&self, ip: IpAddr) -> bool {
        self.ifaces.iter().any(|i| i.ips.contains(&ip))
    }

    /// Broadcasts a gratuitous ARP binding `ip` to `mac` — the §4.2 update
    /// a migrated pod's new host sends.
    pub fn send_gratuitous_arp(&mut self, ip: IpAddr, mac: MacAddr) {
        let pkt = ArpPacket::gratuitous(mac, ip);
        self.emit_frame(EthFrame::new(mac, MacAddr::BROADCAST, EthPayload::Arp(pkt)));
    }

    // ---- host-facing queues ----------------------------------------------

    /// Drains frames queued for transmission on the physical link.
    pub fn take_outgoing(&mut self) -> Vec<EthFrame> {
        std::mem::take(&mut self.out)
    }

    /// Drains readiness transitions since the last call.
    pub fn take_wakes(&mut self) -> Vec<SockEvent> {
        std::mem::take(&mut self.wakes)
    }

    /// The earliest pending protocol timer across all sockets.
    pub fn next_timer(&self) -> Option<SimTime> {
        self.socks
            .values()
            .filter_map(|s| match s {
                SockEntry::TcpConn(tcb) => tcb.next_timer(),
                _ => None,
            })
            .min()
    }

    /// Fires all protocol timers that are due at `now`.
    pub fn on_timer(&mut self, now: SimTime) {
        let due: Vec<SocketId> = self
            .socks
            .iter()
            .filter_map(|(&sid, s)| match s {
                SockEntry::TcpConn(tcb) => match tcb.next_timer() {
                    Some(d) if d <= now => Some(sid),
                    _ => None,
                },
                _ => None,
            })
            .collect();
        for sid in due {
            let (segs, local, remote, before, after) = {
                let Some(SockEntry::TcpConn(tcb)) = self.socks.get_mut(&sid) else {
                    continue;
                };
                let before = readiness(tcb);
                let segs = tcb.on_timer(now);
                let after = readiness(tcb);
                (segs, tcb.local(), tcb.remote(), before, after)
            };
            self.push_readiness_wakes(sid, before, after);
            self.route_segments(local, remote, segs, now);
            self.reap_closed(sid);
        }
        self.drain_loopback(now);
    }

    // ---- frame input -------------------------------------------------------

    /// Processes a frame received from the wire at `now`.
    pub fn on_frame(&mut self, frame: EthFrame, now: SimTime) {
        // Accept frames addressed to any local MAC or broadcast.
        let for_us = frame.dst.is_broadcast() || self.ifaces.iter().any(|i| i.mac == frame.dst);
        if !for_us {
            return;
        }
        if self.filter.check(&frame) == Verdict::Drop {
            return;
        }
        match frame.payload {
            EthPayload::Arp(arp) => self.on_arp(arp, now),
            EthPayload::Ipv4(pkt) => {
                self.on_ipv4(pkt, now);
                self.drain_loopback(now);
            }
        }
    }

    fn on_arp(&mut self, arp: ArpPacket, now: SimTime) {
        self.arp.observe(&arp);
        // Flush packets that were waiting on this resolution.
        if let Some((_, waiting)) = self.pending_arp.remove(&arp.sender_ip) {
            for pkt in waiting {
                self.send_ip(pkt, now);
            }
        }
        if arp.op == ArpOp::Request {
            if let Some(iface) = self.ifaces.iter().find(|i| i.ips.contains(&arp.target_ip)) {
                let reply = ArpPacket::reply(&arp, iface.mac, arp.target_ip);
                let frame = EthFrame::new(iface.mac, arp.sender_mac, EthPayload::Arp(reply));
                self.emit_frame(frame);
            }
        }
        self.drain_loopback(now);
    }

    fn on_ipv4(&mut self, pkt: Ipv4Packet, now: SimTime) {
        let local = pkt.dst.is_broadcast() || self.is_local_ip(pkt.dst);
        if !local {
            return;
        }
        match pkt.payload {
            L4::Tcp(seg) => self.on_tcp_segment(pkt.src, pkt.dst, seg, now),
            L4::Udp(dgram) => self.on_udp_datagram(pkt.src, pkt.dst, dgram),
        }
    }

    fn on_tcp_segment(&mut self, src_ip: IpAddr, dst_ip: IpAddr, seg: TcpSegment, now: SimTime) {
        let local = SockAddr::new(dst_ip, seg.dst_port);
        let remote = SockAddr::new(src_ip, seg.src_port);
        // Established connection?
        if let Some(&sid) = self.conn_index.get(&(local, remote)) {
            let (replies, l, r, before, after, newly_connected) = {
                let Some(SockEntry::TcpConn(tcb)) = self.socks.get_mut(&sid) else {
                    return;
                };
                let before = readiness(tcb);
                let was_connected = tcb.is_connected();
                let replies = tcb.on_segment(&seg, now);
                let after = readiness(tcb);
                let newly_connected = !was_connected && tcb.is_connected();
                (
                    replies,
                    tcb.local(),
                    tcb.remote(),
                    before,
                    after,
                    newly_connected,
                )
            };
            self.push_readiness_wakes(sid, before, after);
            if newly_connected {
                self.wakes.push(SockEvent::Connected(sid));
                // Notify the parent listener, if this was a pending child.
                self.promote_pending_child(sid);
            }
            self.route_segments(l, r, replies, now);
            self.reap_closed(sid);
            return;
        }
        // A listener?
        let listener = self
            .listen_index
            .get(&local)
            .or_else(|| {
                self.listen_index
                    .get(&SockAddr::new(IpAddr::UNSPECIFIED, seg.dst_port))
            })
            .copied();
        if let Some(lsid) = listener {
            if seg.flags.syn && !seg.flags.ack {
                self.spawn_child(lsid, local, remote, &seg, now);
                return;
            }
        }
        // No home for this segment: RST (unless it is itself a RST).
        if !seg.flags.rst {
            let rst = TcpSegment {
                src_port: seg.dst_port,
                dst_port: seg.src_port,
                seq: seg.ack,
                ack: seg.seq_end(),
                flags: crate::tcp::TcpFlags::RST,
                window: 0,
                payload: Bytes::new(),
            };
            self.send_ip(
                Ipv4Packet {
                    src: dst_ip,
                    dst: src_ip,
                    payload: L4::Tcp(rst),
                },
                now,
            );
        }
    }

    fn spawn_child(
        &mut self,
        lsid: SocketId,
        local: SockAddr,
        remote: SockAddr,
        syn: &TcpSegment,
        now: SimTime,
    ) {
        // Check backlog capacity.
        let Some(SockEntry::TcpListen {
            backlog, pending, ..
        }) = self.socks.get(&lsid)
        else {
            return;
        };
        if pending.len() >= *backlog {
            return; // silently drop the SYN; client will retransmit
        }
        let iss = self.alloc_iss();
        let (tcb, segs) = Tcb::accept_syn(self.tcp_cfg.clone(), local, remote, iss, syn, now);
        let sid = self.alloc_sock();
        self.socks.insert(sid, SockEntry::TcpConn(Box::new(tcb)));
        self.conn_index.insert((local, remote), sid);
        if let Some(SockEntry::TcpListen { pending, .. }) = self.socks.get_mut(&lsid) {
            pending.push_back(sid);
        }
        self.route_segments(local, remote, segs, now);
    }

    /// When a pending child completes its handshake, wake accepters.
    fn promote_pending_child(&mut self, child: SocketId) {
        let parent = self.socks.iter().find_map(|(&sid, s)| match s {
            SockEntry::TcpListen { pending, .. } if pending.contains(&child) => Some(sid),
            _ => None,
        });
        if let Some(p) = parent {
            self.wakes.push(SockEvent::Acceptable(p));
        }
    }

    fn on_udp_datagram(&mut self, src_ip: IpAddr, dst_ip: IpAddr, dgram: UdpDatagram) {
        let Some(sids) = self.udp_index.get(&dgram.dst_port) else {
            return;
        };
        let from = SockAddr::new(src_ip, dgram.src_port);
        let sids = sids.clone();
        for sid in sids {
            if let Some(SockEntry::Udp { bound, queue }) = self.socks.get_mut(&sid) {
                // Respect a specific bound IP unless the packet is broadcast.
                if let Some(b) = bound {
                    if !b.ip.is_unspecified() && b.ip != dst_ip && !dst_ip.is_broadcast() {
                        continue;
                    }
                }
                queue.push_back((from, dgram.payload.clone()));
                self.wakes.push(SockEvent::Readable(sid));
            }
        }
    }

    // ---- socket API: common ----------------------------------------------

    /// Creates a TCP socket.
    pub fn tcp_socket(&mut self) -> SocketId {
        let sid = self.alloc_sock();
        self.socks.insert(sid, SockEntry::TcpFresh { bound: None });
        sid
    }

    /// Creates a UDP socket.
    pub fn udp_socket(&mut self) -> SocketId {
        let sid = self.alloc_sock();
        self.socks.insert(
            sid,
            SockEntry::Udp {
                bound: None,
                queue: VecDeque::new(),
            },
        );
        sid
    }

    /// Closes and removes a socket. TCP connections close gracefully.
    pub fn close(&mut self, sid: SocketId, now: SimTime) {
        let Some(entry) = self.socks.get_mut(&sid) else {
            return;
        };
        match entry {
            SockEntry::TcpConn(tcb) => {
                let segs = tcb.close(now);
                let (l, r) = (tcb.local(), tcb.remote());
                self.route_segments(l, r, segs, now);
                self.reap_closed(sid);
            }
            SockEntry::TcpListen { local, .. } => {
                let local = *local;
                self.listen_index.remove(&local);
                self.socks.remove(&sid);
            }
            SockEntry::Udp { bound, .. } => {
                if let Some(b) = *bound {
                    if let Some(v) = self.udp_index.get_mut(&b.port) {
                        v.retain(|&s| s != sid);
                        if v.is_empty() {
                            self.udp_index.remove(&b.port);
                        }
                    }
                }
                self.socks.remove(&sid);
            }
            SockEntry::TcpFresh { .. } => {
                self.socks.remove(&sid);
            }
        }
        self.drain_loopback(now);
    }

    /// Binds a socket to a local address. An unspecified IP means "any local
    /// address"; port 0 allocates an ephemeral port.
    ///
    /// # Errors
    ///
    /// [`NetError::AddrNotAvailable`] if the IP is not local,
    /// [`NetError::AddrInUse`] if the port is taken,
    /// [`NetError::InvalidState`] if the socket is already connected or
    /// listening.
    pub fn bind(&mut self, sid: SocketId, addr: SockAddr) -> Result<SockAddr, NetError> {
        if !addr.ip.is_unspecified() && !self.is_local_ip(addr.ip) {
            return Err(NetError::AddrNotAvailable);
        }
        let port = if addr.port == 0 {
            self.alloc_ephemeral_port()?
        } else {
            addr.port
        };
        let resolved = SockAddr::new(addr.ip, port);
        match self.socks.get_mut(&sid) {
            Some(SockEntry::TcpFresh { bound }) => {
                if self.listen_index.contains_key(&resolved) {
                    return Err(NetError::AddrInUse);
                }
                *bound = Some(resolved);
                Ok(resolved)
            }
            Some(SockEntry::Udp { bound, .. }) => {
                if bound.is_some() {
                    return Err(NetError::InvalidState);
                }
                *bound = Some(resolved);
                self.udp_index.entry(port).or_default().push(sid);
                Ok(resolved)
            }
            Some(_) => Err(NetError::InvalidState),
            None => Err(NetError::BadSocket),
        }
    }

    // ---- socket API: TCP ---------------------------------------------------

    /// Puts a bound TCP socket into the listening state.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidState`] if the socket is not a fresh bound TCP
    /// socket; [`NetError::AddrInUse`] if another listener owns the address.
    pub fn tcp_listen(&mut self, sid: SocketId, backlog: usize) -> Result<(), NetError> {
        let entry = self.socks.get(&sid).ok_or(NetError::BadSocket)?;
        let SockEntry::TcpFresh { bound: Some(local) } = entry else {
            return Err(NetError::InvalidState);
        };
        let local = *local;
        if self.listen_index.contains_key(&local) {
            return Err(NetError::AddrInUse);
        }
        self.socks.insert(
            sid,
            SockEntry::TcpListen {
                local,
                backlog: backlog.max(1),
                pending: VecDeque::new(),
            },
        );
        self.listen_index.insert(local, sid);
        Ok(())
    }

    /// Accepts an established connection from a listener's queue.
    /// Returns `None` when no fully established child is ready.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidState`] if `sid` is not listening.
    pub fn tcp_accept(&mut self, sid: SocketId) -> Result<Option<(SocketId, SockAddr)>, NetError> {
        // Find the first pending child whose handshake completed.
        let ready = {
            let entry = self.socks.get(&sid).ok_or(NetError::BadSocket)?;
            let SockEntry::TcpListen { pending, .. } = entry else {
                return Err(NetError::InvalidState);
            };
            pending.iter().copied().find(|child| {
                matches!(
                    self.socks.get(child),
                    Some(SockEntry::TcpConn(tcb)) if tcb.is_connected() && !tcb.is_reset()
                )
            })
        };
        let Some(child) = ready else {
            // Also purge dead pending children.
            self.prune_pending(sid);
            return Ok(None);
        };
        if let Some(SockEntry::TcpListen { pending, .. }) = self.socks.get_mut(&sid) {
            pending.retain(|&c| c != child);
        }
        let remote = match self.socks.get(&child) {
            Some(SockEntry::TcpConn(tcb)) => tcb.remote(),
            _ => return Ok(None),
        };
        Ok(Some((child, remote)))
    }

    fn prune_pending(&mut self, sid: SocketId) {
        let dead: Vec<SocketId> = {
            let Some(SockEntry::TcpListen { pending, .. }) = self.socks.get(&sid) else {
                return;
            };
            pending
                .iter()
                .copied()
                .filter(|c| {
                    matches!(self.socks.get(c), Some(SockEntry::TcpConn(tcb)) if tcb.is_reset())
                        || !self.socks.contains_key(c)
                })
                .collect()
        };
        if dead.is_empty() {
            return;
        }
        if let Some(SockEntry::TcpListen { pending, .. }) = self.socks.get_mut(&sid) {
            pending.retain(|c| !dead.contains(c));
        }
        for c in dead {
            self.remove_conn(c);
        }
    }

    /// Starts an active connection to `remote`. The socket may be bound; if
    /// not, the stack binds it to the primary IP and an ephemeral port (the
    /// implicit bind the paper's Zap intercepts).
    ///
    /// # Errors
    ///
    /// Propagates bind errors; [`NetError::InvalidState`] if the socket is
    /// not fresh.
    pub fn tcp_connect(
        &mut self,
        sid: SocketId,
        remote: SockAddr,
        now: SimTime,
    ) -> Result<(), NetError> {
        let entry = self.socks.get(&sid).ok_or(NetError::BadSocket)?;
        let SockEntry::TcpFresh { bound } = entry else {
            return Err(NetError::InvalidState);
        };
        let local = match bound {
            Some(b) if !b.ip.is_unspecified() && b.port != 0 => *b,
            Some(b) => {
                let ip = if b.ip.is_unspecified() {
                    self.primary_ip()
                } else {
                    b.ip
                };
                let port = if b.port == 0 {
                    self.alloc_ephemeral_port()?
                } else {
                    b.port
                };
                SockAddr::new(ip, port)
            }
            None => SockAddr::new(self.primary_ip(), self.alloc_ephemeral_port()?),
        };
        if self.conn_index.contains_key(&(local, remote)) {
            return Err(NetError::AddrInUse);
        }
        let iss = self.alloc_iss();
        let (tcb, segs) = Tcb::connect(self.tcp_cfg.clone(), local, remote, iss, now);
        self.socks.insert(sid, SockEntry::TcpConn(Box::new(tcb)));
        self.conn_index.insert((local, remote), sid);
        self.route_segments(local, remote, segs, now);
        self.drain_loopback(now);
        Ok(())
    }

    /// Sends data on a connection; returns bytes accepted (0 ⇒ would block).
    ///
    /// # Errors
    ///
    /// [`NetError::ConnectionReset`] after a reset;
    /// [`NetError::InvalidState`] if not a connection.
    pub fn tcp_send(
        &mut self,
        sid: SocketId,
        data: &[u8],
        now: SimTime,
    ) -> Result<usize, NetError> {
        let (n, segs, l, r) = {
            let tcb = self.conn_mut(sid)?;
            if tcb.is_reset() {
                return Err(NetError::ConnectionReset);
            }
            let (n, segs) = tcb.write(data, now);
            (n, segs, tcb.local(), tcb.remote())
        };
        self.route_segments(l, r, segs, now);
        self.drain_loopback(now);
        Ok(n)
    }

    /// Receives up to `max` bytes from a connection.
    ///
    /// # Errors
    ///
    /// [`NetError::ConnectionReset`] if the connection was reset with no
    /// data left; [`NetError::InvalidState`] if not a connection.
    pub fn tcp_recv(
        &mut self,
        sid: SocketId,
        max: usize,
        now: SimTime,
    ) -> Result<RecvOutcome, NetError> {
        let (out, segs, l, r) = {
            let tcb = self.conn_mut(sid)?;
            let (data, segs) = tcb.read(max, now);
            let outcome = if !data.is_empty() {
                RecvOutcome::Data(data)
            } else if tcb.is_reset() {
                return Err(NetError::ConnectionReset);
            } else if tcb.state().peer_closed() {
                RecvOutcome::Eof
            } else {
                RecvOutcome::WouldBlock
            };
            (outcome, segs, tcb.local(), tcb.remote())
        };
        self.route_segments(l, r, segs, now);
        self.drain_loopback(now);
        Ok(out)
    }

    /// Returns all undelivered in-order data without consuming it
    /// (`MSG_PEEK`).
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidState`] if not a connection.
    pub fn tcp_peek(&self, sid: SocketId) -> Result<Vec<u8>, NetError> {
        Ok(self.conn(sid)?.peek())
    }

    /// Sets `TCP_NODELAY`.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidState`] if not a connection.
    pub fn tcp_set_nodelay(
        &mut self,
        sid: SocketId,
        on: bool,
        now: SimTime,
    ) -> Result<(), NetError> {
        let (segs, l, r) = {
            let tcb = self.conn_mut(sid)?;
            let segs = tcb.set_nodelay(on, now);
            (segs, tcb.local(), tcb.remote())
        };
        self.route_segments(l, r, segs, now);
        self.drain_loopback(now);
        Ok(())
    }

    /// Sets `TCP_CORK`.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidState`] if not a connection.
    pub fn tcp_set_cork(&mut self, sid: SocketId, on: bool, now: SimTime) -> Result<(), NetError> {
        let (segs, l, r) = {
            let tcb = self.conn_mut(sid)?;
            let segs = tcb.set_cork(on, now);
            (segs, tcb.local(), tcb.remote())
        };
        self.route_segments(l, r, segs, now);
        self.drain_loopback(now);
        Ok(())
    }

    /// Readiness and status of a TCP connection.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidState`] if not a connection.
    pub fn tcp_info(&self, sid: SocketId) -> Result<TcpSockInfo, NetError> {
        let tcb = self.conn(sid)?;
        Ok(TcpSockInfo {
            state: tcb.state(),
            local: tcb.local(),
            remote: tcb.remote(),
            readable: tcb.is_readable(),
            writable: tcb.is_writable(),
            connected: tcb.is_connected(),
            reset: tcb.is_reset(),
            recv_len: tcb.recv_len(),
            send_len: tcb.send_len(),
            nodelay: tcb.nodelay(),
            cork: tcb.cork(),
            delivered: tcb.delivered(),
        })
    }

    /// True if `sid` refers to a listening socket.
    pub fn is_listener(&self, sid: SocketId) -> bool {
        matches!(self.socks.get(&sid), Some(SockEntry::TcpListen { .. }))
    }

    /// Local address of a listener or fresh bound socket.
    pub fn tcp_local_addr(&self, sid: SocketId) -> Option<SockAddr> {
        match self.socks.get(&sid)? {
            SockEntry::TcpListen { local, .. } => Some(*local),
            SockEntry::TcpFresh { bound } => *bound,
            SockEntry::TcpConn(tcb) => Some(tcb.local()),
            SockEntry::Udp { bound, .. } => *bound,
        }
    }

    // ---- socket API: UDP ---------------------------------------------------

    /// Sends a datagram. The socket is implicitly bound if needed.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidState`] if not a UDP socket; bind errors propagate.
    pub fn udp_send_to(
        &mut self,
        sid: SocketId,
        dst: SockAddr,
        payload: Bytes,
        now: SimTime,
    ) -> Result<(), NetError> {
        let bound = match self.socks.get(&sid) {
            Some(SockEntry::Udp { bound, .. }) => *bound,
            Some(_) => return Err(NetError::InvalidState),
            None => return Err(NetError::BadSocket),
        };
        let local = match bound {
            Some(b) => b,
            None => {
                let b = SockAddr::new(self.primary_ip(), 0);
                self.bind(sid, b)?
            }
        };
        let src_ip = if local.ip.is_unspecified() {
            self.primary_ip()
        } else {
            local.ip
        };
        let dgram = UdpDatagram::new(local.port, dst.port, payload);
        self.send_ip(
            Ipv4Packet {
                src: src_ip,
                dst: dst.ip,
                payload: L4::Udp(dgram),
            },
            now,
        );
        self.drain_loopback(now);
        Ok(())
    }

    /// Receives one queued datagram, if any.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidState`] if not a UDP socket.
    pub fn udp_recv_from(&mut self, sid: SocketId) -> Result<Option<(SockAddr, Bytes)>, NetError> {
        match self.socks.get_mut(&sid) {
            Some(SockEntry::Udp { queue, .. }) => Ok(queue.pop_front()),
            Some(_) => Err(NetError::InvalidState),
            None => Err(NetError::BadSocket),
        }
    }

    // ---- checkpoint/restore support (used by the Zap layer) ---------------

    /// Takes the §4.1 snapshot of a TCP connection.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidState`] if not an established-family connection.
    pub fn tcp_snapshot(&self, sid: SocketId) -> Result<TcpSnapshot, NetError> {
        let tcb = self.conn(sid)?;
        if !tcb.is_connected() || tcb.is_reset() || tcb.state() == TcpState::Closed {
            return Err(NetError::InvalidState);
        }
        Ok(tcb.snapshot())
    }

    /// Recreates a connection endpoint from a snapshot with empty buffers at
    /// the rewritten sequence numbers. The caller replays the saved send
    /// data afterwards.
    ///
    /// # Errors
    ///
    /// [`NetError::AddrInUse`] if an endpoint with the same 4-tuple exists.
    pub fn tcp_restore(&mut self, snap: &TcpSnapshot) -> Result<SocketId, NetError> {
        let key = (snap.local, snap.remote);
        if self.conn_index.contains_key(&key) {
            return Err(NetError::AddrInUse);
        }
        let tcb = Tcb::restore(self.tcp_cfg.clone(), snap);
        let sid = self.alloc_sock();
        self.socks.insert(sid, SockEntry::TcpConn(Box::new(tcb)));
        self.conn_index.insert(key, sid);
        Ok(sid)
    }

    /// Recreates a listening socket on `local`.
    ///
    /// # Errors
    ///
    /// [`NetError::AddrInUse`] if the address already has a listener.
    pub fn tcp_restore_listener(
        &mut self,
        local: SockAddr,
        backlog: usize,
    ) -> Result<SocketId, NetError> {
        if self.listen_index.contains_key(&local) {
            return Err(NetError::AddrInUse);
        }
        let sid = self.alloc_sock();
        self.socks.insert(
            sid,
            SockEntry::TcpListen {
                local,
                backlog: backlog.max(1),
                pending: VecDeque::new(),
            },
        );
        self.listen_index.insert(local, sid);
        Ok(sid)
    }

    /// Removes a connection endpoint without any wire traffic (used when a
    /// checkpointed pod's sockets are torn down on the source host after
    /// migration).
    pub fn tcp_discard(&mut self, sid: SocketId) {
        match self.socks.get(&sid) {
            Some(SockEntry::TcpConn(_)) => self.remove_conn(sid),
            Some(SockEntry::TcpListen { local, pending, .. }) => {
                let local = *local;
                // Established-but-unaccepted children exist only through
                // the listener: discard them with it.
                let children: Vec<SocketId> = pending.iter().copied().collect();
                for child in children {
                    self.remove_conn(child);
                }
                self.listen_index.remove(&local);
                self.socks.remove(&sid);
            }
            Some(_) => {
                self.socks.remove(&sid);
            }
            None => {}
        }
    }

    /// Snapshots the fully established, not-yet-accepted children sitting in
    /// a listener's accept queue. Mid-handshake (`SynRcvd`) children are
    /// omitted: their client side is still in `SynSent` and will simply
    /// retransmit its SYN after restore, creating a fresh child.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidState`] if `sid` is not a listener.
    pub fn tcp_listener_pending(&self, sid: SocketId) -> Result<Vec<TcpSnapshot>, NetError> {
        let entry = self.socks.get(&sid).ok_or(NetError::BadSocket)?;
        let SockEntry::TcpListen { pending, .. } = entry else {
            return Err(NetError::InvalidState);
        };
        Ok(pending
            .iter()
            .filter_map(|child| match self.socks.get(child) {
                Some(SockEntry::TcpConn(tcb))
                    if tcb.is_connected() && !tcb.is_reset() && tcb.state() != TcpState::Closed =>
                {
                    Some(tcb.snapshot())
                }
                _ => None,
            })
            .collect())
    }

    /// Restores a connection into a listener's accept queue (the restore
    /// path for [`NetStack::tcp_listener_pending`]).
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidState`] if `lsid` is not a listener;
    /// [`NetError::AddrInUse`] if the 4-tuple already exists.
    pub fn tcp_restore_into_listener(
        &mut self,
        lsid: SocketId,
        snap: &TcpSnapshot,
    ) -> Result<SocketId, NetError> {
        if !self.is_listener(lsid) {
            return Err(NetError::InvalidState);
        }
        let sid = self.tcp_restore(snap)?;
        if let Some(SockEntry::TcpListen { pending, .. }) = self.socks.get_mut(&lsid) {
            pending.push_back(sid);
        }
        Ok(sid)
    }

    /// Snapshot of a UDP socket: its bound address and queued datagrams.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidState`] if not a UDP socket.
    pub fn udp_snapshot(&self, sid: SocketId) -> Result<UdpSnapshot, NetError> {
        match self.socks.get(&sid) {
            Some(SockEntry::Udp { bound, queue }) => Ok(UdpSnapshot {
                bound: *bound,
                queue: queue.iter().map(|(a, b)| (*a, b.to_vec())).collect(),
            }),
            Some(_) => Err(NetError::InvalidState),
            None => Err(NetError::BadSocket),
        }
    }

    /// Recreates a UDP socket from a snapshot.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn udp_restore(&mut self, snap: &UdpSnapshot) -> Result<SocketId, NetError> {
        let sid = self.udp_socket();
        if let Some(b) = snap.bound {
            self.bind(sid, b)?;
        }
        if let Some(SockEntry::Udp { queue, .. }) = self.socks.get_mut(&sid) {
            for (from, data) in &snap.queue {
                queue.push_back((*from, Bytes::from(data.clone())));
            }
        }
        Ok(sid)
    }

    /// Listener backlog size, for checkpointing listeners.
    pub fn tcp_listener_backlog(&self, sid: SocketId) -> Option<usize> {
        match self.socks.get(&sid)? {
            SockEntry::TcpListen { backlog, .. } => Some(*backlog),
            _ => None,
        }
    }

    // ---- internals ---------------------------------------------------------

    fn conn(&self, sid: SocketId) -> Result<&Tcb, NetError> {
        match self.socks.get(&sid) {
            Some(SockEntry::TcpConn(tcb)) => Ok(tcb),
            Some(_) => Err(NetError::InvalidState),
            None => Err(NetError::BadSocket),
        }
    }

    fn conn_mut(&mut self, sid: SocketId) -> Result<&mut Tcb, NetError> {
        match self.socks.get_mut(&sid) {
            Some(SockEntry::TcpConn(tcb)) => Ok(tcb),
            Some(_) => Err(NetError::InvalidState),
            None => Err(NetError::BadSocket),
        }
    }

    fn alloc_sock(&mut self) -> SocketId {
        let sid = SocketId(self.next_sock);
        self.next_sock += 1;
        sid
    }

    fn alloc_iss(&mut self) -> SeqNum {
        let iss = self.next_iss;
        self.next_iss = self.next_iss.wrapping_add(64_021);
        SeqNum::new(iss)
    }

    fn alloc_ephemeral_port(&mut self) -> Result<u16, NetError> {
        for _ in 0..28_000 {
            let p = self.next_eph_port;
            self.next_eph_port = if self.next_eph_port >= 60_000 {
                32_768
            } else {
                self.next_eph_port + 1
            };
            let used = self.udp_index.contains_key(&p)
                || self.conn_index.keys().any(|(l, _)| l.port == p)
                || self.listen_index.keys().any(|l| l.port == p);
            if !used {
                return Ok(p);
            }
        }
        Err(NetError::PortsExhausted)
    }

    fn push_readiness_wakes(&mut self, sid: SocketId, before: (bool, bool), after: (bool, bool)) {
        if !before.0 && after.0 {
            self.wakes.push(SockEvent::Readable(sid));
        }
        if !before.1 && after.1 {
            self.wakes.push(SockEvent::Writable(sid));
        }
    }

    /// Wraps segments of a connection into IPv4 packets and routes them.
    fn route_segments(
        &mut self,
        local: SockAddr,
        remote: SockAddr,
        segs: Vec<TcpSegment>,
        now: SimTime,
    ) {
        for seg in segs {
            self.send_ip(
                Ipv4Packet {
                    src: local.ip,
                    dst: remote.ip,
                    payload: L4::Tcp(seg),
                },
                now,
            );
        }
    }

    /// Routes an outgoing IPv4 packet: egress filter, loopback short-circuit,
    /// ARP resolution, frame emission.
    fn send_ip(&mut self, pkt: Ipv4Packet, now: SimTime) {
        // Egress filter — built from the same rules as ingress, so a drop
        // rule really silences the pod in both directions.
        let probe = EthFrame::new(
            MacAddr::default(),
            MacAddr::default(),
            EthPayload::Ipv4(pkt.clone()),
        );
        if self.filter.check(&probe) == Verdict::Drop {
            self.egress_drops += 1;
            return;
        }
        let src_mac = self.mac_for_ip(pkt.src);
        if pkt.dst.is_broadcast() {
            // Deliver locally too (a broadcast reaches our own listeners).
            self.loopback.push_back(pkt.clone());
            let frame = EthFrame::new(src_mac, MacAddr::BROADCAST, EthPayload::Ipv4(pkt));
            self.emit_frame(frame);
            return;
        }
        if self.is_local_ip(pkt.dst) {
            self.loopback.push_back(pkt);
            return;
        }
        match self.arp.lookup(pkt.dst) {
            Some(dst_mac) => {
                let frame = EthFrame::new(src_mac, dst_mac, EthPayload::Ipv4(pkt));
                self.emit_frame(frame);
            }
            None => {
                // Queue and resolve. Requests can be lost, so retry when a
                // new packet queues after the retry interval (ARP itself has
                // no reliability; senders above keep generating traffic).
                const ARP_RETRY: SimDuration = SimDuration::from_millis(500);
                const ARP_QUEUE_CAP: usize = 256;
                let src_ip = pkt.src;
                let dst_ip = pkt.dst;
                let entry = self
                    .pending_arp
                    .entry(dst_ip)
                    .or_insert_with(|| (SimTime::ZERO, Vec::new()));
                let first = entry.1.is_empty();
                if entry.1.len() < ARP_QUEUE_CAP {
                    entry.1.push(pkt);
                }
                if first || now >= entry.0 + ARP_RETRY {
                    entry.0 = now;
                    let req = ArpPacket::request(src_mac, src_ip, dst_ip);
                    let frame = EthFrame::new(src_mac, MacAddr::BROADCAST, EthPayload::Arp(req));
                    self.emit_frame(frame);
                }
            }
        }
    }

    /// The MAC of the interface owning `ip` (physical NIC as fallback).
    fn mac_for_ip(&self, ip: IpAddr) -> MacAddr {
        self.ifaces
            .iter()
            .find(|i| i.ips.contains(&ip))
            .map(|i| i.mac)
            .unwrap_or_else(|| self.primary_mac())
    }

    fn emit_frame(&mut self, frame: EthFrame) {
        self.out.push(frame);
    }

    /// Delivers packets addressed host-locally without touching the wire.
    fn drain_loopback(&mut self, now: SimTime) {
        let mut guard = 0;
        while let Some(pkt) = self.loopback.pop_front() {
            guard += 1;
            if guard > 10_000 {
                // A pathological local ping-pong; bail out rather than spin.
                self.loopback.clear();
                return;
            }
            self.on_ipv4(pkt, now);
        }
    }

    /// Cleans up a connection once it reaches `Closed` with no reader left
    /// interested. We keep reset/EOF connections around until explicitly
    /// closed so applications can observe the condition; fully closed and
    /// acknowledged connections disappear.
    fn reap_closed(&mut self, sid: SocketId) {
        let remove = match self.socks.get(&sid) {
            Some(SockEntry::TcpConn(tcb)) => {
                tcb.state() == TcpState::Closed && !tcb.is_reset() && !tcb.is_readable()
            }
            _ => false,
        };
        if remove {
            self.remove_conn(sid);
        }
    }

    fn remove_conn(&mut self, sid: SocketId) {
        if let Some(SockEntry::TcpConn(tcb)) = self.socks.remove(&sid) {
            self.conn_index.remove(&(tcb.local(), tcb.remote()));
        }
    }
}

/// Checkpointed state of a UDP socket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpSnapshot {
    /// Bound local address, if any.
    pub bound: Option<SockAddr>,
    /// Queued, undelivered datagrams.
    pub queue: Vec<(SockAddr, Vec<u8>)>,
}

/// A point-in-time view of a TCP connection's status and readiness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpSockInfo {
    /// Connection state.
    pub state: TcpState,
    /// Local endpoint.
    pub local: SockAddr,
    /// Remote endpoint.
    pub remote: SockAddr,
    /// Whether a read would make progress.
    pub readable: bool,
    /// Whether a write would make progress.
    pub writable: bool,
    /// Whether the handshake finished.
    pub connected: bool,
    /// Whether the connection was reset.
    pub reset: bool,
    /// Undelivered received bytes.
    pub recv_len: usize,
    /// Unacknowledged send bytes.
    pub send_len: usize,
    /// `TCP_NODELAY` flag.
    pub nodelay: bool,
    /// `TCP_CORK` flag.
    pub cork: bool,
    /// Total stream bytes delivered to the application.
    pub delivered: u64,
}

fn readiness(tcb: &Tcb) -> (bool, bool) {
    (tcb.is_readable(), tcb.is_writable())
}
