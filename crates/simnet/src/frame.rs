//! Ethernet frames and the IPv4 packets they carry.

use std::fmt;

use crate::addr::{IpAddr, MacAddr};
use crate::arp::ArpPacket;
use crate::tcp::TcpSegment;
use crate::udp::UdpDatagram;

/// Ethernet header + FCS overhead in bytes.
pub const ETH_OVERHEAD: usize = 18;

/// Transport payload of an IPv4 packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum L4 {
    /// A TCP segment.
    Tcp(TcpSegment),
    /// A UDP datagram.
    Udp(UdpDatagram),
}

/// An IPv4 packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Packet {
    /// Source address.
    pub src: IpAddr,
    /// Destination address.
    pub dst: IpAddr,
    /// Transport payload.
    pub payload: L4,
}

impl Ipv4Packet {
    /// Bytes on the wire including IP and transport headers.
    pub fn wire_len(&self) -> usize {
        match &self.payload {
            L4::Tcp(t) => t.wire_len(),
            L4::Udp(u) => u.wire_len(),
        }
    }
}

impl fmt::Display for Ipv4Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.payload {
            L4::Tcp(t) => write!(f, "ip {} -> {} {}", self.src, self.dst, t),
            L4::Udp(u) => write!(f, "ip {} -> {} {}", self.src, self.dst, u),
        }
    }
}

/// Payload of an Ethernet frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EthPayload {
    /// An ARP packet.
    Arp(ArpPacket),
    /// An IPv4 packet.
    Ipv4(Ipv4Packet),
}

/// An Ethernet frame: the unit the switch forwards and links serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EthFrame {
    /// Source MAC.
    pub src: MacAddr,
    /// Destination MAC (possibly broadcast).
    pub dst: MacAddr,
    /// Payload.
    pub payload: EthPayload,
}

impl EthFrame {
    /// Creates a frame.
    pub fn new(src: MacAddr, dst: MacAddr, payload: EthPayload) -> Self {
        EthFrame { src, dst, payload }
    }

    /// Total bytes on the wire (Ethernet overhead included), used by links
    /// to compute serialization delay.
    pub fn wire_len(&self) -> usize {
        ETH_OVERHEAD
            + match &self.payload {
                EthPayload::Arp(a) => a.wire_len(),
                EthPayload::Ipv4(p) => p.wire_len(),
            }
    }

    /// Returns the IPv4 packet if the frame carries one.
    pub fn ipv4(&self) -> Option<&Ipv4Packet> {
        match &self.payload {
            EthPayload::Ipv4(p) => Some(p),
            EthPayload::Arp(_) => None,
        }
    }
}

impl fmt::Display for EthFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.payload {
            EthPayload::Arp(a) => write!(f, "[{} -> {}] {}", self.src, self.dst, a),
            EthPayload::Ipv4(p) => write!(f, "[{} -> {}] {}", self.src, self.dst, p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::{SeqNum, TcpFlags};
    use bytes::Bytes;

    #[test]
    fn wire_len_stacks_up() {
        let seg = TcpSegment {
            src_port: 1,
            dst_port: 2,
            seq: SeqNum::new(0),
            ack: SeqNum::new(0),
            flags: TcpFlags::ACK,
            window: 0,
            payload: Bytes::from_static(&[0u8; 100]),
        };
        let frame = EthFrame::new(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            EthPayload::Ipv4(Ipv4Packet {
                src: IpAddr::from_octets([10, 0, 0, 1]),
                dst: IpAddr::from_octets([10, 0, 0, 2]),
                payload: L4::Tcp(seg),
            }),
        );
        // 100 payload + 40 tcp/ip + 18 eth
        assert_eq!(frame.wire_len(), 158);
        assert!(frame.ipv4().is_some());
    }

    #[test]
    fn arp_frame_len() {
        let frame = EthFrame::new(
            MacAddr::from_index(1),
            MacAddr::BROADCAST,
            EthPayload::Arp(ArpPacket::request(
                MacAddr::from_index(1),
                IpAddr::from_octets([10, 0, 0, 1]),
                IpAddr::from_octets([10, 0, 0, 2]),
            )),
        );
        assert_eq!(frame.wire_len(), 46);
        assert!(frame.ipv4().is_none());
    }
}
