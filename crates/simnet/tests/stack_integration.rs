//! Direct integration tests of the per-host stack: several `NetStack`s on a
//! tiny in-test wire (switch + timers), exercising sockets, ARP, VIFs,
//! filtering and broadcast without the OS or cluster layers.

use bytes::Bytes;
use des::{EventQueue, SimDuration, SimTime};
use simnet::addr::{IpAddr, MacAddr, SockAddr};
use simnet::switch::{PortId, Switch};
use simnet::tcp::TcpConfig;
use simnet::{EthFrame, NetError, NetStack, RecvOutcome};

/// A miniature wire: N stacks on one switch, 50 µs per hop, frames and
/// protocol timers driven from one queue.
struct Wire {
    stacks: Vec<NetStack>,
    switch: Switch,
    queue: EventQueue<(usize, EthFrame)>,
    now: SimTime,
}

impl Wire {
    fn new(n: usize) -> Wire {
        let stacks = (0..n)
            .map(|i| {
                NetStack::new(
                    MacAddr::from_index(i as u32 + 1),
                    IpAddr::from_octets([10, 0, 0, (i + 1) as u8]),
                    24,
                    TcpConfig::default(),
                )
            })
            .collect();
        Wire {
            stacks,
            switch: Switch::new(n),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
        }
    }

    fn ip(&self, i: usize) -> IpAddr {
        IpAddr::from_octets([10, 0, 0, (i + 1) as u8])
    }

    fn pump_outgoing(&mut self) {
        for i in 0..self.stacks.len() {
            for frame in self.stacks[i].take_outgoing() {
                for PortId(p) in self.switch.forward(PortId(i), &frame) {
                    self.queue
                        .push(self.now + SimDuration::from_micros(50), (p, frame.clone()));
                }
            }
        }
    }

    /// Runs until frames and due timers drain, following timers for at most
    /// two seconds past the entry time (a fixed horizon, so retransmission
    /// backoff does not spin the clock forever).
    fn settle(&mut self) {
        let horizon = self.now + SimDuration::from_secs(2);
        for _ in 0..100_000 {
            self.pump_outgoing();
            let next_timer = self.stacks.iter().filter_map(|s| s.next_timer()).min();
            match (self.queue.peek_time(), next_timer) {
                (Some(ft), Some(tt)) if tt < ft => {
                    self.now = tt;
                    for s in self.stacks.iter_mut() {
                        s.on_timer(self.now);
                    }
                }
                (Some(_), _) => {
                    let (at, (port, frame)) = self.queue.pop().expect("peeked");
                    self.now = at;
                    self.stacks[port].on_frame(frame, self.now);
                }
                (None, Some(tt)) if tt <= horizon => {
                    self.now = tt;
                    for s in self.stacks.iter_mut() {
                        s.on_timer(self.now);
                    }
                }
                _ => return,
            }
        }
        panic!("wire did not settle");
    }

    /// Establishes a TCP connection from stack `a` to `b`:`port`; returns
    /// (client socket, server-side accepted socket, listener).
    fn connect(
        &mut self,
        a: usize,
        b: usize,
        port: u16,
    ) -> (simnet::SocketId, simnet::SocketId, simnet::SocketId) {
        let lsid = self.stacks[b].tcp_socket();
        self.stacks[b]
            .bind(lsid, SockAddr::new(IpAddr::UNSPECIFIED, port))
            .unwrap();
        self.stacks[b].tcp_listen(lsid, 4).unwrap();
        let csid = self.stacks[a].tcp_socket();
        let dst = SockAddr::new(self.ip(b), port);
        let now = self.now;
        self.stacks[a].tcp_connect(csid, dst, now).unwrap();
        self.settle();
        let (ssid, remote) = self.stacks[b]
            .tcp_accept(lsid)
            .unwrap()
            .expect("handshake completed");
        assert_eq!(remote.ip, self.ip(a));
        (csid, ssid, lsid)
    }
}

#[test]
fn cross_stack_tcp_with_arp_resolution() {
    let mut w = Wire::new(2);
    assert!(w.stacks[0].arp_cache().is_empty(), "no bindings yet");
    let (c, s, _l) = w.connect(0, 1, 80);
    // ARP resolved both directions along the way.
    assert!(w.stacks[0].arp_cache().lookup(w.ip(1)).is_some());

    let n = w.stacks[0].tcp_send(c, b"over the wire", w.now).unwrap();
    assert_eq!(n, 13);
    w.settle();
    match w.stacks[1].tcp_recv(s, 64, w.now).unwrap() {
        RecvOutcome::Data(d) => assert_eq!(d, b"over the wire"),
        other => panic!("expected data, got {other:?}"),
    }
}

#[test]
fn graceful_close_propagates_eof() {
    let mut w = Wire::new(2);
    let (c, s, _l) = w.connect(0, 1, 81);
    w.stacks[0].tcp_send(c, b"bye", w.now).unwrap();
    w.stacks[0].close(c, w.now);
    w.settle();
    match w.stacks[1].tcp_recv(s, 64, w.now).unwrap() {
        RecvOutcome::Data(d) => assert_eq!(d, b"bye"),
        other => panic!("expected data, got {other:?}"),
    }
    assert_eq!(
        w.stacks[1].tcp_recv(s, 64, w.now).unwrap(),
        RecvOutcome::Eof
    );
}

#[test]
fn unknown_segment_gets_rst() {
    let mut w = Wire::new(2);
    let (c, s, _l) = w.connect(0, 1, 82);
    // The server half vanishes without a trace (e.g. migrated away without
    // the paper's silent-discard protocol) — next client data draws a RST.
    w.stacks[1].tcp_discard(s);
    w.stacks[0].tcp_send(c, b"anyone there?", w.now).unwrap();
    w.settle();
    assert_eq!(
        w.stacks[0].tcp_recv(c, 8, w.now),
        Err(NetError::ConnectionReset)
    );
}

#[test]
fn filter_silences_both_directions_and_counts_egress() {
    let mut w = Wire::new(2);
    let (c, s, _l) = w.connect(0, 1, 83);
    let ip0 = w.ip(0);
    w.stacks[0].filter_mut().add_drop_rule(ip0);
    let before = w.stacks[0].egress_drops;
    w.stacks[0].tcp_send(c, b"trapped", w.now).unwrap();
    w.settle();
    assert!(w.stacks[0].egress_drops > before, "egress drop counted");
    assert_eq!(
        w.stacks[1].tcp_recv(s, 64, w.now).unwrap(),
        RecvOutcome::WouldBlock
    );
    // Lift the filter; the retransmission timer delivers the data.
    w.stacks[0].filter_mut().remove_drop_rule(ip0);
    w.settle();
    match w.stacks[1].tcp_recv(s, 64, w.now).unwrap() {
        RecvOutcome::Data(d) => assert_eq!(d, b"trapped"),
        other => panic!("expected data after filter lift, got {other:?}"),
    }
}

#[test]
fn vif_addresses_answer_arp_and_accept_connections() {
    let mut w = Wire::new(2);
    let pod_ip = IpAddr::from_octets([10, 0, 0, 100]);
    let pod_mac = MacAddr::from_index(77);
    w.stacks[1].add_iface("vif0", pod_mac, vec![pod_ip]);

    let lsid = w.stacks[1].tcp_socket();
    w.stacks[1].bind(lsid, SockAddr::new(pod_ip, 7000)).unwrap();
    w.stacks[1].tcp_listen(lsid, 2).unwrap();

    let csid = w.stacks[0].tcp_socket();
    w.stacks[0]
        .tcp_connect(csid, SockAddr::new(pod_ip, 7000), w.now)
        .unwrap();
    w.settle();
    let accepted = w.stacks[1].tcp_accept(lsid).unwrap();
    assert!(accepted.is_some(), "connection to the VIF address");
    // And the client resolved the VIF's dedicated MAC.
    assert_eq!(w.stacks[0].arp_cache().lookup(pod_ip), Some(pod_mac));

    // Removing the interface frees the address.
    assert!(w.stacks[1].remove_iface("vif0"));
    assert!(!w.stacks[1].is_local_ip(pod_ip));
    assert!(!w.stacks[1].remove_iface("vif0"), "already gone");
}

#[test]
fn gratuitous_arp_repoints_an_ip_after_migration() {
    let mut w = Wire::new(3);
    let pod_ip = IpAddr::from_octets([10, 0, 0, 100]);
    let mac_b = MacAddr::from_index(50);
    w.stacks[1].add_iface("vif0", mac_b, vec![pod_ip]);
    w.stacks[1].send_gratuitous_arp(pod_ip, mac_b);
    w.settle();
    assert_eq!(w.stacks[0].arp_cache().lookup(pod_ip), Some(mac_b));

    // The pod "migrates" to stack 2 with a different MAC (shared-physical
    // mode): the gratuitous ARP overwrites every cache on the subnet.
    w.stacks[1].remove_iface("vif0");
    let mac_c = w.stacks[2].primary_mac();
    w.stacks[2].add_iface("vif0", mac_c, vec![pod_ip]);
    w.stacks[2].send_gratuitous_arp(pod_ip, mac_c);
    w.settle();
    assert_eq!(w.stacks[0].arp_cache().lookup(pod_ip), Some(mac_c));
}

#[test]
fn udp_unicast_and_broadcast() {
    let mut w = Wire::new(3);
    // Receivers on stacks 1 and 2, same port.
    let r1 = w.stacks[1].udp_socket();
    w.stacks[1]
        .bind(r1, SockAddr::new(IpAddr::UNSPECIFIED, 5000))
        .unwrap();
    let r2 = w.stacks[2].udp_socket();
    w.stacks[2]
        .bind(r2, SockAddr::new(IpAddr::UNSPECIFIED, 5000))
        .unwrap();
    let tx = w.stacks[0].udp_socket();

    // Unicast reaches only stack 1.
    let dst1 = SockAddr::new(w.ip(1), 5000);
    let now = w.now;
    w.stacks[0]
        .udp_send_to(tx, dst1, Bytes::from_static(b"uni"), now)
        .unwrap();
    w.settle();
    assert_eq!(
        w.stacks[1]
            .udp_recv_from(r1)
            .unwrap()
            .map(|(_, d)| d.to_vec()),
        Some(b"uni".to_vec())
    );
    assert_eq!(w.stacks[2].udp_recv_from(r2).unwrap(), None);

    // Broadcast reaches both.
    w.stacks[0]
        .udp_send_to(
            tx,
            SockAddr::new(IpAddr::BROADCAST, 5000),
            Bytes::from_static(b"all"),
            w.now,
        )
        .unwrap();
    w.settle();
    assert!(w.stacks[1].udp_recv_from(r1).unwrap().is_some());
    assert!(w.stacks[2].udp_recv_from(r2).unwrap().is_some());
}

#[test]
fn bind_errors_are_reported() {
    let mut w = Wire::new(1);
    let s1 = w.stacks[0].tcp_socket();
    // Foreign IP.
    assert_eq!(
        w.stacks[0].bind(s1, SockAddr::new(IpAddr::from_octets([9, 9, 9, 9]), 1)),
        Err(NetError::AddrNotAvailable)
    );
    // Listener conflict is caught at bind time.
    w.stacks[0]
        .bind(s1, SockAddr::new(IpAddr::UNSPECIFIED, 80))
        .unwrap();
    w.stacks[0].tcp_listen(s1, 1).unwrap();
    let s2 = w.stacks[0].tcp_socket();
    assert_eq!(
        w.stacks[0].bind(s2, SockAddr::new(IpAddr::UNSPECIFIED, 80)),
        Err(NetError::AddrInUse)
    );
    // Operations on bogus ids.
    assert_eq!(
        w.stacks[0].tcp_send(simnet::SocketId(999), b"x", w.now),
        Err(NetError::BadSocket)
    );
}

#[test]
fn loopback_connection_within_one_stack() {
    let mut w = Wire::new(1);
    let (c, s, _l) = w.connect(0, 0, 90);
    w.stacks[0].tcp_send(c, b"to myself", w.now).unwrap();
    w.settle();
    match w.stacks[0].tcp_recv(s, 64, w.now).unwrap() {
        RecvOutcome::Data(d) => assert_eq!(d, b"to myself"),
        other => panic!("expected data, got {other:?}"),
    }
}

#[test]
fn listener_backlog_bounds_pending_connections() {
    let mut w = Wire::new(2);
    let lsid = w.stacks[1].tcp_socket();
    w.stacks[1]
        .bind(lsid, SockAddr::new(IpAddr::UNSPECIFIED, 91))
        .unwrap();
    w.stacks[1].tcp_listen(lsid, 2).unwrap();
    // Three clients; only two fit the backlog, the third's SYN is dropped
    // (and would be retried by its timer).
    let dst = SockAddr::new(w.ip(1), 91);
    let now = w.now;
    let clients: Vec<_> = (0..3)
        .map(|_| {
            let c = w.stacks[0].tcp_socket();
            w.stacks[0].tcp_connect(c, dst, now).unwrap();
            c
        })
        .collect();
    w.pump_outgoing();
    // Deliver only the initial SYNs (no timers), then count the queue.
    while let Some((at, (port, frame))) = w.queue.pop() {
        w.now = at;
        w.stacks[port].on_frame(frame, w.now);
        w.pump_outgoing();
    }
    let mut accepted = 0;
    while w.stacks[1].tcp_accept(lsid).unwrap().is_some() {
        accepted += 1;
    }
    assert_eq!(accepted, 2, "backlog of 2 admits exactly 2 before retries");
    let _ = clients;
}

#[test]
fn checkpoint_snapshot_survives_stack_round_trip() {
    // The full §4.2 sequence at stack level: a server behind a pod VIF on
    // stack 1 is snapshot, the VIF torn down, and the endpoint restored on
    // stack 2 with the *same* IP; the untouched client on stack 0
    // reconnects to it purely through ARP + TCP retransmission.
    let mut w = Wire::new(3);
    let pod_ip = IpAddr::from_octets([10, 0, 0, 100]);
    let mac_old = MacAddr::from_index(61);
    let mac_new = MacAddr::from_index(62);
    w.stacks[1].add_iface("vif0", mac_old, vec![pod_ip]);

    let lsid = w.stacks[1].tcp_socket();
    w.stacks[1].bind(lsid, SockAddr::new(pod_ip, 92)).unwrap();
    w.stacks[1].tcp_listen(lsid, 2).unwrap();
    let c = w.stacks[0].tcp_socket();
    w.stacks[0]
        .tcp_connect(c, SockAddr::new(pod_ip, 92), w.now)
        .unwrap();
    w.settle();
    let (s, _) = w.stacks[1].tcp_accept(lsid).unwrap().expect("accepted");

    // Data in flight in both directions at the cut.
    w.stacks[0].tcp_send(c, b"A->B in flight", w.now).unwrap();
    w.stacks[1].tcp_send(s, b"B->A in flight", w.now).unwrap();
    // Cut: snapshot B's endpoint, drop the wire, tear the VIF down.
    let snap = w.stacks[1].tcp_snapshot(s).unwrap();
    w.stacks[1].tcp_discard(s);
    w.stacks[1].remove_iface("vif0");
    w.queue.clear();

    // Restore on stack 2: VIF with the same IP, endpoint at the saved
    // sequence numbers, §4.1 send replay, gratuitous ARP announcement.
    w.stacks[2].add_iface("vif0", mac_new, vec![pod_ip]);
    let restored = w.stacks[2].tcp_restore(&snap).unwrap();
    w.stacks[2].tcp_set_nodelay(restored, true, w.now).unwrap();
    for pkt in &snap.inflight {
        w.stacks[2].tcp_send(restored, pkt, w.now).unwrap();
    }
    if !snap.unsent.is_empty() {
        w.stacks[2].tcp_send(restored, &snap.unsent, w.now).unwrap();
    }
    w.stacks[2]
        .tcp_set_nodelay(restored, snap.nodelay, w.now)
        .unwrap();
    w.stacks[2].send_gratuitous_arp(pod_ip, mac_new);
    w.settle();

    // A's endpoint (never touched) retransmits into the restored socket.
    let mut to_b = snap.recv_stream.clone();
    match w.stacks[2].tcp_recv(restored, 64, w.now).unwrap() {
        RecvOutcome::Data(d) => to_b.extend_from_slice(&d),
        RecvOutcome::WouldBlock => {}
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(to_b, b"A->B in flight");
    match w.stacks[0].tcp_recv(c, 64, w.now).unwrap() {
        RecvOutcome::Data(d) => assert_eq!(d, b"B->A in flight"),
        other => panic!("expected B's replayed data, got {other:?}"),
    }
    // And the client now talks to the new host's MAC.
    assert_eq!(w.stacks[0].arp_cache().lookup(pod_ip), Some(mac_new));
}

#[test]
fn dhcp_over_the_wire_preserves_identity_across_hosts() {
    // The §4.2 dynamic-address mode, end to end on the wire: a DHCP server
    // behind a UDP socket on stack 0; clients claim a *fake* chaddr in the
    // DHCP payload. A "pod" acquiring from stack 1, then re-acquiring from
    // stack 2 after migration with the same fake chaddr, gets the same IP.
    use simnet::dhcp::{DhcpClient, DhcpMessage, DhcpServer, DHCP_CLIENT_PORT, DHCP_SERVER_PORT};

    let mut w = Wire::new(3);
    let mut server = DhcpServer::new(
        IpAddr::from_octets([10, 0, 0, 200]),
        8,
        SimDuration::from_secs(3600),
    );
    let srv_sock = w.stacks[0].udp_socket();
    w.stacks[0]
        .bind(
            srv_sock,
            SockAddr::new(IpAddr::UNSPECIFIED, DHCP_SERVER_PORT),
        )
        .unwrap();

    let fake_mac = MacAddr::from_index(4242);
    let lease_time = server.lease_time();

    // One full acquisition from `host`, returning the bound IP.
    let acquire = |w: &mut Wire, server: &mut DhcpServer, host: usize, xid: u32| -> IpAddr {
        let cli_sock = w.stacks[host].udp_socket();
        w.stacks[host]
            .bind(
                cli_sock,
                SockAddr::new(IpAddr::UNSPECIFIED, DHCP_CLIENT_PORT),
            )
            .unwrap();
        let mut client = DhcpClient::new(fake_mac, xid);
        let discover = client.start();
        let bcast = SockAddr::new(IpAddr::BROADCAST, DHCP_SERVER_PORT);
        let now = w.now;
        w.stacks[host]
            .udp_send_to(cli_sock, bcast, discover.encode(), now)
            .unwrap();
        // Drive the exchange: server replies by broadcast to the client port.
        for _ in 0..8 {
            w.settle();
            // Server side.
            while let Ok(Some((_from, bytes))) = w.stacks[0].udp_recv_from(srv_sock) {
                if let Some(msg) = DhcpMessage::decode(&bytes) {
                    if let Some(reply) = server.handle(&msg, w.now) {
                        let dst = SockAddr::new(IpAddr::BROADCAST, DHCP_CLIENT_PORT);
                        let now = w.now;
                        w.stacks[0]
                            .udp_send_to(srv_sock, dst, reply.encode(), now)
                            .unwrap();
                    }
                }
            }
            w.settle();
            // Client side.
            while let Ok(Some((_from, bytes))) = w.stacks[host].udp_recv_from(cli_sock) {
                if let Some(msg) = DhcpMessage::decode(&bytes) {
                    if let Some(req) = client.on_message(&msg, w.now, lease_time) {
                        let bcast = SockAddr::new(IpAddr::BROADCAST, DHCP_SERVER_PORT);
                        let now = w.now;
                        w.stacks[host]
                            .udp_send_to(cli_sock, bcast, req.encode(), now)
                            .unwrap();
                    }
                }
            }
            if let Some(ip) = client.ip() {
                w.stacks[host].close(cli_sock, w.now);
                return ip;
            }
        }
        panic!("dhcp acquisition did not converge");
    };

    // Pod starts on stack 1...
    let ip_before = acquire(&mut w, &mut server, 1, 1);
    // ...migrates to stack 2, re-acquires with the SAME fake chaddr (the
    // SIOCGIFHWADDR interception preserved it) from different hardware.
    let ip_after = acquire(&mut w, &mut server, 2, 77);
    assert_eq!(ip_before, ip_after, "identity follows the fake chaddr");
    assert_eq!(server.leased_ip(fake_mac), Some(ip_before));
}
