//! Property tests for the TCP implementation: the reliable-delivery contract
//! the Cruz coordinated checkpoint protocol (§5.1) depends on.

use des::{EventQueue, SimDuration, SimTime};
use proptest::prelude::*;
use simnet::addr::{IpAddr, SockAddr};
use simnet::tcp::seq::SeqNum;
use simnet::tcp::{Tcb, TcpConfig, TcpSegment};

/// What the adversarial network does with one transmitted segment.
#[derive(Debug, Clone, Copy)]
enum Fate {
    Deliver,
    Drop,
    Duplicate,
    /// Deliver with a large extra delay (forces reordering).
    Delay,
}

fn fate_strategy() -> impl Strategy<Value = Fate> {
    prop_oneof![
        4 => Just(Fate::Deliver),
        1 => Just(Fate::Drop),
        1 => Just(Fate::Duplicate),
        1 => Just(Fate::Delay),
    ]
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    AtoB,
    BtoA,
}

enum Ev {
    Seg(Dir, TcpSegment),
    /// Poll both endpoints' timers.
    Tick,
}

struct Harness {
    a: Tcb,
    b: Tcb,
    queue: EventQueue<Ev>,
    now: SimTime,
    fates: Vec<Fate>,
    next_fate: usize,
    received: Vec<u8>,
    latency: SimDuration,
}

impl Harness {
    fn new(fates: Vec<Fate>) -> Harness {
        let cfg = TcpConfig {
            min_rto: SimDuration::from_millis(10),
            initial_rto: SimDuration::from_millis(20),
            time_wait: SimDuration::from_millis(50),
            // The adversary schedule is finite, so with enough retries the
            // stream always completes; connection-abort behaviour is covered
            // by unit tests instead.
            max_retries: 10_000,
            ..TcpConfig::default()
        };
        let t0 = SimTime::ZERO;
        let la = SockAddr::new(IpAddr::from_octets([10, 0, 0, 1]), 5000);
        let lb = SockAddr::new(IpAddr::from_octets([10, 0, 0, 2]), 80);
        let (a, syns) = Tcb::connect(cfg.clone(), la, lb, SeqNum::new(77), t0);
        let (b, synacks) = Tcb::accept_syn(cfg, lb, la, SeqNum::new(9000), &syns[0], t0);
        let mut h = Harness {
            a,
            b,
            queue: EventQueue::new(),
            now: t0,
            fates,
            next_fate: 0,
            received: Vec::new(),
            latency: SimDuration::from_micros(50),
        };
        // The SYN made it through (handshake segments use the same adversary
        // for everything after this first exchange).
        for s in synacks {
            h.transmit(Dir::BtoA, s);
        }
        h
    }

    fn fate(&mut self) -> Fate {
        // After the scripted schedule runs out, the network behaves — this
        // guarantees every run terminates with full delivery.
        let f = self
            .fates
            .get(self.next_fate)
            .copied()
            .unwrap_or(Fate::Deliver);
        self.next_fate += 1;
        f
    }

    fn transmit(&mut self, dir: Dir, seg: TcpSegment) {
        match self.fate() {
            Fate::Drop => {}
            Fate::Deliver => self.queue.push(self.now + self.latency, Ev::Seg(dir, seg)),
            Fate::Duplicate => {
                self.queue
                    .push(self.now + self.latency, Ev::Seg(dir, seg.clone()));
                self.queue
                    .push(self.now + self.latency * 3, Ev::Seg(dir, seg));
            }
            Fate::Delay => self
                .queue
                .push(self.now + self.latency * 100, Ev::Seg(dir, seg)),
        }
    }

    /// Runs until both sides are quiet, draining `b`'s receive stream.
    fn run(&mut self, max_events: usize) {
        let mut events = 0;
        loop {
            // Schedule timer ticks so retransmissions fire.
            let timer = self
                .a
                .next_timer()
                .into_iter()
                .chain(self.b.next_timer())
                .min();
            let next_seg_at = self.queue.peek_time();
            let next = match (next_seg_at, timer) {
                (Some(s), Some(t)) => Some(s.min(t)),
                (x, y) => x.or(y),
            };
            let Some(at) = next else { break };
            events += 1;
            assert!(events <= max_events, "run did not converge");
            self.now = at;
            let ev = if next_seg_at == Some(at) {
                self.queue.pop().map(|(_, e)| e).unwrap_or(Ev::Tick)
            } else {
                Ev::Tick
            };
            match ev {
                Ev::Seg(Dir::AtoB, seg) => {
                    let out = self.b.on_segment(&seg, self.now);
                    for s in out {
                        self.transmit(Dir::BtoA, s);
                    }
                }
                Ev::Seg(Dir::BtoA, seg) => {
                    let out = self.a.on_segment(&seg, self.now);
                    for s in out {
                        self.transmit(Dir::AtoB, s);
                    }
                }
                Ev::Tick => {
                    let out = self.a.on_timer(self.now);
                    for s in out {
                        self.transmit(Dir::AtoB, s);
                    }
                    let out = self.b.on_timer(self.now);
                    for s in out {
                        self.transmit(Dir::BtoA, s);
                    }
                }
            }
            // Application on B: read greedily.
            let (data, acks) = self.b.read(usize::MAX, self.now);
            self.received.extend_from_slice(&data);
            for s in acks {
                self.transmit(Dir::BtoA, s);
            }
        }
    }

    fn write_all(&mut self, data: &[u8]) {
        let mut off = 0;
        let mut guard = 0;
        while off < data.len() {
            let (n, segs) = self.a.write(&data[off..], self.now);
            off += n;
            for s in segs {
                self.transmit(Dir::AtoB, s);
            }
            if n == 0 {
                // Buffer full: let the network drain.
                self.run(200_000);
                guard += 1;
                assert!(guard < 10_000, "no progress writing");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the network does — drop, duplicate, delay — the receiver
    /// observes exactly the transmitted byte stream, in order, exactly once.
    #[test]
    fn tcp_delivers_exact_stream(
        payload in proptest::collection::vec(any::<u8>(), 1..20_000),
        fates in proptest::collection::vec(fate_strategy(), 0..300),
    ) {
        let mut h = Harness::new(fates);
        h.write_all(&payload);
        h.run(400_000);
        prop_assert_eq!(&h.received, &payload);
        prop_assert_eq!(h.a.send_len(), 0, "all data acknowledged");
    }

    /// The §5.1 invariant: at every quiescent point,
    /// `snd_una <= rcv_nxt <= snd_nxt` across the pair.
    #[test]
    fn tcp_invariant_holds_at_quiescence(
        payload in proptest::collection::vec(any::<u8>(), 1..5_000),
        fates in proptest::collection::vec(fate_strategy(), 0..100),
    ) {
        let mut h = Harness::new(fates);
        h.write_all(&payload);
        h.run(400_000);
        let snd_una = h.a.snd_una();
        let snd_nxt = h.a.snd_nxt();
        let rcv_nxt = h.b.rcv_nxt();
        prop_assert!(snd_una <= rcv_nxt);
        prop_assert!(rcv_nxt <= snd_nxt);
        // Fully drained: all pointers coincide.
        prop_assert_eq!(snd_una, snd_nxt);
    }

    /// Checkpointing both endpoints at an arbitrary cut (dropping everything
    /// in flight, like the Cruz netfilter rule) and restoring loses nothing:
    /// the §4.1 snapshot/restore procedure re-delivers the stream exactly.
    #[test]
    fn snapshot_restore_preserves_stream(
        payload in proptest::collection::vec(any::<u8>(), 1..8_000),
        fates in proptest::collection::vec(fate_strategy(), 0..150),
        cut_after in 0usize..8_000,
    ) {
        let mut h = Harness::new(fates);
        // Settle the handshake first — the paper checkpoints established
        // connections, not mid-handshake ones.
        h.run(100_000);
        // Feed some data (up to what the send buffer accepts), let the
        // network churn briefly, then cut.
        let cut = cut_after.min(payload.len());
        let accepted = {
            let (n, segs) = h.a.write(&payload[..cut], h.now);
            for s in segs { h.transmit(Dir::AtoB, s); }
            n
        };
        h.run(100_000);

        // --- checkpoint both endpoints; in-flight packets are dropped ---
        let asnap = h.a.snapshot();
        let bsnap = h.b.snapshot();
        let already = h.received.clone();

        let cfg = TcpConfig {
            min_rto: SimDuration::from_millis(10),
            initial_rto: SimDuration::from_millis(20),
            max_retries: 10_000,
            ..TcpConfig::default()
        };
        let mut h2 = Harness {
            a: Tcb::restore(cfg.clone(), &asnap),
            b: Tcb::restore(cfg, &bsnap),
            queue: EventQueue::new(),
            now: h.now,
            fates: Vec::new(), // clean network after restart
            next_fate: 0,
            received: Vec::new(),
            latency: SimDuration::from_micros(50),
        };
        // Restore-side alternate buffer: bytes already received but not
        // delivered surface before any new network data.
        let mut replay_received = already;
        replay_received.extend_from_slice(&bsnap.recv_stream);

        // Replay A's saved send data packet-by-packet (nodelay on).
        let _ = h2.a.set_nodelay(true, h2.now);
        for pkt in &asnap.inflight {
            let (n, segs) = h2.a.write(pkt, h2.now);
            prop_assert_eq!(n, pkt.len());
            for s in segs { h2.transmit(Dir::AtoB, s); }
        }
        {
            let (n, segs) = h2.a.write(&asnap.unsent, h2.now);
            prop_assert_eq!(n, asnap.unsent.len());
            for s in segs { h2.transmit(Dir::AtoB, s); }
        }
        let _ = h2.a.set_nodelay(asnap.nodelay, h2.now);
        // Write the rest of the payload after restart.
        h2.write_all(&payload[accepted..]);
        h2.run(400_000);

        replay_received.extend_from_slice(&h2.received);
        prop_assert_eq!(&replay_received, &payload);
    }
}
