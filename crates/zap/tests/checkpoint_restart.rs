//! End-to-end tests of the Zap layer: pods, virtualization, and single-node
//! checkpoint/restart with live kernel state.

use des::{SimDuration, SimTime};
use simcpu::asm::Asm;
use simcpu::isa::{R1, R10, R2, R3, R6, R7, R8, R9};
use simnet::addr::{IpAddr, MacAddr};
use simnet::tcp::TcpConfig;
use simnet::NetStack;
use simos::guest::AsmOs;
use simos::program::{Program, CODE_BASE, DATA_BASE};
use simos::syscall::nr;
use simos::{Disk, DiskParams, Kernel, KernelParams, NetFs, ProcState};
use zap::image::MacMode;
use zap::{PodConfig, PodId, PodImage, Zap};

fn node(ip_last: u8, mac: u32, fs: &NetFs) -> (Kernel, Zap) {
    let net = NetStack::new(
        MacAddr::from_index(mac),
        IpAddr::from_octets([10, 0, 0, ip_last]),
        24,
        TcpConfig::default(),
    );
    let mut k = Kernel::new(
        net,
        fs.clone(),
        Disk::new(DiskParams::default()),
        KernelParams::default(),
    );
    let z = Zap::new();
    z.install(&mut k);
    (k, z)
}

fn pod_cfg(name: &str, ip_last: u8) -> PodConfig {
    PodConfig {
        name: name.into(),
        ip: IpAddr::from_octets([10, 0, 0, ip_last]),
        mac_mode: MacMode::Dedicated(MacAddr::from_index(1000 + ip_last as u32)),
    }
}

/// Drives the kernel until simulated time reaches `until`.
fn run_for(k: &mut Kernel, now: &mut SimTime, until: SimTime) {
    while *now < until {
        if k.has_runnable() {
            *now += k.run_slice(*now).elapsed;
            let _ = k.take_frames();
        } else if let Some(t) = k.next_timer() {
            if t > until {
                *now = until;
                break;
            }
            *now = (*now).max(t);
            k.on_tick(*now);
            let _ = k.take_frames();
        } else {
            break;
        }
    }
}

/// Drives the kernel until `pred` holds (or the step budget is exhausted).
fn run_until(
    k: &mut Kernel,
    now: &mut SimTime,
    max_steps: u64,
    pred: impl Fn(&Kernel) -> bool,
) -> bool {
    for _ in 0..max_steps {
        if pred(k) {
            return true;
        }
        if k.has_runnable() {
            let out = k.run_slice(*now);
            *now += out.elapsed;
            let _ = k.take_frames();
        } else if let Some(t) = k.next_timer() {
            *now = (*now).max(t);
            k.on_tick(*now);
            let _ = k.take_frames();
        } else {
            return pred(k);
        }
    }
    pred(k)
}

fn zombie_code(k: &Kernel, z: &Zap, pod: PodId, vpid: u32) -> Option<u64> {
    let pid = z.real_pid(pod, vpid)?;
    match k.process(pid)?.state {
        ProcState::Zombie(code) => Some(code),
        _ => None,
    }
}

/// A program that sums 1..=n in a long loop, then exits with the sum.
fn summing_program(n: i64) -> Program {
    let mut a = Asm::new(CODE_BASE);
    a.movi(R6, 0); // acc
    a.movi(R7, 1); // i
    a.movi(R8, n);
    let top = a.label();
    let done = a.label();
    a.bind(top);
    a.add(R6, R6, R7);
    a.addi(R7, R7, 1);
    a.cmp_gt_jump(R7, R8, done);
    a.jmp(top);
    a.bind(done);
    a.mov(R1, R6);
    a.sys(nr::EXIT);
    Program::from_asm(&a).unwrap()
}

#[test]
fn checkpoint_mid_compute_and_restart_elsewhere() {
    let fs = NetFs::new();
    let (mut k1, z1) = node(1, 1, &fs);
    let (mut k2, z2) = node(2, 2, &fs);

    let pod = z1.create_pod(&mut k1, pod_cfg("job", 50)).unwrap();
    let n = 100_000i64;
    let vpid = z1.spawn_in_pod(&mut k1, pod, &summing_program(n)).unwrap();

    // Run a handful of slices: the loop is mid-flight.
    let mut now = SimTime::ZERO;
    for _ in 0..3 {
        now += k1.run_slice(now).elapsed;
    }
    assert_eq!(zombie_code(&k1, &z1, pod, vpid), None, "not finished yet");

    // Checkpoint on node 1, serialize, destroy, restore on node 2.
    let image = z1.checkpoint_pod(&mut k1, pod, now).unwrap();
    let bytes = image.encode();
    z1.destroy_pod(&mut k1, pod).unwrap();
    let decoded = PodImage::decode(&bytes).unwrap();
    assert_eq!(decoded, image, "image codec is faithful");

    // Node 2 has colliding pid numbers already in use (the BLCR failure
    // case the paper calls out): restore must still work.
    let filler = summing_program(10);
    for _ in 0..5 {
        let _ = k2.spawn(&filler).unwrap();
    }
    let pod2 = z2.restart_pod(&mut k2, &decoded, now).unwrap();
    z2.resume_pod(&mut k2, pod2, now).unwrap();

    let mut now2 = now;
    assert!(run_until(&mut k2, &mut now2, 2_000_000, |k| {
        zombie_code(k, &z2, pod2, vpid).is_some()
    }));
    let expected = (n as u64) * (n as u64 + 1) / 2;
    assert_eq!(zombie_code(&k2, &z2, pod2, vpid), Some(expected));
}

#[test]
fn getpid_returns_virtual_pid() {
    let fs = NetFs::new();
    let (mut k, z) = node(1, 1, &fs);
    // Occupy real pids first so virtual and real diverge.
    for _ in 0..7 {
        let _ = k.spawn(&summing_program(1)).unwrap();
    }
    let pod = z.create_pod(&mut k, pod_cfg("p", 51)).unwrap();
    let mut a = Asm::new(CODE_BASE);
    a.sys(nr::GETPID);
    a.mov(R1, simcpu::isa::R0);
    a.sys(nr::EXIT);
    let prog = Program::from_asm(&a).unwrap();
    let vpid = z.spawn_in_pod(&mut k, pod, &prog).unwrap();
    assert_eq!(vpid, 1);
    let mut now = SimTime::ZERO;
    run_until(&mut k, &mut now, 100_000, |k| {
        zombie_code(k, &z, pod, vpid).is_some()
    });
    assert_eq!(zombie_code(&k, &z, pod, vpid), Some(1), "guest sees vpid 1");
}

#[test]
fn spawn_in_pod_returns_vpids_and_kill_translates() {
    let fs = NetFs::new();
    let (mut k, z) = node(1, 1, &fs);
    let pod = z.create_pod(&mut k, pod_cfg("p", 52)).unwrap();

    let stack2 = 0x3000_0000u64;
    let mut a = Asm::new(CODE_BASE);
    let child = a.label();
    a.movi_label(R1, child);
    a.movi(R2, (stack2 + 0x4000) as i64);
    a.movi(R3, 0);
    a.sys(nr::SPAWN); // returns child's vpid
    a.mov(R6, simcpu::isa::R0);
    // kill(child_vpid, SIGKILL)
    a.mov(R1, R6);
    a.movi(R2, 9);
    a.sys(nr::KILL);
    a.mov(R1, R6);
    a.sys(nr::EXIT); // exit(child_vpid)
    a.bind(child);
    let spin = a.label();
    a.bind(spin);
    a.sys(nr::YIELD);
    a.jmp(spin);
    let prog = Program::from_asm(&a)
        .unwrap()
        .with_map(stack2, 0x4000, "stack2");

    let vpid = z.spawn_in_pod(&mut k, pod, &prog).unwrap();
    let mut now = SimTime::ZERO;
    run_until(&mut k, &mut now, 100_000, |k| {
        zombie_code(k, &z, pod, vpid).is_some()
    });
    assert_eq!(zombie_code(&k, &z, pod, vpid), Some(2), "child got vpid 2");
    // Child was killed via its vpid.
    let child_code = zombie_code(&k, &z, pod, 2);
    assert_eq!(child_code, Some(128 + 9));
}

#[test]
fn bind_is_confined_to_pod_ip_and_ioctl_reports_fake_mac() {
    let fs = NetFs::new();
    let (mut k, z) = node(1, 1, &fs);
    let fake = MacAddr::from_index(9999);
    let cfg = PodConfig {
        name: "p".into(),
        ip: IpAddr::from_octets([10, 0, 0, 53]),
        mac_mode: MacMode::SharedPhysical { fake_mac: fake },
    };
    let pod = z.create_pod(&mut k, cfg).unwrap();

    let buf = DATA_BASE as i64;
    let mut a = Asm::new(CODE_BASE);
    // socket; bind(ANY:8080); listen
    a.sys1(nr::SOCKET, 0);
    a.mov(R6, simcpu::isa::R0);
    a.mov(R1, R6);
    a.movi(R2, 0); // ANY — the interposer must rewrite this
    a.movi(R3, 8080);
    a.sys(nr::BIND);
    a.mov(R1, R6);
    a.movi(R2, 1);
    a.sys(nr::LISTEN);
    // ioctl(fd, SIOCGIFHWADDR, buf) then log 6 bytes
    a.mov(R1, R6);
    a.movi(R2, 0x8927);
    a.movi(R3, buf);
    a.sys(nr::IOCTL);
    a.sys2(nr::LOG, buf, 6);
    a.sys1(nr::SLEEP, 10_000_000); // stay alive so the listener can be inspected
    a.sys1(nr::EXIT, 0);
    let prog = Program::from_asm(&a)
        .unwrap()
        .with_data(DATA_BASE, vec![0u8; 64]);
    let vpid = z.spawn_in_pod(&mut k, pod, &prog).unwrap();
    let mut now = SimTime::ZERO;
    run_until(&mut k, &mut now, 100_000, |k| {
        !k.has_runnable() && k.next_timer().is_some()
    });
    assert_eq!(zombie_code(&k, &z, pod, vpid), None);
    // The listener is bound to the pod's IP, not ANY and not the host IP.
    let pid = z.real_pid(pod, vpid).unwrap();
    let fds = k.process(pid).unwrap().fds.clone();
    let listener_addr = fds
        .borrow()
        .iter()
        .find_map(|(_, d)| match d {
            simos::fd::Desc::Socket(sid) => k.net.tcp_local_addr(*sid),
            _ => None,
        })
        .unwrap();
    assert_eq!(listener_addr.ip, IpAddr::from_octets([10, 0, 0, 53]));
    assert_eq!(listener_addr.port, 8080);
    // The guest saw the fake MAC, not the physical one.
    let logged = k.process(pid).unwrap().console[0].clone();
    assert_eq!(logged.as_bytes(), &fake.octets());
    assert_ne!(fake, k.net.primary_mac());
}

/// Sender pod program: connect to `dst`, send a payload, then linger.
fn sender_program(dst: IpAddr, port: i64, payload: &[u8]) -> Program {
    let msg = DATA_BASE as i64;
    let mut a = Asm::new(CODE_BASE);
    a.sys1(nr::SLEEP, 1_000_000); // let the receiver listen
    a.sys1(nr::SOCKET, 0);
    a.mov(R6, simcpu::isa::R0);
    a.mov(R1, R6);
    a.movi(R2, dst.to_bits() as i64);
    a.movi(R3, port);
    a.sys(nr::CONNECT);
    a.mov(R1, R6);
    a.movi(R2, msg);
    a.movi(R3, payload.len() as i64);
    a.sys(nr::SEND);
    a.sys1(nr::SLEEP, 1_000_000_000); // keep the connection alive
    a.sys1(nr::EXIT, 0);
    Program::from_asm(&a)
        .unwrap()
        .with_data(DATA_BASE, payload.to_vec())
}

/// Receiver pod program: accept one connection, sleep (so data queues in the
/// kernel), then read and log it.
fn receiver_program(port: i64) -> Program {
    let buf = DATA_BASE as i64;
    let mut a = Asm::new(CODE_BASE);
    a.sys1(nr::SOCKET, 0);
    a.mov(R6, simcpu::isa::R0);
    a.mov(R1, R6);
    a.movi(R2, 0);
    a.movi(R3, port);
    a.sys(nr::BIND);
    a.mov(R1, R6);
    a.movi(R2, 2);
    a.sys(nr::LISTEN);
    a.sys_r(nr::ACCEPT, &[R6]);
    a.mov(R7, simcpu::isa::R0);
    a.sys1(nr::SLEEP, 20_000_000); // 20 ms: the checkpoint lands here
    a.mov(R1, R7);
    a.movi(R2, buf);
    a.movi(R3, 64);
    a.sys(nr::RECV);
    a.mov(R9, simcpu::isa::R0);
    a.movi(R1, buf);
    a.mov(R2, R9);
    a.sys(nr::LOG);
    a.sys1(nr::EXIT, 0);
    Program::from_asm(&a)
        .unwrap()
        .with_data(DATA_BASE, vec![0u8; 128])
}

#[test]
fn undelivered_socket_data_survives_restart_via_alternate_buffer() {
    // Two pods on one node, connected over loopback. The receiver is
    // checkpointed *after* data reached its kernel receive queue but
    // *before* the application read it. After restart, the interposed
    // recv must deliver exactly that data from the alternate buffer.
    let fs = NetFs::new();
    let (mut k, z) = node(1, 1, &fs);
    let recv_ip = IpAddr::from_octets([10, 0, 0, 60]);
    let pod_s = z.create_pod(&mut k, pod_cfg("sender", 61)).unwrap();
    let pod_r = z.create_pod(&mut k, pod_cfg("receiver", 60)).unwrap();

    let payload = b"precious bytes";
    let vs = z
        .spawn_in_pod(&mut k, pod_s, &sender_program(recv_ip, 9000, payload))
        .unwrap();
    let vr = z
        .spawn_in_pod(&mut k, pod_r, &receiver_program(9000))
        .unwrap();
    let _ = vs;

    // Run until the data sits in the receiver's kernel buffers (sender has
    // sent; receiver is still sleeping). 5 ms is comfortably inside the
    // receiver's 20 ms nap and after the sender's 1 ms delay.
    let mut now = SimTime::ZERO;
    run_for(
        &mut k,
        &mut now,
        SimTime::ZERO + SimDuration::from_millis(5),
    );
    assert!(now < SimTime::ZERO + SimDuration::from_millis(20));

    // Checkpoint + destroy + restart the receiver pod on the same node.
    let image = z.checkpoint_pod(&mut k, pod_r, now).unwrap();
    // The image captured the undelivered stream.
    let has_alt = image.sockets.iter().any(|s| match s {
        zap::image::SockImage::Conn { alt_recv, .. } => alt_recv == payload,
        _ => false,
    });
    assert!(
        has_alt,
        "checkpoint must capture the undelivered receive data"
    );

    z.destroy_pod(&mut k, pod_r).unwrap();
    let pod_r2 = z.restart_pod(&mut k, &image, now).unwrap();
    z.resume_pod(&mut k, pod_r2, now).unwrap();

    assert!(run_until(&mut k, &mut now, 2_000_000, |k| {
        zombie_code(k, &z, pod_r2, vr).is_some()
    }));
    assert_eq!(zombie_code(&k, &z, pod_r2, vr), Some(0));
    let logged = z.console_of(&k, pod_r2, vr).unwrap();
    assert_eq!(logged, vec![String::from_utf8_lossy(payload).to_string()]);
}

#[test]
fn pipes_files_and_sleep_survive_restart() {
    let fs = NetFs::new();
    let (mut k1, z1) = node(1, 1, &fs);
    let (mut k2, z2) = node(2, 2, &fs);
    let pod = z1.create_pod(&mut k1, pod_cfg("p", 54)).unwrap();

    // Program: create a pipe; write "inflight" into it; write a file and
    // read half; sleep 50 ms; then read the pipe, log it, and log the rest
    // of the file.
    let fds_ptr = DATA_BASE as i64;
    let msg = DATA_BASE as i64 + 32;
    let buf = DATA_BASE as i64 + 64;
    let path = DATA_BASE as i64 + 160;
    let mut a = Asm::new(CODE_BASE);
    a.sys1(nr::PIPE, fds_ptr);
    a.movi(R6, fds_ptr);
    a.ld(R7, R6, 0); // read fd
    a.ld(R8, R6, 8); // write fd
    a.mov(R1, R8);
    a.movi(R2, msg);
    a.movi(R3, 8);
    a.sys(nr::WRITE);
    // file: open create, write "abcdef", reopen, read 3
    a.sys3(nr::OPEN, path, 2, 1);
    a.mov(R9, simcpu::isa::R0);
    a.mov(R1, R9);
    a.movi(R2, msg);
    a.movi(R3, 8);
    a.sys(nr::WRITE);
    a.sys_r(nr::CLOSE, &[R9]);
    a.sys3(nr::OPEN, path, 2, 0);
    a.mov(R9, simcpu::isa::R0);
    a.mov(R1, R9);
    a.movi(R2, buf);
    a.movi(R3, 3);
    a.sys(nr::READ);
    // --- checkpoint lands in this sleep ---
    a.sys1(nr::SLEEP, 50_000_000);
    // read pipe and log
    a.mov(R1, R7);
    a.movi(R2, buf);
    a.movi(R3, 16);
    a.sys(nr::READ);
    a.mov(R6, simcpu::isa::R0);
    a.movi(R1, buf);
    a.mov(R2, R6);
    a.sys(nr::LOG);
    // read remaining file bytes (offset was 3) and log
    a.mov(R1, R9);
    a.movi(R2, buf);
    a.movi(R3, 16);
    a.sys(nr::READ);
    a.mov(R6, simcpu::isa::R0);
    a.movi(R1, buf);
    a.mov(R2, R6);
    a.sys(nr::LOG);
    a.sys1(nr::EXIT, 0);
    let prog = Program::from_asm(&a)
        .unwrap()
        .with_data(DATA_BASE, vec![0u8; 32])
        .with_data(DATA_BASE + 32, b"inflight".to_vec())
        .with_data(DATA_BASE + 160, b"/shared/file".to_vec());

    let vpid = z1.spawn_in_pod(&mut k1, pod, &prog).unwrap();
    let mut now = SimTime::ZERO;
    // Run into the sleep (but not past it).
    run_until(&mut k1, &mut now, 1_000_000, |k| {
        !k.has_runnable() && k.next_timer().is_some()
    });

    let image = z1.checkpoint_pod(&mut k1, pod, now).unwrap();
    assert_eq!(image.pipes.len(), 1);
    assert_eq!(image.pipes[0].data, b"inflight");
    z1.destroy_pod(&mut k1, pod).unwrap();

    let pod2 = z2.restart_pod(&mut k2, &image, now).unwrap();
    z2.resume_pod(&mut k2, pod2, now).unwrap();
    let mut now2 = now;
    assert!(run_until(&mut k2, &mut now2, 1_000_000, |k| {
        zombie_code(k, &z2, pod2, vpid).is_some()
    }));
    let pid = z2.real_pid(pod2, vpid).unwrap();
    let console = k2.process(pid).unwrap().console.clone();
    assert_eq!(console, vec!["inflight".to_string(), "light".to_string()]);
    // The sleep completed no earlier than its original absolute deadline.
    assert!(now2 >= SimTime::ZERO + SimDuration::from_millis(50));
}

#[test]
fn destroyed_pod_frees_its_address() {
    let fs = NetFs::new();
    let (mut k, z) = node(1, 1, &fs);
    let cfg = pod_cfg("p", 55);
    let pod = z.create_pod(&mut k, cfg.clone()).unwrap();
    assert!(k.net.is_local_ip(cfg.ip));
    // Same IP cannot be claimed twice.
    assert!(z.create_pod(&mut k, cfg.clone()).is_err());
    z.destroy_pod(&mut k, pod).unwrap();
    assert!(!k.net.is_local_ip(cfg.ip));
    // Now it can.
    let again = z.create_pod(&mut k, cfg).unwrap();
    assert_ne!(again, pod);
}

#[test]
fn checkpoint_preserves_zombies_for_waitpid() {
    let fs = NetFs::new();
    let (mut k1, z1) = node(1, 1, &fs);
    let (mut k2, z2) = node(2, 2, &fs);
    let pod = z1.create_pod(&mut k1, pod_cfg("p", 56)).unwrap();

    // Parent spawns a child that exits immediately; parent sleeps past the
    // checkpoint, then waits for the child: the zombie must have moved.
    let stack2 = 0x3000_0000u64;
    let mut a = Asm::new(CODE_BASE);
    let child = a.label();
    a.movi_label(R1, child);
    a.movi(R2, (stack2 + 0x4000) as i64);
    a.movi(R3, 0);
    a.sys(nr::SPAWN);
    a.mov(R6, simcpu::isa::R0);
    a.sys1(nr::SLEEP, 30_000_000);
    a.sys_r(nr::WAITPID, &[R6]);
    a.mov(R1, simcpu::isa::R0);
    a.sys(nr::EXIT);
    a.bind(child);
    a.sys1(nr::EXIT, 44);
    let prog = Program::from_asm(&a)
        .unwrap()
        .with_map(stack2, 0x4000, "stack2");

    let vpid = z1.spawn_in_pod(&mut k1, pod, &prog).unwrap();
    let mut now = SimTime::ZERO;
    run_until(&mut k1, &mut now, 1_000_000, |k| {
        !k.has_runnable() && k.next_timer().is_some()
    });
    let image = z1.checkpoint_pod(&mut k1, pod, now).unwrap();
    z1.destroy_pod(&mut k1, pod).unwrap();
    let pod2 = z2.restart_pod(&mut k2, &image, now).unwrap();
    z2.resume_pod(&mut k2, pod2, now).unwrap();
    let mut now2 = now;
    assert!(run_until(&mut k2, &mut now2, 1_000_000, |k| {
        zombie_code(k, &z2, pod2, vpid).is_some()
    }));
    assert_eq!(zombie_code(&k2, &z2, pod2, vpid), Some(44));
}

/// A program with a large (rarely-touched) resident array and a small hot
/// page, for incremental-checkpoint tests: phase 1 bumps a counter, then a
/// long sleep (checkpoint window), then more bumps and exit(counter).
fn counter_program(big_bytes: usize) -> Program {
    let counter = DATA_BASE as i64;
    let mut a = Asm::new(CODE_BASE);
    // counter = 5
    a.movi(R6, counter);
    a.movi(R7, 5);
    a.st(R6, R7, 0);
    a.sys1(nr::SLEEP, 10_000_000); // full checkpoint lands here
                                   // counter += 2  (dirties exactly one data page)
    a.movi(R6, counter);
    a.ld(R7, R6, 0);
    a.addi(R7, R7, 2);
    a.st(R6, R7, 0);
    a.sys1(nr::SLEEP, 10_000_000); // incremental checkpoint lands here
    a.movi(R6, counter);
    a.ld(R7, R6, 0);
    a.addi(R7, R7, 100);
    a.mov(R1, R7);
    a.sys(nr::EXIT);
    Program::from_asm(&a)
        .unwrap()
        .with_data(DATA_BASE, vec![0u8; 4096])
        .with_data(0x0200_0000, vec![0x7au8; big_bytes])
}

#[test]
fn incremental_checkpoint_chain_restores_correctly() {
    let fs = NetFs::new();
    let (mut k1, z1) = node(1, 1, &fs);
    let (mut k2, z2) = node(2, 2, &fs);
    let pod = z1.create_pod(&mut k1, pod_cfg("inc", 70)).unwrap();
    let big = 1024 * 1024;
    let vpid = z1
        .spawn_in_pod(&mut k1, pod, &counter_program(big))
        .unwrap();

    // Into the first sleep: full checkpoint.
    let mut now = SimTime::ZERO;
    run_until(&mut k1, &mut now, 1_000_000, |k| {
        !k.has_runnable() && k.next_timer().is_some()
    });
    let full = z1.checkpoint_pod(&mut k1, pod, now).unwrap();
    assert_eq!(full.base_epoch, None);
    z1.resume_pod(&mut k1, pod, now).unwrap();

    // Run into the second sleep: incremental checkpoint.
    let resumed_at = now;
    run_until(&mut k1, &mut now, 1_000_000, |k| {
        !k.has_runnable()
            && k.next_timer()
                .map(|t| t > resumed_at + SimDuration::from_millis(5))
                .unwrap_or(false)
    });
    let delta = z1.checkpoint_pod_incremental(&mut k1, pod, now, 1).unwrap();
    assert_eq!(delta.base_epoch, Some(1));

    // The delta is a tiny fraction of the full image: the 1 MiB array was
    // untouched between the checkpoints.
    let full_len = full.encoded_len();
    let delta_len = delta.encoded_len();
    assert!(
        delta_len * 10 < full_len,
        "delta {delta_len} B should be far below full {full_len} B"
    );

    // Fold the chain and restore on a different node; the program finishes
    // with the counter evolved across BOTH checkpoints: 5 + 2 + 100.
    let merged = full.apply_delta(&delta).unwrap();
    z1.destroy_pod(&mut k1, pod).unwrap();
    let pod2 = z2.restart_pod(&mut k2, &merged, now).unwrap();
    z2.resume_pod(&mut k2, pod2, now).unwrap();
    let mut now2 = now;
    assert!(run_until(&mut k2, &mut now2, 1_000_000, |k| {
        zombie_code(k, &z2, pod2, vpid).is_some()
    }));
    assert_eq!(zombie_code(&k2, &z2, pod2, vpid), Some(107));
}

#[test]
fn incremental_after_restore_starts_clean() {
    // Restore marks everything clean: an incremental taken right after a
    // restart carries (almost) nothing, not the whole address space.
    let fs = NetFs::new();
    let (mut k1, z1) = node(1, 1, &fs);
    let (mut k2, z2) = node(2, 2, &fs);
    let pod = z1.create_pod(&mut k1, pod_cfg("inc2", 71)).unwrap();
    let _vpid = z1
        .spawn_in_pod(&mut k1, pod, &counter_program(512 * 1024))
        .unwrap();
    let mut now = SimTime::ZERO;
    run_until(&mut k1, &mut now, 1_000_000, |k| {
        !k.has_runnable() && k.next_timer().is_some()
    });
    let full = z1.checkpoint_pod(&mut k1, pod, now).unwrap();
    z1.destroy_pod(&mut k1, pod).unwrap();
    let pod2 = z2.restart_pod(&mut k2, &full, now).unwrap();
    // Immediately take an incremental without resuming: nothing ran, so
    // nothing is dirty.
    let delta = z2
        .checkpoint_pod_incremental(&mut k2, pod2, now, 1)
        .unwrap();
    let pages: usize = delta.groups.iter().map(|g| g.pages.len()).sum();
    assert_eq!(pages, 0, "clean restore ⇒ empty delta");
}

#[test]
fn threads_sharing_memory_survive_restart_together() {
    // A thread group (shared address space + fd table) checkpointed
    // mid-run must restore as one group: a write by the restored thread is
    // visible to the restored parent.
    let fs = NetFs::new();
    let (mut k1, z1) = node(1, 1, &fs);
    let (mut k2, z2) = node(2, 2, &fs);
    let pod = z1.create_pod(&mut k1, pod_cfg("thr", 72)).unwrap();

    let flag = DATA_BASE as i64 + 64;
    let stack2 = 0x3000_0000u64;
    let mut a = Asm::new(CODE_BASE);
    let worker = a.label();
    // parent: spawn worker; sleep (checkpoint window); read flag; exit(flag)
    a.movi_label(R1, worker);
    a.movi(R2, (stack2 + 0x4000) as i64);
    a.movi(R3, 0);
    a.sys(nr::SPAWN);
    a.mov(R9, simcpu::isa::R0);
    a.sys1(nr::SLEEP, 20_000_000);
    a.sys_r(nr::WAITPID, &[R9]);
    a.movi(R6, flag);
    a.ld(R1, R6, 0);
    a.sys(nr::EXIT);
    // worker: sleep past the checkpoint too, then set flag = 88, exit
    a.bind(worker);
    a.sys1(nr::SLEEP, 20_000_000);
    a.movi(R6, flag);
    a.movi(R7, 88);
    a.st(R6, R7, 0);
    a.sys1(nr::EXIT, 0);
    let prog = Program::from_asm(&a)
        .unwrap()
        .with_data(DATA_BASE, vec![0u8; 4096])
        .with_map(stack2, 0x4000, "stack2");

    let vpid = z1.spawn_in_pod(&mut k1, pod, &prog).unwrap();
    let mut now = SimTime::ZERO;
    // Both threads blocked in their sleeps.
    run_until(&mut k1, &mut now, 1_000_000, |k| {
        !k.has_runnable() && k.next_timer().is_some()
    });
    let image = z1.checkpoint_pod(&mut k1, pod, now).unwrap();
    // One thread group: a single address space captured once.
    assert_eq!(image.groups.len(), 1);
    assert_eq!(image.procs.len(), 2);
    z1.destroy_pod(&mut k1, pod).unwrap();

    let pod2 = z2.restart_pod(&mut k2, &image, now).unwrap();
    z2.resume_pod(&mut k2, pod2, now).unwrap();
    let mut now2 = now;
    assert!(run_until(&mut k2, &mut now2, 1_000_000, |k| {
        zombie_code(k, &z2, pod2, vpid).is_some()
    }));
    // The worker's write (made after restart) reached the parent through
    // the restored shared address space.
    assert_eq!(zombie_code(&k2, &z2, pod2, vpid), Some(88));
}

#[test]
fn shared_memory_segment_restores_shared_between_processes() {
    // Two separate processes in one pod attached to the same SysV segment:
    // after restart, the segment must still be one object, not two copies.
    let fs = NetFs::new();
    let (mut k1, z1) = node(1, 1, &fs);
    let (mut k2, z2) = node(2, 2, &fs);
    let pod = z1.create_pod(&mut k1, pod_cfg("shm", 73)).unwrap();
    let shm_addr = 0x3800_0000u64;

    // Writer: attach, sleep (checkpoint), write 123, exit.
    let mut wa = Asm::new(CODE_BASE);
    wa.sys2(nr::SHMGET, 9, 4096);
    wa.mov(R6, simcpu::isa::R0);
    wa.mov(R1, R6);
    wa.movi(R2, shm_addr as i64);
    wa.sys(nr::SHMAT);
    wa.sys1(nr::SLEEP, 20_000_000);
    wa.movi(R6, shm_addr as i64);
    wa.movi(R7, 123);
    wa.st(R6, R7, 0);
    wa.sys1(nr::EXIT, 0);
    let writer = Program::from_asm(&wa).unwrap();

    // Reader: attach, sleep longer, read, exit(value).
    let mut ra = Asm::new(CODE_BASE);
    ra.sys1(nr::SLEEP, 1_000_000);
    ra.sys2(nr::SHMGET, 9, 4096);
    ra.mov(R6, simcpu::isa::R0);
    ra.mov(R1, R6);
    ra.movi(R2, shm_addr as i64);
    ra.sys(nr::SHMAT);
    ra.sys1(nr::SLEEP, 40_000_000);
    ra.movi(R6, shm_addr as i64);
    ra.ld(R1, R6, 0);
    ra.sys(nr::EXIT);
    let reader = Program::from_asm(&ra).unwrap();

    let _wv = z1.spawn_in_pod(&mut k1, pod, &writer).unwrap();
    let rv = z1.spawn_in_pod(&mut k1, pod, &reader).unwrap();
    let mut now = SimTime::ZERO;
    run_until(&mut k1, &mut now, 1_000_000, |k| {
        !k.has_runnable() && k.next_timer().is_some()
    });
    let image = z1.checkpoint_pod(&mut k1, pod, now).unwrap();
    assert_eq!(image.shm.len(), 1, "the pod's segment is captured");
    z1.destroy_pod(&mut k1, pod).unwrap();

    let pod2 = z2.restart_pod(&mut k2, &image, now).unwrap();
    z2.resume_pod(&mut k2, pod2, now).unwrap();
    let mut now2 = now;
    assert!(run_until(&mut k2, &mut now2, 2_000_000, |k| {
        zombie_code(k, &z2, pod2, rv).is_some()
    }));
    // The writer's post-restart store is visible to the reader: the
    // restored mappings alias ONE segment.
    assert_eq!(zombie_code(&k2, &z2, pod2, rv), Some(123));
}

#[test]
fn pending_accept_queue_survives_restart() {
    // A client connects while the server pod is busy (asleep) — the
    // established-but-unaccepted connection sits in the listener's accept
    // queue. Checkpointing the server pod at that instant must carry the
    // queued connection; after restart the server accepts and serves it.
    let fs = NetFs::new();
    let (mut k, z) = node(1, 1, &fs);
    let pod_c = z.create_pod(&mut k, pod_cfg("client", 80)).unwrap();
    let pod_s = z.create_pod(&mut k, pod_cfg("server", 81)).unwrap();
    let server_ip = IpAddr::from_octets([10, 0, 0, 81]);

    // Server: listen, sleep 20 ms (checkpoint lands here, with the client
    // already queued), then accept + recv + log + exit.
    let buf = DATA_BASE as i64;
    let mut sa = Asm::new(CODE_BASE);
    sa.sys1(nr::SOCKET, 0);
    sa.mov(R6, simcpu::isa::R0);
    sa.mov(R1, R6);
    sa.movi(R2, 0);
    sa.movi(R3, 7500);
    sa.sys(nr::BIND);
    sa.mov(R1, R6);
    sa.movi(R2, 4);
    sa.sys(nr::LISTEN);
    sa.sys1(nr::SLEEP, 20_000_000);
    sa.sys_r(nr::ACCEPT, &[R6]);
    sa.mov(R7, simcpu::isa::R0);
    sa.mov(R1, R7);
    sa.movi(R2, buf);
    sa.movi(R3, 64);
    sa.sys(nr::RECV);
    sa.mov(R8, simcpu::isa::R0);
    sa.movi(R1, buf);
    sa.mov(R2, R8);
    sa.sys(nr::LOG);
    sa.sys1(nr::EXIT, 0);
    let server = Program::from_asm(&sa)
        .unwrap()
        .with_data(DATA_BASE, vec![0u8; 128]);

    // Client: connect early, send, keep living.
    let msg = DATA_BASE as i64 + 64;
    let mut ca = Asm::new(CODE_BASE);
    ca.sys1(nr::SLEEP, 1_000_000);
    ca.sys1(nr::SOCKET, 0);
    ca.mov(R6, simcpu::isa::R0);
    ca.mov(R1, R6);
    ca.movi(R2, server_ip.to_bits() as i64);
    ca.movi(R3, 7500);
    ca.sys(nr::CONNECT);
    ca.mov(R1, R6);
    ca.movi(R2, msg);
    ca.movi(R3, 6);
    ca.sys(nr::SEND);
    ca.sys1(nr::SLEEP, 1_000_000_000);
    ca.sys1(nr::EXIT, 0);
    let client = Program::from_asm(&ca)
        .unwrap()
        .with_data(DATA_BASE, vec![0u8; 64])
        .with_data(DATA_BASE + 64, b"queued".to_vec());

    let sv = z.spawn_in_pod(&mut k, pod_s, &server).unwrap();
    let _cv = z.spawn_in_pod(&mut k, pod_c, &client).unwrap();

    // Run 5 ms: client connected and sent; server still asleep.
    let mut now = SimTime::ZERO;
    run_for(
        &mut k,
        &mut now,
        SimTime::ZERO + SimDuration::from_millis(5),
    );

    let image = z.checkpoint_pod(&mut k, pod_s, now).unwrap();
    // The image's listener carries exactly one pending connection.
    let pending = image
        .sockets
        .iter()
        .find_map(|s| match s {
            zap::image::SockImage::Listen { pending, .. } => Some(pending.len()),
            _ => None,
        })
        .expect("listener captured");
    assert_eq!(pending, 1, "queued connection rides in the image");

    z.destroy_pod(&mut k, pod_s).unwrap();
    let pod_s2 = z.restart_pod(&mut k, &image, now).unwrap();
    z.resume_pod(&mut k, pod_s2, now).unwrap();

    assert!(run_until(&mut k, &mut now, 2_000_000, |k| {
        zombie_code(k, &z, pod_s2, sv).is_some()
    }));
    assert_eq!(zombie_code(&k, &z, pod_s2, sv), Some(0));
    assert_eq!(
        z.console_of(&k, pod_s2, sv).unwrap(),
        vec!["queued".to_string()]
    );
}

#[test]
fn queued_udp_datagrams_survive_restart() {
    let fs = NetFs::new();
    let (mut k, z) = node(1, 1, &fs);
    let pod_rx = z.create_pod(&mut k, pod_cfg("rx", 82)).unwrap();
    let pod_tx = z.create_pod(&mut k, pod_cfg("tx", 83)).unwrap();
    let rx_ip = IpAddr::from_octets([10, 0, 0, 82]);

    // Receiver: bind, sleep (datagram arrives and queues), recvfrom, log.
    let buf = DATA_BASE as i64;
    let mut ra = Asm::new(CODE_BASE);
    ra.sys1(nr::SOCKET, 1);
    ra.mov(R6, simcpu::isa::R0);
    ra.mov(R1, R6);
    ra.movi(R2, 0);
    ra.movi(R3, 6100);
    ra.sys(nr::BIND);
    ra.sys1(nr::SLEEP, 20_000_000);
    ra.mov(R1, R6);
    ra.movi(R2, buf);
    ra.movi(R3, 64);
    ra.movi(simcpu::isa::R4, 0);
    ra.sys(nr::RECVFROM);
    ra.mov(R7, simcpu::isa::R0);
    ra.movi(R1, buf);
    ra.mov(R2, R7);
    ra.sys(nr::LOG);
    ra.sys1(nr::EXIT, 0);
    let receiver = Program::from_asm(&ra)
        .unwrap()
        .with_data(DATA_BASE, vec![0u8; 128]);

    let msg = DATA_BASE as i64;
    let mut ta = Asm::new(CODE_BASE);
    ta.sys1(nr::SLEEP, 1_000_000);
    ta.sys1(nr::SOCKET, 1);
    ta.mov(R6, simcpu::isa::R0);
    ta.mov(R1, R6);
    ta.movi(R2, rx_ip.to_bits() as i64);
    ta.movi(R3, 6100);
    ta.movi(simcpu::isa::R4, msg);
    ta.movi(simcpu::isa::R5, 5);
    ta.sys(nr::SENDTO);
    ta.sys1(nr::EXIT, 0);
    let sender = Program::from_asm(&ta)
        .unwrap()
        .with_data(DATA_BASE, b"dgram".to_vec());

    let rv = z.spawn_in_pod(&mut k, pod_rx, &receiver).unwrap();
    let _tv = z.spawn_in_pod(&mut k, pod_tx, &sender).unwrap();
    let mut now = SimTime::ZERO;
    run_for(
        &mut k,
        &mut now,
        SimTime::ZERO + SimDuration::from_millis(5),
    );

    let image = z.checkpoint_pod(&mut k, pod_rx, now).unwrap();
    let queued = image
        .sockets
        .iter()
        .find_map(|s| match s {
            zap::image::SockImage::Udp { queue, .. } => Some(queue.len()),
            _ => None,
        })
        .expect("udp socket captured");
    assert_eq!(queued, 1, "the undelivered datagram rides in the image");

    z.destroy_pod(&mut k, pod_rx).unwrap();
    let pod_rx2 = z.restart_pod(&mut k, &image, now).unwrap();
    z.resume_pod(&mut k, pod_rx2, now).unwrap();
    assert!(run_until(&mut k, &mut now, 2_000_000, |k| {
        zombie_code(k, &z, pod_rx2, rv).is_some()
    }));
    assert_eq!(
        z.console_of(&k, pod_rx2, rv).unwrap(),
        vec!["dgram".to_string()]
    );
}

#[test]
fn forked_processes_in_a_pod_checkpoint_as_separate_groups() {
    // fork inside a pod: the child gets a virtual pid, its own address
    // space copy, and both survive a checkpoint/restart as distinct groups.
    let fs = NetFs::new();
    let (mut k1, z1) = node(1, 1, &fs);
    let (mut k2, z2) = node(2, 2, &fs);
    let pod = z1.create_pod(&mut k1, pod_cfg("fork", 84)).unwrap();

    let cell = DATA_BASE as i64;
    let mut a = Asm::new(CODE_BASE);
    let child = a.label();
    a.movi(R6, cell);
    a.movi(R7, 5);
    a.st(R6, R7, 0);
    a.sys(nr::FORK); // hook returns the child's VPID to the parent
    a.jz(simcpu::isa::R0, child);
    a.mov(R9, simcpu::isa::R0);
    // Parent sleeps across the checkpoint, then waits for the child and
    // exits with child_vpid*100 + child_code + own_cell.
    a.sys1(nr::SLEEP, 20_000_000);
    a.mov(R1, R9);
    a.muli(R1, R1, 100);
    a.push(R1);
    a.sys_r(nr::WAITPID, &[R9]);
    a.mov(R7, simcpu::isa::R0);
    a.pop(R1);
    a.add(R1, R1, R7);
    a.movi(R6, cell);
    a.ld(R7, R6, 0);
    a.add(R1, R1, R7);
    a.sys(nr::EXIT);
    // Child: mutate ITS copy, sleep across the checkpoint too, exit with
    // its view of the cell.
    a.bind(child);
    a.movi(R6, cell);
    a.movi(R7, 8);
    a.st(R6, R7, 0);
    a.sys1(nr::SLEEP, 20_000_000);
    a.movi(R6, cell);
    a.ld(R1, R6, 0);
    a.sys(nr::EXIT);
    let prog = Program::from_asm(&a)
        .unwrap()
        .with_data(DATA_BASE, vec![0u8; 16]);

    let vpid = z1.spawn_in_pod(&mut k1, pod, &prog).unwrap();
    let mut now = SimTime::ZERO;
    // Run until both processes are in their sleeps.
    run_until(&mut k1, &mut now, 1_000_000, |k| {
        !k.has_runnable() && k.next_timer().is_some() && k.live_processes() == 2
    });
    let image = z1.checkpoint_pod(&mut k1, pod, now).unwrap();
    assert_eq!(image.procs.len(), 2, "parent and forked child captured");
    assert_eq!(image.groups.len(), 2, "fork means two address spaces");
    z1.destroy_pod(&mut k1, pod).unwrap();

    let pod2 = z2.restart_pod(&mut k2, &image, now).unwrap();
    z2.resume_pod(&mut k2, pod2, now).unwrap();
    let mut now2 = now;
    assert!(run_until(&mut k2, &mut now2, 2_000_000, |k| {
        zombie_code(k, &z2, pod2, vpid).is_some()
    }));
    // child vpid = 2 → 200; child exit = its view (8); parent cell = 5.
    assert_eq!(zombie_code(&k2, &z2, pod2, vpid), Some(213));
}

/// A program that sums 1..=n while scribbling its accumulator through a data
/// buffer, dirtying a fresh cache line (and eventually fresh pages) every
/// iteration — a worst case for post-arm copy-on-write traffic.
fn scribbling_program(n: i64) -> Program {
    const BUF_BYTES: i64 = 0x1_0000; // 16 pages of writable scratch
    let mut a = Asm::new(CODE_BASE);
    a.movi(R6, 0); // acc
    a.movi(R7, 1); // i
    a.movi(R8, n);
    a.movi(R9, DATA_BASE as i64); // write cursor
    a.movi(R10, DATA_BASE as i64 + BUF_BYTES); // cursor limit
    let top = a.label();
    let no_wrap = a.label();
    let done = a.label();
    a.bind(top);
    a.add(R6, R6, R7);
    a.st(R9, R6, 0);
    a.addi(R9, R9, 64);
    a.cmp_lt_jump(R9, R10, no_wrap);
    a.movi(R9, DATA_BASE as i64);
    a.bind(no_wrap);
    a.addi(R7, R7, 1);
    a.cmp_gt_jump(R7, R8, done);
    a.jmp(top);
    a.bind(done);
    a.mov(R1, R6);
    a.sys(nr::EXIT);
    Program::from_asm(&a)
        .unwrap()
        .with_data(DATA_BASE, vec![0u8; BUF_BYTES as usize])
}

#[test]
fn cow_arm_drain_matches_eager_capture() {
    // Twin deterministic kernels reach the identical instant; node 1 takes a
    // stop-the-world checkpoint, node 2 arms a COW snapshot, resumes, keeps
    // computing (overwriting armed pages), and only then drains. The drained
    // image must be byte-identical to the eager one.
    let fs = NetFs::new();
    let (mut k1, z1) = node(1, 1, &fs);
    let (mut k2, z2) = node(2, 2, &fs);
    let pod1 = z1.create_pod(&mut k1, pod_cfg("job", 50)).unwrap();
    let pod2 = z2.create_pod(&mut k2, pod_cfg("job", 50)).unwrap();
    let n = 100_000i64;
    let vpid1 = z1
        .spawn_in_pod(&mut k1, pod1, &scribbling_program(n))
        .unwrap();
    let vpid2 = z2
        .spawn_in_pod(&mut k2, pod2, &scribbling_program(n))
        .unwrap();
    assert_eq!(vpid1, vpid2);

    let mut now1 = SimTime::ZERO;
    let mut now2 = SimTime::ZERO;
    for _ in 0..3 {
        now1 += k1.run_slice(now1).elapsed;
        now2 += k2.run_slice(now2).elapsed;
    }
    assert_eq!(now1, now2, "twin kernels diverged before capture");

    let eager = z1.checkpoint_pod(&mut k1, pod1, now1).unwrap();
    let armed = z2.checkpoint_pod_arm(&mut k2, pod2, now2, None).unwrap();

    // The arm phase hands back only the image skeleton: far smaller than the
    // full image, with the page payload still pending.
    assert!(armed.arm_bytes() < eager.encoded_len() as u64 / 4);
    assert!(armed.pending_page_bytes() >= eager.page_payload_bytes());
    assert_eq!(armed.copied_bytes(), 0, "no writes raced yet");

    // Resume the armed pod and let the guest scribble over snapshot pages.
    z2.resume_pod(&mut k2, pod2, now2).unwrap();
    for _ in 0..5 {
        now2 += k2.run_slice(now2).elapsed;
    }

    let (drained, copied) = armed.drain();
    assert!(
        copied > 0,
        "racing guest writes must force pre-image copies"
    );
    assert_eq!(
        drained.encode(),
        eager.encode(),
        "drained COW image differs from the stop-the-world capture"
    );

    // The armed pod is unharmed by the drain: it still finishes the job.
    assert!(run_until(&mut k2, &mut now2, 2_000_000, |k| {
        zombie_code(k, &z2, pod2, vpid2).is_some()
    }));
    let expected = (n as u64) * (n as u64 + 1) / 2;
    assert_eq!(zombie_code(&k2, &z2, pod2, vpid2), Some(expected));
}

#[test]
fn cow_arm_cancel_leaves_pod_running() {
    let fs = NetFs::new();
    let (mut k, z) = node(1, 1, &fs);
    let pod = z.create_pod(&mut k, pod_cfg("job", 50)).unwrap();
    let n = 50_000i64;
    let vpid = z.spawn_in_pod(&mut k, pod, &scribbling_program(n)).unwrap();
    let mut now = SimTime::ZERO;
    for _ in 0..3 {
        now += k.run_slice(now).elapsed;
    }
    let armed = z.checkpoint_pod_arm(&mut k, pod, now, None).unwrap();
    z.resume_pod(&mut k, pod, now).unwrap();
    now += k.run_slice(now).elapsed;
    armed.cancel();
    assert!(run_until(&mut k, &mut now, 2_000_000, |k| {
        zombie_code(k, &z, pod, vpid).is_some()
    }));
    let expected = (n as u64) * (n as u64 + 1) / 2;
    assert_eq!(zombie_code(&k, &z, pod, vpid), Some(expected));
}
