//! Pods: private process domains with virtualized identifiers.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use simnet::addr::IpAddr;
use simnet::stack::SocketId;
use simos::proc::Pid;

use crate::image::MacMode;

/// A pod identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PodId(pub u64);

impl fmt::Display for PodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pod{}", self.0)
    }
}

/// A virtual process id, private to a pod.
pub type Vpid = u32;

/// Configuration of a pod: its name and network identity.
#[derive(Debug, Clone)]
pub struct PodConfig {
    /// Human-readable name (also keys checkpoint files).
    pub name: String,
    /// The pod's externally routable IP address, preserved across
    /// checkpoint/restart and migration (§4.2).
    pub ip: IpAddr,
    /// How the pod's VIF obtains a MAC.
    pub mac_mode: MacMode,
}

/// A live pod on one node.
#[derive(Debug)]
pub struct Pod {
    /// Identifier.
    pub id: PodId,
    /// Configuration.
    pub cfg: PodConfig,
    /// The VIF name on the hosting node's stack.
    pub vif_name: String,
    /// Virtual-to-real pid mapping.
    pub vpid_to_pid: BTreeMap<Vpid, Pid>,
    /// Real-to-virtual pid mapping.
    pub pid_to_vpid: BTreeMap<Pid, Vpid>,
    /// Next virtual pid to hand out.
    pub next_vpid: Vpid,
    /// Restore-time alternate receive buffers, keyed by socket (§4.1): data
    /// delivered through the interposed `recv` before the real kernel
    /// buffers are consulted.
    pub alt_recv: BTreeMap<SocketId, VecDeque<u8>>,
    /// Whether the `recv` interception fast-path check is active. Cleared
    /// once every alternate buffer has drained (the paper's optimization).
    pub intercepting: bool,
    /// Shared-memory keys this pod has used (tracked by the interposer so
    /// checkpoint knows what to save).
    pub shm_keys: BTreeSet<u64>,
    /// Semaphore keys this pod has used.
    pub sem_keys: BTreeSet<u64>,
}

impl Pod {
    /// Creates an empty pod.
    pub fn new(id: PodId, cfg: PodConfig, vif_name: String) -> Self {
        Pod {
            id,
            cfg,
            vif_name,
            vpid_to_pid: BTreeMap::new(),
            pid_to_vpid: BTreeMap::new(),
            next_vpid: 1,
            alt_recv: BTreeMap::new(),
            intercepting: false,
            shm_keys: BTreeSet::new(),
            sem_keys: BTreeSet::new(),
        }
    }

    /// Registers a real pid under a fresh virtual pid.
    pub fn adopt(&mut self, pid: Pid) -> Vpid {
        let vpid = self.next_vpid;
        self.next_vpid += 1;
        self.vpid_to_pid.insert(vpid, pid);
        self.pid_to_vpid.insert(pid, vpid);
        vpid
    }

    /// Registers a real pid under a specific virtual pid (restore path).
    pub fn adopt_as(&mut self, pid: Pid, vpid: Vpid) {
        self.vpid_to_pid.insert(vpid, pid);
        self.pid_to_vpid.insert(pid, vpid);
        self.next_vpid = self.next_vpid.max(vpid + 1);
    }

    /// Resolves a virtual pid.
    pub fn pid_of(&self, vpid: Vpid) -> Option<Pid> {
        self.vpid_to_pid.get(&vpid).copied()
    }

    /// Resolves a real pid to its virtual pid.
    pub fn vpid_of(&self, pid: Pid) -> Option<Vpid> {
        self.pid_to_vpid.get(&pid).copied()
    }

    /// Real pids of the pod in virtual-pid order.
    pub fn pids(&self) -> Vec<Pid> {
        self.vpid_to_pid.values().copied().collect()
    }

    /// Forgets a real pid (after `waitpid` reaping or teardown).
    pub fn forget(&mut self, pid: Pid) {
        if let Some(vpid) = self.pid_to_vpid.remove(&pid) {
            self.vpid_to_pid.remove(&vpid);
        }
    }

    /// True if any alternate receive buffer still holds data.
    pub fn any_alt_recv(&self) -> bool {
        self.alt_recv.values().any(|q| !q.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::addr::MacAddr;

    fn pod() -> Pod {
        Pod::new(
            PodId(1),
            PodConfig {
                name: "p".into(),
                ip: IpAddr::from_octets([10, 0, 0, 50]),
                mac_mode: MacMode::Dedicated(MacAddr::from_index(50)),
            },
            "vif1".into(),
        )
    }

    #[test]
    fn vpid_allocation_and_lookup() {
        let mut p = pod();
        let v1 = p.adopt(100);
        let v2 = p.adopt(200);
        assert_eq!((v1, v2), (1, 2));
        assert_eq!(p.pid_of(1), Some(100));
        assert_eq!(p.vpid_of(200), Some(2));
        assert_eq!(p.pids(), vec![100, 200]);
    }

    #[test]
    fn adopt_as_preserves_numbering() {
        let mut p = pod();
        p.adopt_as(500, 7);
        assert_eq!(p.pid_of(7), Some(500));
        // Fresh allocations continue above the restored vpid.
        assert_eq!(p.adopt(501), 8);
    }

    #[test]
    fn forget_removes_both_directions() {
        let mut p = pod();
        p.adopt(100);
        p.forget(100);
        assert_eq!(p.pid_of(1), None);
        assert_eq!(p.vpid_of(100), None);
    }

    #[test]
    fn alt_recv_tracking() {
        let mut p = pod();
        assert!(!p.any_alt_recv());
        p.alt_recv
            .insert(simnet::stack::SocketId(1), VecDeque::from(vec![1u8]));
        assert!(p.any_alt_recv());
    }
}
