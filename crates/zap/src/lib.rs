//! Pod virtualization and single-node checkpoint/restart — the Zap layer.
//!
//! This crate reproduces the substrate the Cruz paper builds on: a thin
//! virtualization layer ("pods") interposed between applications and an
//! unmodified OS, plus a comprehensive checkpoint/restart of user-level and
//! kernel-level state:
//!
//! * [`pod`] — pods and virtual-pid namespaces;
//! * [`interpose`] — the syscall hook (vpid translation, VIF confinement of
//!   `bind`/`connect`, `SIOCGIFHWADDR` fake-MAC virtualization, alternate
//!   receive buffers);
//! * [`image`] — the checkpoint image format with an explicit byte codec;
//! * [`manager`] — [`manager::Zap`]: pod lifecycle, §4.1 checkpoint (freeze,
//!   socket-state capture with rewritten sequence numbers and preserved
//!   packet boundaries, memory/pipe/shm/semaphore extraction) and restart
//!   (fresh real pids behind stable vpids, send-replay with Nagle/CORK
//!   disabled, alternate-buffer delivery).
//!
//! Distributed coordination lives one layer up, in the `cruz` crate.

#![warn(missing_docs)]

pub mod image;
pub mod interpose;
pub mod manager;
pub mod pod;

pub use image::{MacMode, PodImage};
pub use interpose::ZapState;
pub use manager::{ArmedPodCheckpoint, Zap, ZapError};
pub use pod::{Pod, PodConfig, PodId, Vpid};
