//! The on-disk checkpoint image format.
//!
//! A pod image is a self-contained byte string: pod identity and network
//! configuration, every kernel object the pod's processes reference (shared
//! memory, semaphores, pipes, sockets with their §4.1 TCP snapshots), each
//! thread group's address space (areas plus non-zero pages only) and
//! descriptor table, and per-process CPU state. Images written on one node
//! restore on any other.
//!
//! The codec is deliberately explicit (length-prefixed fields, magic,
//! version, trailing checksum) rather than derived: the format *is* the
//! compatibility surface a checkpoint system ships.

use std::fmt;

use des::digest::fnv1a;
use simnet::addr::{IpAddr, MacAddr, SockAddr};
use simnet::tcp::{TcpSnapshot, TcpState};

/// Image magic number (`CRZ1`).
pub const MAGIC: u32 = 0x4352_5a31;
/// Current format version.
pub const VERSION: u16 = 1;

/// A decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    /// The buffer ended before the structure did.
    Truncated,
    /// Bad magic number.
    BadMagic(u32),
    /// Unsupported version.
    BadVersion(u16),
    /// A tag byte had no meaning.
    BadTag(u8),
    /// The trailing checksum did not match.
    BadChecksum,
    /// A string was not UTF-8.
    BadString,
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::Truncated => write!(f, "image truncated"),
            ImageError::BadMagic(m) => write!(f, "bad image magic {m:#010x}"),
            ImageError::BadVersion(v) => write!(f, "unsupported image version {v}"),
            ImageError::BadTag(t) => write!(f, "invalid tag byte {t:#04x}"),
            ImageError::BadChecksum => write!(f, "image checksum mismatch"),
            ImageError::BadString => write!(f, "invalid utf-8 in image string"),
        }
    }
}

impl std::error::Error for ImageError {}

// ---- low-level codec -------------------------------------------------------

/// Serializer for image structures.
#[derive(Debug, Default)]
pub struct ImageWriter {
    buf: Vec<u8>,
}

impl ImageWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Finishes the image: appends the FNV-1a checksum of everything so far.
    pub fn finish(mut self) -> Vec<u8> {
        let sum = fnv1a(&self.buf);
        self.u64(sum);
        self.buf
    }

    /// Bytes written so far (before `finish`).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing was written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Deserializer for image structures.
#[derive(Debug)]
pub struct ImageReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ImageReader<'a> {
    /// Wraps a complete image, verifying its trailing checksum.
    ///
    /// # Errors
    ///
    /// [`ImageError::Truncated`] or [`ImageError::BadChecksum`].
    pub fn verify(data: &'a [u8]) -> Result<Self, ImageError> {
        if data.len() < 8 {
            return Err(ImageError::Truncated);
        }
        let (body, sum_bytes) = data.split_at(data.len() - 8);
        let stored = u64::from_le_bytes(sum_bytes.try_into().expect("8 bytes"));
        if fnv1a(body) != stored {
            return Err(ImageError::BadChecksum);
        }
        Ok(ImageReader { data: body, pos: 0 })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ImageError> {
        if self.pos + n > self.data.len() {
            return Err(ImageError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, ImageError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> Result<u16, ImageError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, ImageError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, ImageError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads an `i64`.
    pub fn i64(&mut self) -> Result<i64, ImageError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<Vec<u8>, ImageError> {
        let n = self.u64()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, ImageError> {
        String::from_utf8(self.bytes()?).map_err(|_| ImageError::BadString)
    }

    /// Reads a bool.
    pub fn bool(&mut self) -> Result<bool, ImageError> {
        Ok(self.u8()? != 0)
    }

    /// True if all bytes were consumed.
    pub fn at_end(&self) -> bool {
        self.pos == self.data.len()
    }
}

// ---- image structures --------------------------------------------------------

/// How the pod's VIF gets its MAC (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacMode {
    /// The VIF owns a dedicated, migratable MAC (hardware supports multiple
    /// MACs or promiscuous mode).
    Dedicated(MacAddr),
    /// The VIF shares the physical NIC's MAC; the pod keeps a *fake* MAC
    /// that DHCP identity is pinned to, and migration relies on gratuitous
    /// ARP.
    SharedPhysical {
        /// The fake MAC reported to the pod via `SIOCGIFHWADDR`.
        fake_mac: MacAddr,
    },
}

impl MacMode {
    /// The MAC the pod believes it has (dedicated or fake).
    pub fn pod_visible_mac(&self) -> MacAddr {
        match self {
            MacMode::Dedicated(m) => *m,
            MacMode::SharedPhysical { fake_mac } => *fake_mac,
        }
    }
}

/// A shared-memory segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShmImage {
    /// `shmget` key.
    pub key: u64,
    /// Segment contents.
    pub data: Vec<u8>,
}

/// A semaphore set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemImage {
    /// `semget` key.
    pub key: u64,
    /// Semaphore values.
    pub values: Vec<i64>,
}

/// A pipe with its in-flight bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipeImage {
    /// Buffered bytes.
    pub data: Vec<u8>,
    /// Open read-end references.
    pub readers: u32,
    /// Open write-end references.
    pub writers: u32,
}

/// A checkpointed socket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SockImage {
    /// A listening TCP socket.
    Listen {
        /// Bound local address.
        local: SockAddr,
        /// Accept backlog.
        backlog: u32,
        /// Established, not-yet-accepted children and their undelivered
        /// receive streams.
        pending: Vec<(TcpConnImage, Vec<u8>)>,
    },
    /// An established-family TCP connection.
    Conn {
        /// The §4.1 connection snapshot.
        snap: TcpConnImage,
        /// Receive-stream bytes to park in the restore-side alternate
        /// buffer (prior alternate-buffer remainder concatenated with the
        /// kernel receive queue, as the paper specifies).
        alt_recv: Vec<u8>,
    },
    /// A UDP socket with queued datagrams.
    Udp {
        /// Bound local address, if any.
        bound: Option<SockAddr>,
        /// Queued (source, payload) datagrams.
        queue: Vec<(SockAddr, Vec<u8>)>,
    },
    /// A TCP socket that was created (and possibly bound) but neither
    /// listening nor connected — also used for sockets whose connection had
    /// already died at checkpoint time.
    Fresh {
        /// Bound local address, if any.
        bound: Option<SockAddr>,
    },
}

/// Serializable form of [`TcpSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpConnImage {
    /// Local endpoint.
    pub local: SockAddr,
    /// Remote endpoint.
    pub remote: SockAddr,
    /// Connection state tag.
    pub state: u8,
    /// Rewritten send sequence number.
    pub snd_una: u32,
    /// Receive sequence number.
    pub rcv_nxt: u32,
    /// Peer window.
    pub peer_window: u32,
    /// `TCP_NODELAY`.
    pub nodelay: bool,
    /// `TCP_CORK`.
    pub cork: bool,
    /// In-flight packets (boundaries preserved).
    pub inflight: Vec<Vec<u8>>,
    /// Unsent buffered bytes.
    pub unsent: Vec<u8>,
}

impl TcpConnImage {
    /// Converts from a live snapshot (dropping the receive stream, which is
    /// carried separately as the alternate buffer).
    pub fn from_snapshot(s: &TcpSnapshot) -> Self {
        TcpConnImage {
            local: s.local,
            remote: s.remote,
            state: encode_tcp_state(s.state),
            snd_una: s.snd_una.raw(),
            rcv_nxt: s.rcv_nxt.raw(),
            peer_window: s.peer_window,
            nodelay: s.nodelay,
            cork: s.cork,
            inflight: s.inflight.clone(),
            unsent: s.unsent.clone(),
        }
    }

    /// Converts back to a snapshot for [`simnet::NetStack::tcp_restore`].
    ///
    /// # Errors
    ///
    /// [`ImageError::BadTag`] for an unknown state tag.
    pub fn to_snapshot(&self) -> Result<TcpSnapshot, ImageError> {
        Ok(TcpSnapshot {
            local: self.local,
            remote: self.remote,
            state: decode_tcp_state(self.state)?,
            snd_una: simnet::tcp::SeqNum::new(self.snd_una),
            rcv_nxt: simnet::tcp::SeqNum::new(self.rcv_nxt),
            peer_window: self.peer_window,
            nodelay: self.nodelay,
            cork: self.cork,
            inflight: self.inflight.clone(),
            unsent: self.unsent.clone(),
            recv_stream: Vec::new(),
        })
    }
}

fn encode_tcp_state(s: TcpState) -> u8 {
    match s {
        TcpState::SynSent => 0,
        TcpState::SynRcvd => 1,
        TcpState::Established => 2,
        TcpState::FinWait1 => 3,
        TcpState::FinWait2 => 4,
        TcpState::CloseWait => 5,
        TcpState::Closing => 6,
        TcpState::LastAck => 7,
        TcpState::TimeWait => 8,
        TcpState::Closed => 9,
    }
}

fn decode_tcp_state(b: u8) -> Result<TcpState, ImageError> {
    Ok(match b {
        0 => TcpState::SynSent,
        1 => TcpState::SynRcvd,
        2 => TcpState::Established,
        3 => TcpState::FinWait1,
        4 => TcpState::FinWait2,
        5 => TcpState::CloseWait,
        6 => TcpState::Closing,
        7 => TcpState::LastAck,
        8 => TcpState::TimeWait,
        9 => TcpState::Closed,
        t => return Err(ImageError::BadTag(t)),
    })
}

/// A mapped memory area.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AreaImage {
    /// Start address.
    pub start: u64,
    /// Length in bytes.
    pub len: u64,
    /// Tag string.
    pub tag: String,
    /// `None` for private; `Some(index)` into the image's shm table.
    pub shm_index: Option<u32>,
}

/// A descriptor-table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DescImage {
    /// The process console.
    Console,
    /// An open file.
    File {
        /// File path.
        path: String,
        /// Read/write offset.
        offset: u64,
    },
    /// A pipe end (index into the image pipe table).
    Pipe {
        /// Pipe index.
        index: u32,
        /// True for the write end.
        write_end: bool,
    },
    /// A socket (index into the image socket table).
    Socket {
        /// Socket index.
        index: u32,
    },
}

/// A thread group: one address space and descriptor table, shared by one or
/// more processes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupImage {
    /// Mapped areas.
    pub areas: Vec<AreaImage>,
    /// Non-zero private pages: (page address, contents).
    pub pages: Vec<(u64, Vec<u8>)>,
    /// Descriptor entries: (fd, what).
    pub fds: Vec<(u32, DescImage)>,
}

/// A process's scheduling situation at checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStateImage {
    /// Runnable (or blocked on a retryable syscall — the pending record
    /// carries the retry).
    Ready,
    /// Sleeping until an absolute simulated time (nanoseconds).
    SleepUntil(u64),
    /// Exited with a code (kept for `waitpid` after restore).
    Zombie(u64),
}

/// One process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcImage {
    /// Virtual pid within the pod.
    pub vpid: u32,
    /// Parent's virtual pid (0 = pod root).
    pub parent_vpid: u32,
    /// Index into the image's group table.
    pub group: u32,
    /// Register file.
    pub regs: [u64; 16],
    /// Program counter.
    pub pc: u64,
    /// Whether the CPU had executed `halt`.
    pub halted: bool,
    /// A blocked syscall to re-issue after restore.
    pub pending: Option<(u64, [u64; 5])>,
    /// Scheduling state.
    pub run_state: RunStateImage,
    /// Console lines (carried across migration for continuity).
    pub console: Vec<String>,
}

/// A complete pod checkpoint (or, when `base_epoch` is set, an
/// *incremental* delta carrying only pages dirtied since that base).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PodImage {
    /// The epoch this image is a delta against (`None` = full image).
    /// Kernel-object state (sockets, pipes, semaphores, shared memory,
    /// processes) is always carried in full — it is small; only private
    /// pages are delta-encoded.
    pub base_epoch: Option<u64>,
    /// Pod name.
    pub name: String,
    /// The pod's externally routable IP (preserved across migration).
    pub ip: IpAddr,
    /// VIF MAC configuration.
    pub mac_mode: MacMode,
    /// Next virtual pid to allocate.
    pub next_vpid: u32,
    /// Shared-memory segments.
    pub shm: Vec<ShmImage>,
    /// Semaphore sets.
    pub sems: Vec<SemImage>,
    /// Pipes.
    pub pipes: Vec<PipeImage>,
    /// Sockets.
    pub sockets: Vec<SockImage>,
    /// Thread groups.
    pub groups: Vec<GroupImage>,
    /// Processes.
    pub procs: Vec<ProcImage>,
}

impl PodImage {
    /// Serializes the image (with header and checksum).
    pub fn encode(&self) -> Vec<u8> {
        let mut cuts = Vec::new();
        self.encode_impl(&mut cuts)
    }

    /// Serializes the image and reports the `(offset, len)` of every bulk
    /// payload — private pages and shared-memory segments — within the
    /// returned bytes. The deduplicating store pins chunk boundaries to
    /// these regions so an unchanged page re-hashes to the same chunk id
    /// even when the variable-length metadata around it shifts between
    /// epochs. Cuts are ascending and non-overlapping.
    pub fn encode_with_page_cuts(&self) -> (Vec<u8>, Vec<(usize, usize)>) {
        let mut cuts = Vec::new();
        let bytes = self.encode_impl(&mut cuts);
        (bytes, cuts)
    }

    fn encode_impl(&self, cuts: &mut Vec<(usize, usize)>) -> Vec<u8> {
        let mut w = ImageWriter::new();
        w.u32(MAGIC);
        w.u16(VERSION);
        match self.base_epoch {
            Some(e) => {
                w.bool(true);
                w.u64(e);
            }
            None => w.bool(false),
        }
        w.str(&self.name);
        w.u32(self.ip.to_bits());
        match self.mac_mode {
            MacMode::Dedicated(m) => {
                w.u8(0);
                w.bytes(&m.octets());
            }
            MacMode::SharedPhysical { fake_mac } => {
                w.u8(1);
                w.bytes(&fake_mac.octets());
            }
        }
        w.u32(self.next_vpid);

        w.u32(self.shm.len() as u32);
        for s in &self.shm {
            w.u64(s.key);
            // The payload starts after the 8-byte length prefix.
            cuts.push((w.len() + 8, s.data.len()));
            w.bytes(&s.data);
        }
        w.u32(self.sems.len() as u32);
        for s in &self.sems {
            w.u64(s.key);
            w.u32(s.values.len() as u32);
            for &v in &s.values {
                w.i64(v);
            }
        }
        w.u32(self.pipes.len() as u32);
        for p in &self.pipes {
            w.bytes(&p.data);
            w.u32(p.readers);
            w.u32(p.writers);
        }
        w.u32(self.sockets.len() as u32);
        for s in &self.sockets {
            encode_sock(&mut w, s);
        }
        w.u32(self.groups.len() as u32);
        for g in &self.groups {
            encode_group(&mut w, g, cuts);
        }
        w.u32(self.procs.len() as u32);
        for p in &self.procs {
            encode_proc(&mut w, p);
        }
        w.finish()
    }

    /// Parses an image.
    ///
    /// # Errors
    ///
    /// Any [`ImageError`] on malformed input.
    pub fn decode(data: &[u8]) -> Result<PodImage, ImageError> {
        let mut r = ImageReader::verify(data)?;
        let magic = r.u32()?;
        if magic != MAGIC {
            return Err(ImageError::BadMagic(magic));
        }
        let version = r.u16()?;
        if version != VERSION {
            return Err(ImageError::BadVersion(version));
        }
        let base_epoch = if r.bool()? { Some(r.u64()?) } else { None };
        let name = r.str()?;
        let ip = IpAddr::from_bits(r.u32()?);
        let mac_mode = match r.u8()? {
            0 => MacMode::Dedicated(read_mac(&mut r)?),
            1 => MacMode::SharedPhysical {
                fake_mac: read_mac(&mut r)?,
            },
            t => return Err(ImageError::BadTag(t)),
        };
        let next_vpid = r.u32()?;

        let n = r.u32()?;
        let mut shm = Vec::with_capacity(n as usize);
        for _ in 0..n {
            shm.push(ShmImage {
                key: r.u64()?,
                data: r.bytes()?,
            });
        }
        let n = r.u32()?;
        let mut sems = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let key = r.u64()?;
            let m = r.u32()?;
            let mut values = Vec::with_capacity(m as usize);
            for _ in 0..m {
                values.push(r.i64()?);
            }
            sems.push(SemImage { key, values });
        }
        let n = r.u32()?;
        let mut pipes = Vec::with_capacity(n as usize);
        for _ in 0..n {
            pipes.push(PipeImage {
                data: r.bytes()?,
                readers: r.u32()?,
                writers: r.u32()?,
            });
        }
        let n = r.u32()?;
        let mut sockets = Vec::with_capacity(n as usize);
        for _ in 0..n {
            sockets.push(decode_sock(&mut r)?);
        }
        let n = r.u32()?;
        let mut groups = Vec::with_capacity(n as usize);
        for _ in 0..n {
            groups.push(decode_group(&mut r)?);
        }
        let n = r.u32()?;
        let mut procs = Vec::with_capacity(n as usize);
        for _ in 0..n {
            procs.push(decode_proc(&mut r)?);
        }
        Ok(PodImage {
            base_epoch,
            name,
            ip,
            mac_mode,
            next_vpid,
            shm,
            sems,
            pipes,
            sockets,
            groups,
            procs,
        })
    }

    /// Total payload bytes the image will occupy (used for disk timing).
    pub fn encoded_len(&self) -> usize {
        self.encode().len()
    }

    /// Private-page payload bytes across all thread groups — the part of
    /// the image a copy-on-write checkpoint defers to the background
    /// drain; everything else ([`PodImage::encoded_len`] minus this) must
    /// be serialized inside the freeze window.
    pub fn page_payload_bytes(&self) -> u64 {
        self.groups
            .iter()
            .flat_map(|g| g.pages.iter())
            .map(|(_, data)| data.len() as u64)
            .sum()
    }

    /// Applies an incremental `delta` on top of this (full) image,
    /// producing the full image the delta represents: every small object
    /// (processes, sockets, pipes, semaphores, shared memory, identity)
    /// comes from the delta; private pages are the base's overlaid with the
    /// delta's dirty pages.
    ///
    /// # Errors
    ///
    /// [`ImageError::BadTag`] (reused as a structural-mismatch signal) if
    /// the delta's thread-group count differs from the base's — incremental
    /// chains are only valid while the group structure is stable.
    pub fn apply_delta(&self, delta: &PodImage) -> Result<PodImage, ImageError> {
        if delta.groups.len() != self.groups.len() {
            return Err(ImageError::BadTag(0xfe));
        }
        let mut merged = delta.clone();
        merged.base_epoch = None;
        for (gi, group) in merged.groups.iter_mut().enumerate() {
            let mut pages: std::collections::BTreeMap<u64, Vec<u8>> =
                self.groups[gi].pages.iter().cloned().collect();
            for (addr, data) in &delta.groups[gi].pages {
                pages.insert(*addr, data.clone());
            }
            // Drop pages that fell entirely to zero: they are demand-zero
            // again and need no image entry.
            group.pages = pages
                .into_iter()
                .filter(|(_, d)| d.iter().any(|&b| b != 0))
                .collect();
        }
        Ok(merged)
    }
}

fn read_mac(r: &mut ImageReader<'_>) -> Result<MacAddr, ImageError> {
    let b = r.bytes()?;
    if b.len() != 6 {
        return Err(ImageError::Truncated);
    }
    Ok(MacAddr::new(b.try_into().expect("6 bytes")))
}

fn write_sockaddr(w: &mut ImageWriter, a: SockAddr) {
    w.u32(a.ip.to_bits());
    w.u16(a.port);
}

fn read_sockaddr(r: &mut ImageReader<'_>) -> Result<SockAddr, ImageError> {
    let ip = IpAddr::from_bits(r.u32()?);
    let port = r.u16()?;
    Ok(SockAddr::new(ip, port))
}

fn encode_sock(w: &mut ImageWriter, s: &SockImage) {
    match s {
        SockImage::Listen {
            local,
            backlog,
            pending,
        } => {
            w.u8(0);
            write_sockaddr(w, *local);
            w.u32(*backlog);
            w.u32(pending.len() as u32);
            for (snap, alt) in pending {
                encode_conn(w, snap);
                w.bytes(alt);
            }
        }
        SockImage::Conn { snap, alt_recv } => {
            w.u8(1);
            encode_conn(w, snap);
            w.bytes(alt_recv);
        }
        SockImage::Fresh { bound } => {
            w.u8(3);
            match bound {
                Some(b) => {
                    w.bool(true);
                    write_sockaddr(w, *b);
                }
                None => w.bool(false),
            }
        }
        SockImage::Udp { bound, queue } => {
            w.u8(2);
            match bound {
                Some(b) => {
                    w.bool(true);
                    write_sockaddr(w, *b);
                }
                None => w.bool(false),
            }
            w.u32(queue.len() as u32);
            for (from, data) in queue {
                write_sockaddr(w, *from);
                w.bytes(data);
            }
        }
    }
}

fn encode_conn(w: &mut ImageWriter, snap: &TcpConnImage) {
    write_sockaddr(w, snap.local);
    write_sockaddr(w, snap.remote);
    w.u8(snap.state);
    w.u32(snap.snd_una);
    w.u32(snap.rcv_nxt);
    w.u32(snap.peer_window);
    w.bool(snap.nodelay);
    w.bool(snap.cork);
    w.u32(snap.inflight.len() as u32);
    for p in &snap.inflight {
        w.bytes(p);
    }
    w.bytes(&snap.unsent);
}

fn decode_conn(r: &mut ImageReader<'_>) -> Result<TcpConnImage, ImageError> {
    let local = read_sockaddr(r)?;
    let remote = read_sockaddr(r)?;
    let state = r.u8()?;
    let snd_una = r.u32()?;
    let rcv_nxt = r.u32()?;
    let peer_window = r.u32()?;
    let nodelay = r.bool()?;
    let cork = r.bool()?;
    let n = r.u32()?;
    let mut inflight = Vec::with_capacity(n as usize);
    for _ in 0..n {
        inflight.push(r.bytes()?);
    }
    let unsent = r.bytes()?;
    Ok(TcpConnImage {
        local,
        remote,
        state,
        snd_una,
        rcv_nxt,
        peer_window,
        nodelay,
        cork,
        inflight,
        unsent,
    })
}

fn decode_sock(r: &mut ImageReader<'_>) -> Result<SockImage, ImageError> {
    Ok(match r.u8()? {
        0 => {
            let local = read_sockaddr(r)?;
            let backlog = r.u32()?;
            let n = r.u32()?;
            let mut pending = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let snap = decode_conn(r)?;
                pending.push((snap, r.bytes()?));
            }
            SockImage::Listen {
                local,
                backlog,
                pending,
            }
        }
        1 => {
            let snap = decode_conn(r)?;
            let alt_recv = r.bytes()?;
            SockImage::Conn { snap, alt_recv }
        }
        2 => {
            let bound = if r.bool()? {
                Some(read_sockaddr(r)?)
            } else {
                None
            };
            let n = r.u32()?;
            let mut queue = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let from = read_sockaddr(r)?;
                queue.push((from, r.bytes()?));
            }
            SockImage::Udp { bound, queue }
        }
        3 => {
            let bound = if r.bool()? {
                Some(read_sockaddr(r)?)
            } else {
                None
            };
            SockImage::Fresh { bound }
        }
        t => return Err(ImageError::BadTag(t)),
    })
}

fn encode_group(w: &mut ImageWriter, g: &GroupImage, cuts: &mut Vec<(usize, usize)>) {
    w.u32(g.areas.len() as u32);
    for a in &g.areas {
        w.u64(a.start);
        w.u64(a.len);
        w.str(&a.tag);
        match a.shm_index {
            Some(i) => {
                w.bool(true);
                w.u32(i);
            }
            None => w.bool(false),
        }
    }
    w.u32(g.pages.len() as u32);
    for (addr, data) in &g.pages {
        w.u64(*addr);
        cuts.push((w.len() + 8, data.len()));
        w.bytes(data);
    }
    w.u32(g.fds.len() as u32);
    for (fd, d) in &g.fds {
        w.u32(*fd);
        match d {
            DescImage::Console => w.u8(0),
            DescImage::File { path, offset } => {
                w.u8(1);
                w.str(path);
                w.u64(*offset);
            }
            DescImage::Pipe { index, write_end } => {
                w.u8(2);
                w.u32(*index);
                w.bool(*write_end);
            }
            DescImage::Socket { index } => {
                w.u8(3);
                w.u32(*index);
            }
        }
    }
}

fn decode_group(r: &mut ImageReader<'_>) -> Result<GroupImage, ImageError> {
    let n = r.u32()?;
    let mut areas = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let start = r.u64()?;
        let len = r.u64()?;
        let tag = r.str()?;
        let shm_index = if r.bool()? { Some(r.u32()?) } else { None };
        areas.push(AreaImage {
            start,
            len,
            tag,
            shm_index,
        });
    }
    let n = r.u32()?;
    let mut pages = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let addr = r.u64()?;
        pages.push((addr, r.bytes()?));
    }
    let n = r.u32()?;
    let mut fds = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let fd = r.u32()?;
        let d = match r.u8()? {
            0 => DescImage::Console,
            1 => DescImage::File {
                path: r.str()?,
                offset: r.u64()?,
            },
            2 => DescImage::Pipe {
                index: r.u32()?,
                write_end: r.bool()?,
            },
            3 => DescImage::Socket { index: r.u32()? },
            t => return Err(ImageError::BadTag(t)),
        };
        fds.push((fd, d));
    }
    Ok(GroupImage { areas, pages, fds })
}

fn encode_proc(w: &mut ImageWriter, p: &ProcImage) {
    w.u32(p.vpid);
    w.u32(p.parent_vpid);
    w.u32(p.group);
    for &r in &p.regs {
        w.u64(r);
    }
    w.u64(p.pc);
    w.bool(p.halted);
    match p.pending {
        Some((num, args)) => {
            w.bool(true);
            w.u64(num);
            for a in args {
                w.u64(a);
            }
        }
        None => w.bool(false),
    }
    match p.run_state {
        RunStateImage::Ready => w.u8(0),
        RunStateImage::SleepUntil(t) => {
            w.u8(1);
            w.u64(t);
        }
        RunStateImage::Zombie(c) => {
            w.u8(2);
            w.u64(c);
        }
    }
    w.u32(p.console.len() as u32);
    for line in &p.console {
        w.str(line);
    }
}

fn decode_proc(r: &mut ImageReader<'_>) -> Result<ProcImage, ImageError> {
    let vpid = r.u32()?;
    let parent_vpid = r.u32()?;
    let group = r.u32()?;
    let mut regs = [0u64; 16];
    for v in regs.iter_mut() {
        *v = r.u64()?;
    }
    let pc = r.u64()?;
    let halted = r.bool()?;
    let pending = if r.bool()? {
        let num = r.u64()?;
        let mut args = [0u64; 5];
        for a in args.iter_mut() {
            *a = r.u64()?;
        }
        Some((num, args))
    } else {
        None
    };
    let run_state = match r.u8()? {
        0 => RunStateImage::Ready,
        1 => RunStateImage::SleepUntil(r.u64()?),
        2 => RunStateImage::Zombie(r.u64()?),
        t => return Err(ImageError::BadTag(t)),
    };
    let n = r.u32()?;
    let mut console = Vec::with_capacity(n as usize);
    for _ in 0..n {
        console.push(r.str()?);
    }
    Ok(ProcImage {
        vpid,
        parent_vpid,
        group,
        regs,
        pc,
        halted,
        pending,
        run_state,
        console,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_image() -> PodImage {
        PodImage {
            base_epoch: Some(41),
            name: "pod0".into(),
            ip: IpAddr::from_octets([10, 0, 0, 50]),
            mac_mode: MacMode::SharedPhysical {
                fake_mac: MacAddr::from_index(1000),
            },
            next_vpid: 5,
            shm: vec![ShmImage {
                key: 7,
                data: vec![1, 2, 3],
            }],
            sems: vec![SemImage {
                key: 9,
                values: vec![0, 2, -0],
            }],
            pipes: vec![PipeImage {
                data: b"buffered".to_vec(),
                readers: 1,
                writers: 1,
            }],
            sockets: vec![
                SockImage::Listen {
                    local: SockAddr::new(IpAddr::from_octets([10, 0, 0, 50]), 80),
                    backlog: 8,
                    pending: vec![(
                        TcpConnImage {
                            local: SockAddr::new(IpAddr::from_octets([10, 0, 0, 50]), 80),
                            remote: SockAddr::new(IpAddr::from_octets([10, 0, 0, 8]), 999),
                            state: 2,
                            snd_una: 5,
                            rcv_nxt: 6,
                            peer_window: 7,
                            nodelay: false,
                            cork: false,
                            inflight: vec![],
                            unsent: vec![],
                        },
                        b"queued".to_vec(),
                    )],
                },
                SockImage::Conn {
                    snap: TcpConnImage {
                        local: SockAddr::new(IpAddr::from_octets([10, 0, 0, 50]), 80),
                        remote: SockAddr::new(IpAddr::from_octets([10, 0, 0, 9]), 3333),
                        state: 2,
                        snd_una: 1000,
                        rcv_nxt: 2000,
                        peer_window: 65535,
                        nodelay: true,
                        cork: false,
                        inflight: vec![vec![1; 1460], vec![2; 40]],
                        unsent: vec![3; 10],
                    },
                    alt_recv: b"undelivered".to_vec(),
                },
                SockImage::Udp {
                    bound: Some(SockAddr::new(IpAddr::UNSPECIFIED, 53)),
                    queue: vec![(
                        SockAddr::new(IpAddr::from_octets([10, 0, 0, 9]), 5),
                        vec![9],
                    )],
                },
                SockImage::Fresh { bound: None },
            ],
            groups: vec![GroupImage {
                areas: vec![
                    AreaImage {
                        start: 0x1000,
                        len: 0x1000,
                        tag: "text".into(),
                        shm_index: None,
                    },
                    AreaImage {
                        start: 0x8000,
                        len: 0x1000,
                        tag: "shm".into(),
                        shm_index: Some(0),
                    },
                ],
                pages: vec![(0x1000, vec![0xaa; 4096])],
                fds: vec![
                    (0, DescImage::Console),
                    (
                        1,
                        DescImage::File {
                            path: "/x".into(),
                            offset: 12,
                        },
                    ),
                    (
                        2,
                        DescImage::Pipe {
                            index: 0,
                            write_end: true,
                        },
                    ),
                    (3, DescImage::Socket { index: 1 }),
                ],
            }],
            procs: vec![ProcImage {
                vpid: 1,
                parent_vpid: 0,
                group: 0,
                regs: [7; 16],
                pc: 0x1040,
                halted: false,
                pending: Some((17, [3, 0x2000, 64, 0, 0])),
                run_state: RunStateImage::SleepUntil(123456789),
                console: vec!["hello".into()],
            }],
        }
    }

    #[test]
    fn round_trip() {
        let img = sample_image();
        let bytes = img.encode();
        let back = PodImage::decode(&bytes).unwrap();
        assert_eq!(img, back);
    }

    #[test]
    fn corruption_detected() {
        let mut bytes = sample_image().encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        assert_eq!(PodImage::decode(&bytes), Err(ImageError::BadChecksum));
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample_image().encode();
        assert_eq!(PodImage::decode(&bytes[..4]), Err(ImageError::Truncated));
        // Cutting the tail invalidates the checksum.
        assert!(PodImage::decode(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn bad_magic_detected() {
        let img = sample_image();
        let mut w = ImageWriter::new();
        w.u32(0xdeadbeef);
        let mut bytes = w.finish();
        let _ = img;
        assert!(matches!(
            PodImage::decode(&bytes),
            Err(ImageError::BadMagic(0xdeadbeef))
        ));
        bytes.clear();
    }

    #[test]
    fn tcp_state_tags_round_trip() {
        for s in [
            TcpState::SynSent,
            TcpState::SynRcvd,
            TcpState::Established,
            TcpState::FinWait1,
            TcpState::FinWait2,
            TcpState::CloseWait,
            TcpState::Closing,
            TcpState::LastAck,
            TcpState::TimeWait,
            TcpState::Closed,
        ] {
            assert_eq!(decode_tcp_state(encode_tcp_state(s)).unwrap(), s);
        }
        assert!(decode_tcp_state(99).is_err());
    }

    #[test]
    fn snapshot_conversion_round_trips() {
        let snap = TcpSnapshot {
            local: SockAddr::new(IpAddr::from_octets([10, 0, 0, 1]), 1),
            remote: SockAddr::new(IpAddr::from_octets([10, 0, 0, 2]), 2),
            state: TcpState::CloseWait,
            snd_una: simnet::tcp::SeqNum::new(42),
            rcv_nxt: simnet::tcp::SeqNum::new(77),
            peer_window: 100,
            nodelay: false,
            cork: true,
            inflight: vec![vec![5; 3]],
            unsent: vec![6; 2],
            recv_stream: vec![7; 4], // carried out-of-band
        };
        let img = TcpConnImage::from_snapshot(&snap);
        let back = img.to_snapshot().unwrap();
        assert_eq!(back.state, TcpState::CloseWait);
        assert_eq!(back.snd_una, snap.snd_una);
        assert_eq!(back.inflight, snap.inflight);
        assert!(back.recv_stream.is_empty());
    }

    #[test]
    fn apply_delta_overlays_pages_and_takes_delta_objects() {
        let mut base = sample_image();
        base.base_epoch = None;
        base.groups[0].pages = vec![(0x1000, vec![1; 4096]), (0x2000, vec![2; 4096])];
        let mut delta = base.clone();
        delta.base_epoch = Some(1);
        delta.next_vpid = 99;
        delta.groups[0].pages = vec![(0x2000, vec![9; 4096]), (0x3000, vec![3; 4096])];
        let merged = base.apply_delta(&delta).unwrap();
        assert_eq!(merged.base_epoch, None);
        assert_eq!(merged.next_vpid, 99, "small state comes from the delta");
        assert_eq!(
            merged.groups[0].pages,
            vec![
                (0x1000, vec![1; 4096]),
                (0x2000, vec![9; 4096]),
                (0x3000, vec![3; 4096])
            ]
        );
        // A page zeroed in the delta disappears from the merged image.
        let mut zeroing = delta.clone();
        zeroing.groups[0].pages = vec![(0x1000, vec![0; 4096])];
        let merged = base.apply_delta(&zeroing).unwrap();
        assert_eq!(merged.groups[0].pages, vec![(0x2000, vec![2; 4096])]);
        // Structural mismatch is rejected.
        let mut bad = delta.clone();
        bad.groups.clear();
        assert!(base.apply_delta(&bad).is_err());
    }

    #[test]
    fn page_cuts_locate_every_bulk_payload() {
        let mut img = sample_image();
        img.groups[0]
            .pages
            .push((0x5000, (0..4096u32).map(|i| i as u8).collect()));
        let (bytes, cuts) = img.encode_with_page_cuts();
        assert_eq!(
            bytes,
            img.encode(),
            "cut tracking must not perturb encoding"
        );
        // One cut per shm segment plus one per page, in ascending order.
        let n_payloads = img.shm.len() + img.groups.iter().map(|g| g.pages.len()).sum::<usize>();
        assert_eq!(cuts.len(), n_payloads);
        assert!(cuts.windows(2).all(|w| w[0].0 + w[0].1 <= w[1].0));
        // Each cut points at exactly one payload's bytes.
        let mut payloads: Vec<&[u8]> = img.shm.iter().map(|s| s.data.as_slice()).collect();
        payloads.extend(
            img.groups
                .iter()
                .flat_map(|g| g.pages.iter().map(|(_, d)| d.as_slice())),
        );
        for (&(off, len), payload) in cuts.iter().zip(payloads) {
            assert_eq!(&bytes[off..off + len], payload);
        }
    }

    #[test]
    fn mac_mode_visible_mac() {
        let m = MacAddr::from_index(3);
        assert_eq!(MacMode::Dedicated(m).pod_visible_mac(), m);
        assert_eq!(MacMode::SharedPhysical { fake_mac: m }.pod_visible_mac(), m);
    }
}
