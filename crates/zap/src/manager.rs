//! The Zap manager: pod lifecycle and single-node checkpoint/restart.
//!
//! The checkpoint procedure follows the paper's §4.1 step by step:
//!
//! 1. `SIGSTOP` every process in the pod (nothing at user level can change);
//! 2. freeze and extract socket state — receive streams non-destructively
//!    (the `MSG_PEEK` analogue, concatenated after any alternate-buffer
//!    remainder), send buffers *with packet boundaries*, and the connection
//!    state with its sequence numbers rewritten to present empty buffers;
//! 3. extract kernel object state (pipes with buffered bytes, System-V
//!    shared memory and semaphores) and per-group address spaces (areas
//!    plus non-zero pages only);
//! 4. record per-process CPU state and any blocked-and-restartable syscall.
//!
//! Restart recreates everything with **fresh real pids** behind the pod's
//! virtual-pid namespace (so images restore even when the original pids are
//! taken — the capability the paper highlights over BLCR), re-creates
//! sockets at the saved sequence numbers, replays saved send data through
//! ordinary sends with Nagle/CORK temporarily disabled, and parks receive
//! data in the alternate buffers served by the interposer.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::rc::Rc;

use des::SimTime;
use simcpu::cpu::Cpu;
use simnet::addr::MacAddr;
use simnet::stack::SocketId;
use simnet::NetError;
use simos::fd::{Desc, FdTable, PipeEnd, PipeId};
use simos::kernel::Kernel;
use simos::mem::{AddressSpace, MapError};
use simos::proc::{PendingSyscall, Pid, ProcState, Process, WaitFor};
use simos::program::{Program, ProgramError};
use simos::syscall::sig;

use crate::image::{
    AreaImage, DescImage, GroupImage, ImageError, MacMode, PipeImage, PodImage, ProcImage,
    RunStateImage, SemImage, ShmImage, SockImage, TcpConnImage,
};
use crate::interpose::ZapState;
use crate::pod::{Pod, PodConfig, PodId, Vpid};

/// Errors from pod operations.
#[derive(Debug)]
pub enum ZapError {
    /// No pod with that id on this node.
    NoSuchPod,
    /// The pod's IP is already present on this node.
    IpInUse,
    /// A network-stack operation failed.
    Net(NetError),
    /// The image failed to decode or referenced a bad index.
    Image(ImageError),
    /// The image was internally inconsistent.
    Inconsistent(&'static str),
    /// A guest program failed to load.
    Program(ProgramError),
    /// An address-space mapping failed during restore.
    Map(MapError),
}

impl fmt::Display for ZapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZapError::NoSuchPod => write!(f, "no such pod"),
            ZapError::IpInUse => write!(f, "pod ip already in use on this node"),
            ZapError::Net(e) => write!(f, "network: {e}"),
            ZapError::Image(e) => write!(f, "image: {e}"),
            ZapError::Inconsistent(s) => write!(f, "inconsistent image: {s}"),
            ZapError::Program(e) => write!(f, "program: {e}"),
            ZapError::Map(e) => write!(f, "mapping: {e}"),
        }
    }
}

impl std::error::Error for ZapError {}

impl From<NetError> for ZapError {
    fn from(e: NetError) -> Self {
        ZapError::Net(e)
    }
}

impl From<ImageError> for ZapError {
    fn from(e: ImageError) -> Self {
        ZapError::Image(e)
    }
}

impl From<ProgramError> for ZapError {
    fn from(e: ProgramError) -> Self {
        ZapError::Program(e)
    }
}

impl From<MapError> for ZapError {
    fn from(e: MapError) -> Self {
        ZapError::Map(e)
    }
}

/// The per-node Zap instance.
///
/// Internally this is a handle to the same [`ZapState`] installed as the
/// kernel's syscall hook; install it with [`Zap::install`] before creating
/// pods.
#[derive(Debug, Clone)]
pub struct Zap {
    state: Rc<RefCell<ZapState>>,
}

impl Default for Zap {
    fn default() -> Self {
        Self::new()
    }
}

impl Zap {
    /// Creates a Zap instance for one node.
    pub fn new() -> Self {
        Zap {
            state: Rc::new(RefCell::new(ZapState::new())),
        }
    }

    /// Installs the interposition layer into `kernel` (the "insmod" step).
    pub fn install(&self, kernel: &mut Kernel) {
        kernel.set_hook(self.state.clone());
    }

    /// Direct access to the shared state (tests and advanced callers).
    pub fn state(&self) -> Rc<RefCell<ZapState>> {
        self.state.clone()
    }

    /// Creates a pod: allocates its VIF with the configured IP/MAC and
    /// announces the binding with a gratuitous ARP.
    ///
    /// # Errors
    ///
    /// [`ZapError::IpInUse`] if the IP is already local to this node.
    pub fn create_pod(&self, kernel: &mut Kernel, cfg: PodConfig) -> Result<PodId, ZapError> {
        if kernel.net.is_local_ip(cfg.ip) {
            return Err(ZapError::IpInUse);
        }
        let mut st = self.state.borrow_mut();
        let id = PodId(st.next_pod);
        st.next_pod += 1;
        let vif_name = format!("vif{}", id.0);
        let vif_mac = vif_mac(&cfg.mac_mode, kernel.net.primary_mac());
        kernel
            .net
            .add_iface(vif_name.clone(), vif_mac, vec![cfg.ip]);
        kernel.net.send_gratuitous_arp(cfg.ip, vif_mac);
        st.pods.insert(id, Pod::new(id, cfg, vif_name));
        Ok(id)
    }

    /// Spawns a guest program as a new process inside `pod`, returning its
    /// virtual pid.
    ///
    /// # Errors
    ///
    /// [`ZapError::NoSuchPod`] or loader failures.
    pub fn spawn_in_pod(
        &self,
        kernel: &mut Kernel,
        pod: PodId,
        program: &Program,
    ) -> Result<Vpid, ZapError> {
        let mut st = self.state.borrow_mut();
        if !st.pods.contains_key(&pod) {
            return Err(ZapError::NoSuchPod);
        }
        let pid = kernel.spawn(program)?;
        let p = st.pods.get_mut(&pod).expect("checked");
        let vpid = p.adopt(pid);
        st.pid_owner.insert(pid, pod);
        Ok(vpid)
    }

    /// The pods on this node.
    pub fn pod_ids(&self) -> Vec<PodId> {
        self.state.borrow().pods.keys().copied().collect()
    }

    /// The configuration of a pod.
    ///
    /// # Errors
    ///
    /// [`ZapError::NoSuchPod`].
    pub fn pod_config(&self, pod: PodId) -> Result<PodConfig, ZapError> {
        self.state
            .borrow()
            .pods
            .get(&pod)
            .map(|p| p.cfg.clone())
            .ok_or(ZapError::NoSuchPod)
    }

    /// Resolves a virtual pid to the real pid on this node.
    pub fn real_pid(&self, pod: PodId, vpid: Vpid) -> Option<Pid> {
        self.state.borrow().pods.get(&pod)?.pid_of(vpid)
    }

    /// Console lines of a pod process, by virtual pid.
    pub fn console_of(&self, kernel: &Kernel, pod: PodId, vpid: Vpid) -> Option<Vec<String>> {
        let pid = self.real_pid(pod, vpid)?;
        kernel.process(pid).map(|p| p.console.clone())
    }

    /// True if every process of the pod has exited.
    pub fn pod_finished(&self, kernel: &Kernel, pod: PodId) -> bool {
        let st = self.state.borrow();
        let Some(p) = st.pods.get(&pod) else {
            return true;
        };
        p.pids().iter().all(|pid| {
            kernel
                .process(*pid)
                .map(|pr| pr.state.is_zombie())
                .unwrap_or(true)
        })
    }

    /// Stops every process in the pod (`SIGSTOP`) — the checkpoint freeze.
    ///
    /// # Errors
    ///
    /// [`ZapError::NoSuchPod`].
    pub fn stop_pod(&self, kernel: &mut Kernel, pod: PodId, now: SimTime) -> Result<(), ZapError> {
        let pids = {
            let st = self.state.borrow();
            st.pods.get(&pod).ok_or(ZapError::NoSuchPod)?.pids()
        };
        for pid in pids {
            let _ = kernel.signal(pid, sig::SIGSTOP, now);
        }
        Ok(())
    }

    /// Resumes every process in the pod (`SIGCONT`) and re-announces its
    /// address binding with a gratuitous ARP.
    ///
    /// # Errors
    ///
    /// [`ZapError::NoSuchPod`].
    pub fn resume_pod(
        &self,
        kernel: &mut Kernel,
        pod: PodId,
        now: SimTime,
    ) -> Result<(), ZapError> {
        let (pids, ip, mode) = {
            let st = self.state.borrow();
            let p = st.pods.get(&pod).ok_or(ZapError::NoSuchPod)?;
            (p.pids(), p.cfg.ip, p.cfg.mac_mode)
        };
        for pid in pids {
            let _ = kernel.signal(pid, sig::SIGCONT, now);
        }
        let mac = vif_mac(&mode, kernel.net.primary_mac());
        kernel.net.send_gratuitous_arp(ip, mac);
        Ok(())
    }

    // ---- checkpoint -----------------------------------------------------

    /// Checkpoints a pod into a [`PodImage`] (§4.1). The pod is left
    /// stopped; call [`Zap::resume_pod`] to continue it or
    /// [`Zap::destroy_pod`] to tear it down for migration.
    ///
    /// # Errors
    ///
    /// [`ZapError::NoSuchPod`]; network-stack failures while snapshotting
    /// sockets.
    pub fn checkpoint_pod(
        &self,
        kernel: &mut Kernel,
        pod: PodId,
        now: SimTime,
    ) -> Result<PodImage, ZapError> {
        let (image, _, _) = self.capture_pod(kernel, pod, now, None, false)?;
        Ok(image)
    }

    /// Like [`Zap::checkpoint_pod`], additionally returning each thread
    /// group's dirty-page set as of this capture (aligned with the image's
    /// groups). Since every capture clears dirty tracking, a page *not* in
    /// its group's set is byte-identical to the previous capture — the
    /// invariant the store's page-digest cache reuses chunk work under.
    ///
    /// # Errors
    ///
    /// Same as [`Zap::checkpoint_pod`].
    pub fn checkpoint_pod_dirty(
        &self,
        kernel: &mut Kernel,
        pod: PodId,
        now: SimTime,
    ) -> Result<(PodImage, Vec<BTreeSet<u64>>), ZapError> {
        let (image, _, dirty) = self.capture_pod(kernel, pod, now, None, false)?;
        Ok((image, dirty))
    }

    /// Like [`Zap::checkpoint_pod`], but when `base_epoch` is given the
    /// image is *incremental*: it carries only the private pages dirtied
    /// since the previous checkpoint (full or incremental) of this pod,
    /// plus the full (small) kernel-object state. Restore such an image by
    /// folding the chain with [`PodImage::apply_delta`]. Every checkpoint —
    /// full or incremental — resets the dirty tracking, so chains compose:
    /// full(e1) → delta(e2, base e1) → delta(e3, base e2).
    ///
    /// # Errors
    ///
    /// Same as [`Zap::checkpoint_pod`].
    pub fn checkpoint_pod_incremental(
        &self,
        kernel: &mut Kernel,
        pod: PodId,
        now: SimTime,
        base_epoch: u64,
    ) -> Result<PodImage, ZapError> {
        let (image, _, _) = self.capture_pod(kernel, pod, now, Some(base_epoch), false)?;
        Ok(image)
    }

    /// The **arm** half of a copy-on-write checkpoint: freezes the pod,
    /// captures every piece of non-memory state (sockets, pipes, shared
    /// memory, semaphores, descriptor tables, CPU state) and arms a COW
    /// snapshot on each thread group's address space instead of copying
    /// its pages. The freeze therefore costs O(non-memory state), not
    /// O(image bytes). The pod is left stopped; resume it as soon as
    /// coordination allows and call [`ArmedPodCheckpoint::drain`] any time
    /// later — the drained image is byte-identical to an eager
    /// [`Zap::checkpoint_pod`] taken at this instant, whatever the pod
    /// wrote in between.
    ///
    /// # Errors
    ///
    /// Same as [`Zap::checkpoint_pod`].
    pub fn checkpoint_pod_arm(
        &self,
        kernel: &mut Kernel,
        pod: PodId,
        now: SimTime,
        base_epoch: Option<u64>,
    ) -> Result<ArmedPodCheckpoint, ZapError> {
        let (skeleton, spaces, dirty_at_arm) =
            self.capture_pod(kernel, pod, now, base_epoch, true)?;
        Ok(ArmedPodCheckpoint {
            skeleton,
            spaces,
            dirty_at_arm,
            incremental: base_epoch.is_some(),
        })
    }

    /// Captures a pod. With `arm` false this is the eager §4.1 checkpoint;
    /// with `arm` true the private pages are left to a COW drain and the
    /// per-group address-space handles are returned alongside the page-less
    /// skeleton image. The third element is each group's dirty-page set as
    /// of this capture (collected just before the capture re-baselines
    /// dirty tracking), aligned with the image's groups.
    fn capture_pod(
        &self,
        kernel: &mut Kernel,
        pod: PodId,
        now: SimTime,
        base_epoch: Option<u64>,
        arm: bool,
    ) -> Result<(PodImage, Vec<Rc<RefCell<AddressSpace>>>, Vec<BTreeSet<u64>>), ZapError> {
        self.stop_pod(kernel, pod, now)?;
        let st = self.state.borrow();
        let p = st.pods.get(&pod).ok_or(ZapError::NoSuchPod)?;

        // Kernel objects the pod uses, discovered through its namespaces.
        let mut shm_images: Vec<ShmImage> = Vec::new();
        let mut shm_index_by_id: BTreeMap<u64, u32> = BTreeMap::new();
        for (key, seg) in kernel.shm_iter() {
            if p.shm_keys.contains(&key) {
                shm_index_by_id.insert(seg.id, shm_images.len() as u32);
                shm_images.push(ShmImage {
                    key,
                    data: seg.data.borrow().clone(),
                });
            }
        }
        let mut sem_images: Vec<SemImage> = Vec::new();
        for (id, values) in kernel.sems.iter() {
            if let Some(key) = kernel.sems.key_of(id) {
                if p.sem_keys.contains(&key) {
                    sem_images.push(SemImage {
                        key,
                        values: values.to_vec(),
                    });
                }
            }
        }

        // Thread groups: unique address-space/fd-table pairs.
        let mut groups: Vec<GroupImage> = Vec::new();
        let mut group_spaces: Vec<Rc<RefCell<AddressSpace>>> = Vec::new();
        let mut group_dirty: Vec<BTreeSet<u64>> = Vec::new();
        let mut group_index_by_leader: BTreeMap<Pid, u32> = BTreeMap::new();
        let mut pipe_index: BTreeMap<PipeId, u32> = BTreeMap::new();
        let mut pipe_images: Vec<PipeImage> = Vec::new();
        let mut sock_index: BTreeMap<SocketId, u32> = BTreeMap::new();
        let mut sock_images: Vec<SockImage> = Vec::new();

        let pids = p.pids();
        for &pid in &pids {
            let Some(proc) = kernel.process(pid) else {
                continue;
            };
            if group_index_by_leader.contains_key(&proc.group) {
                continue;
            }
            let gidx = groups.len() as u32;
            group_index_by_leader.insert(proc.group, gidx);

            // Address space.
            let mem_rc = proc.mem.clone();
            let mut mem = mem_rc.borrow_mut();
            let mut areas = Vec::new();
            for a in mem.areas() {
                let shm_index = match &a.backing {
                    simos::mem::AreaBacking::Private => None,
                    simos::mem::AreaBacking::Shared(seg) => {
                        Some(*shm_index_by_id.get(&seg.id).ok_or(ZapError::Inconsistent(
                            "shared area references unknown segment",
                        ))?)
                    }
                };
                areas.push(AreaImage {
                    start: a.start,
                    len: a.len,
                    tag: a.tag.clone(),
                    shm_index,
                });
            }
            group_dirty.push(mem.dirty_set().clone());
            let pages: Vec<(u64, Vec<u8>)> = if arm {
                // COW: no page copied here — the snapshot (which records
                // the dirty set for incremental drains) stands in for them.
                mem.cow_arm();
                Vec::new()
            } else if base_epoch.is_some() {
                mem.dirty_pages()
                    .map(|(addr, data)| (addr, data.to_vec()))
                    .collect()
            } else {
                mem.nonzero_pages()
                    .map(|(addr, data)| (addr, data.to_vec()))
                    .collect()
            };
            // Either kind of checkpoint re-baselines the dirty set.
            mem.clear_dirty();
            drop(mem);
            if arm {
                group_spaces.push(mem_rc.clone());
            }

            // Descriptor table.
            let fds_rc = proc.fds.clone();
            let fds = fds_rc.borrow();
            let mut fd_images = Vec::new();
            for (fd, desc) in fds.iter() {
                let di = match desc {
                    Desc::Console => DescImage::Console,
                    Desc::File { path, offset } => DescImage::File {
                        path: path.clone(),
                        offset: *offset,
                    },
                    Desc::Pipe { id, end } => {
                        let idx = *pipe_index.entry(*id).or_insert_with(|| {
                            let pi = pipe_images.len() as u32;
                            let pipe = kernel.pipes.get(*id);
                            pipe_images.push(PipeImage {
                                data: pipe.map(|p| p.snapshot_bytes()).unwrap_or_default(),
                                readers: 1,
                                writers: 1,
                            });
                            pi
                        });
                        DescImage::Pipe {
                            index: idx,
                            write_end: *end == PipeEnd::Write,
                        }
                    }
                    Desc::Socket(sid) => {
                        let idx = match sock_index.get(sid) {
                            Some(&i) => i,
                            None => {
                                let img = snapshot_socket(kernel, p, *sid)?;
                                let i = sock_images.len() as u32;
                                sock_index.insert(*sid, i);
                                sock_images.push(img);
                                i
                            }
                        };
                        DescImage::Socket { index: idx }
                    }
                };
                fd_images.push((fd, di));
            }
            groups.push(GroupImage {
                areas,
                pages,
                fds: fd_images,
            });
        }

        // Pipe end reference counts follow from the descriptors that were
        // actually captured.
        for img in pipe_images.iter_mut() {
            img.readers = 0;
            img.writers = 0;
        }
        for g in &groups {
            for (_fd, d) in &g.fds {
                if let DescImage::Pipe { index, write_end } = d {
                    let img = &mut pipe_images[*index as usize];
                    if *write_end {
                        img.writers += 1;
                    } else {
                        img.readers += 1;
                    }
                }
            }
        }

        // Processes.
        let mut proc_images = Vec::new();
        for &pid in &pids {
            let Some(proc) = kernel.process(pid) else {
                continue; // reaped
            };
            let vpid = p.vpid_of(pid).expect("pod member");
            let parent_vpid = p.vpid_of(proc.parent).unwrap_or(0);
            let group = *group_index_by_leader
                .get(&proc.group)
                .expect("group captured above");
            let run_state = match &proc.state {
                ProcState::Zombie(code) => RunStateImage::Zombie(*code),
                ProcState::Stopped { resume_to } => match **resume_to {
                    ProcState::Blocked(WaitFor::SleepUntil(t)) => {
                        RunStateImage::SleepUntil(t.as_nanos())
                    }
                    _ => RunStateImage::Ready,
                },
                ProcState::Blocked(WaitFor::SleepUntil(t)) => {
                    RunStateImage::SleepUntil(t.as_nanos())
                }
                _ => RunStateImage::Ready,
            };
            proc_images.push(ProcImage {
                vpid,
                parent_vpid,
                group,
                regs: *proc.cpu.regs(),
                pc: proc.cpu.pc(),
                halted: proc.cpu.is_halted(),
                pending: proc.pending.map(|ps| (ps.num, ps.args)),
                run_state,
                console: proc.console.clone(),
            });
        }

        Ok((
            PodImage {
                base_epoch,
                name: p.cfg.name.clone(),
                ip: p.cfg.ip,
                mac_mode: p.cfg.mac_mode,
                next_vpid: p.next_vpid,
                shm: shm_images,
                sems: sem_images,
                pipes: pipe_images,
                sockets: sock_images,
                groups,
                procs: proc_images,
            },
            group_spaces,
            group_dirty,
        ))
    }

    /// Tears a pod down without running exit paths: sockets are silently
    /// discarded (no FIN/RST — after a migration the connection lives on at
    /// the destination), processes removed, the VIF deleted.
    ///
    /// # Errors
    ///
    /// [`ZapError::NoSuchPod`].
    pub fn destroy_pod(&self, kernel: &mut Kernel, pod: PodId) -> Result<(), ZapError> {
        let mut st = self.state.borrow_mut();
        let p = st.pods.remove(&pod).ok_or(ZapError::NoSuchPod)?;
        let mut seen_socks: Vec<SocketId> = Vec::new();
        let mut seen_pipes: Vec<(PipeId, PipeEnd)> = Vec::new();
        for pid in p.pids() {
            st.pid_owner.remove(&pid);
            let Some(proc) = kernel.remove_process(pid) else {
                continue;
            };
            // Only the last group member visits the (shared) table.
            if Rc::strong_count(&proc.fds) <= 1 {
                for (_fd, desc) in proc.fds.borrow().iter() {
                    match desc {
                        Desc::Socket(sid) => seen_socks.push(*sid),
                        Desc::Pipe { id, end } => seen_pipes.push((*id, *end)),
                        _ => {}
                    }
                }
            }
        }
        for sid in seen_socks {
            kernel.net.tcp_discard(sid);
        }
        for (id, end) in seen_pipes {
            kernel.pipes.drop_ref(id, end == PipeEnd::Write);
        }
        kernel.net.remove_iface(&p.vif_name);
        Ok(())
    }

    // ---- restart -----------------------------------------------------------

    /// Restores a pod from an image onto this node's kernel. The pod comes
    /// up **stopped**; call [`Zap::resume_pod`] once global restart
    /// coordination allows execution (§5).
    ///
    /// # Errors
    ///
    /// [`ZapError::IpInUse`] if the pod's address is already on this node;
    /// image-consistency and network errors otherwise.
    pub fn restart_pod(
        &self,
        kernel: &mut Kernel,
        image: &PodImage,
        now: SimTime,
    ) -> Result<PodId, ZapError> {
        let pod = self.create_pod(
            kernel,
            PodConfig {
                name: image.name.clone(),
                ip: image.ip,
                mac_mode: image.mac_mode,
            },
        )?;

        // Kernel objects.
        let mut shm_ids = Vec::with_capacity(image.shm.len());
        for s in &image.shm {
            shm_ids.push(kernel.shm_restore(s.key, s.data.clone()));
        }
        for s in &image.sems {
            kernel.sems.restore(s.key, s.values.clone());
        }
        let mut pipe_ids = Vec::with_capacity(image.pipes.len());
        for pi in &image.pipes {
            pipe_ids.push(kernel.pipes.restore(&pi.data, pi.readers, pi.writers));
        }

        // Sockets (§4.1 restore).
        let mut sock_ids: Vec<SocketId> = Vec::with_capacity(image.sockets.len());
        let mut alt_bufs: Vec<(SocketId, Vec<u8>)> = Vec::new();
        for s in &image.sockets {
            let sid = match s {
                SockImage::Listen {
                    local,
                    backlog,
                    pending,
                } => {
                    let lsid = kernel.net.tcp_restore_listener(*local, *backlog as usize)?;
                    for (conn, alt) in pending {
                        let child =
                            restore_conn(kernel, conn, alt, &mut alt_bufs, Some(lsid), now)?;
                        let _ = child;
                    }
                    lsid
                }
                SockImage::Conn { snap, alt_recv } => {
                    restore_conn(kernel, snap, alt_recv, &mut alt_bufs, None, now)?
                }
                SockImage::Udp { bound, queue } => {
                    let snap = simnet::stack::UdpSnapshot {
                        bound: *bound,
                        queue: queue.clone(),
                    };
                    kernel.net.udp_restore(&snap)?
                }
                SockImage::Fresh { bound } => {
                    let sid = kernel.net.tcp_socket();
                    if let Some(b) = bound {
                        kernel.net.bind(sid, *b)?;
                    }
                    sid
                }
            };
            sock_ids.push(sid);
        }

        // Thread groups: address spaces and descriptor tables.
        let mut group_handles = Vec::with_capacity(image.groups.len());
        for g in &image.groups {
            let mut space = AddressSpace::new();
            for a in &g.areas {
                match a.shm_index {
                    None => space.map(a.start, a.len, &a.tag)?,
                    Some(i) => {
                        let shm_id = *shm_ids
                            .get(i as usize)
                            .ok_or(ZapError::Inconsistent("area shm index out of range"))?;
                        let seg = kernel
                            .shm_segment(shm_id)
                            .ok_or(ZapError::Inconsistent("restored segment vanished"))?
                            .clone();
                        space.map_shared(a.start, seg, &a.tag)?;
                    }
                }
            }
            for (addr, data) in &g.pages {
                space.install_page(*addr, data);
            }
            // A restored space equals its image: incremental checkpoints
            // after a restart start from a clean dirty set.
            space.clear_dirty();
            let mut fds = FdTable::new();
            for (fd, di) in &g.fds {
                let desc = match di {
                    DescImage::Console => continue, // fd 0 pre-installed
                    DescImage::File { path, offset } => Desc::File {
                        path: path.clone(),
                        offset: *offset,
                    },
                    DescImage::Pipe { index, write_end } => Desc::Pipe {
                        id: *pipe_ids
                            .get(*index as usize)
                            .ok_or(ZapError::Inconsistent("pipe index out of range"))?,
                        end: if *write_end {
                            PipeEnd::Write
                        } else {
                            PipeEnd::Read
                        },
                    },
                    DescImage::Socket { index } => Desc::Socket(
                        *sock_ids
                            .get(*index as usize)
                            .ok_or(ZapError::Inconsistent("socket index out of range"))?,
                    ),
                };
                fds.install_at(*fd, desc);
            }
            group_handles.push((Rc::new(RefCell::new(space)), Rc::new(RefCell::new(fds))));
        }

        // Processes, with fresh real pids behind the virtual-pid namespace.
        let mut group_leader_pid: BTreeMap<u32, Pid> = BTreeMap::new();
        {
            let mut st = self.state.borrow_mut();
            let pod_entry = st.pods.get_mut(&pod).expect("just created");
            pod_entry.next_vpid = image.next_vpid;
            for (sid, data) in &alt_bufs {
                if !data.is_empty() {
                    pod_entry
                        .alt_recv
                        .insert(*sid, data.iter().copied().collect());
                }
            }
            pod_entry.intercepting = pod_entry.any_alt_recv();
        }
        for pi in &image.procs {
            let (mem, fds) = group_handles
                .get(pi.group as usize)
                .ok_or(ZapError::Inconsistent("process group index out of range"))?
                .clone();
            let pid = kernel.alloc_pid();
            let leader = *group_leader_pid.entry(pi.group).or_insert(pid);
            let state = match pi.run_state {
                RunStateImage::Zombie(code) => ProcState::Zombie(code),
                RunStateImage::Ready => ProcState::Stopped {
                    resume_to: Box::new(ProcState::Ready),
                },
                RunStateImage::SleepUntil(t) => ProcState::Stopped {
                    resume_to: Box::new(ProcState::Blocked(WaitFor::SleepUntil(
                        SimTime::from_nanos(t),
                    ))),
                },
            };
            let mut st = self.state.borrow_mut();
            let pod_entry = st.pods.get_mut(&pod).expect("exists");
            // Parent resolution happens after all pids exist; store vpid
            // mapping first.
            pod_entry.adopt_as(pid, pi.vpid);
            st.pid_owner.insert(pid, pod);
            drop(st);
            let proc = Process {
                pid,
                parent: 0, // fixed up below
                cpu: Cpu::restore(pi.regs, pi.pc, pi.halted),
                mem,
                fds,
                state,
                pending: pi.pending.map(|(num, args)| PendingSyscall { num, args }),
                console: pi.console.clone(),
                group: leader,
            };
            kernel.insert_process(proc);
        }
        // Fix up parent links now that every vpid resolves.
        {
            let st = self.state.borrow();
            let pod_entry = st.pods.get(&pod).expect("exists");
            for pi in &image.procs {
                if pi.parent_vpid == 0 {
                    continue;
                }
                let (Some(child), Some(parent)) =
                    (pod_entry.pid_of(pi.vpid), pod_entry.pid_of(pi.parent_vpid))
                else {
                    continue;
                };
                if let Some(p) = kernel.process_mut(child) {
                    p.parent = parent;
                }
            }
        }
        Ok(pod)
    }
}

/// A pod checkpoint whose arm phase has completed: the non-memory state is
/// captured in a page-less skeleton image, and every thread group's address
/// space carries an armed COW snapshot standing in for its pages. Produced
/// by [`Zap::checkpoint_pod_arm`]; finish with
/// [`ArmedPodCheckpoint::drain`] or discard with
/// [`ArmedPodCheckpoint::cancel`] (the abort path) — either way the
/// snapshots are disarmed exactly once.
#[derive(Debug)]
pub struct ArmedPodCheckpoint {
    /// Everything except private pages, captured at freeze time.
    skeleton: PodImage,
    /// Armed address spaces, aligned with `skeleton.groups`.
    spaces: Vec<Rc<RefCell<AddressSpace>>>,
    /// Per-group dirty sets as of the arm instant (the capture that armed
    /// the snapshots also re-baselined dirty tracking), aligned with
    /// `skeleton.groups`.
    dirty_at_arm: Vec<BTreeSet<u64>>,
    /// Whether the drain emits the dirty-at-arm page set (incremental).
    incremental: bool,
}

impl ArmedPodCheckpoint {
    /// The pod's name (image identity in the checkpoint store).
    pub fn pod_name(&self) -> &str {
        &self.skeleton.name
    }

    /// Bytes the freeze window had to serialize: the encoded non-memory
    /// state. This — not the image size — is what the arm phase costs.
    pub fn arm_bytes(&self) -> u64 {
        self.skeleton.encoded_len() as u64
    }

    /// Page payload bytes the drain will emit, computable at arm time
    /// without copying anything (the COW snapshot pins the page set): what
    /// the background encode/write-out schedule is planned from.
    pub fn pending_page_bytes(&self) -> u64 {
        self.spaces
            .iter()
            .map(|s| s.borrow().cow_pending_bytes(self.incremental))
            .sum()
    }

    /// Pre-image copy bytes forced so far by post-resume writes.
    pub fn copied_bytes(&self) -> u64 {
        self.spaces
            .iter()
            .map(|s| s.borrow().cow_copied_bytes())
            .sum()
    }

    /// The **drain** half: reconstructs each group's pages as of the arm
    /// instant from the COW snapshots, disarms them, and returns the
    /// completed image plus the pre-image copy bytes the snapshot window
    /// cost. Byte-identical to an eager checkpoint taken at arm time.
    pub fn drain(self) -> (PodImage, u64) {
        let (image, copied, _) = self.drain_with_dirty();
        (image, copied)
    }

    /// [`ArmedPodCheckpoint::drain`], additionally returning each group's
    /// dirty-page set as of the arm instant. The drained pages are the
    /// arm-time contents, so exactly as for an eager capture, a page *not*
    /// in its group's set is byte-identical to the previous capture.
    pub fn drain_with_dirty(self) -> (PodImage, u64, Vec<BTreeSet<u64>>) {
        let mut image = self.skeleton;
        let mut copied = 0;
        for (group, space) in image.groups.iter_mut().zip(&self.spaces) {
            let mut mem = space.borrow_mut();
            group.pages = if self.incremental {
                mem.cow_snapshot_dirty_pages()
            } else {
                mem.cow_snapshot_pages()
            };
            copied += mem.cow_disarm();
        }
        (image, copied, self.dirty_at_arm)
    }

    /// Abandons the checkpoint (abort path): disarms every snapshot
    /// without materializing any page.
    pub fn cancel(self) {
        for space in &self.spaces {
            space.borrow_mut().cow_disarm();
        }
    }
}

/// The MAC a pod's VIF transmits with.
fn vif_mac(mode: &MacMode, physical: MacAddr) -> MacAddr {
    match mode {
        MacMode::Dedicated(m) => *m,
        MacMode::SharedPhysical { .. } => physical,
    }
}

/// Snapshots one socket (§4.1 for connections).
fn snapshot_socket(kernel: &Kernel, pod: &Pod, sid: SocketId) -> Result<SockImage, ZapError> {
    if kernel.net.is_listener(sid) {
        let local = kernel
            .net
            .tcp_local_addr(sid)
            .ok_or(ZapError::Inconsistent("listener without address"))?;
        let backlog = kernel.net.tcp_listener_backlog(sid).unwrap_or(1) as u32;
        let pending = kernel
            .net
            .tcp_listener_pending(sid)?
            .iter()
            .map(|snap| (TcpConnImage::from_snapshot(snap), snap.recv_stream.clone()))
            .collect();
        return Ok(SockImage::Listen {
            local,
            backlog,
            pending,
        });
    }
    if let Ok(snap) = kernel.net.tcp_snapshot(sid) {
        // Alternate-buffer remainder first, then the kernel receive queue —
        // exactly the concatenation order the paper specifies.
        let mut alt: Vec<u8> = pod
            .alt_recv
            .get(&sid)
            .map(|q| q.iter().copied().collect())
            .unwrap_or_default();
        alt.extend_from_slice(&snap.recv_stream);
        return Ok(SockImage::Conn {
            snap: TcpConnImage::from_snapshot(&snap),
            alt_recv: alt,
        });
    }
    if let Ok(usnap) = kernel.net.udp_snapshot(sid) {
        return Ok(SockImage::Udp {
            bound: usnap.bound,
            queue: usnap.queue,
        });
    }
    // Fresh (or already-dead) socket: record only its binding.
    Ok(SockImage::Fresh {
        bound: kernel.net.tcp_local_addr(sid),
    })
}

/// Restores one TCP connection: creates the endpoint at the saved sequence
/// numbers with empty buffers, replays the saved send data one packet at a
/// time with Nagle/CORK disabled, restores the option flags, and records
/// the alternate receive buffer.
fn restore_conn(
    kernel: &mut Kernel,
    conn: &TcpConnImage,
    alt_recv: &[u8],
    alt_bufs: &mut Vec<(SocketId, Vec<u8>)>,
    listener: Option<SocketId>,
    now: SimTime,
) -> Result<SocketId, ZapError> {
    let snap = conn.to_snapshot()?;
    let sid = match listener {
        Some(lsid) => kernel.net.tcp_restore_into_listener(lsid, &snap)?,
        None => kernel.net.tcp_restore(&snap)?,
    };
    // Temporarily force immediate packetization (§4.1: Nagle and TCP_CORK
    // disabled so replayed sends keep their original boundaries).
    kernel.net.tcp_set_cork(sid, false, now)?;
    kernel.net.tcp_set_nodelay(sid, true, now)?;
    for pkt in &conn.inflight {
        let n = kernel.net.tcp_send(sid, pkt, now)?;
        if n != pkt.len() {
            return Err(ZapError::Inconsistent("send replay overflowed the buffer"));
        }
    }
    if !conn.unsent.is_empty() {
        let n = kernel.net.tcp_send(sid, &conn.unsent, now)?;
        if n != conn.unsent.len() {
            return Err(ZapError::Inconsistent(
                "unsent replay overflowed the buffer",
            ));
        }
    }
    kernel.net.tcp_set_nodelay(sid, conn.nodelay, now)?;
    kernel.net.tcp_set_cork(sid, conn.cork, now)?;
    if !alt_recv.is_empty() {
        alt_bufs.push((sid, alt_recv.to_vec()));
    }
    Ok(sid)
}
